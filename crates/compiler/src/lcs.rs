//! Multi-round longest-common-substring analysis over hot operation
//! chains (paper §III-A).
//!
//! The paper derives the patch templates from the most common
//! operation-chains on the critical paths of hot computational patterns:
//! round *n* runs LCS on the chains with the previous round's winner
//! removed, producing a ranked list like `{AT}: 95.7%, {MA}: 47.8%,
//! {AA}: 34.8%, {AS}: 21.7%, {SA}: 21.7%` — which motivated deploying
//! 8 `{AT-MA}`, 4 `{AT-AS}` and 4 `{AT-SA}` patches.

use crate::dfg::{BlockDfg, Src};
use std::collections::HashMap;
use stitch_isa::OpClass;

/// One round's winner: the most common operation pair and the fraction of
/// kernels whose chains contain it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRound {
    /// The operation chain, e.g. `"AT"`.
    pub chain: String,
    /// Fraction of kernels containing the chain in this round.
    pub rate: f64,
}

/// Result of the multi-round analysis.
#[derive(Debug, Clone, Default)]
pub struct ChainReport {
    /// Ranked rounds (first = most common chain).
    pub rounds: Vec<ChainRound>,
}

impl ChainReport {
    /// Renders the report in the paper's notation.
    #[must_use]
    pub fn render(&self) -> String {
        self.rounds
            .iter()
            .map(|r| format!("{{{}}}: {:.1}%", r.chain, r.rate * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Extracts the critical-path class chain of a hot block's DFG: the
/// longest path through ISE-eligible nodes, rendered as class letters.
#[must_use]
pub fn critical_chain(dfg: &BlockDfg) -> String {
    let n = dfg.len();
    // Longest path ending at each node, over eligible nodes only.
    let mut best: Vec<(u32, Option<usize>)> = vec![(0, None); n];
    for i in 0..n {
        if !dfg.nodes[i].eligible() {
            continue;
        }
        best[i] = (1, None);
        for s in &dfg.nodes[i].srcs {
            if let Src::Node(p) = s {
                if dfg.nodes[*p].eligible() && best[*p].0 + 1 > best[i].0 {
                    best[i] = (best[*p].0 + 1, Some(*p));
                }
            }
        }
    }
    let Some((end, _)) = best
        .iter()
        .enumerate()
        .max_by_key(|(_, (len, _))| *len)
        .filter(|(_, (len, _))| *len > 0)
    else {
        return String::new();
    };
    let mut path = vec![end];
    while let Some(p) = best[*path.last().expect("nonempty")].1 {
        path.push(p);
    }
    path.reverse();
    path.iter()
        .map(|&i| match dfg.nodes[i].op.class() {
            Some(OpClass::A) => 'A',
            Some(OpClass::S) => 'S',
            Some(OpClass::M) => 'M',
            Some(OpClass::T) => 'T',
            None => unreachable!("eligible nodes have a class"),
        })
        .collect()
}

/// Runs the multi-round LCS over per-kernel chain sets.
///
/// `kernels` maps a kernel name to the operation chains of its hot
/// blocks. Each round finds the length-2 substring present in the most
/// kernels, records its occurrence rate, and removes it from all chains
/// (splitting them) before the next round. Stops when no pair occurs in
/// at least two kernels or after `max_rounds`.
#[must_use]
pub fn chain_analysis(kernels: &[(String, Vec<String>)], max_rounds: usize) -> ChainReport {
    let total = kernels.len();
    if total == 0 {
        return ChainReport::default();
    }
    let mut chains: Vec<Vec<String>> = kernels.iter().map(|(_, cs)| cs.clone()).collect();
    let mut rounds = Vec::new();

    for _ in 0..max_rounds {
        // Count kernels containing each length-2 substring.
        let mut counts: HashMap<String, usize> = HashMap::new();
        for kernel_chains in &chains {
            let mut seen: Vec<String> = Vec::new();
            for c in kernel_chains {
                let bytes = c.as_bytes();
                for w in bytes.windows(2) {
                    let s = String::from_utf8_lossy(w).to_string();
                    if !seen.contains(&s) {
                        seen.push(s);
                    }
                }
            }
            for s in seen {
                *counts.entry(s).or_insert(0) += 1;
            }
        }
        let Some((best, count)) = counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        else {
            break;
        };
        if count < 2 && !rounds.is_empty() {
            break;
        }
        rounds.push(ChainRound {
            chain: best.clone(),
            rate: count as f64 / total as f64,
        });
        // Remove the winner from every chain (splitting at occurrences).
        for kernel_chains in &mut chains {
            let mut next = Vec::new();
            for c in kernel_chains.drain(..) {
                for piece in split_all(&c, &best) {
                    if piece.len() >= 2 {
                        next.push(piece);
                    }
                }
            }
            *kernel_chains = next;
        }
    }
    ChainReport { rounds }
}

/// Splits `s` at every non-overlapping occurrence of `pat`.
fn split_all(s: &str, pat: &str) -> Vec<String> {
    s.split(pat).map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use stitch_isa::{ProgramBuilder, Reg};

    #[test]
    fn critical_chain_of_mul_add() {
        let mut b = ProgramBuilder::new();
        b.mul(Reg::R3, Reg::R1, Reg::R2);
        b.add(Reg::R4, Reg::R3, Reg::R1);
        b.alu(stitch_isa::AluOp::Sll, Reg::R5, Reg::R4, Reg::R2);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dfg = BlockDfg::build(&p, &cfg, &cfg.blocks[0]);
        assert_eq!(critical_chain(&dfg), "MAS");
    }

    #[test]
    fn analysis_finds_common_pairs() {
        let kernels = vec![
            ("k1".into(), vec!["ATMA".into()]),
            ("k2".into(), vec!["ATMA".into()]),
            ("k3".into(), vec!["ATMAS".into()]),
            ("k4".into(), vec!["ATAS".into()]),
            ("k5".into(), vec!["ATSA".into(), "ATSA".into()]),
            ("k6".into(), vec!["AT".into()]),
        ];
        let report = chain_analysis(&kernels, 8);
        assert_eq!(report.rounds[0].chain, "AT");
        assert!(
            (report.rounds[0].rate - 1.0).abs() < 1e-12,
            "AT in all kernels"
        );
        // After removing AT: k1/k2 -> "MA", k3 -> "MAS", k4 -> "AS",
        // k5 -> "SA"x2. MA occurs in 3 kernels -> next winner.
        assert_eq!(report.rounds[1].chain, "MA");
        assert!((report.rounds[1].rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        assert!(chain_analysis(&[], 4).rounds.is_empty());
    }

    #[test]
    fn render_format() {
        let r = ChainReport {
            rounds: vec![ChainRound {
                chain: "AT".into(),
                rate: 0.957,
            }],
        };
        assert_eq!(r.render(), "{AT}: 95.7%");
    }
}
