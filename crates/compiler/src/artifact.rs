//! Persistent verified-kernel artifacts.
//!
//! Composes the shared codecs from `stitch-cache` into the compiler's
//! own artifact shapes — a full [`KernelVariants`] bundle together with
//! the clean verify [`Report`] that admitted it, and a [`StitchPlan`] —
//! and derives the SHA-256 content keys that address them in an
//! [`ArtifactStore`]:
//!
//! * [`kernel_input_key`] hashes the compiler's *inputs* (kernel name,
//!   standalone program bytes, configuration list, output check, and
//!   [`VERIFIER_VERSION`]), so a warm sweep can skip compilation and
//!   verification entirely: same inputs, same artifact.
//! * [`verify_kernel_stored`] addresses by the compiled *output* (the
//!   encoded [`KernelVariants`]) and persists only the report — a
//!   smaller win used when the caller already holds the artifact.
//!
//! Both keys fold in [`VERIFIER_VERSION`], so upgrading the static
//! analyses retires every stored verdict at once. Decoding never
//! trusts: any malformed byte reads as absent and the caller falls back
//! to the live compile + verify path.

use crate::driver::{AcceleratedKernel, KernelVariants};
use crate::mapper::PatchConfig;
use crate::stitcher::{GrantedAccel, StitchPlan};
use crate::verify::{seed_verify_memo, verify_kernel};
use stitch_cache::codec::{
    get_class, get_control, get_ise_check, get_program, get_report, put_class, put_control,
    put_ise_check, put_program, put_report,
};
use stitch_cache::{ArtifactStore, Rec, RecView, Sha256};
use stitch_noc::TileId;
use stitch_verify::{Report, VERIFIER_VERSION};

/// Encodes a patch configuration.
pub fn put_patch_config(rec: &mut Rec, c: PatchConfig) {
    match c {
        PatchConfig::Single(class) => {
            rec.u8(0);
            put_class(rec, class);
        }
        PatchConfig::Pair(local, remote) => {
            rec.u8(1);
            put_class(rec, local);
            put_class(rec, remote);
        }
        PatchConfig::Locus => rec.u8(2),
    }
}

/// Decodes a patch configuration.
pub fn get_patch_config(v: &mut RecView<'_>) -> Option<PatchConfig> {
    Some(match v.u8()? {
        0 => PatchConfig::Single(get_class(v)?),
        1 => PatchConfig::Pair(get_class(v)?, get_class(v)?),
        2 => PatchConfig::Locus,
        _ => return None,
    })
}

/// Encodes one accelerated variant. Per-CI control maps are serialized
/// in sorted id order, so the bytes are deterministic.
pub fn put_accelerated(rec: &mut Rec, a: &AcceleratedKernel) -> Option<()> {
    put_patch_config(rec, a.config);
    put_program(rec, &a.program)?;
    let mut cis: Vec<(&u16, &Vec<stitch_patch::ControlWord>)> = a.ci_controls.iter().collect();
    cis.sort_by_key(|(id, _)| **id);
    rec.u32(cis.len() as u32);
    for (id, controls) in cis {
        rec.u32(u32::from(*id));
        rec.u8(controls.len() as u8);
        for c in controls {
            put_control(rec, c)?;
        }
    }
    rec.u64(a.custom_count as u64);
    rec.u64(a.cycles);
    rec.u32(a.ise_checks.len() as u32);
    for check in &a.ise_checks {
        put_ise_check(rec, check)?;
    }
    Some(())
}

/// Decodes one accelerated variant.
pub fn get_accelerated(v: &mut RecView<'_>) -> Option<AcceleratedKernel> {
    let config = get_patch_config(v)?;
    let program = get_program(v)?;
    let n_cis = v.u32()? as usize;
    if n_cis > v.remaining() {
        return None;
    }
    let mut ci_controls = std::collections::HashMap::with_capacity(n_cis);
    for _ in 0..n_cis {
        let id = u16::try_from(v.u32()?).ok()?;
        let n = v.u8()? as usize;
        if n > 2 {
            return None;
        }
        let mut controls = Vec::with_capacity(n);
        for _ in 0..n {
            controls.push(get_control(v)?);
        }
        ci_controls.insert(id, controls);
    }
    let custom_count = usize::try_from(v.u64()?).ok()?;
    let cycles = v.u64()?;
    let n_checks = v.u32()? as usize;
    if n_checks > v.remaining() {
        return None;
    }
    let mut ise_checks = Vec::with_capacity(n_checks);
    for _ in 0..n_checks {
        ise_checks.push(get_ise_check(v)?);
    }
    Some(AcceleratedKernel {
        config,
        program,
        ci_controls,
        custom_count,
        cycles,
        ise_checks,
    })
}

/// Encodes a full kernel-variants bundle.
pub fn put_kernel_variants(rec: &mut Rec, kv: &KernelVariants) -> Option<()> {
    rec.str(&kv.name);
    put_program(rec, &kv.baseline)?;
    rec.u64(kv.baseline_cycles);
    rec.u32(kv.variants.len() as u32);
    for variant in &kv.variants {
        put_accelerated(rec, variant)?;
    }
    Some(())
}

/// Decodes a full kernel-variants bundle.
pub fn get_kernel_variants(v: &mut RecView<'_>) -> Option<KernelVariants> {
    let name = v.str()?.to_string();
    let baseline = get_program(v)?;
    let baseline_cycles = v.u64()?;
    let n = v.u32()? as usize;
    if n > v.remaining() {
        return None;
    }
    let mut variants = Vec::with_capacity(n);
    for _ in 0..n {
        variants.push(get_accelerated(v)?);
    }
    Some(KernelVariants {
        name,
        baseline,
        baseline_cycles,
        variants,
    })
}

/// Encodes a stitch plan.
pub fn put_stitch_plan(rec: &mut Rec, plan: &StitchPlan) {
    rec.u32(plan.tiles.len() as u32);
    for t in &plan.tiles {
        rec.u8(t.0);
    }
    rec.u32(plan.accel.len() as u32);
    for grant in &plan.accel {
        match grant {
            None => rec.u8(0),
            Some(g) => {
                rec.u8(1);
                put_patch_config(rec, g.config);
                match g.partner {
                    None => rec.u8(0),
                    Some(p) => {
                        rec.u8(1);
                        rec.u8(p.0);
                    }
                }
                rec.u32(g.hops);
            }
        }
    }
    rec.u32(plan.circuits.len() as u32);
    for (from, to) in &plan.circuits {
        rec.u8(from.0);
        rec.u8(to.0);
    }
    rec.u32(plan.log.len() as u32);
    for line in &plan.log {
        rec.str(line);
    }
}

/// Decodes a stitch plan.
pub fn get_stitch_plan(v: &mut RecView<'_>) -> Option<StitchPlan> {
    let n_tiles = v.u32()? as usize;
    if n_tiles > v.remaining() {
        return None;
    }
    let mut tiles = Vec::with_capacity(n_tiles);
    for _ in 0..n_tiles {
        tiles.push(TileId(v.u8()?));
    }
    let n_accel = v.u32()? as usize;
    if n_accel > v.remaining() {
        return None;
    }
    let mut accel = Vec::with_capacity(n_accel);
    for _ in 0..n_accel {
        accel.push(match v.u8()? {
            0 => None,
            1 => {
                let config = get_patch_config(v)?;
                let partner = match v.u8()? {
                    0 => None,
                    1 => Some(TileId(v.u8()?)),
                    _ => return None,
                };
                let hops = v.u32()?;
                Some(GrantedAccel {
                    config,
                    partner,
                    hops,
                })
            }
            _ => return None,
        });
    }
    let n_circuits = v.u32()? as usize;
    if n_circuits > v.remaining() {
        return None;
    }
    let mut circuits = Vec::with_capacity(n_circuits);
    for _ in 0..n_circuits {
        circuits.push((TileId(v.u8()?), TileId(v.u8()?)));
    }
    let n_log = v.u32()? as usize;
    if n_log > v.remaining() {
        return None;
    }
    let mut log = Vec::with_capacity(n_log);
    for _ in 0..n_log {
        log.push(v.str()?.to_string());
    }
    Some(StitchPlan {
        tiles,
        accel,
        circuits,
        log,
    })
}

/// Encodes a kernel artifact: the compiled variants bundle *together
/// with* the verify report that admitted it. Returns `None` for an
/// artifact the wire format cannot express (such an artifact can never
/// have passed verification).
#[must_use]
pub fn encode_kernel_artifact(kv: &KernelVariants, report: &Report) -> Option<Vec<u8>> {
    let mut rec = Rec::new();
    put_kernel_variants(&mut rec, kv)?;
    put_report(&mut rec, report);
    Some(rec.into_bytes())
}

/// Decodes a kernel artifact. Every failure mode returns `None`: the
/// artifact reads as absent and the caller compiles + verifies live.
#[must_use]
pub fn decode_kernel_artifact(bytes: &[u8]) -> Option<(KernelVariants, Report)> {
    let mut v = RecView::new(bytes);
    let kv = get_kernel_variants(&mut v)?;
    let report = get_report(&mut v)?;
    if !v.at_end() {
        return None;
    }
    Some((kv, report))
}

/// Order-stable rendering of an [`AcceleratedKernel`] for equality
/// checks. `ci_controls` is a `HashMap`, so two structurally equal
/// instances can `Debug`-print their entries in different orders;
/// this prints them through a `BTreeMap`. Round-trip tests (here and
/// in dependents) compare artifacts through this, since the types
/// deliberately do not implement `PartialEq`.
#[must_use]
pub fn accel_fingerprint(a: &AcceleratedKernel) -> String {
    let controls: std::collections::BTreeMap<_, _> = a.ci_controls.iter().collect();
    format!(
        "{:?} {:?} {controls:?} {} {} {:?}",
        a.config, a.program, a.custom_count, a.cycles, a.ise_checks
    )
}

/// Order-stable rendering of a whole [`KernelVariants`]; see
/// [`accel_fingerprint`].
#[must_use]
pub fn variants_fingerprint(kv: &KernelVariants) -> String {
    use std::fmt::Write as _;
    let mut s = format!("{} {:?} {} [", kv.name, kv.baseline, kv.baseline_cycles);
    for v in &kv.variants {
        let _ = write!(s, "{};", accel_fingerprint(v));
    }
    s.push(']');
    s
}

/// Content key of a kernel compile: a SHA-256 over everything
/// [`crate::compile_kernel`] consumes — the kernel name, the standalone
/// program's encoded bytes, the configuration list, the optional output
/// check — plus [`VERIFIER_VERSION`]. Two compiles with equal keys
/// produce byte-identical artifacts, so a stored artifact under this
/// key substitutes for the whole compile + verify pipeline.
///
/// Returns `None` when the program cannot be encoded (it could then
/// never have compiled either).
#[must_use]
pub fn kernel_input_key(
    name: &str,
    program: &stitch_isa::Program,
    configs: &[PatchConfig],
    output_check: Option<(u32, usize)>,
) -> Option<String> {
    let mut h = Sha256::new();
    h.field(b"stitch-kernel-artifact");
    h.field(&VERIFIER_VERSION.to_le_bytes());
    h.field(name.as_bytes());
    let mut rec = Rec::new();
    put_program(&mut rec, program)?;
    h.field(rec.as_bytes());
    let mut cfgs = Rec::new();
    cfgs.u32(configs.len() as u32);
    for &c in configs {
        put_patch_config(&mut cfgs, c);
    }
    match output_check {
        None => cfgs.u8(0),
        Some((addr, words)) => {
            cfgs.u8(1);
            cfgs.u32(addr);
            cfgs.u64(words as u64);
        }
    }
    h.field(cfgs.as_bytes());
    Some(format!("k-{name}-{}", h.finalize_hex()))
}

/// Content key of a verify report, addressed by the compiled *output*:
/// a SHA-256 over the encoded [`KernelVariants`] plus
/// [`VERIFIER_VERSION`].
#[must_use]
pub fn verify_report_key(kv: &KernelVariants) -> Option<String> {
    let mut rec = Rec::new();
    put_kernel_variants(&mut rec, kv)?;
    let mut h = Sha256::new();
    h.field(b"stitch-verify-report");
    h.field(&VERIFIER_VERSION.to_le_bytes());
    h.field(rec.as_bytes());
    Some(format!("v-{}-{}", kv.name, h.finalize_hex()))
}

/// [`verify_kernel`] backed by a persistent store: a valid stored
/// report for this exact artifact content (and verifier version) is
/// returned directly — and seeded into the in-process memo — otherwise
/// the kernel is verified live and the report persisted for the next
/// process.
#[must_use]
pub fn verify_kernel_stored(store: &ArtifactStore, kv: &KernelVariants) -> Report {
    let Some(key) = verify_report_key(kv) else {
        // Unencodable artifact: fall back to the live path entirely.
        return verify_kernel(kv);
    };
    if let Some(payload) = store.load(&key) {
        let mut v = RecView::new(&payload);
        if let Some(report) = get_report(&mut v) {
            if v.at_end() {
                seed_verify_memo(kv, report.clone());
                return report;
            }
        }
    }
    let report = verify_kernel(kv);
    let mut rec = Rec::new();
    put_report(&mut rec, &report);
    // Persisting is best-effort: a full disk costs the next process a
    // re-verify, never correctness.
    let _ = store.store(&key, rec.as_bytes());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_kernel, stitch_application, AppKernel};
    use stitch_isa::{ProgramBuilder, Reg};

    fn sample_kernel() -> stitch_isa::Program {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 9);
        let top = b.bound_label();
        b.mul(Reg::R4, Reg::R1, Reg::R1);
        b.add(Reg::R5, Reg::R4, Reg::R1);
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(stitch_isa::Cond::Ne, Reg::R1, Reg::R0, top);
        b.sw(Reg::R5, Reg::R10, 0);
        b.halt();
        b.build().expect("program")
    }

    fn sample_variants() -> KernelVariants {
        compile_kernel("artifact-test", &sample_kernel(), &PatchConfig::all(), None)
            .expect("compiles")
    }

    #[test]
    fn kernel_artifact_round_trips() {
        let kv = sample_variants();
        let report = verify_kernel(&kv);
        let bytes = encode_kernel_artifact(&kv, &report).expect("encode");
        let (kv2, report2) = decode_kernel_artifact(&bytes).expect("decode");
        assert_eq!(variants_fingerprint(&kv), variants_fingerprint(&kv2));
        assert_eq!(report, report2);
    }

    #[test]
    fn kernel_artifact_decode_survives_truncation() {
        let kv = sample_variants();
        let report = verify_kernel(&kv);
        let bytes = encode_kernel_artifact(&kv, &report).expect("encode");
        for cut in 0..bytes.len() {
            let _ = decode_kernel_artifact(&bytes[..cut]);
        }
    }

    #[test]
    fn stitch_plan_round_trips() {
        let kv = sample_variants();
        let kernels = [
            AppKernel {
                name: "a".into(),
                home: TileId(0),
                variants: kv.clone(),
            },
            AppKernel {
                name: "b".into(),
                home: TileId(1),
                variants: kv,
            },
        ];
        let arch = stitch_sim::Arch::Stitch;
        let plan = stitch_application(&kernels, &stitch_sim::ChipConfig::for_arch(arch), arch);
        let mut rec = Rec::new();
        put_stitch_plan(&mut rec, &plan);
        let bytes = rec.into_bytes();
        let mut v = RecView::new(&bytes);
        let plan2 = get_stitch_plan(&mut v).expect("decode");
        assert!(v.at_end());
        assert_eq!(format!("{plan:?}"), format!("{plan2:?}"));
    }

    /// Mutation-kill: any change to a compile input — program bytes,
    /// configuration list, output check, name — must change the content
    /// key, so a stale artifact can never satisfy a mutated input.
    #[test]
    fn mutated_inputs_miss_the_kernel_key() {
        let p = sample_kernel();
        let configs = PatchConfig::all();
        let base = kernel_input_key("k", &p, &configs, None).expect("key");

        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 10); // one immediate changed
        let top = b.bound_label();
        b.mul(Reg::R4, Reg::R1, Reg::R1);
        b.add(Reg::R5, Reg::R4, Reg::R1);
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(stitch_isa::Cond::Ne, Reg::R1, Reg::R0, top);
        b.sw(Reg::R5, Reg::R10, 0);
        b.halt();
        let mutated = b.build().expect("program");

        assert_ne!(
            base,
            kernel_input_key("k", &mutated, &configs, None).expect("key"),
            "mutated program must miss"
        );
        assert_ne!(
            base,
            kernel_input_key("k2", &p, &configs, None).expect("key"),
            "renamed kernel must miss"
        );
        assert_ne!(
            base,
            kernel_input_key("k", &p, &configs[..1], None).expect("key"),
            "different config list must miss"
        );
        assert_ne!(
            base,
            kernel_input_key("k", &p, &configs, Some((0x400, 4))).expect("key"),
            "different output check must miss"
        );
    }

    #[test]
    fn stored_verify_report_round_trips_and_seeds() {
        let dir =
            std::env::temp_dir().join(format!("stitch-verify-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).expect("open");
        let kv = sample_variants();
        let cold = verify_kernel_stored(&store, &kv);
        assert_eq!(cold, verify_kernel(&kv));
        let warm = verify_kernel_stored(&store, &kv);
        assert_eq!(cold, warm);
        assert!(store.hits() >= 1, "second call must hit the store");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
