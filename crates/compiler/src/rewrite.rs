//! ISE selection and program rewriting.
//!
//! Chosen candidates are replaced by two-word custom instructions. The
//! rewriter keeps the original instruction order and splices each custom
//! instruction in at the position of its *last* member operation; a
//! selection-time legality check rejects candidates for which that
//! placement would be unsound (an intervening instruction redefining one
//! of the custom instruction's inputs, reading one of its outputs, or
//! conflicting on memory order).

use crate::dfg::{BlockDfg, NodeOp, Src};
use crate::enumerate::Candidate;
use crate::mapper::{Mapping, OutPort};
use crate::CompilerError;
use std::collections::HashMap;
use stitch_isa::custom::{CiDescriptor, CiId, CiStage, CustomInstr};
use stitch_isa::instr::Instr;
use stitch_isa::program::Program;
use stitch_isa::reg::Reg;

/// A candidate with its chosen mapping.
#[derive(Debug, Clone)]
pub struct Chosen {
    /// The candidate subgraph.
    pub candidate: Candidate,
    /// Its verified mapping.
    pub mapping: Mapping,
}

/// Result of rewriting a whole program for one patch configuration.
#[derive(Debug, Clone)]
pub struct RewriteResult {
    /// The accelerated program (custom instructions + CI table entries).
    pub program: Program,
    /// Control words per CI id (1 entry = single patch, 2 = fused).
    pub ci_controls: HashMap<u16, Vec<stitch_patch::ControlWord>>,
    /// Static custom instructions inserted.
    pub custom_count: usize,
    /// Estimated dynamic cycles saved (saved-per-execution x block count).
    pub estimated_saving: u64,
    /// Per-custom-instruction equivalence obligations for the static
    /// verifier (one per inserted instruction).
    pub ise_checks: Vec<stitch_verify::IseCheck>,
}

/// Greedily selects non-overlapping candidates by saved cycles, skipping
/// any whose splice-at-last-member placement would be unsound.
#[must_use]
pub fn select_candidates(dfg: &BlockDfg, mut mapped: Vec<Chosen>) -> Vec<Chosen> {
    mapped.sort_by_key(|c| std::cmp::Reverse((c.candidate.saved_cycles, c.candidate.len())));
    let mut used = vec![false; dfg.len()];
    let mut chosen = Vec::new();
    'next: for c in mapped {
        if c.candidate.nodes.iter().any(|&n| used[n]) {
            continue;
        }
        if !placement_legal(dfg, &c.candidate) {
            continue 'next;
        }
        for &n in &c.candidate.nodes {
            used[n] = true;
        }
        chosen.push(c);
    }
    chosen
}

/// Checks that replacing the candidate by one instruction at the last
/// member's position preserves semantics.
fn placement_legal(dfg: &BlockDfg, cand: &Candidate) -> bool {
    let (Some(&first), Some(&last)) = (cand.nodes.first(), cand.nodes.last()) else {
        return false; // empty candidates are never legal
    };
    let member = |n: usize| cand.nodes.contains(&n);

    // External input registers read by the candidate.
    let ext_regs: Vec<Reg> = cand
        .ext_inputs
        .iter()
        .filter_map(|s| match s {
            Src::Ext(r) => Some(*r),
            Src::Node(_) => None,
        })
        .collect();
    // Output registers written by the candidate.
    let out_regs: Vec<Reg> = cand
        .outputs
        .iter()
        .filter_map(|&n| dfg.nodes[n].def)
        .collect();
    // All defs of members (even non-output ones vanish from the block).
    let member_defs: Vec<(usize, Reg)> = cand
        .nodes
        .iter()
        .filter_map(|&n| dfg.nodes[n].def.map(|d| (n, d)))
        .collect();

    let cand_has_mem = cand
        .nodes
        .iter()
        .any(|&n| matches!(dfg.nodes[n].op, NodeOp::Load | NodeOp::Store));
    let cand_has_store = cand.store_count(dfg) > 0;

    for n in first..=last {
        if member(n) {
            continue;
        }
        let node = &dfg.nodes[n];
        // A non-member redefining an ext input reg => the CI would read
        // the new value.
        if let Some(d) = node.def {
            if ext_regs.contains(&d) {
                return false;
            }
            // WAW with a member def whose final value matters.
            if out_regs.contains(&d) {
                return false;
            }
        }
        // A non-member consuming a member's value between first and last
        // would read it before the CI produces it.
        for &(m, _) in &member_defs {
            if dfg.consumers[m].contains(&n) {
                return false;
            }
        }
        // Memory ordering: a non-member memory access between members
        // conflicts when either side writes memory.
        if node.is_mem && (cand_has_store || (cand_has_mem && node.is_mem_write)) {
            return false;
        }
    }

    // Inputs sourced from a non-member node's def must stay intact from
    // that def until the splice position.
    for s in &cand.ext_inputs {
        if let Src::Node(p) = s {
            let Some(d) = dfg.nodes[*p].def else {
                return false;
            };
            for n in (p + 1)..=last {
                if !member(n) && n != *p && dfg.nodes[n].def == Some(d) {
                    return false;
                }
            }
        }
    }
    true
}

/// Output of [`accelerate_block`]: the rewritten instruction sequence,
/// the CI descriptors it introduced, and the per-id control words.
pub type AcceleratedBlock = (
    Vec<Instr>,
    Vec<CiDescriptor>,
    HashMap<u16, Vec<stitch_patch::ControlWord>>,
);

/// Rewrites one block: returns the new instruction sequence (with block-
/// relative branch targets untouched — the caller fixes program-level
/// targets) plus the CI descriptors created.
///
/// # Errors
///
/// [`CompilerError::Rewrite`] if an output register cannot be assigned.
pub fn accelerate_block(
    program: &Program,
    dfg: &BlockDfg,
    chosen: &[Chosen],
    ci_base: u16,
    name_prefix: &str,
) -> Result<AcceleratedBlock, CompilerError> {
    let mut descriptors = Vec::new();
    let mut controls = HashMap::new();
    // For every node: keep (None = dropped member), or replace by CI at
    // the last member's slot.
    let mut replacement: HashMap<usize, usize> = HashMap::new(); // last node -> chosen idx
    let mut dropped: Vec<bool> = vec![false; dfg.len()];
    for (ci_idx, c) in chosen.iter().enumerate() {
        for &n in &c.candidate.nodes {
            dropped[n] = true;
        }
        let last = c
            .candidate
            .nodes
            .last()
            .ok_or_else(|| CompilerError::invariant("chosen candidate has no member nodes"))?;
        replacement.insert(*last, ci_idx);
    }

    let mut out = Vec::new();
    for (nid, node) in dfg.nodes.iter().enumerate() {
        if let Some(&ci_idx) = replacement.get(&nid) {
            let c = &chosen[ci_idx];
            let id = CiId(ci_base + ci_idx as u16);
            // Inputs: registers holding each slot's value.
            let mut ins: Vec<Reg> = Vec::new();
            let mut slot_count = 0;
            for slot in &c.mapping.input_slots {
                if slot.is_some() {
                    slot_count += 1;
                }
            }
            // Trailing unused slots can be omitted; intermediate unused
            // slots are filled with r0 (they read zero).
            let last_used = c
                .mapping
                .input_slots
                .iter()
                .rposition(Option::is_some)
                .map_or(0, |i| i + 1);
            for slot in &c.mapping.input_slots[..last_used] {
                let reg = match slot {
                    Some(Src::Ext(r)) => *r,
                    Some(Src::Node(n)) => dfg.nodes[*n].def.ok_or_else(|| {
                        CompilerError::Rewrite("input node has no destination".into())
                    })?,
                    None => Reg::R0,
                };
                ins.push(reg);
            }
            let _ = slot_count;
            // Outputs in port order (out0 first).
            let mut outs: Vec<Reg> = Vec::new();
            let mut port_regs: [Option<Reg>; 2] = [None, None];
            for (node_id, port) in &c.mapping.outputs {
                let reg = dfg.nodes[*node_id].def.ok_or_else(|| {
                    CompilerError::Rewrite("output node has no destination".into())
                })?;
                match port {
                    OutPort::Out0 => port_regs[0] = Some(reg),
                    OutPort::Out1 => port_regs[1] = Some(reg),
                }
            }
            match (port_regs[0], port_regs[1]) {
                (Some(a), Some(b)) => {
                    outs.push(a);
                    outs.push(b);
                }
                (Some(a), None) => outs.push(a),
                (None, Some(b)) => {
                    // out1-only: out0 operand must still exist (write to
                    // a scratch that is immediately dead is unsound; use
                    // r0 which discards the value).
                    outs.push(Reg::R0);
                    outs.push(b);
                }
                (None, None) => {}
            }
            let mut stages: Vec<CiStage> = Vec::with_capacity(c.mapping.controls.len());
            for cw in &c.mapping.controls {
                let bits = cw.pack().map_err(|e| {
                    CompilerError::Verify({
                        let mut r = stitch_verify::Report::new();
                        r.push(stitch_verify::Diagnostic::error(
                            "ISE-PACK",
                            stitch_verify::Span::Ci(id.0),
                            format!("control word does not pack: {e}"),
                        ));
                        r
                    })
                })?;
                stages.push(CiStage::new(cw.class(), bits));
            }
            let mut desc = match stages.as_slice() {
                [s] => CiDescriptor::single(id, format!("{name_prefix}_ci{}", id.0), *s),
                [s1, s2] => CiDescriptor::fused(id, format!("{name_prefix}_ci{}", id.0), *s1, *s2),
                _ => return Err(CompilerError::Rewrite("bad stage count".into())),
            };
            desc.covers = c.candidate.len() as u32;
            descriptors.push(desc);
            controls.insert(id.0, c.mapping.controls.clone());
            let custom = CustomInstr::new(id, &ins, &outs)
                .map_err(|e| CompilerError::Rewrite(e.to_string()))?;
            out.push(Instr::Custom(custom));
        } else if !dropped[nid] {
            out.push(program.instrs[node.instr_index].clone());
        }
    }
    Ok((out, descriptors, controls))
}

/// Rewrites a whole program: accelerates the given blocks and relinks
/// branch targets.
///
/// `plans` maps block id to its chosen candidates.
///
/// # Errors
///
/// Propagates rewrite failures.
pub fn rewrite_program(
    program: &Program,
    cfg: &crate::cfg::Cfg,
    dfgs: &HashMap<usize, BlockDfg>,
    plans: &HashMap<usize, Vec<Chosen>>,
    name_prefix: &str,
) -> Result<RewriteResult, CompilerError> {
    let mut new_instrs: Vec<Instr> = Vec::new();
    let mut new_index_of: HashMap<u32, u32> = HashMap::new(); // old -> new
    let mut ci_table = program.ci_table.clone();
    let mut all_controls: HashMap<u16, Vec<stitch_patch::ControlWord>> = HashMap::new();
    let mut custom_count = 0usize;
    let mut ise_checks: Vec<stitch_verify::IseCheck> = Vec::new();

    for block in &cfg.blocks {
        new_index_of.insert(block.start as u32, new_instrs.len() as u32);
        match plans.get(&block.id) {
            Some(chosen) if !chosen.is_empty() => {
                let dfg = dfgs.get(&block.id).ok_or_else(|| {
                    CompilerError::Rewrite(format!("no DFG for block {}", block.id))
                })?;
                let ci_base = ci_table.len() as u16;
                let (instrs, descs, controls) =
                    accelerate_block(program, dfg, chosen, ci_base, name_prefix)?;
                // CI ids are assigned positionally (ci_base + index into
                // `chosen`); record each instruction's equivalence
                // obligation for the static verifier.
                for (idx, c) in chosen.iter().enumerate() {
                    ise_checks.push(crate::verify::ise_check(
                        name_prefix,
                        ci_base + idx as u16,
                        dfg,
                        c,
                    )?);
                }
                custom_count += descs.len();
                for d in descs {
                    ci_table.push(d);
                }
                all_controls.extend(controls);
                // Record intra-block leaders too (every old index that is
                // a branch target is a block leader, so block starts are
                // enough).
                new_instrs.extend(instrs);
            }
            _ => {
                for i in block.range() {
                    // Map every original index (safe for any target).
                    new_index_of.insert(i as u32, new_instrs.len() as u32);
                    new_instrs.push(program.instrs[i].clone());
                }
            }
        }
    }
    new_index_of.insert(program.instrs.len() as u32, new_instrs.len() as u32);

    // Fix targets.
    for instr in &mut new_instrs {
        match instr {
            Instr::Branch { target, .. } | Instr::Jal { target, .. } => {
                let new = new_index_of.get(target).copied().ok_or_else(|| {
                    CompilerError::Rewrite(format!("branch target {target} is not a block leader"))
                })?;
                *target = new;
            }
            _ => {}
        }
    }

    let estimated_saving = plans
        .values()
        .flatten()
        .map(|c| u64::from(c.candidate.saved_cycles))
        .sum();

    Ok(RewriteResult {
        program: Program {
            instrs: new_instrs,
            data: program.data.clone(),
            ci_table,
            symbols: program.symbols.clone(),
        },
        ci_controls: all_controls,
        custom_count,
        estimated_saving,
        ise_checks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::enumerate::{enumerate_candidates, EnumerateLimits};
    use crate::mapper::{map_candidate, PatchConfig};
    use stitch_isa::{ProgramBuilder, Reg};
    use stitch_patch::PatchClass;

    fn full_flow(
        build: impl FnOnce(&mut ProgramBuilder),
        config: PatchConfig,
    ) -> (Program, RewriteResult) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let mut dfgs = HashMap::new();
        let mut plans = HashMap::new();
        for block in &cfg.blocks {
            let dfg = BlockDfg::build(&p, &cfg, block);
            let cands = enumerate_candidates(&dfg, EnumerateLimits::default());
            let mapped: Vec<Chosen> = cands
                .into_iter()
                .filter_map(|c| {
                    map_candidate(&dfg, &c, config).map(|m| Chosen {
                        candidate: c,
                        mapping: m,
                    })
                })
                .collect();
            let chosen = select_candidates(&dfg, mapped);
            plans.insert(block.id, chosen);
            dfgs.insert(block.id, dfg);
        }
        let r = rewrite_program(&p, &cfg, &dfgs, &plans, "test").unwrap();
        (p, r)
    }

    #[test]
    fn rewrites_mul_add_chain() {
        let (original, result) = full_flow(
            |b| {
                b.mul(Reg::R4, Reg::R1, Reg::R2);
                b.add(Reg::R5, Reg::R4, Reg::R3);
                b.sw(Reg::R5, Reg::R10, 0);
            },
            PatchConfig::Single(PatchClass::AtMa),
        );
        assert_eq!(result.custom_count, 1);
        assert!(result.program.instrs.len() < original.instrs.len());
        assert!(result
            .program
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Custom(_))));
    }

    #[test]
    fn branch_targets_survive_rewrite() {
        let (_, result) = full_flow(
            |b| {
                b.li(Reg::R9, 10);
                let top = b.bound_label();
                b.mul(Reg::R4, Reg::R1, Reg::R2);
                b.add(Reg::R5, Reg::R4, Reg::R3);
                b.add(Reg::R6, Reg::R5, Reg::R6);
                b.addi(Reg::R9, Reg::R9, -1);
                b.branch(stitch_isa::Cond::Ne, Reg::R9, Reg::R0, top);
            },
            PatchConfig::Single(PatchClass::AtMa),
        );
        // The loop branch must target the loop header (after li).
        let branch_target = result
            .program
            .instrs
            .iter()
            .find_map(|i| match i {
                Instr::Branch { target, .. } => Some(*target),
                _ => None,
            })
            .expect("branch survives");
        // The loop header is right after the li (index 1).
        assert_eq!(branch_target, 1);
        assert!(result.custom_count >= 1);
    }

    #[test]
    fn accelerated_program_is_semantically_equal() {
        // Execute both versions on the functional profiler and compare
        // the architectural result.
        use crate::profile::profile_program;
        let build = |b: &mut ProgramBuilder| {
            b.li(Reg::R1, 5);
            b.li(Reg::R2, 7);
            b.li(Reg::R3, 11);
            b.mul(Reg::R4, Reg::R1, Reg::R2);
            b.add(Reg::R5, Reg::R4, Reg::R3);
            b.li(Reg::R10, 0x2000);
            b.sw(Reg::R5, Reg::R10, 0);
        };
        let (original, result) = full_flow(build, PatchConfig::Single(PatchClass::AtMa));
        // Both must terminate; semantic equivalence is covered end-to-end
        // by the driver tests (needs patch execution, which the profiler
        // stubs out). Here: same instruction count reduction sanity.
        profile_program(&original, 10_000).unwrap();
        assert!(result.custom_count >= 1);
        assert!(result.estimated_saving >= 3);
    }

    #[test]
    fn unsound_placement_rejected() {
        // ext input r1 is redefined between the two members -> candidate
        // must not be selected.
        let mut b = ProgramBuilder::new();
        b.mul(Reg::R4, Reg::R1, Reg::R2);
        b.addi(Reg::R1, Reg::R1, 1); // clobbers r1 (Other node)
        b.add(Reg::R5, Reg::R4, Reg::R1); // reads the NEW r1...
        b.sw(Reg::R5, Reg::R10, 0);
        b.sw(Reg::R1, Reg::R10, 4);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dfg = BlockDfg::build(&p, &cfg, &cfg.blocks[0]);
        // The candidate {mul, add}: add's second operand is Node(1)'s
        // def... wait, it reads the redefined r1 which IS an internal
        // edge from the Other node, making {0,2} non-convex or external-
        // sourced from a node. Either way: selection must not produce an
        // unsound rewrite; check legality directly for the pair if it
        // was enumerated.
        let cands = enumerate_candidates(&dfg, EnumerateLimits::default());
        for c in &cands {
            if c.nodes == vec![0, 2] {
                // ext input would be Node(1) (the new r1) — placement at
                // node 2 is fine then; but if treated as Ext(r1) it would
                // be illegal. Verify the source is the node, not the reg.
                assert!(c.ext_inputs.contains(&Src::Node(1)));
            }
        }
    }
}
