//! Mapping ISE candidates onto patches and synthesizing control words.
//!
//! The paper uses a greedy graph-based mapper (§IV, refs [11, 45]). Here
//! the candidate subgraphs are small (a fused pair has at most eight
//! functional units), so the mapper performs an exact backtracking search
//! over
//!
//! 1. node → functional-unit assignments (class-compatible, injective),
//! 2. external value → input-slot assignments (store data is pinned to
//!    `in2`, shift amounts to `in2`/`in3`, fused ride-alongs to
//!    `in2`/`in3`),
//! 3. per-class control-word synthesis honoring every operand-mux option
//!    of the 19-bit encodings (including pass-through tricks: `or(x, x)`
//!    on an idle ALU, shifter bypass, and `add(x, unused-slot)` — unused
//!    operand slots read the zero register),
//!
//! and then **verifies each synthesized mapping by differential
//! evaluation**: the control words are executed on random inputs and
//! random scratchpad contents and compared against a direct
//! interpretation of the candidate DFG. Only verified mappings are
//! emitted, so a synthesis bug can never produce a wrong custom
//! instruction.

use crate::dfg::{BlockDfg, NodeOp, Src};
use crate::enumerate::Candidate;
use std::collections::HashMap;
use stitch_isa::op::AluOp;
use stitch_patch::control::{Sel4, Stage1};
use stitch_patch::{
    eval_fused, eval_single, AtAsControl, AtMaControl, AtSaControl, ControlWord, LocusControl,
    LocusOp, MapSpm, PatchClass, SpmPort, T1Mode,
};

/// A patch configuration a kernel can be compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatchConfig {
    /// One patch of the given class (used locally).
    Single(PatchClass),
    /// A fused pair: local class, then remote class.
    Pair(PatchClass, PatchClass),
    /// The LOCUS SFU (no memory ops, never fused).
    Locus,
}

impl PatchConfig {
    /// All configurations explored by the driver: three singles, all
    /// ordered pairs, and LOCUS.
    #[must_use]
    pub fn all() -> Vec<PatchConfig> {
        let mut v: Vec<PatchConfig> = PatchClass::STITCH
            .iter()
            .map(|&c| PatchConfig::Single(c))
            .collect();
        for &a in &PatchClass::STITCH {
            for &b in &PatchClass::STITCH {
                v.push(PatchConfig::Pair(a, b));
            }
        }
        v.push(PatchConfig::Locus);
        v
    }

    /// Display name (`{AT-MA}`, `{AT-MA,AT-AS}`, `LOCUS-SFU`).
    #[must_use]
    pub fn name(self) -> String {
        match self {
            PatchConfig::Single(c) => c.name().to_string(),
            PatchConfig::Pair(a, b) => format!(
                "{{{},{}}}",
                a.name().trim_matches(['{', '}']),
                b.name().trim_matches(['{', '}'])
            ),
            PatchConfig::Locus => "LOCUS-SFU".to_string(),
        }
    }
}

impl std::fmt::Display for PatchConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Where a candidate output appears.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutPort {
    /// Stage-2 result port.
    Out0,
    /// LMAU result port.
    Out1,
}

/// A successful mapping of a candidate onto a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    /// The configuration mapped onto.
    pub config: PatchConfig,
    /// Control words (one, or two for pairs).
    pub controls: Vec<ControlWord>,
    /// External value driven into each input slot (`None` = unused).
    pub input_slots: [Option<Src>; 4],
    /// Output wiring: `(block-level node id, port)` per candidate output.
    pub outputs: Vec<(usize, OutPort)>,
}

// ---------------------------------------------------------------------
// Candidate view: nodes with candidate-relative sources.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CSrc {
    /// Index within the (sub-)view's node list.
    Internal(usize),
    /// External value (block-level source).
    External(Src),
    /// Marker: the slot carries a live value on the shared fused-pair
    /// operand bus that this patch does not read — it is not zero and not
    /// assignable.
    Busy,
}

#[derive(Debug, Clone)]
struct CNode {
    /// Block-level node id.
    id: usize,
    op: NodeOp,
    alu: Option<AluOp>,
    srcs: Vec<CSrc>,
}

struct View {
    nodes: Vec<CNode>,
    /// Candidate outputs as indices into `nodes`.
    outputs: Vec<usize>,
    ext: Vec<Src>,
}

fn build_view(dfg: &BlockDfg, cand: &Candidate) -> View {
    let pos: HashMap<usize, usize> = cand
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();
    let nodes = cand
        .nodes
        .iter()
        .map(|&n| {
            let node = &dfg.nodes[n];
            let srcs = node
                .srcs
                .iter()
                .map(|s| match s {
                    Src::Node(p) => match pos.get(p) {
                        Some(&i) => CSrc::Internal(i),
                        None => CSrc::External(*s),
                    },
                    Src::Ext(_) => CSrc::External(*s),
                })
                .collect();
            let alu = match node.op {
                NodeOp::Alu(op) => Some(op),
                _ => None,
            };
            CNode {
                id: n,
                op: node.op,
                alu,
                srcs,
            }
        })
        .collect();
    View {
        nodes,
        outputs: cand.outputs.iter().map(|o| pos[o]).collect(),
        ext: cand.ext_inputs.clone(),
    }
}

// ---------------------------------------------------------------------
// Per-patch synthesis
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Unit {
    A1,
    T1,
    M,
    A2,
    S,
}

fn units_for(class: PatchClass) -> &'static [Unit] {
    match class {
        PatchClass::AtMa => &[Unit::A1, Unit::T1, Unit::M, Unit::A2],
        PatchClass::AtAs | PatchClass::AtSa => &[Unit::A1, Unit::T1, Unit::A2, Unit::S],
        PatchClass::LocusSfu => &[],
    }
}

fn unit_accepts(u: Unit, op: NodeOp) -> bool {
    match (u, op) {
        (Unit::A1 | Unit::A2, NodeOp::Alu(op)) => op.class() == stitch_isa::OpClass::A,
        (Unit::S, NodeOp::Alu(op)) => op.class() == stitch_isa::OpClass::S,
        (Unit::M, NodeOp::Alu(op)) => op == AluOp::Mul,
        (Unit::T1, NodeOp::Load | NodeOp::Store) => true,
        _ => false,
    }
}

/// What a wire inside the patch carries during synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wire {
    /// Value of a view node.
    Node(usize),
    /// An external input slot's value.
    Slot(u8),
    /// Constant zero (unused slot / idle unit).
    Zero,
}

struct PatchSynth {
    control: ControlWord,
    out0: Wire,
    out1: Wire,
}

type UnitAssign = HashMap<Unit, usize>;

/// Maps external values to input slots for one patch.
#[derive(Debug, Clone)]
struct SlotMap {
    ext_of_slot: [Option<CSrc>; 4],
}

impl SlotMap {
    fn slot_of(&self, e: CSrc) -> Option<u8> {
        (0..4u8).find(|&i| self.ext_of_slot[i as usize] == Some(e))
    }

    fn free_slot_from(&self, start: u8) -> Option<u8> {
        (start..4).find(|&i| self.ext_of_slot[i as usize].is_none())
    }
}

fn as_in_sel(s: CSrc, slots: &SlotMap) -> Option<u8> {
    match s {
        CSrc::External(_) => slots.slot_of(s),
        CSrc::Internal(_) | CSrc::Busy => None,
    }
}

fn commutative(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Nor | AluOp::Mul
    )
}

/// Synthesizes one patch's control word for a unit assignment + slot map.
///
/// `want_out1_pass`: a value that must be exposed on `out1` via an idle
/// `A1` + `T1` pass-through (used when a fused second patch must forward
/// a first-patch value back to the core). `a1_pass_choice`: when `A1` and
/// `T1` are otherwise idle, route this external through `A1` (`or(x,x)`)
/// so stage 2 can reach operands sitting on slots 0/1.
#[allow(clippy::too_many_lines)]
fn synth_patch(
    class: PatchClass,
    view: &View,
    assign: &UnitAssign,
    slots: &SlotMap,
    want_out1_pass: Option<CSrc>,
    a1_pass_choice: Option<CSrc>,
) -> Option<PatchSynth> {
    let a1_node = assign.get(&Unit::A1).copied();
    let t1_node = assign.get(&Unit::T1).copied();
    let m_node = assign.get(&Unit::M).copied();
    let a2_node = assign.get(&Unit::A2).copied();
    let s_node = assign.get(&Unit::S).copied();

    // ---- stage 1 --------------------------------------------------------
    let mut a1_pass: Option<CSrc> = None;
    let mut s1 = if let Some(n) = a1_node {
        let node = &view.nodes[n];
        let op = node.alu?;
        let (x, y) = (node.srcs[0], node.srcs[1]);
        let direct = as_in_sel(x, slots).zip(as_in_sel(y, slots));
        let swapped = if commutative(op) {
            as_in_sel(y, slots).zip(as_in_sel(x, slots))
        } else {
            None
        };
        let (src1, src2) = direct.or(swapped)?;
        Stage1 {
            a1_op: op,
            a1_src1: src1,
            a1_src2: src2,
            t1: T1Mode::Bypass,
        }
    } else if let Some(t) = t1_node {
        // A1 passes the T node's address operand through.
        let addr = view.nodes[t].srcs[0];
        let slot = as_in_sel(addr, slots)?;
        a1_pass = Some(addr);
        Stage1 {
            a1_op: AluOp::Or,
            a1_src1: slot,
            a1_src2: slot,
            t1: T1Mode::Bypass,
        }
    } else if let Some(p) = want_out1_pass {
        let slot = as_in_sel(p, slots)?;
        a1_pass = Some(p);
        Stage1 {
            a1_op: AluOp::Or,
            a1_src1: slot,
            a1_src2: slot,
            t1: T1Mode::Bypass,
        }
    } else if let Some(p) = a1_pass_choice {
        let slot = as_in_sel(p, slots)?;
        a1_pass = Some(p);
        Stage1 {
            a1_op: AluOp::Or,
            a1_src1: slot,
            a1_src2: slot,
            t1: T1Mode::Bypass,
        }
    } else {
        Stage1 {
            a1_op: AluOp::Or,
            a1_src1: 0,
            a1_src2: 0,
            t1: T1Mode::Bypass,
        }
    };

    // What the A1 wire carries.
    let a1_wire = match (a1_node, a1_pass) {
        (Some(n), _) => Wire::Node(n),
        (None, Some(pass @ CSrc::External(_))) => Wire::Slot(slots.slot_of(pass)?),
        (None, Some(CSrc::Internal(_))) => return None,
        _ => slot_wire(slots, 0), // idle: passes in0 (zero if unused)
    };

    // T1 configuration; also determines the out1 wire.
    let mut out1_wire = a1_wire;
    if let Some(t) = t1_node {
        let node = &view.nodes[t];
        let addr_ok = match node.srcs[0] {
            CSrc::Internal(i) => a1_node == Some(i),
            e @ CSrc::External(_) => a1_node.is_none() && a1_pass == Some(e),
            CSrc::Busy => false,
        };
        if !addr_ok {
            return None;
        }
        match node.op {
            NodeOp::Load => {
                s1.t1 = T1Mode::Load;
                out1_wire = Wire::Node(t);
            }
            NodeOp::Store => {
                let data = node.srcs[1];
                if slots.slot_of(data) != Some(2) {
                    return None;
                }
                s1.t1 = T1Mode::Store;
                // out1 carries the address — not a usable value.
                out1_wire = Wire::Zero;
            }
            NodeOp::Alu(_) | NodeOp::Other => return None,
        }
        if want_out1_pass.is_some() {
            return None; // T1 busy, cannot also pass a foreign value
        }
    } else if want_out1_pass.is_some() && a1_node.is_some() {
        return None; // A1 busy computing
    }

    // Stage-2 mux resolution.
    let sel4_of = |s: CSrc| -> Option<Sel4> {
        match s {
            CSrc::Internal(i) => {
                if a1_node == Some(i) {
                    Some(Sel4::A1)
                } else if t1_node == Some(i) && view.nodes[i].op == NodeOp::Load {
                    Some(Sel4::T1)
                } else {
                    None
                }
            }
            CSrc::External(_) => match slots.slot_of(s) {
                Some(2) => Some(Sel4::In2),
                Some(3) => Some(Sel4::In3),
                Some(_) if a1_pass == Some(s) => Some(Sel4::A1),
                _ => None,
            },
            CSrc::Busy => None,
        }
    };
    let wire_of = |sel: Sel4| -> Wire {
        match sel {
            Sel4::A1 => a1_wire,
            Sel4::T1 => match t1_node {
                Some(t) if view.nodes[t].op == NodeOp::Load => Wire::Node(t),
                _ => a1_wire, // bypass
            },
            Sel4::In2 => slot_wire(slots, 2),
            Sel4::In3 => slot_wire(slots, 3),
        }
    };

    match class {
        PatchClass::AtMa => {
            let (m_src1, m_src2) = if let Some(m) = m_node {
                let node = &view.nodes[m];
                let direct = sel4_of(node.srcs[0]).zip(sel4_of(node.srcs[1]));
                direct.or_else(|| sel4_of(node.srcs[1]).zip(sel4_of(node.srcs[0])))?
            } else {
                (Sel4::A1, Sel4::A1)
            };
            let (a2_takes_a1, a2_op, a2_src2, out0) = if let Some(a2) = a2_node {
                let node = &view.nodes[a2];
                let op = node.alu?;
                let try_order = |x: CSrc, y: CSrc| -> Option<(bool, Sel4)> {
                    let takes_a1 = match x {
                        CSrc::Internal(i) if m_node == Some(i) => false,
                        CSrc::Internal(i) if a1_node == Some(i) => true,
                        e @ CSrc::External(_) if a1_node.is_none() && a1_pass == Some(e) => true,
                        _ => return None,
                    };
                    Some((takes_a1, sel4_of(y)?))
                };
                let (takes_a1, s2) = try_order(node.srcs[0], node.srcs[1]).or_else(|| {
                    commutative(op)
                        .then(|| try_order(node.srcs[1], node.srcs[0]))
                        .flatten()
                })?;
                (takes_a1, op, s2, Wire::Node(a2))
            } else if let Some(m) = m_node {
                // Pass the product through: add(M, zero-slot).
                let zero = slots.free_slot_from(2)?;
                let z = if zero == 2 { Sel4::In2 } else { Sel4::In3 };
                (false, AluOp::Add, z, Wire::Node(m))
            } else {
                (true, AluOp::Or, Sel4::A1, a1_wire)
            };
            Some(PatchSynth {
                control: ControlWord::AtMa(AtMaControl {
                    s1,
                    m_src1,
                    m_src2,
                    a2_takes_a1,
                    a2_op,
                    a2_src2,
                }),
                out0,
                out1: out1_wire,
            })
        }
        PatchClass::AtAs => {
            let (a2_op, a2_src1, a2_src2, a2_wire) = if let Some(a2) = a2_node {
                let node = &view.nodes[a2];
                let op = node.alu?;
                let direct = sel4_of(node.srcs[0]).zip(sel4_of(node.srcs[1]));
                let swapped = if commutative(op) {
                    sel4_of(node.srcs[1]).zip(sel4_of(node.srcs[0]))
                } else {
                    None
                };
                let (a, b) = direct.or(swapped)?;
                (op, a, b, Wire::Node(a2))
            } else if let Some(sn) = s_node {
                // A2 passes the shifter's data operand: or(x, x).
                let data = view.nodes[sn].srcs[0];
                let sel = sel4_of(data)?;
                (AluOp::Or, sel, sel, wire_of(sel))
            } else {
                (AluOp::Or, Sel4::A1, Sel4::A1, a1_wire)
            };
            let (s_op, s_amt_in3, out0) = if let Some(sn) = s_node {
                let node = &view.nodes[sn];
                let op = node.alu?;
                let data_ok = match node.srcs[0] {
                    CSrc::Internal(i) => {
                        a2_node == Some(i) || (a2_node.is_none() && a2_wire == Wire::Node(i))
                    }
                    e @ CSrc::External(_) => {
                        a2_node.is_none() && sel4_of(e).is_some_and(|s| wire_of(s) == a2_wire)
                    }
                    CSrc::Busy => false,
                };
                if !data_ok {
                    return None;
                }
                let amt_in3 = match as_in_sel(node.srcs[1], slots)? {
                    2 => false,
                    3 => true,
                    _ => return None,
                };
                (Some(op), amt_in3, Wire::Node(sn))
            } else {
                (None, false, a2_wire)
            };
            Some(PatchSynth {
                control: ControlWord::AtAs(AtAsControl {
                    s1,
                    a2_op,
                    a2_src1,
                    a2_src2,
                    s_op,
                    s_amt_in3,
                }),
                out0,
                out1: out1_wire,
            })
        }
        PatchClass::AtSa => {
            let (s_in, s_op, s_amt_in3, s_wire) = if let Some(sn) = s_node {
                let node = &view.nodes[sn];
                let op = node.alu?;
                let data = sel4_of(node.srcs[0])?;
                let amt_in3 = match as_in_sel(node.srcs[1], slots)? {
                    2 => false,
                    3 => true,
                    _ => return None,
                };
                (data, Some(op), amt_in3, Wire::Node(sn))
            } else if let Some(a2) = a2_node {
                // Shifter bypasses one of A2's operands.
                let node = &view.nodes[a2];
                let op = node.alu?;
                if let Some(sel) = sel4_of(node.srcs[0]) {
                    (sel, None, false, wire_of(sel))
                } else if commutative(op) {
                    let sel = sel4_of(node.srcs[1])?;
                    (sel, None, false, wire_of(sel))
                } else {
                    return None;
                }
            } else {
                (Sel4::A1, None, false, a1_wire)
            };
            let (a2_op, a2_src2, out0) = if let Some(a2) = a2_node {
                let node = &view.nodes[a2];
                let op = node.alu?;
                let order = |x: CSrc, y: CSrc| -> Option<Sel4> {
                    let x_is_shift = match x {
                        CSrc::Internal(i) => {
                            s_node == Some(i) || (s_node.is_none() && s_wire == Wire::Node(i))
                        }
                        e @ CSrc::External(_) => {
                            s_node.is_none() && sel4_of(e).is_some_and(|s| wire_of(s) == s_wire)
                        }
                        CSrc::Busy => false,
                    };
                    if x_is_shift {
                        sel4_of(y)
                    } else {
                        None
                    }
                };
                let src2 = order(node.srcs[0], node.srcs[1]).or_else(|| {
                    commutative(op)
                        .then(|| order(node.srcs[1], node.srcs[0]))
                        .flatten()
                })?;
                (op, src2, Wire::Node(a2))
            } else if let Some(sn) = s_node {
                let zero = slots.free_slot_from(2)?;
                let z = if zero == 2 { Sel4::In2 } else { Sel4::In3 };
                (AluOp::Add, z, Wire::Node(sn))
            } else {
                (AluOp::Or, Sel4::A1, a1_wire)
            };
            Some(PatchSynth {
                control: ControlWord::AtSa(AtSaControl {
                    s1,
                    s_in,
                    s_op,
                    s_amt_in3,
                    a2_op,
                    a2_src2,
                }),
                out0,
                out1: out1_wire,
            })
        }
        PatchClass::LocusSfu => None,
    }
}

fn slot_wire(slots: &SlotMap, slot: u8) -> Wire {
    if slots.ext_of_slot[slot as usize].is_some() {
        Wire::Slot(slot)
    } else {
        Wire::Zero
    }
}

// ---------------------------------------------------------------------
// Search drivers
// ---------------------------------------------------------------------

fn unit_assignments(class: PatchClass, nodes: &[CNode]) -> Vec<UnitAssign> {
    fn rec(
        units: &[Unit],
        nodes: &[CNode],
        idx: usize,
        current: &mut UnitAssign,
        out: &mut Vec<UnitAssign>,
    ) {
        if idx == nodes.len() {
            out.push(current.clone());
            return;
        }
        for &u in units {
            if current.contains_key(&u) || !unit_accepts(u, nodes[idx].op) {
                continue;
            }
            current.insert(u, idx);
            rec(units, nodes, idx + 1, current, out);
            current.remove(&u);
        }
    }
    let mut out = Vec::new();
    rec(units_for(class), nodes, 0, &mut HashMap::new(), &mut out);
    out
}

/// Slot-choice constraints: each external may be restricted to a set of
/// slots (store data -> `{2}`, ride-alongs -> `{2, 3}`, ...).
type Pinned = HashMap<CSrc, Vec<u8>>;

fn slot_maps(ext: &[CSrc], pinned: &Pinned) -> Vec<SlotMap> {
    fn rec(ext: &[CSrc], idx: usize, pinned: &Pinned, map: &mut SlotMap, out: &mut Vec<SlotMap>) {
        if idx == ext.len() {
            out.push(map.clone());
            return;
        }
        let e = ext[idx];
        let slots: Vec<u8> = match pinned.get(&e) {
            Some(s) => s.clone(),
            None => (0..4).collect(),
        };
        for s in slots {
            if map.ext_of_slot[s as usize].is_none() {
                map.ext_of_slot[s as usize] = Some(e);
                rec(ext, idx + 1, pinned, map, out);
                map.ext_of_slot[s as usize] = None;
            }
        }
    }
    let mut out = Vec::new();
    rec(
        ext,
        0,
        pinned,
        &mut SlotMap {
            ext_of_slot: [None; 4],
        },
        &mut out,
    );
    out
}

// ---------------------------------------------------------------------
// Differential verification
// ---------------------------------------------------------------------

struct XorShift(u32);

impl XorShift {
    fn next(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }
}

/// Interprets the candidate DFG directly (reference semantics).
fn reference_eval(view: &View, ext_vals: &HashMap<Src, u32>, spm: &mut MapSpm) -> Option<Vec<u32>> {
    let mut vals = vec![None::<u32>; view.nodes.len()];
    for (i, node) in view.nodes.iter().enumerate() {
        let get = |s: CSrc, vals: &[Option<u32>]| -> Option<u32> {
            match s {
                CSrc::Internal(j) => vals[j],
                CSrc::External(e) => ext_vals.get(&e).copied(),
                CSrc::Busy => None,
            }
        };
        let v = match node.op {
            NodeOp::Alu(op) => op.eval(get(node.srcs[0], &vals)?, get(node.srcs[1], &vals)?),
            NodeOp::Load => spm.load(get(node.srcs[0], &vals)?),
            NodeOp::Store => {
                let addr = get(node.srcs[0], &vals)?;
                let data = get(node.srcs[1], &vals)?;
                spm.store(addr, data);
                addr
            }
            NodeOp::Other => return None,
        };
        vals[i] = Some(v);
    }
    Some(vals.into_iter().map(|v| v.unwrap_or(0)).collect())
}

/// Verifies a mapping by evaluating its control words against the
/// reference on random inputs (16 trials).
fn verify(view: &View, mapping: &Mapping) -> bool {
    let mut rng = XorShift(0x5EED_1234);
    for _ in 0..16 {
        let mut ext_vals: HashMap<Src, u32> = HashMap::new();
        for e in &view.ext {
            // Keep values word-aligned and in-window so address-feeding
            // inputs stay inside the mock scratchpad.
            ext_vals.insert(*e, (rng.next() % 1024) & !3);
        }
        let mut ref_spm = MapSpm::new();
        let mut hw_spm = MapSpm::new();
        for i in 0..512 {
            let v = rng.next();
            ref_spm.set(i * 4, v);
            hw_spm.set(i * 4, v);
        }
        let Some(ref_vals) = reference_eval(view, &ext_vals, &mut ref_spm) else {
            return false;
        };

        let mut ins = [0u32; 4];
        for (i, slot) in mapping.input_slots.iter().enumerate() {
            if let Some(src) = slot {
                ins[i] = ext_vals.get(src).copied().unwrap_or(0);
            }
        }
        let out = match mapping.controls.as_slice() {
            [c] => eval_single(c, ins, &mut hw_spm),
            [c1, c2] => eval_fused(c1, c2, ins, &mut hw_spm),
            _ => return false,
        };

        for (node_id, port) in &mapping.outputs {
            let Some(pos) = view.nodes.iter().position(|n| n.id == *node_id) else {
                return false;
            };
            let got = match port {
                OutPort::Out0 => out.out0,
                OutPort::Out1 => out.out1,
            };
            if ref_vals[pos] != got {
                return false;
            }
        }
        for i in 0..1024 {
            if ref_spm.get(i * 4) != hw_spm.get(i * 4) {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// Memo key: a candidate view rendered as plain data, plus the target
/// configuration. Two candidates with equal keys describe the same
/// computation over the same block-level value names, so the (pure,
/// deterministic) mapping search returns the same result for both.
#[derive(Hash, PartialEq, Eq)]
struct ViewKey {
    nodes: Vec<(usize, NodeOp, Vec<CSrc>)>,
    outputs: Vec<usize>,
    ext: Vec<Src>,
    config: PatchConfig,
}

impl ViewKey {
    fn new(view: &View, config: PatchConfig) -> Self {
        ViewKey {
            nodes: view
                .nodes
                .iter()
                .map(|n| (n.id, n.op, n.srcs.clone()))
                .collect(),
            outputs: view.outputs.clone(),
            ext: view.ext.clone(),
            config,
        }
    }
}

/// Process-wide memo of search results, shared across sweep worker
/// threads. The pair search is exponential in candidate size, and sweeps
/// re-plan the same hot loops for every architecture and frame count;
/// identical views recur constantly. The search is a pure function of
/// the key, so concurrent misses at worst duplicate work — they cannot
/// disagree.
static MAP_CACHE: std::sync::OnceLock<std::sync::Mutex<HashMap<ViewKey, Option<Mapping>>>> =
    std::sync::OnceLock::new();

/// Tries to map `cand` onto `config`, returning a verified [`Mapping`].
#[must_use]
pub fn map_candidate(dfg: &BlockDfg, cand: &Candidate, config: PatchConfig) -> Option<Mapping> {
    let view = build_view(dfg, cand);
    let key = ViewKey::new(&view, config);
    let cache = MAP_CACHE.get_or_init(|| std::sync::Mutex::new(HashMap::new()));
    if let Some(hit) = cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&key)
    {
        return hit.clone();
    }
    let m = match config {
        PatchConfig::Single(class) => map_single_view(&view, class),
        PatchConfig::Pair(a, b) => map_pair_view(&view, a, b),
        PatchConfig::Locus => map_locus_view(&view),
    }
    .filter(|m| verify(&view, m));
    cache
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(key, m.clone());
    m
}

fn pin_store_data(view: &View, assign: &UnitAssign) -> Option<Pinned> {
    let mut pinned = Pinned::new();
    if let Some(&t) = assign.get(&Unit::T1) {
        if view.nodes[t].op == NodeOp::Store {
            match view.nodes[t].srcs[1] {
                e @ CSrc::External(_) => {
                    pinned.insert(e, vec![2]);
                }
                CSrc::Internal(_) | CSrc::Busy => return None,
            }
        }
    }
    Some(pinned)
}

/// Pass-through choices for an idle A1: none, or any external.
fn a1_choices(ext: &[CSrc]) -> Vec<Option<CSrc>> {
    let mut v = vec![None];
    v.extend(ext.iter().map(|e| Some(*e)));
    v
}

fn map_single_view(view: &View, class: PatchClass) -> Option<Mapping> {
    let ext: Vec<CSrc> = view.ext.iter().map(|e| CSrc::External(*e)).collect();
    for assign in unit_assignments(class, &view.nodes) {
        let Some(pinned) = pin_store_data(view, &assign) else {
            continue;
        };
        for slots in slot_maps(&ext, &pinned) {
            for a1p in a1_choices(&ext) {
                let Some(synth) = synth_patch(class, view, &assign, &slots, None, a1p) else {
                    continue;
                };
                if let Some(m) = finish_single(view, PatchConfig::Single(class), &synth, &slots) {
                    return Some(m);
                }
            }
        }
    }
    None
}

fn finish_single(
    view: &View,
    config: PatchConfig,
    synth: &PatchSynth,
    slots: &SlotMap,
) -> Option<Mapping> {
    let mut outputs = Vec::new();
    for &o in &view.outputs {
        let port = if synth.out0 == Wire::Node(o) {
            OutPort::Out0
        } else if synth.out1 == Wire::Node(o) {
            OutPort::Out1
        } else {
            return None;
        };
        if outputs.iter().any(|(_, p)| *p == port) {
            return None;
        }
        outputs.push((view.nodes[o].id, port));
    }
    Some(Mapping {
        config,
        controls: vec![synth.control.clone()],
        input_slots: export_slots(slots),
        outputs,
    })
}

fn export_slots(slots: &SlotMap) -> [Option<Src>; 4] {
    let mut out = [None; 4];
    for (i, e) in slots.ext_of_slot.iter().enumerate() {
        if let Some(CSrc::External(src)) = e {
            out[i] = Some(*src);
        }
    }
    out
}

fn map_pair_view(view: &View, c1: PatchClass, c2: PatchClass) -> Option<Mapping> {
    let n = view.nodes.len();
    if !(2..=8).contains(&n) {
        return None;
    }
    for split in 1u32..(1 << n) - 1 {
        let in_s2 = |i: usize| split & (1 << i) != 0;
        if view
            .nodes
            .iter()
            .enumerate()
            .any(|(i, nd)| in_s2(i) && matches!(nd.op, NodeOp::Load | NodeOp::Store))
        {
            continue; // no memory ops on the remote patch
        }
        // Edges must only go S1 -> S2.
        let bad_edge = view.nodes.iter().enumerate().any(|(i, nd)| {
            nd.srcs
                .iter()
                .any(|s| matches!(s, CSrc::Internal(j) if !in_s2(i) && in_s2(*j)))
        });
        if bad_edge {
            continue;
        }
        // S1 values needed downstream.
        let mut cross: Vec<usize> = Vec::new();
        for (i, nd) in view.nodes.iter().enumerate() {
            if in_s2(i) {
                for s in &nd.srcs {
                    if let CSrc::Internal(j) = s {
                        if !in_s2(*j) && !cross.contains(j) {
                            cross.push(*j);
                        }
                    }
                }
            }
        }
        let s1_escapes: Vec<usize> = view
            .outputs
            .iter()
            .copied()
            .filter(|&o| !in_s2(o))
            .collect();
        let mut carried = cross.clone();
        for &e in &s1_escapes {
            if !carried.contains(&e) {
                carried.push(e);
            }
        }
        if carried.len() > 2 || s1_escapes.len() > 1 {
            continue;
        }
        if let Some(m) = try_pair_split(view, c1, c2, split, &carried, &s1_escapes) {
            return Some(m);
        }
    }
    None
}

#[allow(clippy::too_many_lines)]
fn try_pair_split(
    view: &View,
    c1: PatchClass,
    c2: PatchClass,
    split: u32,
    carried: &[usize],
    s1_escapes: &[usize],
) -> Option<Mapping> {
    let in_s2 = |i: usize| split & (1 << i) != 0;
    let (mut s1_ids, mut s2_ids) = (Vec::new(), Vec::new());
    for i in 0..view.nodes.len() {
        if in_s2(i) {
            s2_ids.push(i);
        } else {
            s1_ids.push(i);
        }
    }

    // Sub-view builder: nodes outside `ids` become pseudo-externals keyed
    // by the block-level id (Src::Node(block_id)).
    let sub_view = |ids: &[usize], outputs: Vec<usize>| -> View {
        let remap = |src: CSrc| -> CSrc {
            match src {
                CSrc::Internal(j) => match ids.iter().position(|&x| x == j) {
                    Some(p) => CSrc::Internal(p),
                    None => CSrc::External(Src::Node(view.nodes[j].id)),
                },
                e => e,
            }
        };
        let nodes: Vec<CNode> = ids
            .iter()
            .map(|&i| {
                let n = &view.nodes[i];
                CNode {
                    id: n.id,
                    op: n.op,
                    alu: n.alu,
                    srcs: n.srcs.iter().map(|&s| remap(s)).collect(),
                }
            })
            .collect();
        let mut ext: Vec<Src> = Vec::new();
        for n in &nodes {
            for s in &n.srcs {
                if let CSrc::External(e) = s {
                    if !ext.contains(e) {
                        ext.push(*e);
                    }
                }
            }
        }
        View {
            nodes,
            outputs,
            ext,
        }
    };

    let carried_positions: Vec<usize> = carried
        .iter()
        .map(|&c| s1_ids.iter().position(|&x| x == c))
        .collect::<Option<_>>()?;
    let v1 = sub_view(&s1_ids, carried_positions);
    let s2_outputs: Vec<usize> = view
        .outputs
        .iter()
        .filter(|&&o| in_s2(o))
        .map(|&o| s2_ids.iter().position(|&x| x == o))
        .collect::<Option<_>>()?;
    let v2 = sub_view(&s2_ids, s2_outputs);

    // Ride-along externals: v2 externals that are not carried S1 values.
    // They travel on the shared 4-word bus, so they must sit on slots 2/3
    // of the issuing core's operands — and the *first* patch's slot
    // assignment must place them there (whether or not it reads them).
    let carried_ids: Vec<usize> = carried.iter().map(|&c| view.nodes[c].id).collect();
    let ride: Vec<CSrc> = v2
        .ext
        .iter()
        .filter(|e| !matches!(e, Src::Node(id) if carried_ids.contains(id)))
        .map(|e| CSrc::External(*e))
        .collect();
    if ride.len() > 2 {
        return None;
    }

    // Joint slot universe for the first patch: its own externals plus the
    // ride-alongs.
    let mut ext1: Vec<CSrc> = v1.ext.iter().map(|e| CSrc::External(*e)).collect();
    for r in &ride {
        if !ext1.contains(r) {
            ext1.push(*r);
        }
    }

    for assign1 in unit_assignments(c1, &v1.nodes) {
        let Some(mut pinned1) = pin_store_data(&v1, &assign1) else {
            continue;
        };
        for r in &ride {
            // Store-data pin (slot 2) wins if the ride is also the store
            // data; both constraints are compatible since 2 is in {2,3}.
            pinned1.entry(*r).or_insert_with(|| vec![2, 3]);
        }
        for slots1 in slot_maps(&ext1, &pinned1) {
            for a1p in a1_choices(&ext1) {
                let Some(synth1) = synth_patch(c1, &v1, &assign1, &slots1, None, a1p) else {
                    continue;
                };

                // Which carried value sits on which first-patch port?
                let wire_for = |c: usize| -> Option<Wire> {
                    s1_ids.iter().position(|&x| x == c).map(Wire::Node)
                };
                let arrangements: Vec<Vec<(usize, u8)>> = match carried {
                    [] => vec![vec![]],
                    [a] => vec![vec![(*a, 0)], vec![(*a, 1)]],
                    [a, b] => vec![vec![(*a, 0), (*b, 1)], vec![(*b, 0), (*a, 1)]],
                    _ => return None,
                };
                for arr in arrangements {
                    if arr.iter().any(|&(c, port)| {
                        let w = if port == 0 { synth1.out0 } else { synth1.out1 };
                        wire_for(c).is_none_or(|wf| w != wf)
                    }) {
                        continue;
                    }

                    let mut pinned2 = Pinned::new();
                    for &(c, port) in &arr {
                        pinned2.insert(CSrc::External(Src::Node(view.nodes[c].id)), vec![port]);
                    }
                    let Some(ride_slots) = ride
                        .iter()
                        .map(|r| slots1.slot_of(*r))
                        .collect::<Option<Vec<_>>>()
                    else {
                        continue; // a ride-along the slot map never placed
                    };
                    for (r, s) in ride.iter().zip(ride_slots) {
                        pinned2.insert(*r, vec![s]);
                    }
                    let ext2: Vec<CSrc> = v2.ext.iter().map(|e| CSrc::External(*e)).collect();
                    let pass = s1_escapes
                        .first()
                        .map(|&c| CSrc::External(Src::Node(view.nodes[c].id)));
                    for assign2 in unit_assignments(c2, &v2.nodes) {
                        for mut slots2 in slot_maps(&ext2, &pinned2) {
                            // Mark bus words the second patch does not
                            // read: slots 0/1 always carry the first
                            // patch's outputs; slots 2/3 carry whatever
                            // the core's operand slots hold.
                            for s in 0..4usize {
                                if slots2.ext_of_slot[s].is_some() {
                                    continue;
                                }
                                let bus_live = if s < 2 {
                                    true
                                } else {
                                    slots1.ext_of_slot[s].is_some()
                                };
                                if bus_live {
                                    slots2.ext_of_slot[s] = Some(CSrc::Busy);
                                }
                            }
                            let a1p2s = a1_choices(&ext2);
                            for a1p2 in a1p2s {
                                let Some(synth2) =
                                    synth_patch(c2, &v2, &assign2, &slots2, pass, a1p2)
                                else {
                                    continue;
                                };
                                if let Some(m) = finish_pair(
                                    view, c1, c2, &s2_ids, &synth1, &synth2, &slots1, &slots2,
                                    s1_escapes,
                                ) {
                                    return Some(m);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn finish_pair(
    view: &View,
    c1: PatchClass,
    c2: PatchClass,
    s2_ids: &[usize],
    synth1: &PatchSynth,
    synth2: &PatchSynth,
    slots1: &SlotMap,
    slots2: &SlotMap,
    s1_escapes: &[usize],
) -> Option<Mapping> {
    let mut outputs = Vec::new();
    for &o in &view.outputs {
        let port = if let Some(pos) = s2_ids.iter().position(|&x| x == o) {
            if synth2.out0 == Wire::Node(pos) {
                OutPort::Out0
            } else if synth2.out1 == Wire::Node(pos) {
                OutPort::Out1
            } else {
                return None;
            }
        } else {
            // An escaping S1 value arrives at patch2 in its pinned slot
            // and must appear on one of patch2's ports as that slot's
            // wire.
            if !s1_escapes.contains(&o) {
                return None;
            }
            let key = CSrc::External(Src::Node(view.nodes[o].id));
            let slot = slots2.slot_of(key)?;
            if synth2.out1 == Wire::Slot(slot) {
                OutPort::Out1
            } else if synth2.out0 == Wire::Slot(slot) {
                OutPort::Out0
            } else {
                return None;
            }
        };
        if outputs.iter().any(|(_, p)| *p == port) {
            return None;
        }
        outputs.push((view.nodes[o].id, port));
    }

    // Ride-alongs are already part of slots1, so the exported operand
    // assignment covers everything the core must supply.
    Some(Mapping {
        config: PatchConfig::Pair(c1, c2),
        controls: vec![synth1.control.clone(), synth2.control.clone()],
        input_slots: export_slots(slots1),
        outputs,
    })
}

fn map_locus_view(view: &View) -> Option<Mapping> {
    if view.nodes.len() > 2 || view.ext.len() > 4 {
        return None;
    }
    if view
        .nodes
        .iter()
        .any(|n| matches!(n.op, NodeOp::Load | NodeOp::Store | NodeOp::Other))
    {
        return None;
    }
    let mut input_slots = [None; 4];
    let mut slot_of: HashMap<Src, u8> = HashMap::new();
    for (i, e) in view.ext.iter().enumerate() {
        input_slots[i] = Some(*e);
        slot_of.insert(*e, i as u8);
    }
    let mut ops = Vec::new();
    for (i, n) in view.nodes.iter().enumerate() {
        let op = n.alu?;
        if op.class() == stitch_isa::OpClass::M {
            return None; // the SFU has no multiplier
        }
        let code = |s: CSrc| -> Option<u8> {
            match s {
                CSrc::External(e) => slot_of.get(&e).copied(),
                CSrc::Internal(j) if j < i => Some(4 + j as u8),
                CSrc::Internal(_) | CSrc::Busy => None,
            }
        };
        ops.push(LocusOp {
            op,
            src1: code(n.srcs[0])?,
            src2: code(n.srcs[1])?,
        });
    }
    let mut outputs = Vec::new();
    for &o in &view.outputs {
        let port = if o == view.nodes.len() - 1 {
            OutPort::Out0
        } else if o == 0 && view.nodes.len() > 1 {
            OutPort::Out1
        } else {
            return None;
        };
        if outputs.iter().any(|(_, p)| *p == port) {
            return None;
        }
        outputs.push((view.nodes[o].id, port));
    }
    Some(Mapping {
        config: PatchConfig::Locus,
        controls: vec![ControlWord::Locus(LocusControl { ops })],
        input_slots,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::enumerate::{enumerate_candidates, EnumerateLimits};
    use stitch_isa::memmap::SPM_BASE;
    use stitch_isa::{ProgramBuilder, Reg};

    fn setup(build: impl FnOnce(&mut ProgramBuilder)) -> (BlockDfg, Vec<Candidate>) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dfg = BlockDfg::build(&p, &cfg, &cfg.blocks[0]);
        let cands = enumerate_candidates(&dfg, EnumerateLimits::default());
        (dfg, cands)
    }

    #[test]
    fn maps_mul_add_on_atma() {
        let (dfg, cands) = setup(|b| {
            b.mul(Reg::R4, Reg::R1, Reg::R2);
            b.add(Reg::R5, Reg::R4, Reg::R3);
            b.sw(Reg::R5, Reg::R10, 0);
        });
        let cand = cands
            .iter()
            .find(|c| c.len() == 2)
            .expect("chain candidate");
        let m = map_candidate(&dfg, cand, PatchConfig::Single(PatchClass::AtMa))
            .expect("maps on {AT-MA}");
        assert_eq!(m.controls.len(), 1);
        assert!(
            map_candidate(&dfg, cand, PatchConfig::Single(PatchClass::AtAs)).is_none(),
            "{{AT-AS}} has no multiplier"
        );
    }

    #[test]
    fn maps_add_shift_on_atas() {
        let (dfg, cands) = setup(|b| {
            b.add(Reg::R4, Reg::R1, Reg::R2);
            b.alu(AluOp::Sll, Reg::R5, Reg::R4, Reg::R3);
            b.sw(Reg::R5, Reg::R10, 0);
        });
        let cand = cands.iter().find(|c| c.len() == 2).expect("chain");
        assert!(map_candidate(&dfg, cand, PatchConfig::Single(PatchClass::AtAs)).is_some());
        // {AT-SA} also handles A-then-S by computing the add on its
        // stage-1 ALU and shifting in stage 2.
        assert!(map_candidate(&dfg, cand, PatchConfig::Single(PatchClass::AtSa)).is_some());
    }

    #[test]
    fn maps_shift_add_on_atsa() {
        let (dfg, cands) = setup(|b| {
            b.alu(AluOp::Srl, Reg::R4, Reg::R1, Reg::R2);
            b.add(Reg::R5, Reg::R4, Reg::R3);
            b.sw(Reg::R5, Reg::R10, 0);
        });
        let cand = cands.iter().find(|c| c.len() == 2).expect("chain");
        assert!(map_candidate(&dfg, cand, PatchConfig::Single(PatchClass::AtSa)).is_some());
        assert!(
            map_candidate(&dfg, cand, PatchConfig::Single(PatchClass::AtAs)).is_none(),
            "on {{AT-AS}} the shifter is last; nothing can consume it"
        );
    }

    #[test]
    fn maps_load_compute_on_single_patch() {
        let (dfg, cands) = setup(|b| {
            b.li(Reg::R1, i64::from(SPM_BASE));
            b.add(Reg::R2, Reg::R1, Reg::R6);
            b.lw(Reg::R3, Reg::R2, 0);
            b.mul(Reg::R4, Reg::R3, Reg::R5);
            b.sw(Reg::R4, Reg::R7, 0); // non-SPM store keeps r4 live
        });
        let cand = cands
            .iter()
            .filter(|c| c.len() == 3)
            .find(|c| c.nodes.iter().any(|&n| dfg.nodes[n].op == NodeOp::Load))
            .expect("load chain candidate");
        let m = map_candidate(&dfg, cand, PatchConfig::Single(PatchClass::AtMa))
            .expect("A-T-M chain maps on {AT-MA}");
        assert!(m.controls[0].uses_memory());
        assert!(map_candidate(&dfg, cand, PatchConfig::Locus).is_none());
    }

    #[test]
    fn locus_maps_pure_compute() {
        let (dfg, cands) = setup(|b| {
            b.add(Reg::R4, Reg::R1, Reg::R2);
            b.alu(AluOp::Sll, Reg::R5, Reg::R4, Reg::R3);
        });
        let cand = cands.iter().find(|c| c.len() == 2).expect("chain");
        let m = map_candidate(&dfg, cand, PatchConfig::Locus).expect("locus chain");
        assert!(matches!(m.controls[0], ControlWord::Locus(_)));
        // And the SFU has no multiplier: mul chains do not map.
        let (dfg2, cands2) = setup(|b| {
            b.add(Reg::R4, Reg::R1, Reg::R2);
            b.mul(Reg::R5, Reg::R4, Reg::R3);
        });
        let cand2 = cands2.iter().find(|c| c.len() == 2).expect("chain");
        assert!(map_candidate(&dfg2, cand2, PatchConfig::Locus).is_none());
    }

    #[test]
    fn pair_maps_larger_pattern() {
        // ((a+b)^2 - (a+b)) >> c : A,M,A,S — too big for any single patch.
        let (dfg, cands) = setup(|b| {
            b.add(Reg::R5, Reg::R1, Reg::R2);
            b.mul(Reg::R6, Reg::R5, Reg::R5);
            b.sub(Reg::R7, Reg::R6, Reg::R5);
            b.alu(AluOp::Srl, Reg::R8, Reg::R7, Reg::R3);
            b.sw(Reg::R8, Reg::R10, 0);
        });
        let cand = cands
            .iter()
            .find(|c| c.len() == 4)
            .expect("4-node candidate");
        let m = map_candidate(
            &dfg,
            cand,
            PatchConfig::Pair(PatchClass::AtMa, PatchClass::AtSa),
        );
        assert!(m.is_some(), "pair mapping should succeed");
        assert_eq!(m.unwrap().controls.len(), 2);
        for c in PatchClass::STITCH {
            assert!(
                map_candidate(&dfg, cand, PatchConfig::Single(c)).is_none(),
                "A/M/A/S chain cannot fit a single {c}"
            );
        }
    }

    #[test]
    fn store_data_rides_in2() {
        let (dfg, cands) = setup(|b| {
            b.li(Reg::R1, i64::from(SPM_BASE));
            b.add(Reg::R2, Reg::R1, Reg::R6);
            b.sw(Reg::R5, Reg::R2, 0);
        });
        let cand = cands
            .iter()
            .find(|c| c.len() == 2 && c.store_count(&dfg) == 1)
            .expect("addr+store candidate");
        let m = map_candidate(&dfg, cand, PatchConfig::Single(PatchClass::AtMa))
            .expect("store chain maps");
        assert_eq!(m.input_slots[2], Some(Src::Ext(Reg::R5)));
    }

    #[test]
    fn all_mappings_verified_via_every_config() {
        // Broad smoke test: any candidate that maps must verify (the
        // verify call is inside map_candidate; a synthesis bug panics
        // nothing but produces None — here we just count successes).
        let (dfg, cands) = setup(|b| {
            b.li(Reg::R1, i64::from(SPM_BASE));
            b.add(Reg::R2, Reg::R1, Reg::R9);
            b.lw(Reg::R3, Reg::R2, 0);
            b.mul(Reg::R4, Reg::R3, Reg::R5);
            b.add(Reg::R6, Reg::R4, Reg::R7);
            b.alu(AluOp::Sll, Reg::R8, Reg::R6, Reg::R10);
            b.sw(Reg::R8, Reg::R11, 0);
        });
        let mut mapped = 0;
        for cand in &cands {
            for cfg in PatchConfig::all() {
                if map_candidate(&dfg, cand, cfg).is_some() {
                    mapped += 1;
                }
            }
        }
        assert!(mapped > 0, "at least some mappings must exist");
    }
}
