//! Algorithm 1: the stitching algorithm.
//!
//! Greedy, bottleneck-driven allocation of patches to the kernels of a
//! multi-kernel application (paper §IV). Each iteration accelerates the
//! current bottleneck kernel with the best still-unchecked patch (or
//! fused patch pair), finds a contention-free circuit with Dijkstra
//! (`FindPath`), relocates the kernel onto a tile holding one of its
//! patches (`LocateKernel`), and updates its execution time — until no
//! patch is left or the bottleneck cannot be improved.

use crate::driver::KernelVariants;
use crate::mapper::PatchConfig;
use stitch_noc::{PatchNet, TileId};
use stitch_patch::fused_path_legal;
use stitch_sim::{Arch, ChipConfig};

/// One kernel of a multi-kernel application, with its compiled variants.
#[derive(Debug, Clone)]
pub struct AppKernel {
    /// Kernel name (diagnostics).
    pub name: String,
    /// Initial (pipeline-order) tile.
    pub home: TileId,
    /// Compiled variants with measured standalone cycles.
    pub variants: KernelVariants,
}

/// Acceleration granted to one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantedAccel {
    /// The chosen configuration.
    pub config: PatchConfig,
    /// Fused partner tile, when the configuration is a pair.
    pub partner: Option<TileId>,
    /// Circuit hops (per direction) for fused configurations.
    pub hops: u32,
}

/// Final placement and acceleration decisions.
#[derive(Debug, Clone)]
pub struct StitchPlan {
    /// Per kernel (same order as the input): assigned tile.
    pub tiles: Vec<TileId>,
    /// Per kernel: granted acceleration, if any.
    pub accel: Vec<Option<GrantedAccel>>,
    /// Reserved inter-patch circuits `(from, to)`.
    pub circuits: Vec<(TileId, TileId)>,
    /// Human-readable log of the algorithm's decisions.
    pub log: Vec<String>,
}

impl StitchPlan {
    /// Number of kernels accelerated.
    #[must_use]
    pub fn accelerated(&self) -> usize {
        self.accel.iter().flatten().count()
    }

    /// Number of fused kernels.
    #[must_use]
    pub fn fused(&self) -> usize {
        self.accel
            .iter()
            .flatten()
            .filter(|a| a.partner.is_some())
            .count()
    }

    /// Renders the stitching map (Fig 10-style).
    #[must_use]
    pub fn render(&self, kernels: &[AppKernel]) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, k) in kernels.iter().enumerate() {
            let _ = write!(s, "{:>12} @ {}", k.name, self.tiles[i]);
            match &self.accel[i] {
                Some(a) => {
                    let _ = write!(s, "  <- {}", a.config);
                    if let Some(p) = a.partner {
                        let _ = write!(s, " fused with {p} ({} hops)", a.hops);
                    }
                }
                None => {
                    let _ = write!(s, "  (software)");
                }
            }
            s.push('\n');
        }
        s
    }
}

/// Runs Algorithm 1 for `arch` over the chip's patch layout.
///
/// `kernels` must not exceed the tile count, and home tiles must be
/// distinct.
#[must_use]
pub fn stitch_application(kernels: &[AppKernel], chip: &ChipConfig, arch: Arch) -> StitchPlan {
    stitch_application_masked(kernels, chip, arch, &[])
}

/// [`stitch_application`] with the patches on `masked` tiles treated as
/// unavailable — the recovery entry point of the fault-degradation
/// ladder.
///
/// When a patch fails permanently at runtime, the runtime first demotes
/// the affected custom instructions to their W32 software sequence
/// (correct but slow); re-running the stitcher with the dead patches
/// masked then produces a fresh mapping that routes acceleration around
/// the failures — a fused pair falls back to a healthy single patch or
/// to software, exactly as if the chip had been manufactured without
/// those patches. Masked tiles can still *host* kernels (their core and
/// memories are healthy); they just contribute no patch and join no
/// fused circuit.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn stitch_application_masked(
    kernels: &[AppKernel],
    chip: &ChipConfig,
    arch: Arch,
    masked: &[TileId],
) -> StitchPlan {
    let n = kernels.len();
    let mut tiles: Vec<TileId> = kernels.iter().map(|k| k.home).collect();
    let mut accel: Vec<Option<GrantedAccel>> = vec![None; n];
    let mut circuits: Vec<(TileId, TileId)> = Vec::new();
    let mut log: Vec<String> = Vec::new();

    match arch {
        Arch::Baseline => {
            return StitchPlan {
                tiles,
                accel,
                circuits,
                log,
            };
        }
        Arch::Locus => {
            // Every core has an identical SFU: each kernel independently
            // takes its LOCUS variant when beneficial.
            for (i, k) in kernels.iter().enumerate() {
                if let Some(v) = k.variants.variant(PatchConfig::Locus) {
                    if v.cycles < k.variants.baseline_cycles {
                        accel[i] = Some(GrantedAccel {
                            config: PatchConfig::Locus,
                            partner: None,
                            hops: 0,
                        });
                        log.push(format!("{}: LOCUS SFU ({} cycles)", k.name, v.cycles));
                    }
                }
            }
            return StitchPlan {
                tiles,
                accel,
                circuits,
                log,
            };
        }
        Arch::StitchNoFusion | Arch::Stitch => {}
    }

    // Occupancy: which kernel sits on each tile.
    let mut occupant: Vec<Option<usize>> = vec![None; chip.topo.tiles()];
    for (i, t) in tiles.iter().enumerate() {
        occupant[t.index()] = Some(i);
    }
    let mut locked = vec![false; n];
    let mut patch_used = vec![false; chip.topo.tiles()];
    for &t in masked {
        if !patch_used[t.index()] && chip.patches[t.index()].is_some() {
            log.push(format!("{t}: patch masked out (fault recovery)"));
        }
        patch_used[t.index()] = true;
    }
    let mut checked: Vec<Vec<PatchConfig>> = vec![Vec::new(); n];
    let mut time: Vec<u64> = kernels.iter().map(|k| k.variants.baseline_cycles).collect();
    let mut net = PatchNet::new(chip.topo);

    let allow = |c: PatchConfig| match (arch, c) {
        (_, PatchConfig::Locus) => false,
        (Arch::StitchNoFusion, PatchConfig::Single(_)) => true,
        (Arch::StitchNoFusion, PatchConfig::Pair(..)) => false,
        (Arch::Stitch, _) => true,
        _ => false,
    };

    // while there is patch available do ...
    let mut exhausted = vec![false; n];
    for _iteration in 0..8 * chip.topo.tiles() {
        if !patch_used
            .iter()
            .enumerate()
            .any(|(t, &used)| !used && chip.patches[t].is_some())
        {
            break; // all patches consumed
        }
        // kernel = Bottleneck(A) among kernels that can still improve.
        // (The paper's Algorithm 1 returns when the bottleneck has no
        // option; the evaluation's "w/o fusion" configuration still lets
        // every kernel use its local patch, so we keep arbitrating the
        // remaining kernels instead — non-bottleneck acceleration does
        // not change throughput but matches §VI-B's description.)
        let Some(k) = (0..n)
            .filter(|&i| !exhausted[i] && !kernels[i].variants.variants.is_empty())
            .max_by_key(|&i| time[i])
        else {
            break;
        };
        // patches = BestPatches(kernel, checked)
        // A fused pair consumes two patches; require it to (a) beat the
        // best single-patch option by a margin and (b) leave enough free
        // patches for the remaining kernels that still want one —
        // otherwise a pair-hungry bottleneck class (e.g. thirteen 2dconv
        // kernels) starves its own siblings.
        let best_single = kernels[k]
            .variants
            .variants
            .iter()
            .filter(|v| allow(v.config) && matches!(v.config, PatchConfig::Single(_)))
            .map(|v| v.cycles)
            .min();
        let free_patches = patch_used
            .iter()
            .enumerate()
            .filter(|&(t, &used)| !used && chip.patches[t].is_some())
            .count();
        let worth_pairing = |cycles: u64| {
            let beats_single = match best_single {
                Some(s) => (cycles as f64) < s as f64 * 0.95,
                None => true,
            };
            // Every kernel that would remain hotter than the fused
            // kernel's new time must still be able to receive a patch of
            // its own afterwards; otherwise the pair starves the real
            // bottleneck (e.g. a thirteenth identical 2dconv).
            let critical_peers = (0..n)
                .filter(|&i| {
                    i != k
                        && !exhausted[i]
                        && accel[i].is_none()
                        && time[i] > cycles
                        && kernels[i]
                            .variants
                            .variants
                            .iter()
                            .any(|v| allow(v.config) && v.cycles < time[i])
                })
                .count();
            beats_single && free_patches >= 2 && free_patches - 2 >= critical_peers
        };
        let mut options: Vec<&crate::driver::AcceleratedKernel> = kernels[k]
            .variants
            .variants
            .iter()
            .filter(|v| {
                allow(v.config)
                    && !checked[k].contains(&v.config)
                    && v.cycles < time[k]
                    && (matches!(v.config, PatchConfig::Single(_)) || worth_pairing(v.cycles))
            })
            .collect();
        options.sort_by_key(|v| v.cycles);
        if options.is_empty() {
            log.push(format!("{}: no further option", kernels[k].name));
            exhausted[k] = true;
            continue;
        }

        let mut granted = false;
        for v in options {
            match v.config {
                PatchConfig::Single(class) => {
                    // A tile with this class whose patch is free and whose
                    // occupant can swap homes with k.
                    let slot = chip
                        .tiles_with(class)
                        .into_iter()
                        .filter(|t| !patch_used[t.index()])
                        .find(|t| {
                            let occ = occupant[t.index()];
                            occ == Some(k) || occ.is_none_or(|o| !locked[o])
                        });
                    let Some(t) = slot else {
                        checked[k].push(v.config);
                        continue;
                    };
                    relocate(&mut tiles, &mut occupant, k, t);
                    locked[k] = true;
                    patch_used[t.index()] = true;
                    time[k] = v.cycles;
                    log.push(format!(
                        "{} -> {} single {} ({} cycles)",
                        kernels[k].name, t, class, v.cycles
                    ));
                    granted = true;
                }
                PatchConfig::Pair(c1, c2) => {
                    // First tile hosts the kernel; the second patch is
                    // borrowed (its tile's kernel keeps running).
                    let mut best: Option<(TileId, TileId, u32)> = None;
                    for t1 in chip.tiles_with(c1) {
                        if patch_used[t1.index()] {
                            continue;
                        }
                        let occ = occupant[t1.index()];
                        if !(occ == Some(k) || occ.is_none_or(|o| !locked[o])) {
                            continue;
                        }
                        for t2 in chip.tiles_with(c2) {
                            if t2 == t1 || patch_used[t2.index()] {
                                continue;
                            }
                            let hops = chip.topo.distance(t1, t2);
                            if !fused_path_legal(c1, c2, hops) {
                                continue;
                            }
                            if best.is_none_or(|(_, _, h)| hops < h) {
                                best = Some((t1, t2, hops));
                            }
                        }
                    }
                    // FindPath: reserve the circuit; on contention try to
                    // fall back to any legal pair.
                    let mut reserved = None;
                    if let Some((t1, t2, _)) = best {
                        if let Ok(c) = net.reserve(t1, t2) {
                            if fused_path_legal(c1, c2, c.hops) {
                                reserved = Some((t1, t2, c.hops));
                            }
                            // An illegal-after-detour circuit stays
                            // reserved but unused; extremely rare on the
                            // 4x4 mesh — treat as checked.
                        }
                    }
                    let Some((t1, t2, hops)) = reserved else {
                        checked[k].push(v.config);
                        continue;
                    };
                    relocate(&mut tiles, &mut occupant, k, t1);
                    locked[k] = true;
                    patch_used[t1.index()] = true;
                    patch_used[t2.index()] = true;
                    circuits.push((t1, t2));
                    time[k] = v.cycles;
                    accel[k] = Some(GrantedAccel {
                        config: v.config,
                        partner: Some(t2),
                        hops,
                    });
                    log.push(format!(
                        "{} -> {} fused {}+{} via {} hops ({} cycles)",
                        kernels[k].name, t1, c1, c2, hops, v.cycles
                    ));
                    granted = true;
                }
                // `allow()` filters LOCUS out of the option list; if one
                // slips through (a future `allow` change), skip it rather
                // than abort the whole stitch.
                PatchConfig::Locus => {
                    checked[k].push(v.config);
                    continue;
                }
            }
            if granted {
                if accel[k].is_none() {
                    accel[k] = Some(GrantedAccel {
                        config: v.config,
                        partner: None,
                        hops: 0,
                    });
                }
                break;
            }
        }
        if !granted {
            // Every viable option of this kernel was checked against the
            // remaining resources; stop considering it.
            exhausted[k] = true;
        } else {
            // A granted kernel keeps exactly one configuration; it never
            // receives a second allocation.
            exhausted[k] = true;
        }
    }

    StitchPlan {
        tiles,
        accel,
        circuits,
        log,
    }
}

/// Moves kernel `k` onto tile `t`, swapping with the displaced occupant.
fn relocate(tiles: &mut [TileId], occupant: &mut [Option<usize>], k: usize, t: TileId) {
    let from = tiles[k];
    if from == t {
        return;
    }
    let displaced = occupant[t.index()];
    tiles[k] = t;
    occupant[t.index()] = Some(k);
    occupant[from.index()] = displaced;
    if let Some(d) = displaced {
        tiles[d] = from;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::AcceleratedKernel;
    use std::collections::HashMap;
    use stitch_isa::program::Program;
    use stitch_patch::PatchClass;

    fn fake_variant(config: PatchConfig, cycles: u64) -> AcceleratedKernel {
        AcceleratedKernel {
            config,
            program: Program::default(),
            ci_controls: HashMap::new(),
            custom_count: 1,
            cycles,
            ise_checks: Vec::new(),
        }
    }

    fn fake_kernel(
        name: &str,
        home: u8,
        baseline: u64,
        variants: Vec<(PatchConfig, u64)>,
    ) -> AppKernel {
        AppKernel {
            name: name.into(),
            home: TileId(home),
            variants: KernelVariants {
                name: name.into(),
                baseline: Program::default(),
                baseline_cycles: baseline,
                variants: variants
                    .into_iter()
                    .map(|(c, cy)| fake_variant(c, cy))
                    .collect(),
            },
        }
    }

    #[test]
    fn baseline_grants_nothing() {
        let kernels = vec![fake_kernel(
            "k",
            0,
            1000,
            vec![(PatchConfig::Single(PatchClass::AtMa), 500)],
        )];
        let plan = stitch_application(&kernels, &ChipConfig::stitch_16(), Arch::Baseline);
        assert_eq!(plan.accelerated(), 0);
    }

    #[test]
    fn locus_grants_everyone_with_variant() {
        let kernels = vec![
            fake_kernel("a", 0, 1000, vec![(PatchConfig::Locus, 800)]),
            fake_kernel("b", 1, 900, vec![(PatchConfig::Locus, 950)]), // slower: skip
        ];
        let plan = stitch_application(&kernels, &ChipConfig::locus_16(), Arch::Locus);
        assert_eq!(plan.accelerated(), 1);
        assert!(plan.accel[0].is_some());
        assert!(plan.accel[1].is_none());
    }

    #[test]
    fn bottleneck_gets_patch_and_relocates() {
        let cfg = ChipConfig::stitch_16();
        // Tile 1 is {AT-AS}; kernel b (the bottleneck) wants one.
        let kernels = vec![
            fake_kernel("a", 0, 500, vec![]),
            fake_kernel(
                "b",
                3,
                2000,
                vec![(PatchConfig::Single(PatchClass::AtAs), 700)],
            ),
        ];
        let plan = stitch_application(&kernels, &cfg, Arch::Stitch);
        assert_eq!(plan.accelerated(), 1);
        let t = plan.tiles[1];
        assert_eq!(cfg.patches[t.index()], Some(PatchClass::AtAs));
    }

    #[test]
    fn fused_pair_reserves_circuit() {
        let cfg = ChipConfig::stitch_16();
        let kernels = vec![fake_kernel(
            "hot",
            0,
            10_000,
            vec![(PatchConfig::Pair(PatchClass::AtMa, PatchClass::AtSa), 3000)],
        )];
        let plan = stitch_application(&kernels, &cfg, Arch::Stitch);
        assert_eq!(plan.fused(), 1);
        assert_eq!(plan.circuits.len(), 1);
        let a = plan.accel[0].expect("granted");
        assert!(a.partner.is_some());
        assert!(a.hops >= 1);
    }

    #[test]
    fn no_fusion_arch_rejects_pairs() {
        let cfg = ChipConfig::stitch_16();
        let kernels = vec![fake_kernel(
            "hot",
            0,
            10_000,
            vec![
                (PatchConfig::Pair(PatchClass::AtMa, PatchClass::AtSa), 3000),
                (PatchConfig::Single(PatchClass::AtMa), 5000),
            ],
        )];
        let plan = stitch_application(&kernels, &cfg, Arch::StitchNoFusion);
        assert_eq!(plan.fused(), 0);
        assert_eq!(plan.accelerated(), 1);
        assert_eq!(
            plan.accel[0].unwrap().config,
            PatchConfig::Single(PatchClass::AtMa)
        );
    }

    #[test]
    fn patches_are_not_double_allocated() {
        let cfg = ChipConfig::stitch_16();
        // Five kernels all want {AT-AS}; only four exist.
        let kernels: Vec<AppKernel> = (0..5)
            .map(|i| {
                fake_kernel(
                    &format!("k{i}"),
                    i,
                    1000 + u64::from(i),
                    vec![(PatchConfig::Single(PatchClass::AtAs), 400)],
                )
            })
            .collect();
        let plan = stitch_application(&kernels, &cfg, Arch::Stitch);
        assert_eq!(plan.accelerated(), 4, "only four {{AT-AS}} patches exist");
        // All accelerated kernels sit on distinct {AT-AS} tiles.
        let mut seen = Vec::new();
        for (i, a) in plan.accel.iter().enumerate() {
            if a.is_some() {
                let t = plan.tiles[i];
                assert_eq!(cfg.patches[t.index()], Some(PatchClass::AtAs));
                assert!(!seen.contains(&t));
                seen.push(t);
            }
        }
    }

    #[test]
    fn masked_patch_is_never_allocated() {
        let cfg = ChipConfig::stitch_16();
        let kernels = vec![fake_kernel(
            "k",
            0,
            1000,
            vec![(PatchConfig::Single(PatchClass::AtAs), 400)],
        )];
        // Mask every {AT-AS} tile but one: the kernel must land there.
        let atas = cfg.tiles_with(PatchClass::AtAs);
        let (last, masked) = atas.split_last().expect("four {AT-AS} patches");
        let plan = stitch_application_masked(&kernels, &cfg, Arch::Stitch, masked);
        assert_eq!(plan.accelerated(), 1);
        assert_eq!(plan.tiles[0], *last);

        // Mask all of them: the kernel stays in software.
        let plan = stitch_application_masked(&kernels, &cfg, Arch::Stitch, &atas);
        assert_eq!(plan.accelerated(), 0);
        assert!(plan.log.iter().any(|l| l.contains("masked out")));
    }

    #[test]
    fn masked_partner_downgrades_fused_pair() {
        let cfg = ChipConfig::stitch_16();
        // The kernel prefers a fused pair but keeps a single fallback;
        // masking every second-class patch must force the single.
        let kernels = vec![fake_kernel(
            "hot",
            0,
            10_000,
            vec![
                (PatchConfig::Pair(PatchClass::AtMa, PatchClass::AtSa), 3000),
                (PatchConfig::Single(PatchClass::AtMa), 5000),
            ],
        )];
        let masked = cfg.tiles_with(PatchClass::AtSa);
        let plan = stitch_application_masked(&kernels, &cfg, Arch::Stitch, &masked);
        assert_eq!(plan.fused(), 0);
        assert_eq!(plan.accelerated(), 1);
        assert_eq!(
            plan.accel[0].expect("granted").config,
            PatchConfig::Single(PatchClass::AtMa)
        );
        assert!(plan.circuits.is_empty());
    }

    #[test]
    fn empty_mask_matches_unmasked_plan() {
        let cfg = ChipConfig::stitch_16();
        let kernels = vec![fake_kernel(
            "hot",
            0,
            10_000,
            vec![(PatchConfig::Pair(PatchClass::AtMa, PatchClass::AtSa), 3000)],
        )];
        let a = stitch_application(&kernels, &cfg, Arch::Stitch);
        let b = stitch_application_masked(&kernels, &cfg, Arch::Stitch, &[]);
        assert_eq!(a.tiles, b.tiles);
        assert_eq!(a.accel, b.accel);
        assert_eq!(a.circuits, b.circuits);
    }

    #[test]
    fn render_mentions_fusion() {
        let cfg = ChipConfig::stitch_16();
        let kernels = vec![fake_kernel(
            "fft",
            0,
            10_000,
            vec![(PatchConfig::Pair(PatchClass::AtMa, PatchClass::AtSa), 3000)],
        )];
        let plan = stitch_application(&kernels, &cfg, Arch::Stitch);
        let txt = plan.render(&kernels);
        assert!(txt.contains("fft"));
        assert!(txt.contains("fused with"));
    }
}
