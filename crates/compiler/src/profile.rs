//! Kernel profiling: dynamic basic-block execution counts.
//!
//! The paper detects bottleneck kernels and 'hot' basic blocks by
//! profiling (Fig 6). Here a kernel's standalone version executes on a
//! functional interpreter (perfect memory, no patches) while counting how
//! often each instruction retires; blocks above [`crate::HOT_THRESHOLD`]
//! of the dynamic instruction count are hot.

use crate::cfg::Cfg;
use crate::CompilerError;
use stitch_cpu::{Core, CoreState, CpuError, CustomOutcome, Platform, StepOutcome};
use stitch_isa::custom::CiId;
use stitch_isa::instr::Width;
use stitch_isa::program::Program;
use stitch_mem::Dram;
use stitch_patch::PatchOutput;

/// Functional platform for profiling runs: flat memory, 1-cycle
/// everything, sends discarded, receives return zero-filled messages.
///
/// Backed by the sparse paged [`Dram`] rather than a word-keyed hash
/// map: profiling re-executes the whole kernel, so per-access lookup
/// cost dominates the compile flow.
#[derive(Default)]
struct ProfilePlatform {
    mem: Dram,
}

impl ProfilePlatform {
    fn read(&self, addr: u32) -> u32 {
        self.mem.read_u32(addr & !3)
    }
}

impl Platform for ProfilePlatform {
    fn fetch(&mut self, _byte_addr: u32) -> u32 {
        1
    }

    fn load(&mut self, addr: u32, w: Width) -> (u32, u32) {
        let word = self.read(addr);
        let v = match w {
            Width::Word => word,
            Width::Half => (word >> ((addr & 2) * 8)) & 0xFFFF,
            Width::Byte => (word >> ((addr & 3) * 8)) & 0xFF,
        };
        (v, 1)
    }

    fn store(&mut self, addr: u32, value: u32, w: Width) -> u32 {
        let aligned = addr & !3;
        let old = self.read(aligned);
        let v = match w {
            Width::Word => value,
            Width::Half => {
                let sh = (addr & 2) * 8;
                (old & !(0xFFFF << sh)) | ((value & 0xFFFF) << sh)
            }
            Width::Byte => {
                let sh = (addr & 3) * 8;
                (old & !(0xFF << sh)) | ((value & 0xFF) << sh)
            }
        };
        self.mem.write_u32(aligned, v);
        1
    }

    fn exec_custom(
        &mut self,
        _ci: CiId,
        inputs: [u32; 4],
    ) -> Result<CustomOutcome, stitch_cpu::CpuError> {
        // Profiling happens before acceleration; treat any custom
        // instruction as a pass-through so pre-accelerated binaries can
        // still be profiled structurally.
        Ok(CustomOutcome::healthy(
            PatchOutput {
                out0: inputs[0],
                out1: inputs[1],
            },
            false,
        ))
    }

    fn send(&mut self, _dst: u32, _addr: u32, _len: u32) -> Result<(), CpuError> {
        Ok(())
    }

    fn try_recv(
        &mut self,
        _src: u32,
        addr: u32,
        len: u32,
    ) -> Result<Option<u32>, stitch_cpu::CpuError> {
        for i in 0..len {
            self.store(addr + i * 4, 0, Width::Word);
        }
        Ok(Some(len))
    }
}

/// Result of profiling one program.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Dynamic execution count per instruction index.
    pub instr_counts: Vec<u64>,
    /// Dynamic execution count per basic block (entry count).
    pub block_counts: Vec<u64>,
    /// Total retired instructions.
    pub total_instructions: u64,
    /// Total simulated cycles (functional timing: 1 cycle/instr plus
    /// multiply/branch penalties — useful for quick comparisons only).
    pub cycles: u64,
}

impl ProfileReport {
    /// Blocks whose dynamic instruction share exceeds `threshold`,
    /// hottest first.
    #[must_use]
    pub fn hot_blocks(&self, cfg: &Cfg, threshold: f64) -> Vec<usize> {
        let mut weights: Vec<(usize, u64)> = cfg
            .blocks
            .iter()
            .map(|b| {
                let w: u64 = b.range().map(|i| self.instr_counts[i]).sum();
                (b.id, w)
            })
            .collect();
        weights.sort_by_key(|&(_, w)| std::cmp::Reverse(w));
        weights
            .into_iter()
            .filter(|&(_, w)| {
                self.total_instructions > 0
                    && (w as f64 / self.total_instructions as f64) >= threshold
            })
            .map(|(id, _)| id)
            .collect()
    }
}

/// Profiles a standalone program (functional execution).
///
/// # Errors
///
/// [`CompilerError::Profile`] when execution faults or exceeds
/// `max_steps`.
pub fn profile_program(program: &Program, max_steps: u64) -> Result<ProfileReport, CompilerError> {
    let mut core = Core::new(program);
    let mut plat = ProfilePlatform::default();
    let mut instr_counts = vec![0u64; program.instrs.len()];
    let mut steps = 0u64;
    while core.state() == CoreState::Running {
        if steps >= max_steps {
            return Err(CompilerError::Profile(format!(
                "exceeded {max_steps} steps; kernel may not terminate standalone"
            )));
        }
        let pc = core.pc() as usize;
        match core.step(&mut plat) {
            Ok(StepOutcome::Retired { .. }) => {
                instr_counts[pc] += 1;
            }
            Ok(StepOutcome::WaitingRecv { .. }) => {
                return Err(CompilerError::Profile(
                    "blocked on recv during profiling".into(),
                ))
            }
            Ok(StepOutcome::Halted) => break,
            Err(e) => return Err(CompilerError::Profile(e.to_string())),
        }
        steps += 1;
    }
    let cfg = Cfg::build(program);
    let block_counts = cfg.blocks.iter().map(|b| instr_counts[b.start]).collect();
    Ok(ProfileReport {
        total_instructions: instr_counts.iter().sum(),
        block_counts,
        cycles: core.stats().cycles,
        instr_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_isa::{Cond, ProgramBuilder, Reg};

    #[test]
    fn counts_loop_iterations() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 100);
        let top = b.bound_label();
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, top);
        b.halt();
        let p = b.build().unwrap();
        let r = profile_program(&p, 1_000_000).unwrap();
        assert_eq!(r.instr_counts[1], 100);
        assert_eq!(r.instr_counts[2], 100);
        assert_eq!(r.instr_counts[0], 1);
        assert_eq!(r.total_instructions, 202);
    }

    #[test]
    fn hot_blocks_found() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1000);
        let top = b.bound_label();
        b.add(Reg::R2, Reg::R2, Reg::R1);
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, top);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let r = profile_program(&p, 1_000_000).unwrap();
        let hot = r.hot_blocks(&cfg, crate::HOT_THRESHOLD);
        assert_eq!(hot.len(), 1, "only the loop body is hot");
        let hb = &cfg.blocks[hot[0]];
        assert!(hb.succs.contains(&hb.id), "hot block is the loop");
    }

    #[test]
    fn non_terminating_program_errors() {
        let mut b = ProgramBuilder::new();
        let top = b.bound_label();
        b.jump(top);
        let p = b.build().unwrap();
        assert!(matches!(
            profile_program(&p, 10_000),
            Err(CompilerError::Profile(_))
        ));
    }

    #[test]
    fn byte_memory_semantics() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 0x100);
        b.li(Reg::R2, 0xAB);
        b.sb(Reg::R2, Reg::R1, 1);
        b.lw(Reg::R3, Reg::R1, 0);
        b.halt();
        let p = b.build().unwrap();
        let r = profile_program(&p, 1_000).unwrap();
        assert!(r.total_instructions >= 4);
    }
}
