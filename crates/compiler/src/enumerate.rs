//! Convex candidate-subgraph enumeration under the 4-input/2-output
//! constraint (paper §IV: "ISE identifier ... generates the custom
//! instruction candidates from the DFGs under the 4-input/2-output
//! constraint").

use crate::dfg::{BlockDfg, NodeOp, Src};
use std::collections::HashSet;

/// Enumeration bounds.
#[derive(Debug, Clone, Copy)]
pub struct EnumerateLimits {
    /// Maximum nodes per candidate (a fused patch pair has at most eight
    /// functional units).
    pub max_nodes: usize,
    /// Maximum candidates kept per block.
    pub max_candidates: usize,
}

impl Default for EnumerateLimits {
    fn default() -> Self {
        EnumerateLimits {
            max_nodes: 8,
            max_candidates: 512,
        }
    }
}

/// A candidate custom instruction: a convex, connected set of eligible
/// DFG nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Member node ids, ascending.
    pub nodes: Vec<usize>,
    /// Distinct external value sources consumed by the candidate.
    pub ext_inputs: Vec<Src>,
    /// Nodes whose values are needed outside the candidate.
    pub outputs: Vec<usize>,
    /// Base-pipeline cycles the candidate would save if it executed in a
    /// single cycle (sum of member costs minus one).
    pub saved_cycles: u32,
}

impl Candidate {
    /// Number of member operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for an (invalid) empty candidate.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of store operations inside.
    #[must_use]
    pub fn store_count(&self, dfg: &BlockDfg) -> usize {
        self.nodes
            .iter()
            .filter(|&&n| dfg.nodes[n].op == NodeOp::Store)
            .count()
    }
}

/// Bitmask type for blocks of up to 128 instructions.
type Mask = u128;

fn bit(i: usize) -> Mask {
    1u128 << i
}

struct Ctx<'a> {
    dfg: &'a BlockDfg,
    /// Transitive data+order successors of each node.
    reach: Vec<Mask>,
    eligible: Mask,
    limits: EnumerateLimits,
    seen: HashSet<Mask>,
    out: Vec<Candidate>,
}

/// Builds transitive reachability (node -> all transitive successors).
fn reachability(dfg: &BlockDfg) -> Vec<Mask> {
    let n = dfg.len();
    let mut reach = vec![0 as Mask; n];
    // Nodes are in topological (block) order, so a reverse sweep works.
    let mut direct_succ = vec![0 as Mask; n];
    for nid in 0..n {
        for p in dfg.preds(nid) {
            direct_succ[p] |= bit(nid);
        }
    }
    for nid in (0..n).rev() {
        let mut r = direct_succ[nid];
        let mut rest = direct_succ[nid];
        while rest != 0 {
            let s = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            r |= reach[s];
        }
        reach[nid] = r;
    }
    reach
}

/// Computes a candidate's interface; returns `None` when it violates the
/// 4-in/2-out constraint or contains more than one store.
fn interface(dfg: &BlockDfg, set: Mask) -> Option<Candidate> {
    let mut ext: Vec<Src> = Vec::new();
    let mut outputs: Vec<usize> = Vec::new();
    let mut nodes: Vec<usize> = Vec::new();
    let mut saved: u32 = 0;
    let mut stores = 0usize;
    let mut m = set;
    while m != 0 {
        let nid = m.trailing_zeros() as usize;
        m &= m - 1;
        let node = &dfg.nodes[nid];
        nodes.push(nid);
        saved += node.cost;
        if node.op == NodeOp::Store {
            stores += 1;
        }
        for s in &node.srcs {
            let is_ext = match s {
                Src::Node(p) => set & bit(*p) == 0,
                Src::Ext(_) => true,
            };
            if is_ext && !ext.contains(s) {
                ext.push(*s);
            }
        }
        // Output if consumed outside or live after the block.
        let outside_use = dfg.consumers[nid].iter().any(|&c| set & bit(c) == 0);
        if node.def.is_some() && (outside_use || dfg.live_after_block[nid]) {
            outputs.push(nid);
        }
    }
    if ext.len() > 4 || outputs.len() > 2 || stores > 1 {
        return None;
    }
    Some(Candidate {
        nodes,
        ext_inputs: ext,
        outputs,
        saved_cycles: saved.saturating_sub(1),
    })
}

/// `true` when `set` is convex: no path from inside leaves and re-enters.
fn convex(ctx: &Ctx<'_>, set: Mask) -> bool {
    // For every node u in set and successor v not in set, v must not
    // reach any node of set.
    let mut m = set;
    while m != 0 {
        let u = m.trailing_zeros() as usize;
        m &= m - 1;
        let outside_succ = ctx.reach[u] & !set;
        let mut om = outside_succ;
        while om != 0 {
            let v = om.trailing_zeros() as usize;
            om &= om - 1;
            if ctx.reach[v] & set != 0 {
                return false;
            }
        }
    }
    true
}

fn neighbors(dfg: &BlockDfg, set: Mask) -> Mask {
    let mut nb: Mask = 0;
    let mut m = set;
    while m != 0 {
        let nid = m.trailing_zeros() as usize;
        m &= m - 1;
        for s in &dfg.nodes[nid].srcs {
            if let Src::Node(p) = s {
                nb |= bit(*p);
            }
        }
        for &c in &dfg.consumers[nid] {
            nb |= bit(c);
        }
    }
    nb & !set
}

fn grow(ctx: &mut Ctx<'_>, set: Mask, min_node: usize) {
    if ctx.out.len() >= ctx.limits.max_candidates {
        return;
    }
    if set.count_ones() as usize >= ctx.limits.max_nodes {
        return;
    }
    let mut nb = neighbors(ctx.dfg, set) & ctx.eligible;
    // Only grow toward ids >= min_node's seed to avoid duplicates of the
    // same set discovered from different seeds; dedup set handles the rest.
    while nb != 0 {
        let v = nb.trailing_zeros() as usize;
        nb &= nb - 1;
        if v < min_node {
            continue;
        }
        let next = set | bit(v);
        if !ctx.seen.insert(next) {
            continue;
        }
        if !convex(ctx, next) {
            continue;
        }
        if let Some(c) = interface(ctx.dfg, next) {
            if c.len() >= 2 {
                ctx.out.push(c);
            }
            grow(ctx, next, min_node);
        } else {
            // Interface violation can be repaired by growing (an internal
            // edge may disappear), so keep exploring a little: allow
            // growth while under the node bound.
            grow(ctx, next, min_node);
        }
        if ctx.out.len() >= ctx.limits.max_candidates {
            return;
        }
    }
}

/// Enumerates connected convex candidates of `dfg` (each with at least
/// two operations — single-op candidates rarely pay for a CI, except
/// single loads which are included).
#[must_use]
pub fn enumerate_candidates(dfg: &BlockDfg, limits: EnumerateLimits) -> Vec<Candidate> {
    if dfg.len() > 128 {
        // Mask width bound; blocks this large never appear in kernels.
        return Vec::new();
    }
    let eligible: Mask = dfg
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.eligible())
        .fold(0, |m, (i, _)| m | bit(i));
    let mut ctx = Ctx {
        reach: reachability(dfg),
        dfg,
        eligible,
        limits,
        seen: HashSet::new(),
        out: Vec::new(),
    };
    for seed in 0..dfg.len() {
        if eligible & bit(seed) == 0 {
            continue;
        }
        let set = bit(seed);
        ctx.seen.insert(set);
        // Single-node candidates: keep loads (memory inclusion is the
        // decisive advantage of patches over the LOCUS SFU).
        if let Some(c) = interface(dfg, set) {
            if dfg.nodes[seed].op == NodeOp::Load || dfg.nodes[seed].cost > 1 {
                ctx.out.push(c);
            }
        }
        grow(&mut ctx, set, seed);
    }
    ctx.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use stitch_isa::memmap::SPM_BASE;
    use stitch_isa::{ProgramBuilder, Reg};

    fn candidates_of(build: impl FnOnce(&mut ProgramBuilder)) -> (BlockDfg, Vec<Candidate>) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dfg = BlockDfg::build(&p, &cfg, &cfg.blocks[0]);
        let cands = enumerate_candidates(&dfg, EnumerateLimits::default());
        (dfg, cands)
    }

    #[test]
    fn finds_add_mul_chain() {
        let (_, cands) = candidates_of(|b| {
            b.add(Reg::R3, Reg::R1, Reg::R2);
            b.mul(Reg::R4, Reg::R3, Reg::R5);
            b.sw(Reg::R4, Reg::R10, 0); // keep the result live
        });
        assert!(
            cands.iter().any(|c| c.nodes == vec![0, 1]),
            "chain candidate missing: {cands:?}"
        );
        let chain = cands.iter().find(|c| c.nodes == vec![0, 1]).unwrap();
        // Inputs r1, r2, r5; output node 1.
        assert_eq!(chain.ext_inputs.len(), 3);
        assert_eq!(chain.outputs, vec![1]);
        // add(1) + mul(MUL_LATENCY) - 1 cycles saved.
        assert_eq!(chain.saved_cycles, stitch_cpu::MUL_LATENCY);
    }

    #[test]
    fn respects_input_constraint() {
        // A 2-node candidate with 5 distinct inputs must be rejected; the
        // tree of adds with shared inputs is fine.
        let (_, cands) = candidates_of(|b| {
            b.add(Reg::R5, Reg::R1, Reg::R2);
            b.add(Reg::R6, Reg::R3, Reg::R4);
            b.add(Reg::R7, Reg::R5, Reg::R6); // whole tree: 4 inputs - ok
            b.add(Reg::R8, Reg::R7, Reg::R9); // adding this: 5 inputs
        });
        assert!(cands.iter().any(|c| c.nodes == vec![0, 1, 2]));
        assert!(!cands.iter().any(|c| c.nodes == vec![0, 1, 2, 3]));
    }

    #[test]
    fn respects_output_constraint() {
        // Three parallel adds all escaping -> any 3-node candidate has 3
        // outputs; pairs have 2 and are allowed (connected via shared input).
        let (_, cands) = candidates_of(|b| {
            b.add(Reg::R4, Reg::R1, Reg::R2);
            b.add(Reg::R5, Reg::R1, Reg::R2);
            b.add(Reg::R6, Reg::R1, Reg::R2);
            b.sw(Reg::R4, Reg::R10, 0);
            b.sw(Reg::R5, Reg::R10, 4);
            b.sw(Reg::R6, Reg::R10, 8);
        });
        assert!(!cands
            .iter()
            .any(|c| c.nodes.len() == 3 && c.nodes.iter().all(|&n| n < 3)));
    }

    #[test]
    fn convexity_enforced() {
        // a -> (other) -> c: candidate {a, c} would be non-convex because
        // the ineligible middle node both consumes a and feeds c.
        let (dfg, cands) = candidates_of(|b| {
            b.add(Reg::R3, Reg::R1, Reg::R2); // a (node 0)
            b.addi(Reg::R4, Reg::R3, 1); // ineligible middle (node 1)
            b.add(Reg::R5, Reg::R4, Reg::R3); // c (node 2)
        });
        assert_eq!(dfg.nodes[1].op, NodeOp::Other);
        assert!(!cands.iter().any(|c| c.nodes == vec![0, 2]), "{cands:?}");
    }

    #[test]
    fn single_load_candidate_kept() {
        let (dfg, cands) = candidates_of(|b| {
            b.li(Reg::R1, i64::from(SPM_BASE));
            b.lw(Reg::R2, Reg::R1, 0);
            b.sw(Reg::R2, Reg::R3, 0); // non-SPM store keeps r2 live
        });
        let load = dfg.nodes.iter().position(|n| n.op == NodeOp::Load).unwrap();
        assert!(cands.iter().any(|c| c.nodes == vec![load]));
    }

    #[test]
    fn load_compute_store_chain() {
        let (_, cands) = candidates_of(|b| {
            b.li(Reg::R1, i64::from(SPM_BASE));
            b.addi(Reg::R2, Reg::R1, 0); // SPM ptr copy (ineligible: imm)
            b.lw(Reg::R3, Reg::R1, 0);
            b.add(Reg::R4, Reg::R3, Reg::R5);
            b.sw(Reg::R4, Reg::R1, 0);
        });
        // load -> add -> store should appear as one candidate.
        assert!(
            cands
                .iter()
                .any(|c| c.len() == 3 && c.saved_cycles == 2 && c.outputs.len() <= 1),
            "{cands:?}"
        );
    }

    #[test]
    fn two_stores_rejected() {
        let (_, cands) = candidates_of(|b| {
            b.li(Reg::R1, i64::from(SPM_BASE));
            b.addi(Reg::R9, Reg::R1, 4);
            b.mv(Reg::R2, Reg::R1);
            b.sw(Reg::R3, Reg::R2, 0);
            b.sw(Reg::R4, Reg::R2, 0);
        });
        for c in &cands {
            assert!(c.nodes.iter().filter(|&&n| n >= 3).count() <= 2);
        }
    }
}
