//! # The Stitch compiler toolchain (paper §IV, Fig 6)
//!
//! Reimplementation of the paper's automated flow:
//!
//! 1. [`profile`] — run a kernel standalone and count basic-block
//!    executions; blocks above the 5% occurrence threshold are *hot*;
//! 2. [`mod@cfg`] — control-flow graph, liveness, and the SPM-pointer analysis
//!    that decides which load/store operations may enter custom
//!    instructions (their data must live in the scratchpad, §III-C);
//! 3. [`dfg`] — dataflow graphs of hot blocks;
//! 4. [`enumerate`] — convex candidate subgraphs under the 4-input /
//!    2-output register-port constraint;
//! 5. [`mapper`] — a backtracking mapper placing candidates onto a patch
//!    (or a fused pair, or the LOCUS SFU) and synthesizing the 19-bit
//!    control words;
//! 6. [`rewrite`] — ISE selection (non-overlapping, by dynamic benefit)
//!    and code rewriting that replaces the covered operations with custom
//!    instructions;
//! 7. [`driver`] — generates all per-patch-configuration variants of a
//!    kernel and measures their speedups on the cycle-level simulator;
//! 8. [`lcs`] — the multi-round longest-common-substring analysis over hot
//!    operation chains that motivated the `{AT-MA}`/`{AT-AS}`/`{AT-SA}`
//!    patch mix (§III-A);
//! 9. [`stitcher`] — Algorithm 1: greedy bottleneck-driven allocation of
//!    patches (and inter-patch circuits, via Dijkstra) to the kernels of a
//!    multi-kernel application;
//! 10. [`verify`] — the bridge into the `stitch-verify` static-analysis
//!     suite: every compiled artifact is linted and every custom
//!     instruction independently re-proven equivalent to the subgraph it
//!     replaced, before any simulation;
//! 11. [`artifact`] — persistent, content-addressed artifacts: codecs
//!     for the compiler's output types plus the SHA-256 input keys that
//!     let a warm run reload a verified kernel instead of recompiling.

pub mod artifact;
pub mod cfg;
pub mod dfg;
pub mod driver;
pub mod enumerate;
pub mod lcs;
pub mod mapper;
pub mod profile;
pub mod rewrite;
pub mod stitcher;
pub mod verify;

pub use artifact::{
    accel_fingerprint, decode_kernel_artifact, encode_kernel_artifact, kernel_input_key,
    variants_fingerprint, verify_kernel_stored,
};
pub use cfg::{BasicBlock, Cfg};
pub use dfg::{BlockDfg, NodeOp, Src};
pub use driver::{accelerate_all, compile_kernel, AcceleratedKernel, KernelVariants};
pub use enumerate::{enumerate_candidates, Candidate, EnumerateLimits};
pub use lcs::{chain_analysis, critical_chain, ChainReport, ChainRound};
pub use mapper::{map_candidate, Mapping, OutPort, PatchConfig};
pub use profile::{profile_program, ProfileReport};
pub use rewrite::{accelerate_block, rewrite_program, select_candidates, Chosen, RewriteResult};
pub use stitcher::{
    stitch_application, stitch_application_masked, AppKernel, GrantedAccel, StitchPlan,
};
pub use verify::{
    ise_check, seed_verify_memo, verify_kernel, verify_kernel_uncached, verify_memo_hits,
};

use std::fmt;

/// Hot-block detection threshold: a block is hot when it accounts for at
/// least this fraction of dynamic instructions (paper §III-A uses a 5%
/// occurrence-rate threshold).
pub const HOT_THRESHOLD: f64 = 0.05;

/// Errors produced by the compiler flow.
#[derive(Debug, Clone, PartialEq)]
pub enum CompilerError {
    /// Profiling execution faulted.
    Profile(String),
    /// The rewritten program failed validation or simulation.
    Rewrite(String),
    /// Stitching could not produce a valid plan.
    Stitch(String),
    /// The static verifier rejected a compiled artifact; the report
    /// carries the individual diagnostics.
    Verify(stitch_verify::Report),
    /// An internal compiler invariant was violated (a bug, reported as a
    /// diagnostic instead of a panic).
    Invariant(stitch_verify::Diagnostic),
}

impl CompilerError {
    /// Builds an [`CompilerError::Invariant`] from a bare message.
    #[must_use]
    pub fn invariant(message: impl Into<String>) -> Self {
        CompilerError::Invariant(stitch_verify::Diagnostic::error(
            "COMPILE-INVARIANT",
            stitch_verify::Span::None,
            message,
        ))
    }
}

impl fmt::Display for CompilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilerError::Profile(m) => write!(f, "profiling failed: {m}"),
            CompilerError::Rewrite(m) => write!(f, "rewrite failed: {m}"),
            CompilerError::Stitch(m) => write!(f, "stitching failed: {m}"),
            CompilerError::Verify(r) => {
                write!(
                    f,
                    "verification failed ({} error(s)):\n{r}",
                    r.error_count()
                )
            }
            CompilerError::Invariant(d) => write!(f, "compiler invariant violated: {d}"),
        }
    }
}

impl std::error::Error for CompilerError {}
