//! Dataflow graphs of basic blocks.

use crate::cfg::{BasicBlock, Cfg};
use std::collections::HashMap;
use stitch_cpu::MUL_LATENCY;
use stitch_isa::instr::{Instr, Operand, Width};
use stitch_isa::op::AluOp;
use stitch_isa::program::Program;
use stitch_isa::reg::Reg;

/// Operation kind of a DFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeOp {
    /// Register-register ALU/shift/multiply operation.
    Alu(AluOp),
    /// SPM word load (offset-0 addressing, base is an SPM pointer).
    Load,
    /// SPM word store (offset-0 addressing).
    Store,
    /// Anything not eligible for custom instructions (immediates,
    /// non-SPM memory, control flow, NIC ops...).
    Other,
}

impl NodeOp {
    /// Operation class, when ISE-eligible.
    #[must_use]
    pub fn class(self) -> Option<stitch_isa::OpClass> {
        match self {
            NodeOp::Alu(op) => Some(op.class()),
            NodeOp::Load | NodeOp::Store => Some(stitch_isa::OpClass::T),
            NodeOp::Other => None,
        }
    }
}

/// A value source of a node operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// Produced by another node of the same block.
    Node(usize),
    /// The value `reg` holds at block entry.
    Ext(Reg),
}

/// One DFG node (an instruction of the block).
#[derive(Debug, Clone)]
pub struct DfgNode {
    /// Absolute instruction index in the program.
    pub instr_index: usize,
    /// Operation kind.
    pub op: NodeOp,
    /// Operand sources: ALU `[a, b]`, load `[addr]`, store `[addr, data]`;
    /// empty for `Other` nodes (their dependencies still appear as edges).
    pub srcs: Vec<Src>,
    /// Destination register, if any.
    pub def: Option<Reg>,
    /// Execute cycles on the base pipeline.
    pub cost: u32,
    /// Ordering predecessors (memory/sequencing edges), node ids.
    pub order_preds: Vec<usize>,
    /// Data predecessors of `Other` nodes (all register inputs).
    pub data_preds: Vec<usize>,
    /// Whether the underlying instruction touches memory (any kind).
    pub is_mem: bool,
    /// Whether it writes memory (store/recv) or sends.
    pub is_mem_write: bool,
}

impl DfgNode {
    /// `true` when the node may enter a custom instruction.
    #[must_use]
    pub fn eligible(&self) -> bool {
        !matches!(self.op, NodeOp::Other)
    }
}

/// The DFG of one basic block.
#[derive(Debug, Clone)]
pub struct BlockDfg {
    /// Owning block id.
    pub block_id: usize,
    /// Nodes in block order (node id = position).
    pub nodes: Vec<DfgNode>,
    /// Consumers of each node's value (data edges).
    pub consumers: Vec<Vec<usize>>,
    /// Whether each node's value is live after the block ends.
    pub live_after_block: Vec<bool>,
}

impl BlockDfg {
    /// Builds the DFG of `block` within `program`.
    ///
    /// Eligibility of loads/stores uses the CFG's SPM-pointer facts
    /// (paper §III-C: only scratchpad-resident data may be accessed from
    /// inside custom instructions).
    #[must_use]
    pub fn build(program: &Program, _cfg: &Cfg, block: &BasicBlock) -> Self {
        let instrs = &program.instrs;
        let mut spm_ptrs = block.spm_ptrs_in.clone();
        // Last in-block definition of each register.
        let mut last_def: HashMap<Reg, usize> = HashMap::new();
        let mut nodes: Vec<DfgNode> = Vec::with_capacity(block.len());
        let mut consumers: Vec<Vec<usize>> = Vec::with_capacity(block.len());
        let mut last_store: Option<usize> = None;
        let mut loads_since_store: Vec<usize> = Vec::new();

        let src_of = |r: Reg, last_def: &HashMap<Reg, usize>| -> Src {
            match last_def.get(&r) {
                Some(&n) => Src::Node(n),
                None => Src::Ext(r),
            }
        };

        for (nid, i) in block.range().enumerate() {
            let instr = &instrs[i];
            let (op, srcs): (NodeOp, Vec<Src>) = match instr {
                Instr::Alu {
                    op,
                    rs1,
                    src2: Operand::Reg(rs2),
                    ..
                } if *op != AluOp::Mulh => (
                    NodeOp::Alu(*op),
                    vec![src_of(*rs1, &last_def), src_of(*rs2, &last_def)],
                ),
                Instr::Load {
                    w: Width::Word,
                    base,
                    offset: 0,
                    ..
                } if spm_ptrs.contains(base) => (NodeOp::Load, vec![src_of(*base, &last_def)]),
                Instr::Store {
                    w: Width::Word,
                    rs,
                    base,
                    offset: 0,
                } if spm_ptrs.contains(base) => (
                    NodeOp::Store,
                    vec![src_of(*base, &last_def), src_of(*rs, &last_def)],
                ),
                _ => (NodeOp::Other, Vec::new()),
            };

            // Data predecessors (all kinds, for scheduling).
            let mut data_preds: Vec<usize> = instr
                .uses()
                .iter()
                .filter_map(|r| last_def.get(r).copied())
                .collect();
            data_preds.sort_unstable();
            data_preds.dedup();

            // Memory/sequencing order edges.
            let mut order_preds = Vec::new();
            let is_mem = matches!(
                instr,
                Instr::Load { .. } | Instr::Store { .. } | Instr::Send { .. } | Instr::Recv { .. }
            );
            let is_write = matches!(
                instr,
                Instr::Store { .. } | Instr::Recv { .. } | Instr::Send { .. }
            );
            if is_mem {
                if let Some(s) = last_store {
                    order_preds.push(s);
                }
                if is_write {
                    order_preds.extend(loads_since_store.iter().copied());
                }
            }
            // Terminators order after everything (handled by scheduler
            // keeping them last; no explicit edges needed).

            let cost = match instr {
                Instr::Alu { op, .. } if op.class() == stitch_isa::OpClass::M => MUL_LATENCY,
                _ => 1,
            };

            // Register consumers bookkeeping.
            for r in instr.uses() {
                if let Some(&p) = last_def.get(&r) {
                    consumers[p].push(nid);
                }
            }

            nodes.push(DfgNode {
                instr_index: i,
                op,
                srcs,
                def: instr.defs().first().copied(),
                cost,
                order_preds,
                data_preds,
                is_mem,
                is_mem_write: is_write,
            });
            consumers.push(Vec::new());

            if is_write {
                last_store = Some(nid);
                loads_since_store.clear();
            } else if is_mem {
                loads_since_store.push(nid);
            }
            for d in instr.defs() {
                last_def.insert(d, nid);
            }
            // Update SPM facts instruction by instruction.
            spm_ptrs = crate::cfg::transfer_spm(&spm_ptrs, &instrs[i..=i]);
        }

        // Liveness beyond the block: a node's value escapes when its def
        // register is not redefined later in the block and is in live_out.
        let mut live_after = vec![false; nodes.len()];
        for (nid, node) in nodes.iter().enumerate() {
            if let Some(d) = node.def {
                let redefined = nodes[nid + 1..].iter().any(|m| m.def == Some(d));
                live_after[nid] = !redefined && block.live_out.contains(&d);
            }
        }

        BlockDfg {
            block_id: block.id,
            nodes,
            consumers,
            live_after_block: live_after,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for an empty block.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Data+order predecessor ids of a node (deduplicated).
    #[must_use]
    pub fn preds(&self, nid: usize) -> Vec<usize> {
        let n = &self.nodes[nid];
        let mut p: Vec<usize> = n
            .srcs
            .iter()
            .filter_map(|s| match s {
                Src::Node(i) => Some(*i),
                Src::Ext(_) => None,
            })
            .chain(n.order_preds.iter().copied())
            .chain(n.data_preds.iter().copied())
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_isa::memmap::SPM_BASE;
    use stitch_isa::ProgramBuilder;

    fn dfg_of(build: impl FnOnce(&mut ProgramBuilder)) -> (Program, Cfg, BlockDfg) {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dfg = BlockDfg::build(&p, &cfg, &cfg.blocks[0]);
        (p, cfg, dfg)
    }

    #[test]
    fn chains_data_edges() {
        let (_, _, dfg) = dfg_of(|b| {
            b.add(Reg::R3, Reg::R1, Reg::R2);
            b.mul(Reg::R4, Reg::R3, Reg::R3);
            b.sub(Reg::R5, Reg::R4, Reg::R1);
        });
        assert_eq!(
            dfg.nodes[0].srcs,
            vec![Src::Ext(Reg::R1), Src::Ext(Reg::R2)]
        );
        assert_eq!(dfg.nodes[1].srcs, vec![Src::Node(0), Src::Node(0)]);
        assert_eq!(dfg.nodes[2].srcs, vec![Src::Node(1), Src::Ext(Reg::R1)]);
        assert_eq!(dfg.consumers[0], vec![1, 1]);
        assert!(dfg.nodes[1].cost > 1, "multiply is multi-cycle");
    }

    #[test]
    fn spm_load_is_eligible_dram_is_not() {
        let (_, _, dfg) = dfg_of(|b| {
            b.li(Reg::R1, i64::from(SPM_BASE));
            b.li(Reg::R2, 0x2000);
            b.lw(Reg::R3, Reg::R1, 0); // SPM -> eligible
            b.lw(Reg::R4, Reg::R2, 0); // DRAM -> not
            b.lw(Reg::R5, Reg::R1, 8); // non-zero offset -> not
        });
        let load_nodes: Vec<_> = dfg.nodes.iter().filter(|n| n.op == NodeOp::Load).collect();
        assert_eq!(load_nodes.len(), 1);
        assert!(dfg
            .nodes
            .iter()
            .any(|n| n.op == NodeOp::Other && n.instr_index >= 2));
    }

    #[test]
    fn store_ordering_edges() {
        let (_, _, dfg) = dfg_of(|b| {
            b.li(Reg::R1, i64::from(SPM_BASE));
            b.lw(Reg::R2, Reg::R1, 0);
            b.sw(Reg::R2, Reg::R1, 0); // store after load: ordered
            b.lw(Reg::R3, Reg::R1, 0); // load after store: ordered
        });
        let store_id = dfg
            .nodes
            .iter()
            .position(|n| n.op == NodeOp::Store)
            .unwrap();
        let last_load = dfg.len() - 2; // before halt
        assert!(dfg.nodes[store_id].order_preds.contains(&(store_id - 1)));
        assert!(dfg.nodes[last_load].order_preds.contains(&store_id));
    }

    #[test]
    fn live_after_block() {
        let mut b = ProgramBuilder::new();
        b.add(Reg::R3, Reg::R1, Reg::R2); // dead after block? no: used below
        b.add(Reg::R4, Reg::R3, Reg::R3); // r4 live (stored later)
        b.add(Reg::R3, Reg::R4, Reg::R4); // redefines r3
        let skip = b.label();
        b.jump(skip);
        b.bind(skip).unwrap();
        b.sw(Reg::R3, Reg::R5, 0);
        b.sw(Reg::R4, Reg::R5, 4);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dfg = BlockDfg::build(&p, &cfg, &cfg.blocks[0]);
        assert!(
            !dfg.live_after_block[0],
            "first r3 def is redefined in-block"
        );
        assert!(dfg.live_after_block[1], "r4 escapes");
        assert!(dfg.live_after_block[2], "second r3 def escapes");
    }

    #[test]
    fn immediates_are_ineligible() {
        let (_, _, dfg) = dfg_of(|b| {
            b.addi(Reg::R1, Reg::R1, 1);
            b.add(Reg::R2, Reg::R1, Reg::R1);
        });
        assert_eq!(dfg.nodes[0].op, NodeOp::Other);
        assert!(dfg.nodes[1].eligible());
        // Scheduling dependency still tracked via data_preds.
        assert_eq!(dfg.nodes[1].data_preds, vec![0]);
    }
}
