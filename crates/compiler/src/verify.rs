//! Bridge between the compiler's internal types and the `stitch-verify`
//! static-analysis suite.
//!
//! The verifier deliberately knows nothing about the compiler (no
//! dependency cycle): this module converts a chosen candidate and its
//! mapping into the neutral [`IseCheck`] obligation, and
//! [`verify_kernel`] aggregates the full pre-simulation report for one
//! kernel — W32 dataflow lints over the baseline and every rewritten
//! variant, plus an independent equivalence check of every custom
//! instruction.

use crate::dfg::{BlockDfg, NodeOp, Src};
use crate::driver::KernelVariants;
use crate::mapper::OutPort;
use crate::rewrite::Chosen;
use crate::CompilerError;
use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::sync::{Mutex, OnceLock};
use stitch_verify::{
    check_ise, check_program, IseCheck, IseMapping, IseNode, IseOp, IseOperand, IseOut,
    IseSubgraph, Report,
};

/// Converts a chosen candidate + mapping into the verifier's neutral
/// equivalence obligation.
///
/// # Errors
///
/// [`CompilerError::Invariant`] when the candidate references state the
/// DFG does not have (a compiler bug, not a user error).
pub fn ise_check(
    name: &str,
    ci: u16,
    dfg: &BlockDfg,
    chosen: &Chosen,
) -> Result<IseCheck, CompilerError> {
    let cand = &chosen.candidate;
    let local_of = |block_nid: usize| cand.nodes.iter().position(|&n| n == block_nid);
    let ext_of = |s: &Src| cand.ext_inputs.iter().position(|e| e == s);

    let operand = |s: &Src| -> Result<IseOperand, CompilerError> {
        if let Src::Node(m) = s {
            if let Some(local) = local_of(*m) {
                return Ok(IseOperand::Node(local));
            }
        }
        ext_of(s).map(IseOperand::Ext).ok_or_else(|| {
            CompilerError::invariant(format!(
                "{name}: operand {s:?} is neither a member nor an external input"
            ))
        })
    };

    let mut nodes = Vec::with_capacity(cand.nodes.len());
    for &nid in &cand.nodes {
        let node = dfg.nodes.get(nid).ok_or_else(|| {
            CompilerError::invariant(format!("{name}: candidate node {nid} outside the DFG"))
        })?;
        let op = match node.op {
            NodeOp::Alu(op) => IseOp::Alu(op),
            NodeOp::Load => IseOp::Load,
            NodeOp::Store => IseOp::Store,
            NodeOp::Other => {
                return Err(CompilerError::invariant(format!(
                    "{name}: ineligible node {nid} inside a candidate"
                )))
            }
        };
        let srcs = node.srcs.iter().map(&operand).collect::<Result<_, _>>()?;
        nodes.push(IseNode { op, srcs });
    }

    let mut input_slots = [None; 4];
    for (slot, src) in chosen.mapping.input_slots.iter().enumerate() {
        if let Some(s) = src {
            input_slots[slot] = Some(ext_of(s).ok_or_else(|| {
                CompilerError::invariant(format!(
                    "{name}: input slot {slot} wires {s:?}, which is not an external input"
                ))
            })?);
        }
    }

    let mut outputs = Vec::with_capacity(chosen.mapping.outputs.len());
    for &(block_nid, port) in &chosen.mapping.outputs {
        let local = local_of(block_nid).ok_or_else(|| {
            CompilerError::invariant(format!("{name}: output node {block_nid} is not a member"))
        })?;
        let port = match port {
            OutPort::Out0 => IseOut::Out0,
            OutPort::Out1 => IseOut::Out1,
        };
        outputs.push((local, port));
    }

    Ok(IseCheck {
        name: name.to_string(),
        ci,
        subgraph: IseSubgraph {
            nodes,
            n_ext: cand.ext_inputs.len(),
        },
        mapping: IseMapping {
            controls: chosen.mapping.controls.clone(),
            input_slots,
            outputs,
        },
    })
}

/// Streams a value's debug rendering through two independent 64-bit
/// hashes without materializing the string. FNV-1a for the first; the
/// second seeds differently and folds through a splitmix-style odd
/// multiplier, so a collision would have to defeat both at once.
struct ContentHasher {
    a: u64,
    b: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const ALT_OFFSET: u64 = 0x9e37_79b9_7f4a_7c15;
const ALT_PRIME: u64 = 0xff51_afd7_ed55_8ccd;

impl fmt::Write for ContentHasher {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &byte in s.as_bytes() {
            self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.b = (self.b.rotate_left(23) ^ u64::from(byte)).wrapping_mul(ALT_PRIME);
        }
        Ok(())
    }
}

/// Content key of a compiled kernel: a double 64-bit hash over the
/// (deterministic) debug rendering of the full artifact set — baseline,
/// variant programs, bindings, and ISE obligations all participate, so
/// any change to what the verifier would see changes the key.
fn content_key(kv: &KernelVariants) -> (u64, u64) {
    let mut h = ContentHasher {
        a: FNV_OFFSET,
        b: ALT_OFFSET,
    };
    // Writing to the hasher is infallible.
    let _ = write!(h, "{kv:?}");
    (h.a, h.b)
}

/// Process-global memo of [`verify_kernel`] reports, keyed by artifact
/// content. Shared across workbench clones (sweep workers re-verify the
/// same prewarmed kernels), bounded by the number of distinct kernels a
/// process compiles.
fn memo() -> &'static Mutex<HashMap<(u64, u64), Report>> {
    static MEMO: OnceLock<Mutex<HashMap<(u64, u64), Report>>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Number of [`verify_kernel`] calls served from the in-process memo
/// (diagnostic, e.g. for benchmark reports).
#[must_use]
pub fn verify_memo_hits() -> u64 {
    *hits_counter()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn hits_counter() -> &'static Mutex<u64> {
    static HITS: OnceLock<Mutex<u64>> = OnceLock::new();
    HITS.get_or_init(|| Mutex::new(0))
}

/// Full static verification of one compiled kernel: dataflow lints over
/// the baseline and every variant program, plus semantic-equivalence
/// checks of every custom instruction the variants carry.
///
/// The returned report is *clean* ([`Report::is_clean`]) for every
/// artifact the compiler emits; the driver gates on this before any
/// measurement, and the fuzz harness re-checks it as an oracle.
///
/// Reports are memoized in-process by artifact content hash, so
/// repeated gates on identical kernels (sweep workers each cloning a
/// prewarmed workbench) are cache hits; use
/// [`verify_kernel_uncached`] to force a re-analysis.
#[must_use]
pub fn verify_kernel(kv: &KernelVariants) -> Report {
    let key = content_key(kv);
    {
        let cache = memo()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(report) = cache.get(&key) {
            let report = report.clone();
            drop(cache);
            *hits_counter()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
            return report;
        }
    }
    let report = verify_kernel_uncached(kv);
    memo()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(key, report.clone());
    report
}

/// Seeds the in-process memo with an already-known report for `kv`,
/// e.g. one reloaded from the persistent artifact store — so later
/// [`verify_kernel`] gates on the same content stay in-process hits.
pub fn seed_verify_memo(kv: &KernelVariants, report: Report) {
    memo()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(content_key(kv), report);
}

/// [`verify_kernel`] without the in-process memo: always re-runs every
/// check. The benchmark harness uses this to time pure verification.
#[must_use]
pub fn verify_kernel_uncached(kv: &KernelVariants) -> Report {
    let mut report = check_program(&kv.baseline);
    for v in &kv.variants {
        report.merge(check_program(&v.program));
        for c in &v.ise_checks {
            report.merge(check_ise(c));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::enumerate::{enumerate_candidates, EnumerateLimits};
    use crate::mapper::{map_candidate, PatchConfig};
    use stitch_isa::{ProgramBuilder, Reg};
    use stitch_patch::PatchClass;

    #[test]
    fn adapter_round_trips_a_real_mapping() {
        let mut b = ProgramBuilder::new();
        b.mul(Reg::R4, Reg::R1, Reg::R2);
        b.add(Reg::R5, Reg::R4, Reg::R3);
        b.sw(Reg::R5, Reg::R10, 0);
        b.halt();
        let p = b.build().unwrap();
        let cfg = Cfg::build(&p);
        let dfg = BlockDfg::build(&p, &cfg, &cfg.blocks[0]);
        let cands = enumerate_candidates(&dfg, EnumerateLimits::default());
        let chosen = cands
            .iter()
            .find_map(|c| {
                (c.len() == 2)
                    .then(|| map_candidate(&dfg, c, PatchConfig::Single(PatchClass::AtMa)))
                    .flatten()
                    .map(|m| Chosen {
                        candidate: c.clone(),
                        mapping: m,
                    })
            })
            .expect("a 2-node mul+add candidate maps onto {AT-MA}");
        let check = ise_check("t", 0, &dfg, &chosen).expect("adapter");
        assert_eq!(check.subgraph.nodes.len(), 2);
        let r = check_ise(&check);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn verify_kernel_memoizes_by_content() {
        use crate::{compile_kernel, PatchConfig};
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 9);
        let top = b.bound_label();
        b.mul(Reg::R4, Reg::R1, Reg::R1);
        b.add(Reg::R5, Reg::R4, Reg::R1);
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(stitch_isa::Cond::Ne, Reg::R1, Reg::R0, top);
        b.sw(Reg::R5, Reg::R10, 0);
        b.halt();
        let p = b.build().expect("program");
        let kv = compile_kernel(
            "memo-test",
            &p,
            &[PatchConfig::Single(PatchClass::AtMa)],
            None,
        )
        .expect("compiles");
        let before = verify_memo_hits();
        let first = verify_kernel(&kv);
        let second = verify_kernel(&kv);
        assert_eq!(first, second);
        assert_eq!(first, verify_kernel_uncached(&kv));
        assert!(
            verify_memo_hits() > before,
            "second call must be a memo hit"
        );
        // A distinct artifact must key differently, not collide.
        let kv2 = compile_kernel(
            "memo-test-2",
            &p,
            &[PatchConfig::Single(PatchClass::AtSa)],
            None,
        )
        .expect("compiles");
        assert_ne!(super::content_key(&kv), super::content_key(&kv2));
    }
}
