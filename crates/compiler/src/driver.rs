//! End-to-end kernel acceleration driver.
//!
//! For one kernel program the driver runs the whole Fig-6 flow for every
//! patch configuration: profile → hot blocks → candidates → map → select
//! → rewrite, then *measures* each variant's cycle count on the
//! cycle-level chip simulator (single tile, correct cache/SPM geometry,
//! a reserved one-hop circuit for fused pairs). It also differentially
//! checks that each accelerated variant computes the same output region
//! as the original program.

use crate::cfg::Cfg;
use crate::dfg::BlockDfg;
use crate::enumerate::{enumerate_candidates, EnumerateLimits};
use crate::mapper::{map_candidate, PatchConfig};
use crate::profile::profile_program;
use crate::rewrite::{rewrite_program, select_candidates, Chosen};
use crate::{CompilerError, HOT_THRESHOLD};
use std::collections::HashMap;
use stitch_isa::program::Program;
use stitch_mem::TileMemoryConfig;
use stitch_noc::TileId;
use stitch_patch::{ControlWord, PatchClass};
use stitch_sim::{Chip, ChipConfig, CiBinding, Topology};

/// Cycle budget for measurement runs.
const MEASURE_BUDGET: u64 = 200_000_000;

/// An accelerated variant of one kernel.
#[derive(Debug, Clone)]
pub struct AcceleratedKernel {
    /// Configuration compiled for.
    pub config: PatchConfig,
    /// The rewritten program.
    pub program: Program,
    /// Control words per custom-instruction id.
    pub ci_controls: HashMap<u16, Vec<ControlWord>>,
    /// Static custom instructions inserted.
    pub custom_count: usize,
    /// Measured standalone cycles.
    pub cycles: u64,
    /// Per-custom-instruction equivalence obligations, re-checkable at
    /// any time via `stitch_verify::check_ise`.
    pub ise_checks: Vec<stitch_verify::IseCheck>,
}

impl AcceleratedKernel {
    /// Builds the simulator bindings for this variant when the kernel
    /// runs on `tile` with optional fused `partner`.
    ///
    /// # Errors
    ///
    /// [`CompilerError::Invariant`] when a fused variant is bound without
    /// a partner tile or a control-word list has an impossible length.
    pub fn bindings(
        &self,
        partner: Option<TileId>,
    ) -> Result<HashMap<u16, CiBinding>, CompilerError> {
        self.ci_controls
            .iter()
            .map(|(id, controls)| {
                let b = match controls.as_slice() {
                    [c] => CiBinding::Single { control: c.clone() },
                    [c1, c2] => CiBinding::Fused {
                        first: c1.clone(),
                        partner: partner.ok_or_else(|| {
                            CompilerError::invariant(format!(
                                "ci{id}: fused variant bound without a partner tile"
                            ))
                        })?,
                        second: c2.clone(),
                    },
                    other => {
                        return Err(CompilerError::invariant(format!(
                            "ci{id}: {} control words (1 or 2 expected)",
                            other.len()
                        )))
                    }
                };
                Ok((*id, b))
            })
            .collect()
    }

    /// `true` when any custom instruction is fused.
    #[must_use]
    pub fn is_fused(&self) -> bool {
        matches!(self.config, PatchConfig::Pair(..))
            && self.ci_controls.values().any(|c| c.len() == 2)
    }
}

/// All compiled variants of one kernel, plus the baseline measurement.
#[derive(Debug, Clone)]
pub struct KernelVariants {
    /// Kernel name.
    pub name: String,
    /// The unmodified program.
    pub baseline: Program,
    /// Baseline cycles on the (no-accelerator) chip.
    pub baseline_cycles: u64,
    /// Variants that actually contain custom instructions and were
    /// verified, by configuration.
    pub variants: Vec<AcceleratedKernel>,
}

impl KernelVariants {
    /// The variant for a configuration, if it exists.
    #[must_use]
    pub fn variant(&self, config: PatchConfig) -> Option<&AcceleratedKernel> {
        self.variants.iter().find(|v| v.config == config)
    }

    /// Best (lowest-cycle) variant among `allowed`.
    #[must_use]
    pub fn best_among(&self, allowed: impl Fn(PatchConfig) -> bool) -> Option<&AcceleratedKernel> {
        self.variants
            .iter()
            .filter(|v| allowed(v.config))
            .min_by_key(|v| v.cycles)
    }

    /// Speedup of a configuration over the baseline.
    #[must_use]
    pub fn speedup(&self, config: PatchConfig) -> Option<f64> {
        self.variant(config)
            .map(|v| self.baseline_cycles as f64 / v.cycles as f64)
    }
}

/// Compiles a kernel for every configuration and measures all variants.
///
/// `output` optionally names a `(address, words)` region compared between
/// the baseline and each variant run (differential correctness check).
///
/// # Errors
///
/// Propagates profiling/rewrite failures; a variant whose output region
/// differs from the baseline is reported as a rewrite error.
pub fn compile_kernel(
    name: &str,
    program: &Program,
    configs: &[PatchConfig],
    output: Option<(u32, usize)>,
) -> Result<KernelVariants, CompilerError> {
    // The input program must itself pass the dataflow lints before the
    // flow spends any time on it.
    let baseline_report = stitch_verify::check_program(program);
    if !baseline_report.is_clean() {
        return Err(CompilerError::Verify(baseline_report));
    }
    let accel = accelerate_all(name, program, configs)?;
    let (baseline_cycles, expected) = measure_baseline(program, output)?;
    let mut variants = Vec::new();
    for a in accel {
        let mut a = a;
        let (cycles, got) = measure_variant(&a, output)?;
        if got != expected {
            return Err(CompilerError::Rewrite(format!(
                "{name}/{}: accelerated output differs from baseline",
                a.config
            )));
        }
        a.cycles = cycles;
        variants.push(a);
    }
    Ok(KernelVariants {
        name: name.to_string(),
        baseline: program.clone(),
        baseline_cycles,
        variants,
    })
}

/// Runs the compile flow (no measurement) for each configuration,
/// keeping variants that inserted at least one custom instruction.
///
/// # Errors
///
/// Propagates profiling and rewrite failures.
pub fn accelerate_all(
    name: &str,
    program: &Program,
    configs: &[PatchConfig],
) -> Result<Vec<AcceleratedKernel>, CompilerError> {
    let profile = profile_program(program, MEASURE_BUDGET)?;
    let cfg = Cfg::build(program);
    let hot = profile.hot_blocks(&cfg, HOT_THRESHOLD);

    let mut dfgs: HashMap<usize, BlockDfg> = HashMap::new();
    let mut candidates: HashMap<usize, Vec<crate::enumerate::Candidate>> = HashMap::new();
    for &b in &hot {
        let dfg = BlockDfg::build(program, &cfg, &cfg.blocks[b]);
        let cands = enumerate_candidates(&dfg, EnumerateLimits::default());
        candidates.insert(b, cands);
        dfgs.insert(b, dfg);
    }

    let mut out = Vec::new();
    for &config in configs {
        let mut plans: HashMap<usize, Vec<Chosen>> = HashMap::new();
        for &b in &hot {
            let dfg = &dfgs[&b];
            let mapped: Vec<Chosen> = candidates[&b]
                .iter()
                .filter_map(|c| {
                    // A kernel granted a fused pair still owns its local
                    // patch: candidates that do not need both patches map
                    // onto the first patch alone.
                    let m = map_candidate(dfg, c, config).or_else(|| match config {
                        PatchConfig::Pair(c1, _) => map_candidate(dfg, c, PatchConfig::Single(c1)),
                        _ => None,
                    })?;
                    Some(Chosen {
                        candidate: c.clone(),
                        mapping: m,
                    })
                })
                .collect();
            plans.insert(b, select_candidates(dfg, mapped));
        }
        if plans.values().all(Vec::is_empty) {
            continue;
        }
        let rewritten = rewrite_program(program, &cfg, &dfgs, &plans, name)?;
        if rewritten.custom_count == 0 {
            continue;
        }
        // Static verification gate: the rewritten program must pass the
        // W32 dataflow lints and every custom instruction must be
        // independently proven equivalent to the subgraph it replaced.
        let mut report = stitch_verify::check_program(&rewritten.program);
        for check in &rewritten.ise_checks {
            report.merge(stitch_verify::check_ise(check));
        }
        if !report.is_clean() {
            return Err(CompilerError::Verify(report));
        }
        out.push(AcceleratedKernel {
            config,
            program: rewritten.program,
            ci_controls: rewritten.ci_controls,
            custom_count: rewritten.custom_count,
            cycles: 0,
            ise_checks: rewritten.ise_checks,
        });
    }
    Ok(out)
}

/// Chip geometry used to measure one configuration.
fn measurement_chip(config: Option<PatchConfig>) -> ChipConfig {
    let topo = Topology::stitch_4x4();
    match config {
        None => ChipConfig::baseline_16(),
        Some(PatchConfig::Locus) => ChipConfig {
            topo,
            tile_mem: TileMemoryConfig::baseline(),
            patches: vec![Some(PatchClass::LocusSfu); 16],
        },
        Some(PatchConfig::Single(c)) => {
            let mut patches = vec![None; 16];
            patches[0] = Some(c);
            ChipConfig {
                topo,
                tile_mem: TileMemoryConfig::stitch(),
                patches,
            }
        }
        Some(PatchConfig::Pair(c1, c2)) => {
            let mut patches = vec![None; 16];
            patches[0] = Some(c1);
            patches[1] = Some(c2);
            ChipConfig {
                topo,
                tile_mem: TileMemoryConfig::stitch(),
                patches,
            }
        }
    }
}

fn measure_baseline(
    program: &Program,
    output: Option<(u32, usize)>,
) -> Result<(u64, Vec<u32>), CompilerError> {
    let mut chip = Chip::new(measurement_chip(None));
    chip.load_program(TileId(0), program).unwrap();
    let summary = chip
        .run(MEASURE_BUDGET)
        .map_err(|e| CompilerError::Profile(format!("baseline measurement: {e}")))?;
    let out = output.map_or_else(Vec::new, |(a, n)| chip.peek_words(TileId(0), a, n));
    Ok((summary.cycles, out))
}

fn measure_variant(
    variant: &AcceleratedKernel,
    output: Option<(u32, usize)>,
) -> Result<(u64, Vec<u32>), CompilerError> {
    let mut chip = Chip::new(measurement_chip(Some(variant.config)));
    if matches!(variant.config, PatchConfig::Pair(..)) {
        chip.reserve_circuit(TileId(0), TileId(1))
            .map_err(|e| CompilerError::Rewrite(format!("measurement circuit: {e}")))?;
    }
    let partner = matches!(variant.config, PatchConfig::Pair(..)).then_some(TileId(1));
    chip.load_kernel(TileId(0), &variant.program, variant.bindings(partner)?)
        .map_err(|e| CompilerError::Rewrite(format!("load variant: {e}")))?;
    let summary = chip
        .run(MEASURE_BUDGET)
        .map_err(|e| CompilerError::Rewrite(format!("variant measurement: {e}")))?;
    let out = output.map_or_else(Vec::new, |(a, n)| chip.peek_words(TileId(0), a, n));
    Ok((summary.cycles, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_isa::memmap::SPM_BASE;
    use stitch_isa::{Cond, ProgramBuilder, Reg};

    /// A small dot-product-flavoured kernel: SPM-resident arrays,
    /// multiply-accumulate loop, DRAM output.
    fn dot_kernel(n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        // Fill SPM: a[i] = i+1, b[i] = 2i+1.
        b.li(Reg::R1, i64::from(SPM_BASE));
        b.li(Reg::R2, n);
        b.li(Reg::R3, 1); // a value
        b.li(Reg::R4, 1); // b value
        b.li(Reg::R20, 4); // stride
        b.mv(Reg::R5, Reg::R1); // a ptr
        b.addi(Reg::R6, Reg::R1, (n * 4) as i32); // b ptr
        let fill = b.bound_label();
        b.sw(Reg::R3, Reg::R5, 0);
        b.sw(Reg::R4, Reg::R6, 0);
        b.addi(Reg::R3, Reg::R3, 1);
        b.addi(Reg::R4, Reg::R4, 2);
        b.add(Reg::R5, Reg::R5, Reg::R20);
        b.add(Reg::R6, Reg::R6, Reg::R20);
        b.addi(Reg::R2, Reg::R2, -1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, fill);
        // acc = sum a[i]*b[i], hot loop with register addressing.
        b.li(Reg::R2, n);
        b.mv(Reg::R5, Reg::R1);
        b.addi(Reg::R6, Reg::R1, (n * 4) as i32);
        b.li(Reg::R7, 0); // acc
        let loop_ = b.bound_label();
        b.lw(Reg::R8, Reg::R5, 0);
        b.lw(Reg::R9, Reg::R6, 0);
        b.mul(Reg::R10, Reg::R8, Reg::R9);
        b.add(Reg::R7, Reg::R7, Reg::R10);
        b.add(Reg::R5, Reg::R5, Reg::R20);
        b.add(Reg::R6, Reg::R6, Reg::R20);
        b.addi(Reg::R2, Reg::R2, -1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, loop_);
        b.li(Reg::R11, 0x4000);
        b.sw(Reg::R7, Reg::R11, 0);
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn dot_kernel_accelerates_and_verifies() {
        let program = dot_kernel(32);
        let kv = compile_kernel(
            "dot",
            &program,
            &[PatchConfig::Single(PatchClass::AtMa), PatchConfig::Locus],
            Some((0x4000, 1)),
        )
        .unwrap();
        assert!(kv.baseline_cycles > 0);
        let atma = kv
            .variant(PatchConfig::Single(PatchClass::AtMa))
            .expect("AT-MA variant");
        assert!(atma.custom_count >= 1);
        assert!(
            atma.cycles < kv.baseline_cycles,
            "acceleration must help: {} vs {}",
            atma.cycles,
            kv.baseline_cycles
        );
        let s = kv.speedup(PatchConfig::Single(PatchClass::AtMa)).unwrap();
        assert!(s > 1.05, "speedup {s}");
        // LOCUS cannot include the loads, so if it produced a variant it
        // must not beat {AT-MA} here.
        if let Some(l) = kv.variant(PatchConfig::Locus) {
            assert!(l.cycles >= atma.cycles, "memory inclusion should win");
        }
    }

    #[test]
    fn fused_pair_variant_measures() {
        // Kernel with a long A-M-A-S-A chain that only a pair covers
        // fully: t = r2 + acc; u = t*t; v = u - t; w = v >> r4; acc += w.
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 200);
        b.li(Reg::R2, 3);
        b.li(Reg::R4, 2);
        b.li(Reg::R7, 0);
        let loop_ = b.bound_label();
        b.add(Reg::R10, Reg::R2, Reg::R7);
        b.mul(Reg::R11, Reg::R10, Reg::R10);
        b.sub(Reg::R12, Reg::R11, Reg::R10);
        b.alu(stitch_isa::AluOp::Srl, Reg::R13, Reg::R12, Reg::R4);
        b.add(Reg::R7, Reg::R7, Reg::R13);
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, loop_);
        b.li(Reg::R14, 0x4000);
        b.sw(Reg::R7, Reg::R14, 0);
        b.halt();
        let program = b.build().unwrap();
        let kv = compile_kernel(
            "chain",
            &program,
            &[
                PatchConfig::Single(PatchClass::AtMa),
                PatchConfig::Pair(PatchClass::AtMa, PatchClass::AtSa),
            ],
            Some((0x4000, 1)),
        )
        .unwrap();
        let pair = kv
            .variant(PatchConfig::Pair(PatchClass::AtMa, PatchClass::AtSa))
            .expect("pair variant");
        assert!(pair.is_fused());
        let single = kv
            .variant(PatchConfig::Single(PatchClass::AtMa))
            .expect("single");
        assert!(
            pair.cycles <= single.cycles,
            "fusion should not lose: pair {} vs single {}",
            pair.cycles,
            single.cycles
        );
        assert!(pair.cycles < kv.baseline_cycles);
    }

    #[test]
    fn best_among_filters() {
        let program = dot_kernel(16);
        let kv = compile_kernel(
            "dot16",
            &program,
            &[
                PatchConfig::Single(PatchClass::AtMa),
                PatchConfig::Single(PatchClass::AtAs),
            ],
            Some((0x4000, 1)),
        )
        .unwrap();
        let best = kv
            .best_among(|c| matches!(c, PatchConfig::Single(_)))
            .expect("some single");
        assert!(best.cycles <= kv.baseline_cycles);
    }
}
