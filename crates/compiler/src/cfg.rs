//! Control-flow graph, liveness and SPM-pointer analysis.

use std::collections::{BTreeSet, HashMap};
use stitch_isa::instr::Instr;
use stitch_isa::memmap::SPM_BASE;
use stitch_isa::program::Program;
use stitch_isa::reg::Reg;

/// A maximal straight-line instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Index of this block.
    pub id: usize,
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Registers live on entry.
    pub live_in: BTreeSet<Reg>,
    /// Registers live on exit.
    pub live_out: BTreeSet<Reg>,
    /// Registers known to hold SPM pointers on entry.
    pub spm_ptrs_in: BTreeSet<Reg>,
}

impl BasicBlock {
    /// Instruction index range.
    #[must_use]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the block is empty (should not occur in valid CFGs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The control-flow graph of one program.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks in program order.
    pub blocks: Vec<BasicBlock>,
    /// Map from instruction index to owning block id.
    pub block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `program`, including liveness and SPM-pointer
    /// facts.
    ///
    /// Indirect jumps (`jalr`) are treated as possibly reaching any block
    /// leader, making liveness conservative; kernels in this workspace use
    /// `jalr` only for returns.
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let instrs = &program.instrs;
        let n = instrs.len();

        // Leaders: instruction 0, branch/jump targets, instruction after a
        // terminator.
        let mut leaders = BTreeSet::new();
        if n > 0 {
            leaders.insert(0usize);
        }
        for (i, instr) in instrs.iter().enumerate() {
            match instr {
                Instr::Branch { target, .. } | Instr::Jal { target, .. } => {
                    leaders.insert(*target as usize);
                    if i + 1 < n {
                        leaders.insert(i + 1);
                    }
                }
                _ if instr.is_block_terminator() && i + 1 < n => {
                    leaders.insert(i + 1);
                }
                _ => {}
            }
        }

        let bounds: Vec<usize> = leaders.iter().copied().filter(|&l| l < n).collect();
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        for (id, &start) in bounds.iter().enumerate() {
            let end = bounds.get(id + 1).copied().unwrap_or(n);
            for b in block_of.iter_mut().take(end).skip(start) {
                *b = id;
            }
            blocks.push(BasicBlock {
                id,
                start,
                end,
                succs: Vec::new(),
                live_in: BTreeSet::new(),
                live_out: BTreeSet::new(),
                spm_ptrs_in: BTreeSet::new(),
            });
        }

        // Successors.
        let leader_ids: HashMap<usize, usize> =
            bounds.iter().enumerate().map(|(id, &s)| (s, id)).collect();
        let all_ids: Vec<usize> = (0..blocks.len()).collect();
        let mut all_succs: Vec<Vec<usize>> = Vec::with_capacity(blocks.len());
        for block in &blocks {
            let last = block.end - 1;
            let mut succs = Vec::new();
            match &instrs[last] {
                Instr::Halt => {}
                Instr::Jal { target, .. } => {
                    if let Some(&t) = leader_ids.get(&(*target as usize)) {
                        succs.push(t);
                    }
                    // A call returns to the next block.
                    if !matches!(&instrs[last], Instr::Jal { rd, .. } if rd.is_zero()) {
                        if let Some(&t) = leader_ids.get(&(last + 1)) {
                            succs.push(t);
                        }
                    }
                }
                Instr::Branch { target, .. } => {
                    if let Some(&t) = leader_ids.get(&(*target as usize)) {
                        succs.push(t);
                    }
                    if let Some(&t) = leader_ids.get(&(last + 1)) {
                        succs.push(t);
                    }
                }
                Instr::Jalr { .. } => {
                    // Conservative: may transfer anywhere.
                    succs.extend(all_ids.iter().copied());
                }
                _ => {
                    if let Some(&t) = leader_ids.get(&(last + 1)) {
                        succs.push(t);
                    }
                }
            }
            succs.dedup();
            all_succs.push(succs);
        }
        for (block, succs) in blocks.iter_mut().zip(all_succs) {
            block.succs = succs;
        }

        let mut cfg = Cfg { blocks, block_of };
        cfg.compute_liveness(instrs);
        cfg.compute_spm_pointers(instrs);
        cfg
    }

    /// Backward iterative liveness.
    fn compute_liveness(&mut self, instrs: &[Instr]) {
        let nb = self.blocks.len();
        // use/def per block.
        let mut use_b = vec![BTreeSet::new(); nb];
        let mut def_b = vec![BTreeSet::new(); nb];
        for b in &self.blocks {
            for i in b.range() {
                for u in instrs[i].uses() {
                    if !def_b[b.id].contains(&u) {
                        use_b[b.id].insert(u);
                    }
                }
                for d in instrs[i].defs() {
                    def_b[b.id].insert(d);
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for id in (0..nb).rev() {
                let mut out = BTreeSet::new();
                for &s in &self.blocks[id].succs {
                    out.extend(self.blocks[s].live_in.iter().copied());
                }
                let mut inn = use_b[id].clone();
                for r in &out {
                    if !def_b[id].contains(r) {
                        inn.insert(*r);
                    }
                }
                if out != self.blocks[id].live_out || inn != self.blocks[id].live_in {
                    self.blocks[id].live_out = out;
                    self.blocks[id].live_in = inn;
                    changed = true;
                }
            }
        }
    }

    /// Forward "is this register an SPM pointer" analysis (meet =
    /// intersection over predecessors; entry state = empty).
    fn compute_spm_pointers(&mut self, instrs: &[Instr]) {
        let nb = self.blocks.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for b in &self.blocks {
            for &s in &b.succs {
                preds[s].push(b.id);
            }
        }
        let mut out_facts: Vec<Option<BTreeSet<Reg>>> = vec![None; nb];
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..nb {
                let inn: BTreeSet<Reg> = if preds[id].is_empty() {
                    BTreeSet::new()
                } else {
                    let mut acc: Option<BTreeSet<Reg>> = None;
                    for &p in &preds[id] {
                        if let Some(fact) = &out_facts[p] {
                            acc = Some(match acc {
                                None => fact.clone(),
                                Some(a) => a.intersection(fact).copied().collect(),
                            });
                        }
                    }
                    acc.unwrap_or_default()
                };
                if self.blocks[id].spm_ptrs_in != inn {
                    self.blocks[id].spm_ptrs_in = inn.clone();
                }
                let out = transfer_spm(&inn, &instrs[self.blocks[id].start..self.blocks[id].end]);
                if out_facts[id].as_ref() != Some(&out) {
                    out_facts[id] = Some(out);
                    changed = true;
                }
            }
        }
    }

    /// The block containing instruction `i`.
    #[must_use]
    pub fn block_containing(&self, i: usize) -> &BasicBlock {
        &self.blocks[self.block_of[i]]
    }
}

/// Applies the SPM-pointer transfer function over a straight-line
/// sequence starting from `facts`.
#[must_use]
pub fn transfer_spm(facts: &BTreeSet<Reg>, instrs: &[Instr]) -> BTreeSet<Reg> {
    use stitch_isa::instr::Operand;
    use stitch_isa::op::AluOp;
    let mut f = facts.clone();
    for instr in instrs {
        match instr {
            Instr::Lui { rd, imm } => {
                if (*imm << 12) == SPM_BASE {
                    f.insert(*rd);
                } else {
                    f.remove(rd);
                }
            }
            Instr::Alu { op, rd, rs1, src2 } => {
                let keeps = matches!(op, AluOp::Add | AluOp::Sub | AluOp::Or);
                let s1 = f.contains(rs1);
                let s2 = match src2 {
                    Operand::Reg(r) => f.contains(r),
                    Operand::Imm(_) => false,
                };
                // pointer +/- offset stays a pointer; anything else does not.
                if keeps && (s1 ^ s2) {
                    f.insert(*rd);
                } else if keeps && matches!(op, AluOp::Or) && s1 && s2 && rs1 == rd {
                    // or(p, p) move idiom keeps the fact.
                } else {
                    f.remove(rd);
                }
            }
            _ => {
                for d in instr.defs() {
                    f.remove(&d);
                }
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_isa::{Cond, ProgramBuilder, Reg};

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new();
        b.addi(Reg::R1, Reg::R0, 1);
        b.addi(Reg::R2, Reg::R1, 2);
        b.halt();
        let cfg = Cfg::build(&b.build().unwrap());
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn loop_blocks_and_liveness() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 10); // block 0
        let top = b.bound_label(); // block 1
        b.add(Reg::R2, Reg::R2, Reg::R1);
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, top);
        b.sw(Reg::R2, Reg::R3, 0); // block 2
        b.halt();
        let cfg = Cfg::build(&b.build().unwrap());
        assert_eq!(cfg.blocks.len(), 3);
        // Loop block: r1 and r2 live in (r2 accumulates, r1 counts),
        // r3 live through (used by the store afterwards).
        let loop_block = &cfg.blocks[1];
        assert!(loop_block.live_in.contains(&Reg::R1));
        assert!(loop_block.live_in.contains(&Reg::R2));
        assert!(loop_block.live_in.contains(&Reg::R3));
        assert!(loop_block.live_out.contains(&Reg::R2));
        assert_eq!(loop_block.succs.len(), 2);
        // Exit block has no successors (halt).
        assert!(cfg.blocks[2].succs.is_empty());
    }

    #[test]
    fn spm_pointer_tracking() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, i64::from(SPM_BASE)); // lui r1, 0x80000
        b.addi(Reg::R2, Reg::R1, 16); // still an SPM pointer
        b.add(Reg::R3, Reg::R2, Reg::R4); // ptr + index: still a pointer
        b.mul(Reg::R5, Reg::R1, Reg::R1); // not a pointer
        b.halt();
        let p = b.build().unwrap();
        let facts = transfer_spm(&BTreeSet::new(), &p.instrs);
        assert!(facts.contains(&Reg::R1));
        assert!(facts.contains(&Reg::R2));
        assert!(facts.contains(&Reg::R3));
        assert!(!facts.contains(&Reg::R5));
    }

    #[test]
    fn spm_facts_survive_loops() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, i64::from(SPM_BASE));
        b.li(Reg::R2, 8);
        let top = b.bound_label();
        b.lw(Reg::R3, Reg::R1, 0);
        b.addi(Reg::R2, Reg::R2, -1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, top);
        b.halt();
        let cfg = Cfg::build(&b.build().unwrap());
        // The loop block must know r1 is an SPM pointer.
        let loop_block = cfg
            .blocks
            .iter()
            .find(|blk| blk.succs.contains(&blk.id))
            .expect("self-looping block");
        assert!(loop_block.spm_ptrs_in.contains(&Reg::R1));
    }

    #[test]
    fn block_of_maps_every_instruction() {
        let mut b = ProgramBuilder::new();
        let skip = b.label();
        b.branch(Cond::Eq, Reg::R1, Reg::R2, skip);
        b.nop();
        b.bind(skip).unwrap();
        b.halt();
        let cfg = Cfg::build(&b.build().unwrap());
        assert_eq!(cfg.block_of.len(), 3);
        assert_eq!(cfg.block_containing(0).id, cfg.block_of[0]);
        // Three blocks: branch / nop / halt.
        assert_eq!(cfg.blocks.len(), 3);
    }
}
