//! Program container and the label-based builder used to write kernels.

use crate::custom::{CiDescriptor, CiId, CiTable, CustomInstr};
use crate::instr::{Cond, Instr, Operand, Width};
use crate::op::AluOp;
use crate::reg::Reg;
use crate::IsaError;
use std::collections::HashMap;
use std::fmt;

/// A forward-referenceable position in the program text.
///
/// Created by [`ProgramBuilder::label`], bound with
/// [`ProgramBuilder::bind`], and usable as a branch/jump target before or
/// after binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// An initialized data region loaded into memory before execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataSegment {
    /// Base byte address (word aligned).
    pub base: u32,
    /// Word contents.
    pub words: Vec<u32>,
}

/// A complete, linked W32 program: instruction text with resolved targets,
/// initialized data, the custom-instruction table, and named symbols.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Instruction text; control-flow targets are absolute indices into
    /// this vector.
    pub instrs: Vec<Instr>,
    /// Initialized data segments.
    pub data: Vec<DataSegment>,
    /// Custom-instruction descriptors referenced by `Instr::Custom`.
    pub ci_table: CiTable,
    /// Named addresses (for tests and host-side result inspection).
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Total size of the text in 32-bit words (custom instructions count
    /// twice).
    #[must_use]
    pub fn text_words(&self) -> u32 {
        self.instrs.iter().map(Instr::words).sum()
    }

    /// Number of static custom instructions in the text.
    #[must_use]
    pub fn custom_count(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, Instr::Custom(_)))
            .count()
    }

    /// Looks up a symbol's address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Renders the program as assembly listing (one instruction per line).
    #[must_use]
    pub fn listing(&self) -> String {
        let mut s = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            use std::fmt::Write;
            let _ = writeln!(s, "{i:5}: {instr}");
        }
        s
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.listing())
    }
}

/// Incremental builder for [`Program`]s with forward labels and pseudo
/// instructions.
///
/// ```
/// use stitch_isa::{ProgramBuilder, Reg, Cond};
///
/// # fn main() -> Result<(), stitch_isa::IsaError> {
/// let mut b = ProgramBuilder::new();
/// let loop_top = b.label();
/// b.li(Reg::R4, 10);
/// b.bind(loop_top)?;
/// b.addi(Reg::R4, Reg::R4, -1);
/// b.branch(Cond::Ne, Reg::R4, Reg::R0, loop_top);
/// b.halt();
/// let p = b.build()?;
/// assert_eq!(p.instrs.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    // Parallel map of instruction index -> pending label target for
    // branches/jumps that used labels.
    pending: Vec<(usize, Label)>,
    labels: Vec<Option<u32>>,
    data: Vec<DataSegment>,
    ci_table: CiTable,
    symbols: HashMap<String, u32>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the *next* instruction to be emitted.
    #[must_use]
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::DuplicateLabel`] if already bound (or if the
    /// label belongs to a different builder and is out of range here).
    pub fn bind(&mut self, label: Label) -> Result<(), IsaError> {
        let Some(slot) = self.labels.get_mut(label.0) else {
            return Err(IsaError::DuplicateLabel(format!(
                "L{} from another builder",
                label.0
            )));
        };
        if slot.is_some() {
            return Err(IsaError::DuplicateLabel(format!("L{}", label.0)));
        }
        *slot = Some(self.instrs.len() as u32);
        Ok(())
    }

    /// Binds `label` at the current position if it is still unbound; a
    /// repeated bind is a no-op (the first position wins). Infallible
    /// companion of [`ProgramBuilder::bind`] for straight-line emitters
    /// that create a label immediately before its single bind site.
    pub fn bind_once(&mut self, label: Label) {
        if let Some(slot) = self.labels.get_mut(label.0) {
            if slot.is_none() {
                *slot = Some(self.instrs.len() as u32);
            }
        }
    }

    /// Creates a label already bound to the current position.
    pub fn bound_label(&mut self) -> Label {
        let l = self.label();
        // `l` was created one line up, so its slot exists and is
        // unbound; bind inline rather than through the fallible path.
        self.labels[l.0] = Some(self.instrs.len() as u32);
        l
    }

    /// Records a named symbol (an address for host-side inspection).
    pub fn symbol(&mut self, name: impl Into<String>, addr: u32) {
        self.symbols.insert(name.into(), addr);
    }

    /// Adds an initialized data segment.
    pub fn data_segment(&mut self, base: u32, words: impl Into<Vec<u32>>) {
        self.data.push(DataSegment {
            base,
            words: words.into(),
        });
    }

    /// Registers a custom-instruction descriptor, returning its id.
    pub fn define_ci(&mut self, desc: CiDescriptor) -> CiId {
        self.ci_table.push(desc)
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    // ---- primary mnemonics -------------------------------------------------

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }

    /// `halt`
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Register-register ALU op.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::Alu {
            op,
            rd,
            rs1,
            src2: Operand::Reg(rs2),
        })
    }

    /// Register-immediate ALU op (11-bit signed immediate).
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.emit(Instr::Alu {
            op,
            rd,
            rs1,
            src2: Operand::Imm(imm),
        })
    }

    /// `lui rd, imm20`
    pub fn lui(&mut self, rd: Reg, imm: u32) -> &mut Self {
        self.emit(Instr::Lui { rd, imm })
    }

    /// `lw rd, offset(base)`
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Load {
            w: Width::Word,
            rd,
            base,
            offset,
        })
    }

    /// `lb rd, offset(base)` (zero-extending byte load)
    pub fn lb(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Load {
            w: Width::Byte,
            rd,
            base,
            offset,
        })
    }

    /// `sw rs, offset(base)`
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Store {
            w: Width::Word,
            rs,
            base,
            offset,
        })
    }

    /// `sb rs, offset(base)`
    pub fn sb(&mut self, rs: Reg, base: Reg, offset: i32) -> &mut Self {
        self.emit(Instr::Store {
            w: Width::Byte,
            rs,
            base,
            offset,
        })
    }

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.pending.push((self.instrs.len(), target));
        self.emit(Instr::Branch {
            cond,
            rs1,
            rs2,
            target: u32::MAX,
        })
    }

    /// Unconditional jump to a label.
    pub fn jump(&mut self, target: Label) -> &mut Self {
        self.pending.push((self.instrs.len(), target));
        self.emit(Instr::Jal {
            rd: Reg::R0,
            target: u32::MAX,
        })
    }

    /// Call (jump-and-link) to a label, writing `lr`.
    pub fn call(&mut self, target: Label) -> &mut Self {
        self.pending.push((self.instrs.len(), target));
        self.emit(Instr::Jal {
            rd: Reg::LR,
            target: u32::MAX,
        })
    }

    /// Return through `lr`.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Jalr {
            rd: Reg::R0,
            rs: Reg::LR,
        })
    }

    /// Custom instruction.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadCiArity`] on more than 4 inputs / 2 outputs.
    pub fn custom(&mut self, ci: CiId, ins: &[Reg], outs: &[Reg]) -> Result<&mut Self, IsaError> {
        let c = CustomInstr::new(ci, ins, outs)?;
        Ok(self.emit(Instr::Custom(c)))
    }

    /// `send dst_tile, addr, len` (all registers).
    pub fn send(&mut self, dst: Reg, addr: Reg, len: Reg) -> &mut Self {
        self.emit(Instr::Send { dst, addr, len })
    }

    /// `recv src_tile, addr, len` (all registers).
    pub fn recv(&mut self, src: Reg, addr: Reg, len: Reg) -> &mut Self {
        self.emit(Instr::Recv { src, addr, len })
    }

    // ---- pseudo instructions ----------------------------------------------

    /// Loads an arbitrary 32-bit constant (1 or 2 instructions,
    /// RISC-V-style `lui`+`addi` with round-up correction).
    pub fn li(&mut self, rd: Reg, value: i64) -> &mut Self {
        let v = value as u32;
        if (-2048..2048).contains(&value) {
            return self.alui(AluOp::Add, rd, Reg::R0, value as i32);
        }
        let mut low = (v & 0xFFF) as i32;
        if low >= 0x800 {
            low -= 0x1000;
        }
        // `lui` places imm20 << 12; pick the upper part so that
        // upper<<12 + low == v with wrapping arithmetic.
        let upper = (v.wrapping_sub(low as u32) >> 12) & 0xF_FFFF;
        self.lui(rd, upper);
        if low != 0 {
            self.alui(AluOp::Add, rd, rd, low);
        }
        self
    }

    /// Register move.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs, Reg::R0)
    }

    /// Shorthand `add`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// Shorthand `addi`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Add, rd, rs1, imm)
    }

    /// Shorthand `sub`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }

    /// Shorthand `mul`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Mul, rd, rs1, rs2)
    }

    /// Shift-left-logical immediate.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, amount: i32) -> &mut Self {
        self.alui(AluOp::Sll, rd, rs1, amount)
    }

    /// Shift-right-logical immediate.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, amount: i32) -> &mut Self {
        self.alui(AluOp::Srl, rd, rs1, amount)
    }

    /// Shift-right-arithmetic immediate.
    pub fn srai(&mut self, rd: Reg, rs1: Reg, amount: i32) -> &mut Self {
        self.alui(AluOp::Sra, rd, rs1, amount)
    }

    /// Bitwise-and immediate.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::And, rd, rs1, imm)
    }

    /// Bitwise-xor immediate.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.alui(AluOp::Xor, rd, rs1, imm)
    }

    // ---- finishing ---------------------------------------------------------

    /// Resolves labels and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnboundLabel`] if any referenced label was never
    /// bound.
    pub fn build(mut self) -> Result<Program, IsaError> {
        for (idx, label) in std::mem::take(&mut self.pending) {
            let target = self.labels[label.0]
                .ok_or_else(|| IsaError::UnboundLabel(format!("L{}", label.0)))?;
            match &mut self.instrs[idx] {
                Instr::Branch { target: t, .. } | Instr::Jal { target: t, .. } => *t = target,
                other => unreachable!("pending fixup on non-branch {other:?}"),
            }
        }
        Ok(Program {
            instrs: self.instrs,
            data: self.data,
            ci_table: self.ci_table,
            symbols: self.symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let fwd = b.label();
        let back = b.bound_label();
        b.addi(Reg::R1, Reg::R1, 1);
        b.branch(Cond::Ne, Reg::R1, Reg::R2, back);
        b.jump(fwd);
        b.bind(fwd).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(
            p.instrs[1],
            Instr::Branch {
                cond: Cond::Ne,
                rs1: Reg::R1,
                rs2: Reg::R2,
                target: 0
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::Jal {
                rd: Reg::R0,
                target: 3
            }
        );
    }

    #[test]
    fn unbound_label_rejected() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jump(l);
        assert!(matches!(b.build(), Err(IsaError::UnboundLabel(_))));
    }

    #[test]
    fn duplicate_bind_rejected() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l).unwrap();
        assert!(matches!(b.bind(l), Err(IsaError::DuplicateLabel(_))));
    }

    #[test]
    fn li_small_is_single_instruction() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 42);
        b.li(Reg::R2, -42);
        let p = b.build().unwrap();
        assert_eq!(p.instrs.len(), 2);
    }

    #[test]
    fn text_words_counts_custom_twice() {
        let mut b = ProgramBuilder::new();
        use crate::custom::{CiDescriptor, CiStage, PatchClass};
        let id = b.define_ci(CiDescriptor::single(
            CiId(0),
            "t",
            CiStage::new(PatchClass::AtMa, 0),
        ));
        b.custom(id, &[Reg::R1], &[Reg::R2]).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.instrs.len(), 2);
        assert_eq!(p.text_words(), 3);
        assert_eq!(p.custom_count(), 1);
    }

    #[test]
    fn symbols_and_data() {
        let mut b = ProgramBuilder::new();
        b.symbol("result", 0x100);
        b.data_segment(0x200, vec![1, 2, 3]);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.symbol("result"), Some(0x100));
        assert_eq!(p.symbol("missing"), None);
        assert_eq!(p.data[0].words, vec![1, 2, 3]);
    }

    #[test]
    fn listing_contains_mnemonics() {
        let mut b = ProgramBuilder::new();
        b.addi(Reg::R1, Reg::R0, 5);
        b.halt();
        let p = b.build().unwrap();
        let listing = p.listing();
        assert!(listing.contains("addi r1, r0, 5"));
        assert!(listing.contains("halt"));
    }
}
