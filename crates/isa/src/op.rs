//! ALU operations and the A/S/M/T operation classes of the paper.

use std::fmt;

/// Operation classes used throughout the paper (§III-A).
///
/// 'Hot' computational patterns are characterized as chains over these four
/// classes; the patch templates are named after them (`{AT-MA}` etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Arithmetic and logical operations.
    A,
    /// Shift operations.
    S,
    /// Multiplication.
    M,
    /// Local (scratchpad) memory access.
    T,
}

impl OpClass {
    /// Single-letter name as used in the paper ("A", "S", "M", "T").
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            OpClass::A => 'A',
            OpClass::S => 'S',
            OpClass::M => 'M',
            OpClass::T => 'T',
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Register-to-register operations executable by the core's function unit
/// and by patch ALU/shift/multiply stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AluOp {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Set-if-less-than, signed (result 0/1).
    Slt,
    /// Set-if-less-than, unsigned (result 0/1).
    Sltu,
    /// Logical shift left (amount masked to 5 bits).
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of the signed product.
    Mulh,
}

impl AluOp {
    /// All operations, in encoding order.
    pub const ALL: [AluOp; 13] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Mul,
        AluOp::Mulh,
    ];

    /// The paper's operation class of this op.
    #[must_use]
    #[inline]
    pub fn class(self) -> OpClass {
        match self {
            AluOp::Add
            | AluOp::Sub
            | AluOp::And
            | AluOp::Or
            | AluOp::Xor
            | AluOp::Nor
            | AluOp::Slt
            | AluOp::Sltu => OpClass::A,
            AluOp::Sll | AluOp::Srl | AluOp::Sra => OpClass::S,
            AluOp::Mul | AluOp::Mulh => OpClass::M,
        }
    }

    /// Evaluates the operation on two 32-bit values, with wrapping
    /// semantics identical to the hardware datapath.
    ///
    /// ```
    /// use stitch_isa::AluOp;
    /// assert_eq!(AluOp::Add.eval(u32::MAX, 1), 0);
    /// assert_eq!(AluOp::Sra.eval(0x8000_0000, 31), 0xFFFF_FFFF);
    /// assert_eq!(AluOp::Slt.eval(u32::MAX, 0), 1); // -1 < 0 signed
    /// assert_eq!(AluOp::Sltu.eval(u32::MAX, 0), 0);
    /// ```
    #[must_use]
    #[inline]
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Slt => u32::from((a as i32) < (b as i32)),
            AluOp::Sltu => u32::from(a < b),
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        }
    }

    /// Encoding index (stable across the crate's binary format).
    #[must_use]
    pub fn code(self) -> u8 {
        // Every variant appears in `ALL` in declaration order (pinned
        // by the encode/decode roundtrip tests); the discriminant is
        // the panic-free fallback should they ever diverge.
        Self::ALL
            .iter()
            .position(|&op| op == self)
            .unwrap_or(self as usize) as u8
    }

    /// Inverse of [`AluOp::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<AluOp> {
        Self::ALL.get(code as usize).copied()
    }

    /// Assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
        }
    }

    /// Parses a mnemonic (without the `i` immediate suffix).
    #[must_use]
    pub fn from_mnemonic(s: &str) -> Option<AluOp> {
        Self::ALL.iter().copied().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(AluOp::Add.class(), OpClass::A);
        assert_eq!(AluOp::Nor.class(), OpClass::A);
        assert_eq!(AluOp::Sll.class(), OpClass::S);
        assert_eq!(AluOp::Sra.class(), OpClass::S);
        assert_eq!(AluOp::Mul.class(), OpClass::M);
        assert_eq!(AluOp::Mulh.class(), OpClass::M);
    }

    #[test]
    fn code_round_trip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_code(op.code()), Some(op));
            assert_eq!(AluOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(AluOp::from_code(13), None);
        assert_eq!(AluOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn eval_semantics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u32::MAX);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Nor.eval(0, 0), u32::MAX);
        assert_eq!(AluOp::Sll.eval(1, 4), 16);
        assert_eq!(AluOp::Sll.eval(1, 36), 16, "shift amount masked to 5 bits");
        assert_eq!(AluOp::Srl.eval(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Mul.eval(7, 6), 42);
        assert_eq!(AluOp::Mulh.eval(0x8000_0000, 2), 0xFFFF_FFFF);
    }

    #[test]
    fn class_letters() {
        assert_eq!(OpClass::A.to_string(), "A");
        assert_eq!(OpClass::T.letter(), 'T');
    }
}
