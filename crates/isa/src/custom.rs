//! Custom-instruction (ISE) descriptors.
//!
//! A custom instruction encapsulates an application-specific computational
//! pattern (paper §I). In the binary it is a *two-word* instruction carrying
//! up to four input and two output register specifiers plus an index into
//! the binary's **CI table**. Each table entry records which patch class
//! executes the instruction and the 19-bit control word per patch — fused
//! instructions carry two control words (38 bits), matching the 166-bit
//! inter-patch link of the paper (4x32 data + 38 control).

use crate::reg::Reg;
use crate::IsaError;
use std::fmt;

/// Maximum number of input operands of a custom instruction (paper §IV).
pub const MAX_CI_INPUTS: usize = 4;
/// Maximum number of output operands of a custom instruction.
pub const MAX_CI_OUTPUTS: usize = 2;
/// Width of one patch control word in bits (paper §III-A).
pub const CONTROL_BITS: u32 = 19;

/// Identifier of a custom instruction within a binary's CI table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CiId(pub u16);

impl fmt::Display for CiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ci{}", self.0)
    }
}

/// The three heterogeneous polymorphic patch classes of the paper, plus the
/// LOCUS-style conventional special functional unit used as a baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PatchClass {
    /// ALU+LMAU stage followed by multiplier+ALU stage.
    AtMa,
    /// ALU+LMAU stage followed by ALU+shifter stage.
    AtAs,
    /// ALU+LMAU stage followed by shifter+ALU stage.
    AtSa,
    /// LOCUS's configurable special functional unit: an operation-chain
    /// accelerator *without* local-memory (T) support and without fusion.
    LocusSfu,
}

impl PatchClass {
    /// The three Stitch patch classes (excluding the LOCUS baseline unit).
    pub const STITCH: [PatchClass; 3] = [PatchClass::AtMa, PatchClass::AtAs, PatchClass::AtSa];

    /// Name as printed in the paper (`{AT-MA}` etc.).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PatchClass::AtMa => "{AT-MA}",
            PatchClass::AtAs => "{AT-AS}",
            PatchClass::AtSa => "{AT-SA}",
            PatchClass::LocusSfu => "LOCUS-SFU",
        }
    }
}

impl fmt::Display for PatchClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One stage of a custom instruction: a patch class plus its packed 19-bit
/// control word. Fused instructions have two stages, executed by two
/// different physical patches connected through the inter-patch NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CiStage {
    /// Which patch class executes this stage.
    pub class: PatchClass,
    /// Packed control word (19 significant bits; see `stitch-patch`).
    pub control: u32,
}

impl CiStage {
    /// Creates a stage, masking the control word to 19 bits.
    #[must_use]
    pub fn new(class: PatchClass, control: u32) -> Self {
        CiStage {
            class,
            control: control & ((1 << CONTROL_BITS) - 1),
        }
    }
}

/// An entry of a binary's custom-instruction table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CiDescriptor {
    /// Identifier referenced by `Instr::Custom`.
    pub id: CiId,
    /// Human-readable name (e.g. `"fft_butterfly"`).
    pub name: String,
    /// One stage for a single-patch instruction, two for a fused one.
    pub stages: Vec<CiStage>,
    /// Number of software instructions this CI replaces (used for
    /// statistics and speedup accounting; zero when unknown).
    pub covers: u32,
}

impl CiDescriptor {
    /// Creates a single-patch descriptor.
    #[must_use]
    pub fn single(id: CiId, name: impl Into<String>, stage: CiStage) -> Self {
        CiDescriptor {
            id,
            name: name.into(),
            stages: vec![stage],
            covers: 0,
        }
    }

    /// Creates a fused (two-patch) descriptor.
    #[must_use]
    pub fn fused(id: CiId, name: impl Into<String>, first: CiStage, second: CiStage) -> Self {
        CiDescriptor {
            id,
            name: name.into(),
            stages: vec![first, second],
            covers: 0,
        }
    }

    /// `true` if the instruction spans two stitched patches.
    #[must_use]
    pub fn is_fused(&self) -> bool {
        self.stages.len() == 2
    }

    /// Total control bits carried by the instruction (19 or 38).
    #[must_use]
    pub fn control_bits(&self) -> u32 {
        CONTROL_BITS * self.stages.len() as u32
    }
}

/// The custom-instruction table of one binary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CiTable {
    entries: Vec<CiDescriptor>,
}

impl CiTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a descriptor, assigning it the next free id.
    ///
    /// The passed descriptor's `id` field is overwritten.
    pub fn push(&mut self, mut desc: CiDescriptor) -> CiId {
        let id = CiId(self.entries.len() as u16);
        desc.id = id;
        self.entries.push(desc);
        id
    }

    /// Looks up a descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnknownCi`] when the id is not present.
    pub fn get(&self, id: CiId) -> Result<&CiDescriptor, IsaError> {
        self.entries
            .get(id.0 as usize)
            .ok_or(IsaError::UnknownCi(id.0))
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no custom instruction is defined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all descriptors in id order.
    pub fn iter(&self) -> impl Iterator<Item = &CiDescriptor> {
        self.entries.iter()
    }
}

/// A custom instruction as it appears in the program text: a CI-table
/// reference plus its register operands (up to 4 inputs, 2 outputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CustomInstr {
    /// Index into the binary's [`CiTable`].
    pub ci: CiId,
    ins: [Reg; MAX_CI_INPUTS],
    n_ins: u8,
    outs: [Reg; MAX_CI_OUTPUTS],
    n_outs: u8,
}

impl CustomInstr {
    /// Creates a custom instruction.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadCiArity`] if more than 4 inputs or 2 outputs
    /// are supplied (the register-file port constraint of the paper).
    pub fn new(ci: CiId, inputs: &[Reg], outputs: &[Reg]) -> Result<Self, IsaError> {
        if inputs.len() > MAX_CI_INPUTS || outputs.len() > MAX_CI_OUTPUTS {
            return Err(IsaError::BadCiArity {
                inputs: inputs.len(),
                outputs: outputs.len(),
            });
        }
        let mut ins = [Reg::R0; MAX_CI_INPUTS];
        ins[..inputs.len()].copy_from_slice(inputs);
        let mut outs = [Reg::R0; MAX_CI_OUTPUTS];
        outs[..outputs.len()].copy_from_slice(outputs);
        Ok(CustomInstr {
            ci,
            ins,
            n_ins: inputs.len() as u8,
            outs,
            n_outs: outputs.len() as u8,
        })
    }

    /// Input registers, in operand order.
    #[must_use]
    pub fn inputs(&self) -> &[Reg] {
        &self.ins[..self.n_ins as usize]
    }

    /// Output registers, in operand order.
    #[must_use]
    pub fn outputs(&self) -> &[Reg] {
        &self.outs[..self.n_outs as usize]
    }

    /// The four raw input slots (unused slots read as `r0`, i.e. zero) —
    /// this is exactly the 4-word data payload on the inter-patch link.
    #[must_use]
    pub fn input_slots(&self) -> [Reg; MAX_CI_INPUTS] {
        self.ins
    }
}

impl fmt::Display for CustomInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "custom {}", self.ci)?;
        write!(f, " [")?;
        for (i, r) in self.inputs().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "] -> [")?;
        for (i, r) in self.outputs().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_enforced() {
        let five = [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5];
        assert!(matches!(
            CustomInstr::new(CiId(0), &five, &[Reg::R6]),
            Err(IsaError::BadCiArity {
                inputs: 5,
                outputs: 1
            })
        ));
        let three_out = [Reg::R1, Reg::R2, Reg::R3];
        assert!(CustomInstr::new(CiId(0), &[Reg::R1], &three_out).is_err());
        let ok = CustomInstr::new(CiId(3), &[Reg::R1, Reg::R2], &[Reg::R3]).unwrap();
        assert_eq!(ok.inputs(), &[Reg::R1, Reg::R2]);
        assert_eq!(ok.outputs(), &[Reg::R3]);
        assert_eq!(ok.input_slots(), [Reg::R1, Reg::R2, Reg::R0, Reg::R0]);
    }

    #[test]
    fn table_assigns_ids() {
        let mut t = CiTable::new();
        let s = CiStage::new(PatchClass::AtMa, 0x7_FFFF);
        let a = t.push(CiDescriptor::single(CiId(99), "a", s));
        let b = t.push(CiDescriptor::fused(
            CiId(99),
            "b",
            s,
            CiStage::new(PatchClass::AtAs, 1),
        ));
        assert_eq!(a, CiId(0));
        assert_eq!(b, CiId(1));
        assert_eq!(t.get(a).unwrap().name, "a");
        assert!(!t.get(a).unwrap().is_fused());
        assert!(t.get(b).unwrap().is_fused());
        assert_eq!(t.get(b).unwrap().control_bits(), 38);
        assert!(t.get(CiId(2)).is_err());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn control_masked_to_19_bits() {
        let s = CiStage::new(PatchClass::AtSa, 0xFFFF_FFFF);
        assert_eq!(s.control, (1 << 19) - 1);
    }

    #[test]
    fn display() {
        let ci = CustomInstr::new(CiId(2), &[Reg::R1, Reg::R2], &[Reg::R3, Reg::R4]).unwrap();
        assert_eq!(ci.to_string(), "custom ci2 [r1, r2] -> [r3, r4]");
        assert_eq!(PatchClass::AtMa.to_string(), "{AT-MA}");
    }
}
