//! # W32: the wearable RISC instruction set of the Stitch architecture
//!
//! This crate defines the instruction set executed by the in-order cores of
//! the Stitch many-core reproduction (Tan et al., ISCA 2018):
//!
//! - [`Reg`] / [`op::AluOp`] / [`instr::Instr`] — the architectural state and
//!   instruction forms, including the two-word *custom instructions* that
//!   drive the polymorphic patches;
//! - [`custom`] — the custom-instruction (ISE) descriptor table carried by a
//!   binary, with the 19-bit per-patch control words of the paper;
//! - [`mod@encode`] — the 32-bit binary encoding with a full decoder, so
//!   programs can round-trip through machine code;
//! - [`program`] — label-based [`program::ProgramBuilder`] plus the linked
//!   [`program::Program`] form consumed by the simulator;
//! - [`asm`] — a small text assembler for the same mnemonics.
//!
//! Operations are classified into the paper's four groups via
//! [`op::OpClass`]: arithmetic/logic (`A`), shift (`S`), multiply (`M`) and
//! local-memory access (`T`). The polymorphic patch templates
//! `{AT-MA}`, `{AT-AS}` and `{AT-SA}` are chains over these classes.
//!
//! ```
//! use stitch_isa::program::ProgramBuilder;
//! use stitch_isa::Reg;
//!
//! # fn main() -> Result<(), stitch_isa::IsaError> {
//! let mut b = ProgramBuilder::new();
//! let (t0, t1) = (Reg::R4, Reg::R5);
//! b.li(t0, 21);
//! b.addi(t1, t0, 21);
//! b.halt();
//! let program = b.build()?;
//! assert_eq!(program.instrs.len(), 3);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod custom;
pub mod encode;
pub mod instr;
pub mod op;
pub mod program;
pub mod reg;
pub mod uop;

pub use custom::{CiDescriptor, CiId, CiTable, CustomInstr};
pub use encode::{decode, decode_program, encode, encode_program};
pub use instr::{Cond, Instr, Operand, Width};
pub use op::{AluOp, OpClass};
pub use program::{Program, ProgramBuilder};
pub use reg::Reg;
pub use uop::{translate_block, BlockExit, MicroBlock, UOp, UOpSlot};

use std::fmt;

/// Memory-map constants shared by the whole workspace.
///
/// The SPM is an extension of the main-memory address space (paper §III-C);
/// each core sees *its own* 4 KB scratchpad through the same window, and the
/// crossbar configuration registers of the inter-patch NoC are memory mapped.
pub mod memmap {
    /// Size of simulated DRAM in bytes (paper Table II: 512 MB).
    pub const DRAM_SIZE: u32 = 512 * 1024 * 1024;
    /// Base address of the per-tile scratchpad window.
    pub const SPM_BASE: u32 = 0x8000_0000;
    /// Size of each tile's scratchpad (paper §III-C: 4 KB suffices for all kernels).
    pub const SPM_SIZE: u32 = 4 * 1024;
    /// Base address of the memory-mapped crossbar configuration registers
    /// (one word per tile switch, paper §III-B).
    pub const XBAR_CFG_BASE: u32 = 0xF000_0000;

    /// Returns `true` if `addr` falls inside the scratchpad window.
    #[must_use]
    pub fn is_spm(addr: u32) -> bool {
        (SPM_BASE..SPM_BASE + SPM_SIZE).contains(&addr)
    }

    /// Returns `true` if `addr` is a crossbar configuration register.
    #[must_use]
    pub fn is_xbar_cfg(addr: u32) -> bool {
        (XBAR_CFG_BASE..XBAR_CFG_BASE + 64 * 4).contains(&addr)
    }
}

/// Errors produced while building, encoding or assembling W32 programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// An immediate operand does not fit the encoding field.
    ImmediateOutOfRange {
        /// Mnemonic of the offending instruction.
        what: &'static str,
        /// The value that did not fit.
        value: i64,
        /// Number of bits available.
        bits: u32,
    },
    /// A label was referenced but never bound to a position.
    UnboundLabel(String),
    /// A label was bound twice.
    DuplicateLabel(String),
    /// A branch target is outside the encodable displacement.
    BranchOutOfRange {
        /// Source instruction index.
        from: usize,
        /// Destination instruction index.
        to: usize,
    },
    /// The binary word stream could not be decoded.
    Decode {
        /// Offending word.
        word: u32,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Text-assembler syntax error.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Human-readable message.
        msg: String,
    },
    /// A custom instruction referenced a descriptor missing from the table.
    UnknownCi(u16),
    /// A custom instruction has an invalid operand arity.
    BadCiArity {
        /// Number of inputs requested.
        inputs: usize,
        /// Number of outputs requested.
        outputs: usize,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::ImmediateOutOfRange { what, value, bits } => {
                write!(
                    f,
                    "immediate {value} for {what} does not fit in {bits} bits"
                )
            }
            IsaError::UnboundLabel(l) => write!(f, "label `{l}` was never bound"),
            IsaError::DuplicateLabel(l) => write!(f, "label `{l}` bound twice"),
            IsaError::BranchOutOfRange { from, to } => {
                write!(
                    f,
                    "branch from instruction {from} to {to} exceeds displacement range"
                )
            }
            IsaError::Decode { word, reason } => {
                write!(f, "cannot decode word {word:#010x}: {reason}")
            }
            IsaError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            IsaError::UnknownCi(id) => write!(f, "custom instruction id {id} not in CI table"),
            IsaError::BadCiArity { inputs, outputs } => {
                write!(
                    f,
                    "custom instruction arity {inputs}-in/{outputs}-out exceeds 4-in/2-out"
                )
            }
        }
    }
}

impl std::error::Error for IsaError {}
