//! Basic-block discovery and micro-op lowering for the translated
//! execution engine.
//!
//! The simulator's fast path (see `stitch-cpu`'s translated engine and
//! the chip's compute windows in `stitch-sim`) decodes each W32 basic
//! block once into the flat, cache-friendly threaded-code form defined
//! here, instead of re-matching the [`Instr`] tree on every executed
//! instruction.
//!
//! Lowering is purely *structural*: operand registers and immediates are
//! pre-extracted, control-flow targets resolved against the program
//! text, and each micro-op carries its instruction-fetch footprint (word
//! offset and word count). No cycle costs are assigned here — latencies
//! are the executor's business, so the cycle model keeps living in
//! exactly one place per instruction class and the lowered form can
//! never drift from it.
//!
//! Micro-ops are 1:1 with program instructions: the micro-op at index
//! `i` of a block lowered from `entry` models the instruction at pc
//! `entry + i`. This lets the executor stop a block mid-way (for
//! horizon clamps) and hand any pc back to the interpreter.
//!
//! Instructions the translated engine must never retire on its own —
//! `send`/`recv` (NIC events), `halt` (liveness bookkeeping), and
//! statically out-of-range jump targets — lower to
//! [`BlockExit::SideExit`], which names the instruction the interpreter
//! has to execute instead.

use crate::custom::{CiId, CustomInstr};
use crate::instr::{Cond, Instr, Operand, Width};
use crate::op::AluOp;
use crate::reg::Reg;

/// One lowered micro-op: the straight-line subset of W32.
///
/// Operands are pre-extracted so the executor touches no [`Instr`]
/// variants on the hot path. `Custom` and `Store` keep *runtime* side
/// conditions (unbound/faulted patches, crossbar-config stores) that the
/// executor re-checks before committing to inline execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UOp {
    /// No operation.
    Nop,
    /// Register-register ALU op: `rd = rs1 <op> rs2`.
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Register-immediate ALU op: `rd = rs1 <op> imm`.
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Sign-extended immediate.
        imm: i32,
    },
    /// Load upper immediate with the shift pre-applied: `rd = val`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// `imm << 12`, precomputed at lowering time.
        val: u32,
    },
    /// Memory load `rd = mem[base + offset]`.
    Load {
        /// Access width.
        w: Width,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Memory store `mem[base + offset] = rs`. The executor must bounce
    /// crossbar-config stores back to the interpreter (they reconfigure
    /// the inter-patch network, a chip-level event).
    Store {
        /// Access width.
        w: Width,
        /// Source data register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Custom (ISE) instruction with its operand plumbing pre-resolved.
    /// The executor inlines it only while the patch fabric is healthy
    /// and the CI is bound; otherwise it is a runtime side exit.
    Custom {
        /// CI-table index.
        id: CiId,
        /// The four raw input slots (unused slots read `r0`).
        ins: [Reg; 4],
        /// First output register, if any.
        out0: Option<Reg>,
        /// Second output register, if any.
        out1: Option<Reg>,
    },
}

/// A micro-op plus its instruction-fetch footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UOpSlot {
    /// Word offset of the instruction within the program text (the
    /// executor turns this into a byte address in fetch space).
    pub off: u32,
    /// Number of 32-bit words fetched (custom instructions are two).
    pub words: u32,
    /// The lowered operation.
    pub op: UOp,
}

/// How a lowered block hands control onward.
///
/// `Branch`/`Jal`/`Jalr` are executed by the translated engine itself
/// (threaded dispatch into the successor block); `SideExit` returns
/// control to the interpreter at the named instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// Conditional branch; falls through to `at + 1` when not taken.
    /// Lowered only when `target` is in range, so taken dispatch can
    /// never fault.
    Branch {
        /// Condition.
        cond: Cond,
        /// First comparison operand.
        rs1: Reg,
        /// Second comparison operand.
        rs2: Reg,
        /// Absolute target instruction index.
        target: u32,
        /// Instruction index of the branch itself.
        at: u32,
        /// Word offset of the branch (fetch footprint, one word).
        off: u32,
    },
    /// Unconditional jump-and-link; `rd` receives `at + 1`.
    Jal {
        /// Link destination register.
        rd: Reg,
        /// Absolute target instruction index.
        target: u32,
        /// Instruction index of the jump itself.
        at: u32,
        /// Word offset of the jump.
        off: u32,
    },
    /// Indirect jump-and-link through `rs`. The executor must bounce
    /// out-of-range runtime targets to the interpreter (which raises
    /// the architectural `BadTarget` fault with the exact partial
    /// effects of the real pipeline).
    Jalr {
        /// Link destination register.
        rd: Reg,
        /// Register holding the target instruction index.
        rs: Reg,
        /// Instruction index of the jump itself.
        at: u32,
        /// Word offset of the jump.
        off: u32,
    },
    /// The instruction at `at` must be executed by the interpreter:
    /// `send`/`recv`/`halt`, a statically out-of-range jump, or the pc
    /// running off the end of the text (`at == text len`).
    SideExit {
        /// Instruction index to hand back to the interpreter.
        at: u32,
    },
}

/// One translated basic block: straight-line micro-ops plus an exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroBlock {
    /// Instruction index the block was lowered from.
    pub entry: u32,
    /// Straight-line micro-ops; index `i` models pc `entry + i`.
    pub uops: Vec<UOpSlot>,
    /// The block terminator.
    pub exit: BlockExit,
}

impl MicroBlock {
    /// The pc modelled by micro-op index `idx`.
    #[must_use]
    pub fn pc_at(&self, idx: usize) -> u32 {
        self.entry + idx as u32
    }
}

/// Lowers the custom instruction's operand plumbing.
fn lower_custom(ci: &CustomInstr) -> UOp {
    UOp::Custom {
        id: ci.ci,
        ins: ci.input_slots(),
        out0: ci.outputs().first().copied(),
        out1: ci.outputs().get(1).copied(),
    }
}

/// Discovers and lowers the basic block starting at `entry`.
///
/// The block extends until the first terminator ([`Instr::
/// is_block_terminator`]) or the end of the text. Any `entry` inside
/// the text is a legal block head — indirect jumps and horizon-clamped
/// windows re-enter blocks at arbitrary pcs, and overlapping blocks are
/// fine because lowering is pure.
///
/// `word_offsets[i]` must be the cumulative word offset of instruction
/// `i` (as built by the core's text image); `entry` must be `< instrs.
/// len()`.
#[must_use]
pub fn translate_block(instrs: &[Instr], word_offsets: &[u32], entry: u32) -> MicroBlock {
    let len = instrs.len() as u32;
    debug_assert!(entry < len, "block entry {entry} outside text of {len}");
    let mut uops = Vec::new();
    let mut pc = entry;
    let exit = loop {
        let Some(instr) = instrs.get(pc as usize) else {
            // Fell off the end of the text: the interpreter raises the
            // architectural PcOutOfRange fault.
            break BlockExit::SideExit { at: pc };
        };
        let off = word_offsets[pc as usize];
        match instr {
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                // A taken branch to `target > len` faults in jump_to;
                // leave that rare shape to the interpreter entirely
                // (`target == len` is legal: the *next* step faults).
                break if *target > len {
                    BlockExit::SideExit { at: pc }
                } else {
                    BlockExit::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        target: *target,
                        at: pc,
                        off,
                    }
                };
            }
            Instr::Jal { rd, target } => {
                break if *target > len {
                    BlockExit::SideExit { at: pc }
                } else {
                    BlockExit::Jal {
                        rd: *rd,
                        target: *target,
                        at: pc,
                        off,
                    }
                };
            }
            Instr::Jalr { rd, rs } => {
                break BlockExit::Jalr {
                    rd: *rd,
                    rs: *rs,
                    at: pc,
                    off,
                }
            }
            Instr::Halt | Instr::Send { .. } | Instr::Recv { .. } => {
                break BlockExit::SideExit { at: pc }
            }
            Instr::Nop => uops.push(UOpSlot {
                off,
                words: 1,
                op: UOp::Nop,
            }),
            Instr::Alu { op, rd, rs1, src2 } => {
                let lowered = match src2 {
                    Operand::Reg(rs2) => UOp::AluRR {
                        op: *op,
                        rd: *rd,
                        rs1: *rs1,
                        rs2: *rs2,
                    },
                    Operand::Imm(imm) => UOp::AluRI {
                        op: *op,
                        rd: *rd,
                        rs1: *rs1,
                        imm: *imm,
                    },
                };
                uops.push(UOpSlot {
                    off,
                    words: 1,
                    op: lowered,
                });
            }
            Instr::Lui { rd, imm } => uops.push(UOpSlot {
                off,
                words: 1,
                op: UOp::Lui {
                    rd: *rd,
                    val: imm << 12,
                },
            }),
            Instr::Load {
                w,
                rd,
                base,
                offset,
            } => uops.push(UOpSlot {
                off,
                words: 1,
                op: UOp::Load {
                    w: *w,
                    rd: *rd,
                    base: *base,
                    offset: *offset,
                },
            }),
            Instr::Store {
                w,
                rs,
                base,
                offset,
            } => uops.push(UOpSlot {
                off,
                words: 1,
                op: UOp::Store {
                    w: *w,
                    rs: *rs,
                    base: *base,
                    offset: *offset,
                },
            }),
            Instr::Custom(ci) => uops.push(UOpSlot {
                off,
                words: 2,
                op: lower_custom(ci),
            }),
        }
        pc += 1;
    };
    MicroBlock { entry, uops, exit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn offsets(instrs: &[Instr]) -> Vec<u32> {
        let mut v = Vec::with_capacity(instrs.len());
        let mut off = 0;
        for i in instrs {
            v.push(off);
            off += i.words();
        }
        v
    }

    #[test]
    fn straight_line_block_lowers_one_to_one() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 5);
        b.addi(Reg::R2, Reg::R1, 3);
        b.sw(Reg::R2, Reg::R1, 0);
        b.halt();
        let p = b.build().expect("program");
        let offs = offsets(&p.instrs);
        let blk = translate_block(&p.instrs, &offs, 0);
        assert_eq!(blk.entry, 0);
        assert_eq!(blk.uops.len(), 3);
        assert_eq!(blk.exit, BlockExit::SideExit { at: 3 });
        assert_eq!(blk.pc_at(2), 2);
        // Fetch footprints follow the word offsets.
        for (i, s) in blk.uops.iter().enumerate() {
            assert_eq!(s.off, offs[i]);
            assert_eq!(s.words, 1);
        }
    }

    #[test]
    fn branch_terminates_block_with_resolved_targets() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 10);
        let top = b.bound_label();
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, top);
        b.halt();
        let p = b.build().expect("program");
        let offs = offsets(&p.instrs);
        let blk = translate_block(&p.instrs, &offs, 1);
        assert_eq!(blk.uops.len(), 1);
        match blk.exit {
            BlockExit::Branch { target, at, .. } => {
                assert_eq!(target, 1);
                assert_eq!(at, 2);
            }
            other => panic!("expected branch exit, got {other:?}"),
        }
    }

    #[test]
    fn mid_block_entry_is_legal() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1);
        b.li(Reg::R2, 2);
        b.li(Reg::R3, 3);
        b.halt();
        let p = b.build().expect("program");
        let offs = offsets(&p.instrs);
        let whole = translate_block(&p.instrs, &offs, 0);
        let tail = translate_block(&p.instrs, &offs, 2);
        assert_eq!(whole.uops.len(), 3);
        assert_eq!(tail.uops.len(), 1);
        assert_eq!(tail.entry, 2);
        assert_eq!(tail.exit, BlockExit::SideExit { at: 3 });
    }

    #[test]
    fn out_of_range_static_target_lowers_to_side_exit() {
        // Hand-assembled: a branch whose target is past the text end.
        let instrs = vec![
            Instr::Branch {
                cond: Cond::Eq,
                rs1: Reg::R0,
                rs2: Reg::R0,
                target: 99,
            },
            Instr::Halt,
        ];
        let offs = offsets(&instrs);
        let blk = translate_block(&instrs, &offs, 0);
        assert_eq!(blk.exit, BlockExit::SideExit { at: 0 });
        // `target == len` is legal (the next step faults, not the jump).
        let instrs = vec![Instr::Jal {
            rd: Reg::R0,
            target: 1,
        }];
        let offs = offsets(&instrs);
        let blk = translate_block(&instrs, &offs, 0);
        assert!(matches!(blk.exit, BlockExit::Jal { target: 1, .. }));
    }

    #[test]
    fn custom_lowering_preserves_operand_plumbing() {
        use crate::custom::{CiDescriptor, CiStage, PatchClass};
        let mut b = ProgramBuilder::new();
        let id = b.define_ci(CiDescriptor::single(
            CiId(0),
            "t",
            CiStage::new(PatchClass::AtMa, 0),
        ));
        b.li(Reg::R1, 20);
        b.custom(id, &[Reg::R1, Reg::R2], &[Reg::R3, Reg::R4])
            .expect("custom");
        b.halt();
        let p = b.build().expect("program");
        let offs = offsets(&p.instrs);
        let blk = translate_block(&p.instrs, &offs, 0);
        assert_eq!(blk.uops.len(), 2);
        assert_eq!(blk.uops[1].words, 2, "custom instructions are two words");
        match blk.uops[1].op {
            UOp::Custom {
                id,
                ins,
                out0,
                out1,
                ..
            } => {
                assert_eq!(id, CiId(0));
                assert_eq!(ins, [Reg::R1, Reg::R2, Reg::R0, Reg::R0]);
                assert_eq!(out0, Some(Reg::R3));
                assert_eq!(out1, Some(Reg::R4));
            }
            other => panic!("expected custom uop, got {other:?}"),
        }
    }
}
