//! Text assembler for W32.
//!
//! Accepts the same mnemonics that [`crate::instr::Instr`]'s `Display`
//! implementation produces, so a [`crate::Program`] listing re-assembles to
//! an identical program. Also supports named labels, `;`/`#` comments and
//! the `li`/`mv`/`j`/`jr` pseudo instructions.
//!
//! ```
//! let src = "
//!     li   r1, 5
//! loop:
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     halt
//! ";
//! let program = stitch_isa::asm::assemble(src).unwrap();
//! assert_eq!(program.instrs.len(), 4);
//! ```

use crate::custom::{CiId, CustomInstr};
use crate::instr::{Cond, Instr, Operand, Width};
use crate::op::AluOp;
use crate::reg::Reg;
use crate::IsaError;
use std::collections::HashMap;

/// Assembles W32 source text into a [`crate::Program`].
///
/// Note the custom-instruction *table* cannot be expressed in text — the
/// assembled program references CI ids that the caller must define.
///
/// # Errors
///
/// Returns [`IsaError::Parse`] with the offending line on syntax errors and
/// [`IsaError::UnboundLabel`] for unresolved label references.
pub fn assemble(source: &str) -> Result<crate::Program, IsaError> {
    let mut instrs: Vec<Instr> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    // (instr index, label name, line) fixups for forward references.
    let mut fixups: Vec<(usize, String, usize)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(pos) = text.find([';', '#']) {
            text = &text[..pos];
        }
        let mut text = text.trim();
        if text.is_empty() {
            continue;
        }
        // Leading labels, possibly several on one line.
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.chars().all(|c| c.is_ascii_digit()) && !name.is_empty() {
                // Numeric address prefix as emitted by `Program::listing()`.
                text = rest[1..].trim();
                continue;
            }
            if name.is_empty() || !is_ident(name) {
                break;
            }
            if labels
                .insert(name.to_string(), instrs.len() as u32)
                .is_some()
            {
                return Err(IsaError::DuplicateLabel(name.to_string()));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        parse_instr(text, line, &mut instrs, &mut fixups)?;
    }

    for (idx, name, line) in fixups {
        let target = match name.strip_prefix('@') {
            Some(abs) => abs.parse::<u32>().map_err(|_| IsaError::Parse {
                line,
                msg: format!("bad target `{name}`"),
            })?,
            None => *labels
                .get(&name)
                .ok_or_else(|| IsaError::UnboundLabel(name.clone()))?,
        };
        match &mut instrs[idx] {
            Instr::Branch { target: t, .. } | Instr::Jal { target: t, .. } => *t = target,
            other => unreachable!("fixup on non-branch {other:?}"),
        }
    }

    Ok(crate::Program {
        instrs,
        ..Default::default()
    })
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn err(line: usize, msg: impl Into<String>) -> IsaError {
    IsaError::Parse {
        line,
        msg: msg.into(),
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, IsaError> {
    tok.parse()
        .map_err(|_| err(line, format!("bad register `{tok}`")))
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, IsaError> {
    let tok = tok.trim();
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| err(line, format!("bad immediate `{tok}`")))?;
    Ok(if neg { -value } else { value })
}

/// Splits `"12(sp)"` into offset and base register.
fn parse_mem(tok: &str, line: usize) -> Result<(i32, Reg), IsaError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected `off(base)`: `{tok}`")))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{tok}`")))?;
    let off_txt = tok[..open].trim();
    let offset = if off_txt.is_empty() {
        0
    } else {
        parse_imm(off_txt, line)? as i32
    };
    let base = parse_reg(tok[open + 1..close].trim(), line)?;
    Ok((offset, base))
}

#[allow(clippy::too_many_lines)]
fn parse_instr(
    text: &str,
    line: usize,
    instrs: &mut Vec<Instr>,
    fixups: &mut Vec<(usize, String, usize)>,
) -> Result<(), IsaError> {
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let args: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else if mnemonic == "custom" {
        vec![rest]
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let want = |n: usize| -> Result<(), IsaError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operands, got {}", args.len()),
            ))
        }
    };

    match mnemonic {
        "nop" => {
            want(0)?;
            instrs.push(Instr::Nop);
        }
        "halt" => {
            want(0)?;
            instrs.push(Instr::Halt);
        }
        "lui" => {
            want(2)?;
            instrs.push(Instr::Lui {
                rd: parse_reg(args[0], line)?,
                imm: parse_imm(args[1], line)? as u32,
            });
        }
        "li" => {
            want(2)?;
            let mut b = crate::ProgramBuilder::new();
            b.li(parse_reg(args[0], line)?, parse_imm(args[1], line)?);
            instrs.extend(b.build()?.instrs);
        }
        "mv" => {
            want(2)?;
            instrs.push(Instr::Alu {
                op: AluOp::Add,
                rd: parse_reg(args[0], line)?,
                rs1: parse_reg(args[1], line)?,
                src2: Operand::Reg(Reg::R0),
            });
        }
        "lw" | "lh" | "lb" => {
            want(2)?;
            let (offset, base) = parse_mem(args[1], line)?;
            instrs.push(Instr::Load {
                w: width_for(mnemonic),
                rd: parse_reg(args[0], line)?,
                base,
                offset,
            });
        }
        "sw" | "sh" | "sb" => {
            want(2)?;
            let (offset, base) = parse_mem(args[1], line)?;
            instrs.push(Instr::Store {
                w: width_for(mnemonic),
                rs: parse_reg(args[0], line)?,
                base,
                offset,
            });
        }
        "beq" | "bne" | "blt" | "bge" | "bltu" | "bgeu" => {
            want(3)?;
            let cond = Cond::ALL
                .into_iter()
                .find(|c| c.mnemonic() == mnemonic)
                .ok_or_else(|| err(line, format!("unknown branch mnemonic '{mnemonic}'")))?;
            fixups.push((instrs.len(), args[2].to_string(), line));
            instrs.push(Instr::Branch {
                cond,
                rs1: parse_reg(args[0], line)?,
                rs2: parse_reg(args[1], line)?,
                target: u32::MAX,
            });
        }
        "j" => {
            want(1)?;
            fixups.push((instrs.len(), args[0].to_string(), line));
            instrs.push(Instr::Jal {
                rd: Reg::R0,
                target: u32::MAX,
            });
        }
        "jal" => {
            want(2)?;
            fixups.push((instrs.len(), args[1].to_string(), line));
            instrs.push(Instr::Jal {
                rd: parse_reg(args[0], line)?,
                target: u32::MAX,
            });
        }
        "jr" => {
            want(1)?;
            instrs.push(Instr::Jalr {
                rd: Reg::R0,
                rs: parse_reg(args[0], line)?,
            });
        }
        "jalr" => {
            want(2)?;
            instrs.push(Instr::Jalr {
                rd: parse_reg(args[0], line)?,
                rs: parse_reg(args[1], line)?,
            });
        }
        "send" | "recv" => {
            want(3)?;
            let (a, b, c) = (
                parse_reg(args[0], line)?,
                parse_reg(args[1], line)?,
                parse_reg(args[2], line)?,
            );
            instrs.push(if mnemonic == "send" {
                Instr::Send {
                    dst: a,
                    addr: b,
                    len: c,
                }
            } else {
                Instr::Recv {
                    src: a,
                    addr: b,
                    len: c,
                }
            });
        }
        "custom" => {
            want(1)?;
            instrs.push(Instr::Custom(parse_custom(args[0], line)?));
        }
        _ => {
            // ALU mnemonics, with optional `i` suffix for immediates.
            let (op, imm_form) = match AluOp::from_mnemonic(mnemonic) {
                Some(op) => (op, false),
                None => {
                    let base = mnemonic
                        .strip_suffix('i')
                        .and_then(AluOp::from_mnemonic)
                        .ok_or_else(|| err(line, format!("unknown mnemonic `{mnemonic}`")))?;
                    (base, true)
                }
            };
            want(3)?;
            let rd = parse_reg(args[0], line)?;
            let rs1 = parse_reg(args[1], line)?;
            let src2 = if imm_form {
                Operand::Imm(parse_imm(args[2], line)? as i32)
            } else {
                Operand::Reg(parse_reg(args[2], line)?)
            };
            instrs.push(Instr::Alu { op, rd, rs1, src2 });
        }
    }
    Ok(())
}

fn width_for(mnemonic: &str) -> Width {
    match mnemonic.as_bytes()[1] {
        b'b' => Width::Byte,
        b'h' => Width::Half,
        _ => Width::Word,
    }
}

/// Parses `ci3 [r1, r2] -> [r3]`.
fn parse_custom(text: &str, line: usize) -> Result<CustomInstr, IsaError> {
    let text = text.trim();
    let (id_txt, rest) = text
        .split_once('[')
        .ok_or_else(|| err(line, "custom expects `ciN [ins] -> [outs]`"))?;
    let id_txt = id_txt.trim();
    let id: u16 = id_txt
        .strip_prefix("ci")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("bad ci id `{id_txt}`")))?;
    let (ins_txt, rest) = rest
        .split_once(']')
        .ok_or_else(|| err(line, "missing `]` after inputs"))?;
    let rest = rest.trim();
    let rest = rest
        .strip_prefix("->")
        .ok_or_else(|| err(line, "missing `->` in custom instruction"))?
        .trim();
    let outs_txt = rest
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, "missing `[outs]`"))?;
    let parse_list = |txt: &str| -> Result<Vec<Reg>, IsaError> {
        txt.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| parse_reg(s, line))
            .collect()
    };
    let ins = parse_list(ins_txt)?;
    let outs = parse_list(outs_txt)?;
    CustomInstr::new(CiId(id), &ins, &outs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_loop() {
        let p = assemble(
            "
            ; simple countdown
            li r1, 5
        loop:
            addi r1, r1, -1   # body
            bne r1, r0, loop
            halt
        ",
        )
        .unwrap();
        assert_eq!(p.instrs.len(), 4);
        assert_eq!(
            p.instrs[2],
            Instr::Branch {
                cond: Cond::Ne,
                rs1: Reg::R1,
                rs2: Reg::R0,
                target: 1
            }
        );
    }

    #[test]
    fn memory_operands() {
        let p = assemble("lw r1, 8(sp)\nsw r1, -4(r2)\nlb r3, (r4)\nhalt").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Load {
                w: Width::Word,
                rd: Reg::R1,
                base: Reg::SP,
                offset: 8
            }
        );
        assert_eq!(
            p.instrs[1],
            Instr::Store {
                w: Width::Word,
                rs: Reg::R1,
                base: Reg::R2,
                offset: -4
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::Load {
                w: Width::Byte,
                rd: Reg::R3,
                base: Reg::R4,
                offset: 0
            }
        );
    }

    #[test]
    fn custom_round_trip() {
        let p = assemble("custom ci7 [r1, r2, r3] -> [r4, r5]").unwrap();
        match &p.instrs[0] {
            Instr::Custom(ci) => {
                assert_eq!(ci.ci, CiId(7));
                assert_eq!(ci.inputs(), &[Reg::R1, Reg::R2, Reg::R3]);
                assert_eq!(ci.outputs(), &[Reg::R4, Reg::R5]);
            }
            other => panic!("expected custom, got {other}"),
        }
    }

    #[test]
    fn listing_reassembles() {
        let src = "
            li r1, 70000
            mulh r2, r1, r1
            sll r3, r2, r1
        top:
            addi r3, r3, 1
            blt r3, r1, top
            jal lr, top
            jr lr
            send r1, r2, r3
            recv r1, r2, r3
            halt
        ";
        let p1 = assemble(src).unwrap();
        let p2 = assemble(&p1.listing()).unwrap();
        assert_eq!(p1.instrs, p2.instrs);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        match assemble("nop\nbogus r1, r2") {
            Err(IsaError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(matches!(
            assemble("bne r1, r0, missing"),
            Err(IsaError::UnboundLabel(_))
        ));
        assert!(matches!(
            assemble("x: nop\nx: nop"),
            Err(IsaError::DuplicateLabel(_))
        ));
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("li r1, 0xFF\nandi r2, r1, 0x0F\nhalt").unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::R1,
                rs1: Reg::R0,
                src2: Operand::Imm(255)
            }
        );
    }
}
