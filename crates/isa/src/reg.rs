//! Architectural registers of the W32 ISA.

use std::fmt;

/// One of the 32 general-purpose registers.
///
/// `R0` is hardwired to zero: reads return `0` and writes are discarded, as
/// in most RISC ISAs. By software convention `R29` is the stack pointer and
/// `R30` the link register; the assembler accepts `sp`, `lr` and `zero` as
/// aliases.
///
/// ```
/// use stitch_isa::Reg;
/// assert_eq!(Reg::from_index(29), Some(Reg::SP));
/// assert_eq!(Reg::SP.index(), 29);
/// assert_eq!("sp".parse::<Reg>().unwrap(), Reg::SP);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    #[default]
    R0 = 0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
    R16,
    R17,
    R18,
    R19,
    R20,
    R21,
    R22,
    R23,
    R24,
    R25,
    R26,
    R27,
    R28,
    R29,
    R30,
    R31,
}

impl Reg {
    /// The constant-zero register.
    pub const ZERO: Reg = Reg::R0;
    /// Stack pointer by software convention.
    pub const SP: Reg = Reg::R29;
    /// Link register written by `jal`/`call`.
    pub const LR: Reg = Reg::R30;

    /// All 32 registers in index order.
    #[must_use]
    pub fn all() -> [Reg; 32] {
        let mut out = [Reg::R0; 32];
        for (i, slot) in out.iter_mut().enumerate() {
            // `i < 32` by the array bound, so `from_index` is always
            // `Some`; `R0` is the panic-free fallback.
            *slot = Reg::from_index(i as u8).unwrap_or(Reg::R0);
        }
        out
    }

    /// Numeric index `0..=31`.
    #[must_use]
    pub fn index(self) -> u8 {
        self as u8
    }

    /// Builds a register from its numeric index, if in range.
    #[must_use]
    pub fn from_index(idx: u8) -> Option<Reg> {
        if idx < 32 {
            // SAFETY-free: exhaustive table lookup instead of transmute.
            const TABLE: [Reg; 32] = [
                Reg::R0,
                Reg::R1,
                Reg::R2,
                Reg::R3,
                Reg::R4,
                Reg::R5,
                Reg::R6,
                Reg::R7,
                Reg::R8,
                Reg::R9,
                Reg::R10,
                Reg::R11,
                Reg::R12,
                Reg::R13,
                Reg::R14,
                Reg::R15,
                Reg::R16,
                Reg::R17,
                Reg::R18,
                Reg::R19,
                Reg::R20,
                Reg::R21,
                Reg::R22,
                Reg::R23,
                Reg::R24,
                Reg::R25,
                Reg::R26,
                Reg::R27,
                Reg::R28,
                Reg::R29,
                Reg::R30,
                Reg::R31,
            ];
            Some(TABLE[idx as usize])
        } else {
            None
        }
    }

    /// Returns `true` for the hardwired-zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Reg::R0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::R29 => write!(f, "sp"),
            Reg::R30 => write!(f, "lr"),
            r => write!(f, "r{}", r.index()),
        }
    }
}

impl std::str::FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "zero" => return Ok(Reg::ZERO),
            "sp" => return Ok(Reg::SP),
            "lr" => return Ok(Reg::LR),
            _ => {}
        }
        let rest = lower.strip_prefix('r').ok_or(ParseRegError)?;
        let idx: u8 = rest.parse().map_err(|_| ParseRegError)?;
        Reg::from_index(idx).ok_or(ParseRegError)
    }
}

/// Error returned when a register name cannot be parsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseRegError;

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name")
    }
}

impl std::error::Error for ParseRegError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in 0..32u8 {
            let r = Reg::from_index(i).unwrap();
            assert_eq!(r.index(), i);
        }
        assert_eq!(Reg::from_index(32), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn display_and_parse() {
        assert_eq!(Reg::R7.to_string(), "r7");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
        for r in Reg::all() {
            let parsed: Reg = r.to_string().parse().unwrap();
            assert_eq!(parsed, r);
        }
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::R0);
        assert!("r32".parse::<Reg>().is_err());
        assert!("x1".parse::<Reg>().is_err());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
        assert_eq!(Reg::default(), Reg::R0);
    }
}
