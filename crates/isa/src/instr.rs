//! Instruction forms of the W32 ISA.

use crate::custom::CustomInstr;
use crate::op::AluOp;
use crate::reg::Reg;
use std::fmt;

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 8-bit access (zero-extended on load).
    Byte,
    /// 16-bit access (zero-extended on load).
    Half,
    /// 32-bit access.
    Word,
}

impl Width {
    /// Size in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }

    /// Encoding code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Width::Byte => 0,
            Width::Half => 1,
            Width::Word => 2,
        }
    }

    /// Inverse of [`Width::code`].
    #[must_use]
    pub fn from_code(c: u8) -> Option<Width> {
        match c {
            0 => Some(Width::Byte),
            1 => Some(Width::Half),
            2 => Some(Width::Word),
            _ => None,
        }
    }
}

/// Branch condition, evaluated on two register operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// All conditions in encoding order.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

    /// Evaluates the condition.
    #[must_use]
    #[inline]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }

    /// Encoding code.
    #[must_use]
    pub fn code(self) -> u8 {
        // Every variant appears in `ALL` in declaration order (pinned
        // by the encode/decode roundtrip tests); the discriminant is
        // the panic-free fallback should they ever diverge.
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .unwrap_or(self as usize) as u8
    }

    /// Inverse of [`Cond::code`].
    #[must_use]
    pub fn from_code(c: u8) -> Option<Cond> {
        Self::ALL.get(c as usize).copied()
    }

    /// Branch mnemonic (`beq`, `bne`, ...).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }
}

/// Second ALU operand: register or sign-extended 11-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand (must fit in 11 signed bits for encoding).
    Imm(i32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// A single W32 instruction with *resolved* control-flow targets
/// (absolute instruction indices within the program text).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// ALU operation `rd = rs1 <op> src2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// Load upper immediate: `rd = imm << 12`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// 20-bit immediate placed in the upper bits.
        imm: u32,
    },
    /// Memory load `rd = mem[base + offset]`.
    Load {
        /// Access width.
        w: Width,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset (14-bit).
        offset: i32,
    },
    /// Memory store `mem[base + offset] = rs`.
    Store {
        /// Access width.
        w: Width,
        /// Source data register.
        rs: Reg,
        /// Base address register.
        base: Reg,
        /// Signed byte offset (14-bit).
        offset: i32,
    },
    /// Conditional branch to absolute instruction index `target`.
    Branch {
        /// Condition.
        cond: Cond,
        /// First comparison operand.
        rs1: Reg,
        /// Second comparison operand.
        rs2: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Jump-and-link to absolute instruction index; `rd` receives the
    /// return instruction index (use `Reg::R0` for a plain jump).
    Jal {
        /// Link destination register.
        rd: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Indirect jump-and-link through `rs` (holds an instruction index).
    Jalr {
        /// Link destination register.
        rd: Reg,
        /// Register holding the target instruction index.
        rs: Reg,
    },
    /// Custom (ISE) instruction executed on a polymorphic patch.
    Custom(CustomInstr),
    /// Send `len` words starting at local address `addr` to tile `dst`
    /// (register operands; NIC-assisted, blocking until enqueued).
    Send {
        /// Register holding the destination tile id.
        dst: Reg,
        /// Register holding the source byte address.
        addr: Reg,
        /// Register holding the word count.
        len: Reg,
    },
    /// Blocking receive of `len` words from tile `src` into address `addr`.
    Recv {
        /// Register holding the expected source tile id.
        src: Reg,
        /// Register holding the destination byte address.
        addr: Reg,
        /// Register holding the word count.
        len: Reg,
    },
    /// Stop the core.
    Halt,
}

impl Instr {
    /// Registers read by this instruction (for dataflow analysis).
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(4);
        match self {
            Instr::Nop | Instr::Halt | Instr::Lui { .. } | Instr::Jal { .. } => {}
            Instr::Alu { rs1, src2, .. } => {
                v.push(*rs1);
                if let Operand::Reg(r) = src2 {
                    v.push(*r);
                }
            }
            Instr::Load { base, .. } => v.push(*base),
            Instr::Store { rs, base, .. } => {
                v.push(*rs);
                v.push(*base);
            }
            Instr::Branch { rs1, rs2, .. } => {
                v.push(*rs1);
                v.push(*rs2);
            }
            Instr::Jalr { rs, .. } => v.push(*rs),
            Instr::Custom(ci) => v.extend(ci.inputs()),
            Instr::Send { dst, addr, len } => {
                v.push(*dst);
                v.push(*addr);
                v.push(*len);
            }
            Instr::Recv { src, addr, len } => {
                v.push(*src);
                v.push(*addr);
                v.push(*len);
            }
        }
        v.retain(|r| !r.is_zero());
        v
    }

    /// Registers written by this instruction.
    #[must_use]
    pub fn defs(&self) -> Vec<Reg> {
        let mut v = Vec::with_capacity(2);
        match self {
            Instr::Alu { rd, .. }
            | Instr::Lui { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. } => v.push(*rd),
            Instr::Custom(ci) => v.extend(ci.outputs()),
            _ => {}
        }
        v.retain(|r| !r.is_zero());
        v
    }

    /// Returns `true` if this instruction ends a basic block
    /// (branch, jump, halt, send/recv act as scheduling barriers).
    #[must_use]
    pub fn is_block_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. }
                | Instr::Jal { .. }
                | Instr::Jalr { .. }
                | Instr::Halt
                | Instr::Send { .. }
                | Instr::Recv { .. }
        )
    }

    /// Number of 32-bit words this instruction occupies in the binary
    /// (custom instructions are two words, paper §III-A).
    #[must_use]
    pub fn words(&self) -> u32 {
        match self {
            Instr::Custom(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Nop => write!(f, "nop"),
            Instr::Alu { op, rd, rs1, src2 } => match src2 {
                Operand::Reg(_) => write!(f, "{op} {rd}, {rs1}, {src2}"),
                Operand::Imm(_) => write!(f, "{op}i {rd}, {rs1}, {src2}"),
            },
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instr::Load {
                w,
                rd,
                base,
                offset,
            } => {
                write!(f, "l{} {rd}, {offset}({base})", width_suffix(*w))
            }
            Instr::Store {
                w,
                rs,
                base,
                offset,
            } => {
                write!(f, "s{} {rs}, {offset}({base})", width_suffix(*w))
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "{} {rs1}, {rs2}, @{target}", cond.mnemonic())
            }
            Instr::Jal { rd, target } => {
                if rd.is_zero() {
                    write!(f, "j @{target}")
                } else {
                    write!(f, "jal {rd}, @{target}")
                }
            }
            Instr::Jalr { rd, rs } => {
                if rd.is_zero() {
                    write!(f, "jr {rs}")
                } else {
                    write!(f, "jalr {rd}, {rs}")
                }
            }
            Instr::Custom(ci) => write!(f, "{ci}"),
            Instr::Send { dst, addr, len } => write!(f, "send {dst}, {addr}, {len}"),
            Instr::Recv { src, addr, len } => write!(f, "recv {src}, {addr}, {len}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

fn width_suffix(w: Width) -> &'static str {
    match w {
        Width::Byte => "b",
        Width::Half => "h",
        Width::Word => "w",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval() {
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Lt.eval(u32::MAX, 0), "-1 < 0 signed");
        assert!(!Cond::Ltu.eval(u32::MAX, 0));
        assert!(Cond::Ge.eval(0, u32::MAX));
        assert!(Cond::Geu.eval(u32::MAX, u32::MAX));
        for c in Cond::ALL {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
    }

    #[test]
    fn uses_and_defs() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R3,
            rs1: Reg::R1,
            src2: Operand::Reg(Reg::R2),
        };
        assert_eq!(i.uses(), vec![Reg::R1, Reg::R2]);
        assert_eq!(i.defs(), vec![Reg::R3]);

        let st = Instr::Store {
            w: Width::Word,
            rs: Reg::R4,
            base: Reg::R5,
            offset: 8,
        };
        assert_eq!(st.uses(), vec![Reg::R4, Reg::R5]);
        assert!(st.defs().is_empty());

        // Zero register never appears in use/def sets.
        let z = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R0,
            rs1: Reg::R0,
            src2: Operand::Imm(1),
        };
        assert!(z.uses().is_empty());
        assert!(z.defs().is_empty());
    }

    #[test]
    fn terminators() {
        assert!(Instr::Halt.is_block_terminator());
        assert!(Instr::Jal {
            rd: Reg::R0,
            target: 0
        }
        .is_block_terminator());
        assert!(!Instr::Nop.is_block_terminator());
    }

    #[test]
    fn display_forms() {
        let i = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R3,
            rs1: Reg::R1,
            src2: Operand::Imm(-4),
        };
        assert_eq!(i.to_string(), "addi r3, r1, -4");
        let l = Instr::Load {
            w: Width::Word,
            rd: Reg::R2,
            base: Reg::SP,
            offset: 12,
        };
        assert_eq!(l.to_string(), "lw r2, 12(sp)");
    }

    #[test]
    fn width_codes() {
        for w in [Width::Byte, Width::Half, Width::Word] {
            assert_eq!(Width::from_code(w.code()), Some(w));
        }
        assert_eq!(Width::from_code(3), None);
        assert_eq!(Width::Word.bytes(), 4);
    }
}
