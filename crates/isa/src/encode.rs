//! Binary encoding of W32 instructions.
//!
//! Every instruction occupies one 32-bit word except custom instructions,
//! which are two words (the second word carries the remaining operand
//! specifiers — the paper's "two-word size custom instruction"). Branch and
//! jump displacements are PC-relative in *words*; the [`Instr`] form stores
//! absolute instruction indices, and [`encode_program`]/[`decode_program`]
//! translate between the two.

use crate::custom::{CiId, CustomInstr};
use crate::instr::{Cond, Instr, Operand, Width};
use crate::op::AluOp;
use crate::reg::Reg;
use crate::IsaError;

/// Instruction opcodes (bits `[31:26]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
enum Opcode {
    Nop = 0,
    AluRr = 1,
    AluRi = 2,
    Lui = 3,
    Load = 4,
    Store = 5,
    Branch = 6,
    Jal = 7,
    Jalr = 8,
    Custom = 9,
    Send = 10,
    Recv = 11,
    Halt = 12,
}

fn field(value: u32, shift: u32, bits: u32) -> u32 {
    (value & ((1 << bits) - 1)) << shift
}

fn extract(word: u32, shift: u32, bits: u32) -> u32 {
    (word >> shift) & ((1 << bits) - 1)
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn check_signed(what: &'static str, value: i64, bits: u32) -> Result<u32, IsaError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(IsaError::ImmediateOutOfRange { what, value, bits });
    }
    Ok((value as u32) & ((1 << bits) - 1))
}

fn reg_at(word: u32, shift: u32) -> Result<Reg, IsaError> {
    Reg::from_index(extract(word, shift, 5) as u8).ok_or(IsaError::Decode {
        word,
        reason: "bad register field",
    })
}

/// Encodes one instruction located at word address `pc` (in words).
///
/// Returns the encoded words (one or two).
///
/// # Errors
///
/// Fails when an immediate or displacement exceeds its field width.
pub fn encode(
    instr: &Instr,
    pc: u32,
    target_words: impl Fn(u32) -> u32,
) -> Result<Vec<u32>, IsaError> {
    let op = |o: Opcode| (o as u32) << 26;
    let one = |w: u32| Ok(vec![w]);
    match instr {
        Instr::Nop => one(op(Opcode::Nop)),
        Instr::Halt => one(op(Opcode::Halt)),
        Instr::Alu {
            op: aop,
            rd,
            rs1,
            src2,
        } => match src2 {
            Operand::Reg(rs2) => one(op(Opcode::AluRr)
                | field(aop.code().into(), 22, 4)
                | field(rd.index().into(), 17, 5)
                | field(rs1.index().into(), 12, 5)
                | field(rs2.index().into(), 7, 5)),
            Operand::Imm(imm) => {
                let enc = check_signed("alu immediate", i64::from(*imm), 12)?;
                one(op(Opcode::AluRi)
                    | field(aop.code().into(), 22, 4)
                    | field(rd.index().into(), 17, 5)
                    | field(rs1.index().into(), 12, 5)
                    | field(enc, 0, 12))
            }
        },
        Instr::Lui { rd, imm } => {
            if *imm >= (1 << 20) {
                return Err(IsaError::ImmediateOutOfRange {
                    what: "lui",
                    value: i64::from(*imm),
                    bits: 20,
                });
            }
            one(op(Opcode::Lui) | field(rd.index().into(), 21, 5) | field(*imm, 0, 20))
        }
        Instr::Load {
            w,
            rd,
            base,
            offset,
        } => {
            let enc = check_signed("load offset", i64::from(*offset), 14)?;
            one(op(Opcode::Load)
                | field(w.code().into(), 24, 2)
                | field(rd.index().into(), 19, 5)
                | field(base.index().into(), 14, 5)
                | field(enc, 0, 14))
        }
        Instr::Store {
            w,
            rs,
            base,
            offset,
        } => {
            let enc = check_signed("store offset", i64::from(*offset), 14)?;
            one(op(Opcode::Store)
                | field(w.code().into(), 24, 2)
                | field(rs.index().into(), 19, 5)
                | field(base.index().into(), 14, 5)
                | field(enc, 0, 14))
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let disp = i64::from(target_words(*target)) - i64::from(pc);
            let enc = check_signed("branch displacement", disp, 13)?;
            one(op(Opcode::Branch)
                | field(cond.code().into(), 23, 3)
                | field(rs1.index().into(), 18, 5)
                | field(rs2.index().into(), 13, 5)
                | field(enc, 0, 13))
        }
        Instr::Jal { rd, target } => {
            let disp = i64::from(target_words(*target)) - i64::from(pc);
            let enc = check_signed("jump displacement", disp, 21)?;
            one(op(Opcode::Jal) | field(rd.index().into(), 21, 5) | field(enc, 0, 21))
        }
        Instr::Jalr { rd, rs } => one(op(Opcode::Jalr)
            | field(rd.index().into(), 21, 5)
            | field(rs.index().into(), 16, 5)),
        Instr::Send { dst, addr, len } => one(op(Opcode::Send)
            | field(dst.index().into(), 21, 5)
            | field(addr.index().into(), 16, 5)
            | field(len.index().into(), 11, 5)),
        Instr::Recv { src, addr, len } => one(op(Opcode::Recv)
            | field(src.index().into(), 21, 5)
            | field(addr.index().into(), 16, 5)
            | field(len.index().into(), 11, 5)),
        Instr::Custom(ci) => {
            let ins = ci.input_slots();
            let outs = ci.outputs();
            let w0 = op(Opcode::Custom)
                | field(u32::from(ci.ci.0), 16, 10)
                | field(ins[0].index().into(), 11, 5)
                | field(ins[1].index().into(), 6, 5)
                | field(ci.inputs().len() as u32, 3, 3)
                | field(outs.len() as u32, 1, 2);
            let out0 = outs.first().copied().unwrap_or(Reg::R0);
            let out1 = outs.get(1).copied().unwrap_or(Reg::R0);
            let w1 = field(ins[2].index().into(), 27, 5)
                | field(ins[3].index().into(), 22, 5)
                | field(out0.index().into(), 17, 5)
                | field(out1.index().into(), 12, 5);
            Ok(vec![w0, w1])
        }
    }
}

/// Decodes the instruction at word address `pc`.
///
/// `words` is the remaining word stream starting at `pc`. Returns the
/// instruction (with control-flow targets still expressed as *word*
/// addresses; see [`decode_program`]) and the number of words consumed.
///
/// # Errors
///
/// Fails on unknown opcodes or malformed fields.
pub fn decode(words: &[u32], pc: u32) -> Result<(Instr, u32), IsaError> {
    let word = *words.first().ok_or(IsaError::Decode {
        word: 0,
        reason: "empty stream",
    })?;
    let opcode = word >> 26;
    let instr = match opcode {
        x if x == Opcode::Nop as u32 => Instr::Nop,
        x if x == Opcode::Halt as u32 => Instr::Halt,
        x if x == Opcode::AluRr as u32 => {
            let aop = AluOp::from_code(extract(word, 22, 4) as u8).ok_or(IsaError::Decode {
                word,
                reason: "bad alu op",
            })?;
            Instr::Alu {
                op: aop,
                rd: reg_at(word, 17)?,
                rs1: reg_at(word, 12)?,
                src2: Operand::Reg(reg_at(word, 7)?),
            }
        }
        x if x == Opcode::AluRi as u32 => {
            let aop = AluOp::from_code(extract(word, 22, 4) as u8).ok_or(IsaError::Decode {
                word,
                reason: "bad alu op",
            })?;
            Instr::Alu {
                op: aop,
                rd: reg_at(word, 17)?,
                rs1: reg_at(word, 12)?,
                src2: Operand::Imm(sign_extend(extract(word, 0, 12), 12)),
            }
        }
        x if x == Opcode::Lui as u32 => Instr::Lui {
            rd: reg_at(word, 21)?,
            imm: extract(word, 0, 20),
        },
        x if x == Opcode::Load as u32 => Instr::Load {
            w: Width::from_code(extract(word, 24, 2) as u8).ok_or(IsaError::Decode {
                word,
                reason: "bad width",
            })?,
            rd: reg_at(word, 19)?,
            base: reg_at(word, 14)?,
            offset: sign_extend(extract(word, 0, 14), 14),
        },
        x if x == Opcode::Store as u32 => Instr::Store {
            w: Width::from_code(extract(word, 24, 2) as u8).ok_or(IsaError::Decode {
                word,
                reason: "bad width",
            })?,
            rs: reg_at(word, 19)?,
            base: reg_at(word, 14)?,
            offset: sign_extend(extract(word, 0, 14), 14),
        },
        x if x == Opcode::Branch as u32 => {
            let cond = Cond::from_code(extract(word, 23, 3) as u8).ok_or(IsaError::Decode {
                word,
                reason: "bad condition",
            })?;
            let disp = sign_extend(extract(word, 0, 13), 13);
            Instr::Branch {
                cond,
                rs1: reg_at(word, 18)?,
                rs2: reg_at(word, 13)?,
                target: pc.wrapping_add_signed(disp),
            }
        }
        x if x == Opcode::Jal as u32 => {
            let disp = sign_extend(extract(word, 0, 21), 21);
            Instr::Jal {
                rd: reg_at(word, 21)?,
                target: pc.wrapping_add_signed(disp),
            }
        }
        x if x == Opcode::Jalr as u32 => Instr::Jalr {
            rd: reg_at(word, 21)?,
            rs: reg_at(word, 16)?,
        },
        x if x == Opcode::Send as u32 => Instr::Send {
            dst: reg_at(word, 21)?,
            addr: reg_at(word, 16)?,
            len: reg_at(word, 11)?,
        },
        x if x == Opcode::Recv as u32 => Instr::Recv {
            src: reg_at(word, 21)?,
            addr: reg_at(word, 16)?,
            len: reg_at(word, 11)?,
        },
        x if x == Opcode::Custom as u32 => {
            let w1 = *words.get(1).ok_or(IsaError::Decode {
                word,
                reason: "custom instruction truncated (missing second word)",
            })?;
            let n_ins = extract(word, 3, 3) as usize;
            let n_outs = extract(word, 1, 2) as usize;
            if n_ins > 4 || n_outs > 2 {
                return Err(IsaError::Decode {
                    word,
                    reason: "bad custom arity",
                });
            }
            let all_ins = [
                reg_at(word, 11)?,
                reg_at(word, 6)?,
                reg_at(w1, 27)?,
                reg_at(w1, 22)?,
            ];
            let all_outs = [reg_at(w1, 17)?, reg_at(w1, 12)?];
            let ci = CustomInstr::new(
                CiId(extract(word, 16, 10) as u16),
                &all_ins[..n_ins],
                &all_outs[..n_outs],
            )
            .map_err(|_| IsaError::Decode {
                word,
                reason: "bad custom arity",
            })?;
            return Ok((Instr::Custom(ci), 2));
        }
        _ => {
            return Err(IsaError::Decode {
                word,
                reason: "unknown opcode",
            })
        }
    };
    Ok((instr, 1))
}

/// Encodes a whole instruction sequence to machine words, translating the
/// absolute instruction-index targets into word-relative displacements.
///
/// # Errors
///
/// Fails when a displacement or immediate does not fit.
pub fn encode_program(instrs: &[Instr]) -> Result<Vec<u32>, IsaError> {
    // Word offset of each instruction (custom instructions take 2 words).
    let mut word_of = Vec::with_capacity(instrs.len() + 1);
    let mut off = 0u32;
    for i in instrs {
        word_of.push(off);
        off += i.words();
    }
    word_of.push(off);
    let lookup = |idx: u32| word_of.get(idx as usize).copied().unwrap_or(off);

    let mut out = Vec::with_capacity(off as usize);
    for (i, instr) in instrs.iter().enumerate() {
        out.extend(encode(instr, word_of[i], lookup)?);
    }
    Ok(out)
}

/// Decodes a machine-word stream back into instructions with absolute
/// instruction-index control-flow targets (inverse of [`encode_program`]).
///
/// # Errors
///
/// Fails on malformed words or targets landing inside a two-word
/// instruction.
pub fn decode_program(words: &[u32]) -> Result<Vec<Instr>, IsaError> {
    let mut instrs = Vec::new();
    let mut word_to_index = vec![u32::MAX; words.len() + 1];
    let mut pc = 0u32;
    while (pc as usize) < words.len() {
        word_to_index[pc as usize] = instrs.len() as u32;
        let (instr, n) = decode(&words[pc as usize..], pc)?;
        instrs.push(instr);
        pc += n;
    }
    word_to_index[words.len()] = instrs.len() as u32;

    // Second pass: rewrite word targets to instruction indices.
    for instr in &mut instrs {
        let fix = |t: &mut u32, word: u32| -> Result<(), IsaError> {
            let idx = word_to_index
                .get(*t as usize)
                .copied()
                .filter(|&i| i != u32::MAX)
                .ok_or(IsaError::Decode {
                    word,
                    reason: "branch into middle of instruction",
                })?;
            *t = idx;
            Ok(())
        };
        match instr {
            Instr::Branch { target, .. } => fix(target, 0)?,
            Instr::Jal { target, .. } => fix(target, 0)?,
            _ => {}
        }
    }
    Ok(instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::custom::CiId;

    fn round_trip(instrs: Vec<Instr>) {
        let words = encode_program(&instrs).expect("encode");
        let back = decode_program(&words).expect("decode");
        assert_eq!(back, instrs);
    }

    #[test]
    fn round_trip_basic() {
        round_trip(vec![
            Instr::Nop,
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::R1,
                rs1: Reg::R2,
                src2: Operand::Reg(Reg::R3),
            },
            Instr::Alu {
                op: AluOp::Sra,
                rd: Reg::R4,
                rs1: Reg::R5,
                src2: Operand::Imm(-7),
            },
            Instr::Lui {
                rd: Reg::R6,
                imm: 0xFFFFF,
            },
            Instr::Load {
                w: Width::Word,
                rd: Reg::R7,
                base: Reg::SP,
                offset: -16,
            },
            Instr::Store {
                w: Width::Byte,
                rs: Reg::R8,
                base: Reg::R9,
                offset: 8191,
            },
            Instr::Send {
                dst: Reg::R1,
                addr: Reg::R2,
                len: Reg::R3,
            },
            Instr::Recv {
                src: Reg::R1,
                addr: Reg::R2,
                len: Reg::R3,
            },
            Instr::Jalr {
                rd: Reg::LR,
                rs: Reg::R10,
            },
            Instr::Halt,
        ]);
    }

    #[test]
    fn round_trip_control_flow_across_custom() {
        // A custom instruction (2 words) sits between a branch and its
        // target, exercising the index<->word translation.
        let ci = CustomInstr::new(CiId(5), &[Reg::R1, Reg::R2, Reg::R3], &[Reg::R4]).unwrap();
        round_trip(vec![
            Instr::Branch {
                cond: Cond::Ne,
                rs1: Reg::R1,
                rs2: Reg::R0,
                target: 3,
            },
            Instr::Custom(ci),
            Instr::Nop,
            Instr::Jal {
                rd: Reg::R0,
                target: 0,
            },
            Instr::Halt,
        ]);
    }

    #[test]
    fn immediate_range_checked() {
        let too_big = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R1,
            rs1: Reg::R1,
            src2: Operand::Imm(1 << 12),
        };
        assert!(matches!(
            encode_program(&[too_big]),
            Err(IsaError::ImmediateOutOfRange { bits: 12, .. })
        ));
        let ok = Instr::Alu {
            op: AluOp::Add,
            rd: Reg::R1,
            rs1: Reg::R1,
            src2: Operand::Imm(2047),
        };
        assert!(encode_program(&[ok]).is_ok());
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        let bad = 0x3F << 26;
        assert!(matches!(decode(&[bad], 0), Err(IsaError::Decode { .. })));
    }

    #[test]
    fn decode_rejects_truncated_custom() {
        let ci = CustomInstr::new(CiId(1), &[Reg::R1], &[Reg::R2]).unwrap();
        let words = encode(&Instr::Custom(ci), 0, |t| t).unwrap();
        assert_eq!(words.len(), 2);
        assert!(decode(&words[..1], 0).is_err());
    }

    #[test]
    fn custom_encodes_two_words() {
        let ci = CustomInstr::new(
            CiId(1023),
            &[Reg::R31, Reg::R30, Reg::R29, Reg::R28],
            &[Reg::R27, Reg::R26],
        )
        .unwrap();
        let instrs = vec![Instr::Custom(ci), Instr::Halt];
        let words = encode_program(&instrs).unwrap();
        assert_eq!(words.len(), 3);
        assert_eq!(decode_program(&words).unwrap(), instrs);
    }
}
