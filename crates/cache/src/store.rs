//! The content-addressed artifact store.
//!
//! A directory of verified-artifact files, one per content key. The
//! file discipline is the sweep manifest's, hardened for a cache whose
//! *contents* are trusted artifacts (a decoded artifact skips live
//! verification):
//!
//! * **Atomic writes** — payloads go to a `.tmp` sibling first and are
//!   `rename`d into place, so readers observe a complete file or none.
//! * **Self-checking files** — magic/format version, the full content
//!   key echoed back (a renamed or hash-colliding file cannot
//!   impersonate another key), the payload, and an FNV-1a checksum.
//! * **Invalid reads as absent** — truncation, corruption, a stale
//!   format version, a key mismatch: every failure mode returns `None`,
//!   and the caller re-verifies live. A poisoned cache can cost time,
//!   never correctness.
//!
//! Content keys are derived by callers from a SHA-256 over the artifact
//! *inputs* (program bytes, ISE mappings, plan, arch parameters, and
//! `stitch_verify::VERIFIER_VERSION`), so any mutated input — or a
//! verifier upgrade — misses the cache by construction.

use crate::rec::{fnv1a64, Rec, RecView};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic + format version of an artifact file (bumping the version
/// retires every existing artifact at once).
const MAGIC: &[u8; 8] = b"STCHART1";

/// Extension of completed artifact files.
const ART_EXT: &str = "art";

/// A directory of atomically written, self-checking artifact files,
/// plus hit/miss counters (shared by every handle through the `Arc`
/// callers wrap the store in).
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ArtifactStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads served from a valid artifact file so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads that found no (valid) artifact so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// File path for a content key. Keys are hex digests in practice,
    /// but hostile keys stay safe: characters outside `[A-Za-z0-9._-]`
    /// are replaced and a hash of the original key disambiguates.
    fn path_for(&self, key: &str) -> PathBuf {
        let safe: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let name = if safe == key {
            format!("{safe}.{ART_EXT}")
        } else {
            format!("{safe}-{:016x}.{ART_EXT}", fnv1a64(key.as_bytes()))
        };
        self.dir.join(name)
    }

    /// Returns the payload stored for `key`, or `None` when no valid
    /// artifact exists — which includes every failure mode (missing
    /// file, truncation, corruption, wrong key, stale format version):
    /// an invalid artifact is indistinguishable from work still to do,
    /// and re-verifying live is always correct.
    #[must_use]
    pub fn load(&self, key: &str) -> Option<Vec<u8>> {
        let payload = self.load_inner(key);
        match payload {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        payload
    }

    fn load_inner(&self, key: &str) -> Option<Vec<u8>> {
        let bytes = fs::read(self.path_for(key)).ok()?;
        let mut v = RecView::new(&bytes);
        if v.bytes(MAGIC.len())? != MAGIC {
            return None;
        }
        let stored_key = v.str()?;
        if stored_key != key {
            return None;
        }
        let payload = v.blob()?;
        let sum = v.u64()?;
        if !v.at_end() || sum != fnv1a64(&bytes[..bytes.len() - 8]) {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Atomically records `payload` as the artifact for `key`: the bytes
    /// are written to a temporary sibling and renamed into place, so
    /// concurrent readers observe either the complete file or nothing.
    ///
    /// # Errors
    ///
    /// Propagates the underlying write/rename failure.
    pub fn store(&self, key: &str, payload: &[u8]) -> io::Result<()> {
        let path = self.path_for(key);
        let mut rec = Rec::new();
        rec.raw(MAGIC);
        rec.str(key);
        rec.blob(payload);
        let sum = fnv1a64(rec.as_bytes());
        rec.u64(sum);
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, rec.into_bytes())?;
        fs::rename(&tmp, &path)
    }

    /// Number of artifact files currently in the store.
    #[must_use]
    pub fn completed(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == ART_EXT))
            .count()
    }

    /// Removes every artifact (and leftover temporary) file.
    ///
    /// # Errors
    ///
    /// Propagates the first removal failure.
    pub fn clear(&self) -> io::Result<()> {
        for e in fs::read_dir(&self.dir)?.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == ART_EXT || x == "tmp") {
                fs::remove_file(&p)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("stitch-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("open store")
    }

    #[test]
    fn store_then_load_round_trips_and_counts_hits() {
        let s = tmp_store("roundtrip");
        assert_eq!(s.load("k"), None);
        assert_eq!((s.hits(), s.misses()), (0, 1));
        s.store("k", b"artifact").expect("store");
        assert_eq!(s.load("k").as_deref(), Some(&b"artifact"[..]));
        assert_eq!((s.hits(), s.misses()), (1, 1));
        assert_eq!(s.completed(), 1);
        let _ = fs::remove_dir_all(s.dir());
    }

    /// The poisoning corpus: truncated, bit-flipped, version-bumped, and
    /// impersonating files must all read as absent — the caller then
    /// re-verifies live, so a poisoned cache can never serve a stale or
    /// corrupt artifact.
    #[test]
    fn truncated_and_bitflipped_artifacts_read_as_absent() {
        let s = tmp_store("poison");
        s.store("pt", b"payload").expect("store");
        let path = s.path_for("pt");
        let full = fs::read(&path).expect("read back");

        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).expect("truncate");
            assert_eq!(s.load_inner("pt"), None, "cut at {cut} accepted");
        }
        for i in 0..full.len() {
            let mut dented = full.clone();
            dented[i] ^= 0x40;
            fs::write(&path, &dented).expect("corrupt");
            assert_eq!(s.load_inner("pt"), None, "flip at {i} accepted");
        }
        fs::write(&path, &full).expect("restore");
        assert_eq!(s.load_inner("pt").as_deref(), Some(&b"payload"[..]));
        let _ = fs::remove_dir_all(s.dir());
    }

    /// A file written under an older (or newer) format version must be
    /// invisible, even with a correct checksum for its own bytes.
    #[test]
    fn version_bumped_artifacts_read_as_absent() {
        let s = tmp_store("version");
        for stale_magic in [b"STCHART0", b"STCHART2", b"STCHPT01"] {
            let mut rec = Rec::new();
            rec.raw(stale_magic);
            rec.str("vkey");
            rec.blob(b"old payload");
            let sum = fnv1a64(rec.as_bytes());
            rec.u64(sum);
            fs::write(s.path_for("vkey"), rec.into_bytes()).expect("write stale");
            assert_eq!(
                s.load("vkey"),
                None,
                "stale magic {:?} accepted",
                std::str::from_utf8(stale_magic)
            );
        }
        let _ = fs::remove_dir_all(s.dir());
    }

    /// A renamed artifact (the on-disk shape of a filename/hash
    /// collision) cannot impersonate another key: the echoed key wins.
    #[test]
    fn renamed_artifacts_cannot_impersonate_other_keys() {
        let s = tmp_store("rename");
        s.store("key-a", b"aaa").expect("store");
        fs::rename(s.path_for("key-a"), s.path_for("key-b")).expect("rename");
        assert_eq!(s.load("key-b"), None, "key binding not enforced");
        // And the original key now misses too (its file is gone).
        assert_eq!(s.load("key-a"), None);
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn hostile_keys_map_to_distinct_files() {
        let s = tmp_store("keys");
        s.store("a/b", b"one").expect("store");
        s.store("a_b", b"two").expect("store");
        assert_eq!(s.load("a/b").as_deref(), Some(&b"one"[..]));
        assert_eq!(s.load("a_b").as_deref(), Some(&b"two"[..]));
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn clear_removes_artifacts_and_leftover_tmps() {
        let s = tmp_store("clear");
        s.store("x", b"1").expect("store");
        fs::write(s.dir().join("y.tmp"), b"partial").expect("tmp");
        assert_eq!(s.completed(), 1);
        s.clear().expect("clear");
        assert_eq!(s.completed(), 0);
        assert_eq!(s.load("x"), None);
        assert!(!s.dir().join("y.tmp").exists());
        let _ = fs::remove_dir_all(s.dir());
    }

    #[test]
    fn overwriting_is_atomic_last_writer_wins() {
        let s = tmp_store("overwrite");
        s.store("k", b"old").expect("store");
        s.store("k", b"new").expect("store");
        assert_eq!(s.load("k").as_deref(), Some(&b"new"[..]));
        assert_eq!(s.completed(), 1);
        let _ = fs::remove_dir_all(s.dir());
    }
}
