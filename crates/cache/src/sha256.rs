//! SHA-256, self-contained.
//!
//! The artifact store keys entries by a *strong* content hash so that a
//! cache hit is evidence the inputs are byte-identical — the in-process
//! verify memo's double-FNV key is fine for a per-run table but too weak
//! to gate persistent reuse across processes. FIPS 180-4, streaming
//! interface, no dependencies.

/// Streaming SHA-256 hasher.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_bytes: u64,
}

const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher (FIPS 180-4 initial state).
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09_e667,
                0xbb67_ae85,
                0x3c6e_f372,
                0xa54f_f53a,
                0x510e_527f,
                0x9b05_688c,
                0x1f83_d9ab,
                0x5be0_cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_bytes: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.total_bytes = self.total_bytes.wrapping_add(bytes.len() as u64);
        if self.buf_len > 0 {
            let take = bytes.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&bytes[..take]);
            self.buf_len += take;
            bytes = &bytes[take..];
            if self.buf_len < 64 {
                // `bytes` is exhausted (take == bytes.len()); the tail
                // assignment below must not clobber the partial buffer.
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        while bytes.len() >= 64 {
            let (block, rest) = bytes.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            bytes = rest;
        }
        self.buf[..bytes.len()].copy_from_slice(bytes);
        self.buf_len = bytes.len();
    }

    /// Length-prefixed update: domain-separates adjacent fields so that
    /// `("ab", "c")` and `("a", "bc")` hash differently.
    pub fn field(&mut self, bytes: &[u8]) {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes);
    }

    /// Finishes and returns the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_bytes.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The length must not count the padding just absorbed.
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Finishes and returns the digest as lowercase hex.
    #[must_use]
    pub fn finalize_hex(self) -> String {
        let d = self.finalize();
        let mut s = String::with_capacity(64);
        for b in d {
            use std::fmt::Write as _;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot digest.
#[must_use]
pub fn sha256(bytes: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finalize()
}

/// One-shot hex digest.
#[must_use]
pub fn sha256_hex(bytes: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finalize_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP known-answer vectors.
    #[test]
    fn known_answers() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            h.finalize_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..200u16).map(|i| (i * 7 % 251) as u8).collect();
        let want = sha256(&data);
        for cut in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..cut]);
            h.update(&data[cut..]);
            assert_eq!(h.finalize(), want, "split at {cut}");
        }
    }

    #[test]
    fn field_framing_distinguishes_boundaries() {
        let mut a = Sha256::new();
        a.field(b"ab");
        a.field(b"c");
        let mut b = Sha256::new();
        b.field(b"a");
        b.field(b"bc");
        assert_ne!(a.finalize(), b.finalize());
    }
}
