//! Little-endian record codec shared by the sweep manifest and the
//! artifact store.
//!
//! Deliberately tiny: fixed-width integers, IEEE-754 bit-pattern floats
//! (so a decoded value is *bit-identical* to the encoded one), and
//! length-prefixed strings/blobs/word-vectors. [`Rec`] writes, the
//! bounds-checked [`RecView`] reads; every accessor returns `None` past
//! the end, so truncated or hostile bytes can never panic a reader.

/// 64-bit FNV-1a, used as the self-checksum of manifest and artifact
/// files (corruption detection only — content *keys* use SHA-256).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Little-endian record writer.
#[derive(Debug, Default, Clone)]
pub struct Rec {
    buf: Vec<u8>,
}

impl Rec {
    /// Empty record.
    #[must_use]
    pub fn new() -> Self {
        Rec::default()
    }

    /// Finished bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes with no length prefix (header use only).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn blob(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed vector of words.
    pub fn words(&mut self, w: &[u32]) {
        self.u32(w.len() as u32);
        for &x in w {
            self.u32(x);
        }
    }
}

/// Bounds-checked reader over [`Rec`]-encoded bytes. Every accessor
/// returns `None` past the end — truncation can never panic.
#[derive(Debug, Clone, Copy)]
pub struct RecView<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RecView<'a> {
    /// Reader over `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        RecView { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    /// Next `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Next `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Next `f64` (bit pattern).
    pub fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    /// Next length-prefixed string.
    pub fn str(&mut self) -> Option<&'a str> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.bytes(len)?).ok()
    }

    /// Next length-prefixed blob.
    pub fn blob(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.bytes(len)
    }

    /// Next length-prefixed word vector. The length is validated against
    /// the remaining bytes before allocating.
    pub fn words(&mut self) -> Option<Vec<u32>> {
        let len = self.u32()? as usize;
        if len.checked_mul(4)? > self.buf.len() - self.pos {
            return None;
        }
        (0..len).map(|_| self.u32()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_field_type() {
        let mut r = Rec::new();
        r.u8(7);
        r.u32(0xdead_beef);
        r.u64(u64::MAX - 1);
        r.f64(-0.0);
        r.str("héllo");
        r.blob(&[1, 2, 3]);
        r.words(&[4, 5]);
        let bytes = r.into_bytes();
        let mut v = RecView::new(&bytes);
        assert_eq!(v.u8(), Some(7));
        assert_eq!(v.u32(), Some(0xdead_beef));
        assert_eq!(v.u64(), Some(u64::MAX - 1));
        assert_eq!(v.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(v.str(), Some("héllo"));
        assert_eq!(v.blob(), Some(&[1u8, 2, 3][..]));
        assert_eq!(v.words(), Some(vec![4, 5]));
        assert!(v.at_end());
    }

    #[test]
    fn truncation_reads_as_none_never_panics() {
        let mut r = Rec::new();
        r.words(&[1, 2, 3]);
        r.str("tail");
        let bytes = r.into_bytes();
        for cut in 0..bytes.len() {
            let mut v = RecView::new(&bytes[..cut]);
            // Either accessor may fail; neither may panic.
            let _ = v.words();
            let _ = v.str();
        }
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocating() {
        // A words() length of u32::MAX over a 4-byte body must not
        // attempt the allocation.
        let mut bytes = u32::MAX.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 4]);
        assert_eq!(RecView::new(&bytes).words(), None);
    }
}
