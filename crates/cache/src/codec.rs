//! Binary codecs for the verify-level artifact types.
//!
//! Everything an artifact carries bottoms out in four shared shapes —
//! W32 [`Program`]s, packed patch [`ControlWord`]s, [`IseCheck`]
//! equivalence obligations, and verify [`Report`]s — encoded here over
//! the [`Rec`]/[`RecView`] record codec. Higher layers (the compiler's
//! kernel artifacts, the workbench's prepared-app artifacts) compose
//! these.
//!
//! Design rules, shared with the sweep manifest:
//!
//! * **Deterministic bytes** — unordered containers (program symbols,
//!   per-CI control maps) are serialized in sorted order, so the encoded
//!   form doubles as a content-hash input.
//! * **Decode never trusts** — every read is bounds-checked, every code
//!   is re-validated through the owning type's own constructor/decoder
//!   (`decode_program`, `ControlWord::unpack`, `AluOp::from_code`), and
//!   any failure returns `None`: the artifact reads as absent and the
//!   caller recomputes.
//! * **Static strings intern** — a [`Diagnostic`]'s `code` is
//!   `&'static str`; decoding matches it against the table of known
//!   codes and treats unknown codes as corruption.

use crate::rec::{Rec, RecView};
use stitch_isa::custom::{CiStage, PatchClass};
use stitch_isa::program::DataSegment;
use stitch_isa::{decode_program, encode_program, AluOp, CiDescriptor, CiId, CiTable, Program};
use stitch_noc::TileId;
use stitch_patch::ControlWord;
use stitch_verify::{
    Diagnostic, IseCheck, IseMapping, IseNode, IseOp, IseOperand, IseOut, IseSubgraph, Report,
    Severity, Span,
};

/// Every stable diagnostic code an artifact may carry (DESIGN.md §12).
/// Decoding interns against this table; an unknown code means the file
/// does not come from this verifier build and reads as absent.
const KNOWN_CODES: &[&str] = &[
    "W32-TARGET",
    "W32-FALLOFF",
    "W32-CI",
    "W32-CONTROL",
    "W32-DATA",
    "W32-UNINIT",
    "W32-DEAD",
    "W32-UNREACH",
    "ISE-ARITY",
    "ISE-DEAD",
    "ISE-DIFF",
    "ISE-MEM",
    "ISE-OPERANDS",
    "ISE-PACK",
    "ISE-SHAPE",
    "ISE-SYM",
    "ISE-TOPO",
    "PLAN-SHAPE",
    "PLAN-TILE",
    "PLAN-SHARED",
    "PLAN-CLASS",
    "PLAN-PARTNER",
    "PLAN-HOPS",
    "PLAN-TIMING",
    "PLAN-CIRCUIT",
    "PLAN-BROKEN",
    "PLAN-MULTI",
    "PLAN-CONFLICT",
    "PLAN-CYCLE",
    "COMM-PEER",
    "COMM-SELF",
    "COMM-ASYM",
    "COMM-CYCLE",
    "COMM-XY",
    "COMM-UNREACH",
    "COMPILE-INVARIANT",
];

fn intern_code(code: &str) -> Option<&'static str> {
    KNOWN_CODES.iter().find(|&&k| k == code).copied()
}

/// Stable wire code of a patch class.
fn class_code(c: PatchClass) -> u8 {
    match c {
        PatchClass::AtMa => 0,
        PatchClass::AtAs => 1,
        PatchClass::AtSa => 2,
        PatchClass::LocusSfu => 3,
    }
}

fn class_from_code(c: u8) -> Option<PatchClass> {
    Some(match c {
        0 => PatchClass::AtMa,
        1 => PatchClass::AtAs,
        2 => PatchClass::AtSa,
        3 => PatchClass::LocusSfu,
        _ => return None,
    })
}

/// Encodes a patch class.
pub fn put_class(rec: &mut Rec, c: PatchClass) {
    rec.u8(class_code(c));
}

/// Decodes a patch class.
pub fn get_class(v: &mut RecView<'_>) -> Option<PatchClass> {
    class_from_code(v.u8()?)
}

/// Encodes a control word as `(class, packed bits)`. Returns `None` for
/// a word the hardware encoding cannot express (such a word can never
/// have passed verification, so no valid artifact contains one).
pub fn put_control(rec: &mut Rec, c: &ControlWord) -> Option<()> {
    put_class(rec, c.class());
    rec.u32(c.pack().ok()?);
    Some(())
}

/// Decodes a control word through [`ControlWord::unpack`]'s own
/// validation.
pub fn get_control(v: &mut RecView<'_>) -> Option<ControlWord> {
    let class = get_class(v)?;
    ControlWord::unpack(class, v.u32()?).ok()
}

/// Encodes a complete linked program: instruction words, data segments,
/// the custom-instruction table, and symbols (sorted, so the bytes are
/// deterministic and usable as a content-hash input).
pub fn put_program(rec: &mut Rec, p: &Program) -> Option<()> {
    rec.words(&encode_program(&p.instrs).ok()?);
    rec.u32(p.data.len() as u32);
    for seg in &p.data {
        rec.u32(seg.base);
        rec.words(&seg.words);
    }
    rec.u32(p.ci_table.len() as u32);
    for desc in p.ci_table.iter() {
        rec.str(&desc.name);
        rec.u32(desc.covers);
        rec.u8(desc.stages.len() as u8);
        for s in &desc.stages {
            rec.u8(class_code(s.class));
            rec.u32(s.control);
        }
    }
    let mut symbols: Vec<(&String, &u32)> = p.symbols.iter().collect();
    symbols.sort();
    rec.u32(symbols.len() as u32);
    for (name, addr) in symbols {
        rec.str(name);
        rec.u32(*addr);
    }
    Some(())
}

/// Decodes a program; instruction words go through [`decode_program`]'s
/// full validation.
pub fn get_program(v: &mut RecView<'_>) -> Option<Program> {
    let instrs = decode_program(&v.words()?).ok()?;
    let n_data = v.u32()? as usize;
    if n_data > v.remaining() {
        return None;
    }
    let mut data = Vec::with_capacity(n_data);
    for _ in 0..n_data {
        let base = v.u32()?;
        data.push(DataSegment {
            base,
            words: v.words()?,
        });
    }
    let n_ci = v.u32()? as usize;
    if n_ci > v.remaining() {
        return None;
    }
    let mut ci_table = CiTable::new();
    for _ in 0..n_ci {
        let name = v.str()?.to_string();
        let covers = v.u32()?;
        let n_stages = v.u8()? as usize;
        if !(1..=2).contains(&n_stages) {
            return None;
        }
        let mut stages = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            let class = class_from_code(v.u8()?)?;
            stages.push(CiStage::new(class, v.u32()?));
        }
        // `push` reassigns sequential ids, so decoding in file order
        // reproduces the encoded id assignment exactly.
        ci_table.push(CiDescriptor {
            id: CiId(0),
            name,
            stages,
            covers,
        });
    }
    let n_sym = v.u32()? as usize;
    if n_sym > v.remaining() {
        return None;
    }
    let mut symbols = std::collections::HashMap::with_capacity(n_sym);
    for _ in 0..n_sym {
        let name = v.str()?.to_string();
        let addr = v.u32()?;
        symbols.insert(name, addr);
    }
    Some(Program {
        instrs,
        data,
        ci_table,
        symbols,
    })
}

/// Encodes a verify report.
pub fn put_report(rec: &mut Rec, r: &Report) {
    let diags = r.diagnostics();
    rec.u32(diags.len() as u32);
    for d in diags {
        rec.u8(match d.severity {
            Severity::Warning => 0,
            Severity::Error => 1,
        });
        rec.str(d.code);
        match d.span {
            Span::None => rec.u8(0),
            Span::Pc(pc) => {
                rec.u8(1);
                rec.u32(pc);
            }
            Span::Tile(t) => {
                rec.u8(2);
                rec.u8(t.0);
            }
            Span::Node(n) => {
                rec.u8(3);
                rec.u64(n as u64);
            }
            Span::Ci(id) => {
                rec.u8(4);
                rec.u32(u32::from(id));
            }
            Span::Kernel(k) => {
                rec.u8(5);
                rec.u64(k as u64);
            }
        }
        rec.str(&d.message);
    }
}

/// Decodes a verify report; diagnostic codes are interned against the
/// static known-codes table.
pub fn get_report(v: &mut RecView<'_>) -> Option<Report> {
    let n = v.u32()? as usize;
    if n > v.remaining() {
        return None;
    }
    let mut report = Report::new();
    for _ in 0..n {
        let severity = match v.u8()? {
            0 => Severity::Warning,
            1 => Severity::Error,
            _ => return None,
        };
        let code = intern_code(v.str()?)?;
        let span = match v.u8()? {
            0 => Span::None,
            1 => Span::Pc(v.u32()?),
            2 => Span::Tile(TileId(v.u8()?)),
            3 => Span::Node(usize::try_from(v.u64()?).ok()?),
            4 => Span::Ci(u16::try_from(v.u32()?).ok()?),
            5 => Span::Kernel(usize::try_from(v.u64()?).ok()?),
            _ => return None,
        };
        let message = v.str()?.to_string();
        report.push(Diagnostic {
            severity,
            code,
            span,
            message,
        });
    }
    Some(report)
}

fn put_operand(rec: &mut Rec, o: IseOperand) {
    match o {
        IseOperand::Node(n) => {
            rec.u8(0);
            rec.u64(n as u64);
        }
        IseOperand::Ext(e) => {
            rec.u8(1);
            rec.u64(e as u64);
        }
    }
}

fn get_operand(v: &mut RecView<'_>) -> Option<IseOperand> {
    Some(match v.u8()? {
        0 => IseOperand::Node(usize::try_from(v.u64()?).ok()?),
        1 => IseOperand::Ext(usize::try_from(v.u64()?).ok()?),
        _ => return None,
    })
}

/// Encodes one custom instruction's equivalence obligation.
pub fn put_ise_check(rec: &mut Rec, c: &IseCheck) -> Option<()> {
    rec.str(&c.name);
    rec.u32(u32::from(c.ci));
    rec.u64(c.subgraph.n_ext as u64);
    rec.u32(c.subgraph.nodes.len() as u32);
    for node in &c.subgraph.nodes {
        match node.op {
            IseOp::Alu(op) => {
                rec.u8(0);
                rec.u8(op.code());
            }
            IseOp::Load => rec.u8(1),
            IseOp::Store => rec.u8(2),
        }
        rec.u8(node.srcs.len() as u8);
        for &s in &node.srcs {
            put_operand(rec, s);
        }
    }
    rec.u8(c.mapping.controls.len() as u8);
    for ctl in &c.mapping.controls {
        put_control(rec, ctl)?;
    }
    for slot in c.mapping.input_slots {
        match slot {
            None => rec.u8(0),
            Some(e) => {
                rec.u8(1);
                rec.u64(e as u64);
            }
        }
    }
    rec.u32(c.mapping.outputs.len() as u32);
    for &(node, port) in &c.mapping.outputs {
        rec.u64(node as u64);
        rec.u8(match port {
            IseOut::Out0 => 0,
            IseOut::Out1 => 1,
        });
    }
    Some(())
}

/// Decodes one custom instruction's equivalence obligation.
pub fn get_ise_check(v: &mut RecView<'_>) -> Option<IseCheck> {
    let name = v.str()?.to_string();
    let ci = u16::try_from(v.u32()?).ok()?;
    let n_ext = usize::try_from(v.u64()?).ok()?;
    let n_nodes = v.u32()? as usize;
    if n_nodes > v.remaining() {
        return None;
    }
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let op = match v.u8()? {
            0 => IseOp::Alu(AluOp::from_code(v.u8()?)?),
            1 => IseOp::Load,
            2 => IseOp::Store,
            _ => return None,
        };
        let n_srcs = v.u8()? as usize;
        let mut srcs = Vec::with_capacity(n_srcs);
        for _ in 0..n_srcs {
            srcs.push(get_operand(v)?);
        }
        nodes.push(IseNode { op, srcs });
    }
    let n_controls = v.u8()? as usize;
    if n_controls > 2 {
        return None;
    }
    let mut controls = Vec::with_capacity(n_controls);
    for _ in 0..n_controls {
        controls.push(get_control(v)?);
    }
    let mut input_slots = [None; 4];
    for slot in &mut input_slots {
        *slot = match v.u8()? {
            0 => None,
            1 => Some(usize::try_from(v.u64()?).ok()?),
            _ => return None,
        };
    }
    let n_outputs = v.u32()? as usize;
    if n_outputs > v.remaining() {
        return None;
    }
    let mut outputs = Vec::with_capacity(n_outputs);
    for _ in 0..n_outputs {
        let node = usize::try_from(v.u64()?).ok()?;
        let port = match v.u8()? {
            0 => IseOut::Out0,
            1 => IseOut::Out1,
            _ => return None,
        };
        outputs.push((node, port));
    }
    Some(IseCheck {
        name,
        ci,
        subgraph: IseSubgraph { nodes, n_ext },
        mapping: IseMapping {
            controls,
            input_slots,
            outputs,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_isa::{ProgramBuilder, Reg};

    fn sample_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.symbol("out", 0x400);
        b.data_segment(0x100, vec![1, 2, 3]);
        b.li(Reg::R1, 5);
        let top = b.bound_label();
        b.mul(Reg::R4, Reg::R1, Reg::R1);
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(stitch_isa::Cond::Ne, Reg::R1, Reg::R0, top);
        b.sw(Reg::R4, Reg::R10, 0);
        b.halt();
        b.build().expect("program")
    }

    #[test]
    fn program_round_trips() {
        let p = sample_program();
        let mut rec = Rec::new();
        put_program(&mut rec, &p).expect("encode");
        let bytes = rec.into_bytes();
        let mut v = RecView::new(&bytes);
        let q = get_program(&mut v).expect("decode");
        assert!(v.at_end());
        assert_eq!(p, q);
    }

    #[test]
    fn program_decode_survives_truncation_and_corruption() {
        let p = sample_program();
        let mut rec = Rec::new();
        put_program(&mut rec, &p).expect("encode");
        let bytes = rec.into_bytes();
        for cut in 0..bytes.len() {
            let _ = get_program(&mut RecView::new(&bytes[..cut]));
        }
        for i in 0..bytes.len() {
            let mut dented = bytes.clone();
            dented[i] ^= 0xff;
            // Must not panic; may decode to a different valid program
            // (the artifact checksum rejects that case upstream).
            let _ = get_program(&mut RecView::new(&dented));
        }
    }

    #[test]
    fn report_round_trips_with_interned_codes() {
        let mut r = Report::new();
        r.push(Diagnostic::warning(
            "W32-DEAD",
            Span::Pc(7),
            "r15 written but never read",
        ));
        r.push(Diagnostic::error(
            "PLAN-TILE",
            Span::Tile(TileId(3)),
            "tile out of range",
        ));
        r.push(Diagnostic::error("ISE-DIFF", Span::Ci(2), "mismatch"));
        let mut rec = Rec::new();
        put_report(&mut rec, &r);
        let bytes = rec.into_bytes();
        let q = get_report(&mut RecView::new(&bytes)).expect("decode");
        assert_eq!(r, q);
    }

    #[test]
    fn unknown_diagnostic_code_reads_as_absent() {
        let mut rec = Rec::new();
        rec.u32(1);
        rec.u8(1);
        rec.str("W32-BOGUS");
        rec.u8(0);
        rec.str("msg");
        let bytes = rec.into_bytes();
        assert_eq!(get_report(&mut RecView::new(&bytes)), None);
    }

    #[test]
    fn every_live_diagnostic_code_is_known() {
        // The intern table must cover every code the analyses can emit;
        // a missing entry would silently demote cache hits to misses.
        for code in [
            "W32-TARGET",
            "W32-DEAD",
            "ISE-SYM",
            "ISE-DEAD",
            "PLAN-BROKEN",
            "COMM-XY",
            "COMPILE-INVARIANT",
        ] {
            assert!(intern_code(code).is_some(), "{code} missing");
        }
    }
}
