//! # stitch-cache — content-addressed store of verified artifacts
//!
//! Compiling and statically verifying a kernel costs seconds; doing it
//! again for byte-identical inputs costs the same seconds for nothing.
//! This crate makes verified artifacts first-class, shippable objects:
//! an [`ArtifactStore`] is a directory of self-checking files, each
//! holding a compiled artifact *together with* the clean verify report
//! that admitted it, keyed by a SHA-256 content hash over the inputs
//! that produced it (program bytes, ISE mappings, plan, architecture
//! parameters, and the verifier version).
//!
//! The trust model is deliberately asymmetric:
//!
//! * A **hit** requires everything to line up — file magic/version, the
//!   echoed key, the checksum, a fully valid decode, and a key derived
//!   from a strong hash of the very inputs being asked about. Then the
//!   stored report *is* the verification result.
//! * A **miss** is always safe: the caller compiles and verifies live,
//!   exactly as without the cache. Truncated, bit-flipped,
//!   version-bumped, or impersonating files all read as misses.
//!
//! The crate sits below the compiler and workbench (it depends only on
//! `stitch-isa`/`-patch`/`-noc`/`-verify`), so both can persist and
//! reload their artifacts without dependency cycles. The shared
//! [`Rec`]/[`RecView`] record codec lives here too; the sweep manifest
//! in the `stitch` crate re-exports it.

pub mod codec;
pub mod rec;
pub mod sha256;
pub mod store;

pub use rec::{fnv1a64, Rec, RecView};
pub use sha256::{sha256, sha256_hex, Sha256};
pub use store::ArtifactStore;
