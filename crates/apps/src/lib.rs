//! # Multi-kernel wearable applications (paper §VI-A, Fig 9)
//!
//! Each application is a 16-node pipelined message-passing graph over
//! the kernels of `stitch-kernels`:
//!
//! - **APP1** [`gesture`] — finger gesture recognition (Fig 7): sensor
//!   preprocessing → 6 parallel FFTs → feature update → filter → 6
//!   parallel IFFTs (with extra update processing) → classification;
//! - **APP2** [`cnn`] — CNN image recognition: 13 parallel convolution
//!   kernels → two pooling layers → fully-connected layer;
//! - **APP3** [`svm_app`] — anomaly recognition + encryption: histogram
//!   features → SVM classifiers → AES encryption → CRC integrity;
//! - **APP4** [`transport`] — transport context detection: AES
//!   decryption → DTW context matching → collector + AES re-encryption.
//!
//! A node's wiring (which peers it receives from / sends to, with
//! explicit buffer addresses and word counts) lives in [`NodeSpec`];
//! [`build_node_program`] wraps the kernel's compute body into the
//! per-frame receive/compute/send loop once the stitcher has fixed the
//! node→tile placement.

use stitch_isa::program::{Program, ProgramBuilder};
use stitch_isa::{Cond, IsaError, Reg};
use stitch_kernels as kernels;
use stitch_kernels::{Kernel, OUTPUT_BASE, SPM};
use stitch_sim::TileId;

/// One dataflow edge endpoint of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Peer node index within the application.
    pub peer: usize,
    /// Local buffer address (receive destination or send source).
    pub addr: u32,
    /// Transfer length in words.
    pub words: u32,
}

/// One node of an application graph.
pub struct NodeSpec {
    /// Unique instance name (e.g. `"fft3"`).
    pub name: String,
    /// The kernel computing this node's stage.
    pub kernel: Box<dyn Kernel>,
    /// Default (pipeline-order) tile before stitching relocates it.
    pub home: TileId,
    /// Incoming edges, received in order each frame.
    pub recvs: Vec<Edge>,
    /// Outgoing edges, sent in order each frame.
    pub sends: Vec<Edge>,
}

/// A complete application.
pub struct App {
    /// Paper name (`APP1`..`APP4`).
    pub name: &'static str,
    /// Long name.
    pub title: &'static str,
    /// The 16 nodes.
    pub nodes: Vec<NodeSpec>,
}

impl App {
    /// Sanity-checks the graph: edge symmetry and matching word counts.
    ///
    /// # Panics
    ///
    /// Panics on malformed graphs (used in tests and constructors).
    pub fn validate(&self) {
        assert!(self.nodes.len() <= 16, "{}: too many nodes", self.name);
        for (i, n) in self.nodes.iter().enumerate() {
            for r in &n.recvs {
                let peer = &self.nodes[r.peer];
                let matching = peer
                    .sends
                    .iter()
                    .find(|s| s.peer == i && s.words == r.words);
                assert!(
                    matching.is_some(),
                    "{}: {} receives {} words from {} without a matching send",
                    self.name,
                    n.name,
                    r.words,
                    peer.name
                );
            }
            for s in &n.sends {
                let peer = &self.nodes[s.peer];
                assert!(
                    peer.recvs.iter().any(|r| r.peer == i && r.words == s.words),
                    "{}: {} sends to {} without a matching recv",
                    self.name,
                    n.name,
                    peer.name
                );
            }
        }
    }

    /// All four applications of the evaluation.
    #[must_use]
    pub fn all() -> Vec<App> {
        vec![gesture(), cnn(), svm_app(), transport()]
    }
}

/// Builds the runnable program for one node, given the final node→tile
/// placement. `frames` is the number of frames the pipeline processes.
///
/// # Errors
///
/// Propagates [`stitch_isa::IsaError`] from program assembly (an unbound
/// label in the node kernel's compute body).
pub fn build_node_program(
    app: &App,
    node: usize,
    frames: u32,
    tile_of: &[TileId],
) -> Result<Program, IsaError> {
    let n = &app.nodes[node];
    let mut b = ProgramBuilder::new();
    if n.recvs.is_empty() {
        // Source nodes own their input data.
        b.data_segment(n.kernel.spec().input_addr, n.kernel.input());
    }
    let frames_reg = Reg::R27;
    b.li(frames_reg, i64::from(frames));
    let frame_loop = b.bound_label();
    for r in &n.recvs {
        b.li(Reg::R26, i64::from(tile_of[r.peer].0));
        b.li(Reg::R25, i64::from(r.addr as i32));
        b.li(Reg::R24, i64::from(r.words));
        b.recv(Reg::R26, Reg::R25, Reg::R24);
    }
    n.kernel.emit_compute(&mut b);
    for s in &n.sends {
        b.li(Reg::R26, i64::from(tile_of[s.peer].0));
        b.li(Reg::R25, i64::from(s.addr as i32));
        b.li(Reg::R24, i64::from(s.words));
        b.send(Reg::R26, Reg::R25, Reg::R24);
    }
    b.addi(frames_reg, frames_reg, -1);
    b.branch(Cond::Ne, frames_reg, Reg::R0, frame_loop);
    b.halt();
    b.build()
}

fn node(
    name: impl Into<String>,
    kernel: Box<dyn Kernel>,
    home: u8,
    recvs: Vec<Edge>,
    sends: Vec<Edge>,
) -> NodeSpec {
    NodeSpec {
        name: name.into(),
        kernel,
        home: TileId(home),
        recvs,
        sends,
    }
}

/// APP1 — finger gesture recognition (paper Fig 7).
///
/// `sensor -> fft x6 -> update -> filter -> ifft x6 -> classify`.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn gesture() -> App {
    let mut nodes = Vec::new();
    // Node 0: sensor preprocessing (source), produces a 128-word frame
    // broadcast to the six FFT nodes (two sensors x three axes).
    let fft_in = 128u32;
    nodes.push(node(
        "sensor",
        Box::new(kernels::signal::UpdateFeature::new(fft_in)),
        0,
        vec![],
        (1..=6)
            .map(|i| Edge {
                peer: i,
                addr: OUTPUT_BASE,
                words: fft_in,
            })
            .collect(),
    ));
    // Nodes 1..=6: FFTs.
    for i in 0..6usize {
        nodes.push(node(
            format!("fft{i}"),
            Box::new(kernels::fft::Fft::new(64)),
            (i + 1) as u8,
            vec![Edge {
                peer: 0,
                addr: SPM,
                words: fft_in,
            }],
            vec![Edge {
                peer: 7,
                addr: OUTPUT_BASE,
                words: fft_in,
            }],
        ));
    }
    // Node 7: update feature over the six concatenated spectra.
    nodes.push(node(
        "update",
        Box::new(kernels::signal::UpdateFeature::new(768)),
        7,
        (0..6)
            .map(|i| Edge {
                peer: 1 + i,
                addr: SPM + (i as u32) * fft_in * 4,
                words: fft_in,
            })
            .collect(),
        vec![Edge {
            peer: 8,
            addr: OUTPUT_BASE,
            words: 256,
        }],
    ));
    // Node 8: FIR filter over a 256-sample band.
    nodes.push(node(
        "filter",
        Box::new(kernels::signal::FirFilter::new(256, 8)),
        8,
        vec![Edge {
            peer: 7,
            addr: SPM,
            words: 256,
        }],
        (0..6)
            .map(|i| Edge {
                peer: 9 + i,
                // Overlapping 128-word bands within the 249-word output.
                addr: OUTPUT_BASE + (i as u32) * 24 * 4,
                words: fft_in,
            })
            .collect(),
    ));
    // Nodes 9..=14: IFFTs (with the extra update pass).
    for i in 0..6usize {
        nodes.push(node(
            format!("ifft{i}"),
            Box::new(kernels::fft::Ifft::new(64)),
            (9 + i) as u8,
            vec![Edge {
                peer: 8,
                addr: SPM,
                words: fft_in,
            }],
            // Forward a 32-word energy band to the classifier.
            vec![Edge {
                peer: 15,
                addr: OUTPUT_BASE + 128 * 4,
                words: 32,
            }],
        ));
    }
    // Node 15: classifier over the six energy bands.
    nodes.push(node(
        "classify",
        Box::new(kernels::signal::Classify::new(192, 4)),
        15,
        (0..6)
            .map(|i| Edge {
                peer: 9 + i,
                addr: SPM + (i as u32) * 32 * 4,
                words: 32,
            })
            .collect(),
        vec![],
    ));
    let app = App {
        name: "APP1",
        title: "finger gesture recognition",
        nodes,
    };
    app.validate();
    app
}

/// APP2 — CNN image recognition: 13 parallel convolutions, two pooling
/// layers, one fully-connected layer.
#[must_use]
pub fn cnn() -> App {
    let mut nodes = Vec::new();
    // Nodes 0..=12: convolution sources over image tiles.
    for i in 0..13usize {
        nodes.push(node(
            format!("2dconv{i}"),
            Box::new(kernels::conv::Conv2d::new(16, 16)),
            i as u8,
            vec![],
            // Each contributes a 64-word activation slice to pool1.
            vec![Edge {
                peer: 13,
                addr: OUTPUT_BASE,
                words: 64,
            }],
        ));
    }
    // Node 13: first pooling layer over 13 x 64 = 832 activations.
    nodes.push(node(
        "pool1",
        Box::new(kernels::conv::Pool2x2::new(32, 26)),
        13,
        (0..13)
            .map(|i| Edge {
                peer: i,
                addr: SPM + (i as u32) * 64 * 4,
                words: 64,
            })
            .collect(),
        vec![Edge {
            peer: 14,
            addr: OUTPUT_BASE,
            words: 208,
        }],
    ));
    // Node 14: second pooling layer (26 x 8 = 208 inputs).
    nodes.push(node(
        "pool2",
        Box::new(kernels::conv::Pool2x2::new(26, 8)),
        14,
        vec![Edge {
            peer: 13,
            addr: SPM,
            words: 208,
        }],
        vec![Edge {
            peer: 15,
            addr: OUTPUT_BASE,
            words: 52,
        }],
    ));
    // Node 15: fully-connected classifier.
    nodes.push(node(
        "fc",
        Box::new(kernels::conv::FullyConnected::new(52, 10)),
        15,
        vec![Edge {
            peer: 14,
            addr: SPM,
            words: 52,
        }],
        vec![],
    ));
    let app = App {
        name: "APP2",
        title: "CNN image recognition",
        nodes,
    };
    app.validate();
    app
}

/// APP3 — SVM anomaly recognition with encryption of anomalous data.
#[must_use]
pub fn svm_app() -> App {
    let mut nodes = Vec::new();
    // 4 lanes of histogram -> svm -> aes -> crc, grouped by stage so
    // node indices are 0..4 histograms, 4..8 svms, 8..12 aes, 12..16 crc.
    for lane in 0..4usize {
        // The feature extractor is the heavy stage: a 768-sample
        // histogram whose bin updates are scratchpad load-increment-store
        // chains (ISEs the LOCUS SFU cannot express).
        nodes.push(node(
            format!("histogram{lane}"),
            Box::new(kernels::misc::Histogram::new(768)),
            lane as u8,
            vec![],
            vec![Edge {
                peer: 4 + lane,
                addr: OUTPUT_BASE,
                words: 64,
            }],
        ));
    }
    for lane in 0..4usize {
        nodes.push(node(
            format!("svm{lane}"),
            Box::new(kernels::misc::Svm::new(64, 4)),
            (4 + lane) as u8,
            vec![Edge {
                peer: lane,
                addr: SPM,
                words: 64,
            }],
            // Forward the (anomalous) feature block for encryption.
            vec![Edge {
                peer: 8 + lane,
                addr: SPM,
                words: 16,
            }],
        ));
    }
    for lane in 0..4usize {
        nodes.push(node(
            format!("aes{lane}"),
            Box::new(kernels::aes::AesEnc::new(1)),
            (8 + lane) as u8,
            vec![Edge {
                peer: 4 + lane,
                addr: SPM,
                words: 16,
            }],
            vec![Edge {
                peer: 12 + lane,
                addr: OUTPUT_BASE,
                words: 16,
            }],
        ));
    }
    for lane in 0..4usize {
        nodes.push(node(
            format!("crc{lane}"),
            // The integrity checksum runs over a 32-word window that the
            // 16-word cipher blocks stream through.
            Box::new(kernels::misc::Crc32::new(32)),
            (12 + lane) as u8,
            vec![Edge {
                peer: 8 + lane,
                addr: SPM,
                words: 16,
            }],
            vec![],
        ));
    }
    let app = App {
        name: "APP3",
        title: "SVM anomaly recognition + encryption",
        nodes,
    };
    app.validate();
    app
}

/// APP4 — transport context detection: decrypt sensor data, DTW context
/// matching, collect + re-encrypt.
#[must_use]
pub fn transport() -> App {
    let mut nodes = Vec::new();
    // 5 lanes of aesdec -> dtw; dtw results go to one collector, dtw
    // inputs are re-encrypted by 5 aes nodes. Grouped by stage: nodes
    // 0..5 aesdec, 5..10 dtw, 10..15 aes, 15 collector.
    for lane in 0..5usize {
        nodes.push(node(
            format!("aesdec{lane}"),
            Box::new(kernels::aes::AesDec::new(1)),
            lane as u8,
            vec![],
            vec![Edge {
                peer: 5 + lane,
                addr: OUTPUT_BASE,
                words: 16,
            }],
        ));
    }
    for lane in 0..5usize {
        nodes.push(node(
            format!("dtw{lane}"),
            // Context matching: the decrypted 16-word blocks stream into
            // the observation sequence of a 64-point DTW.
            Box::new(kernels::dtw::Dtw::new(64)),
            (5 + lane) as u8,
            vec![Edge {
                peer: lane,
                addr: SPM + 64 * 4,
                words: 16,
            }],
            vec![
                Edge {
                    peer: 15,
                    addr: OUTPUT_BASE,
                    words: 1,
                },
                Edge {
                    peer: 10 + lane,
                    addr: SPM,
                    words: 16,
                },
            ],
        ));
    }
    for lane in 0..5usize {
        nodes.push(node(
            format!("aes{lane}"),
            Box::new(kernels::aes::AesEnc::new(1)),
            (10 + lane) as u8,
            vec![Edge {
                peer: 5 + lane,
                addr: SPM,
                words: 16,
            }],
            vec![],
        ));
    }
    // Node 15: context collector (small SVM over the five distances).
    nodes.push(node(
        "context",
        Box::new(kernels::misc::Svm::new(5, 3)),
        15,
        (0..5)
            .map(|lane| Edge {
                peer: 5 + lane,
                addr: SPM + (lane as u32) * 4,
                words: 1,
            })
            .collect(),
        vec![],
    ));
    let app = App {
        name: "APP4",
        title: "transport context detection",
        nodes,
    };
    app.validate();
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_sim::{Chip, ChipConfig};

    #[test]
    fn all_apps_validate_and_have_16_nodes() {
        for app in App::all() {
            app.validate();
            assert_eq!(app.nodes.len(), 16, "{}", app.name);
            // Home tiles are distinct.
            let mut homes: Vec<u8> = app.nodes.iter().map(|n| n.home.0).collect();
            homes.sort_unstable();
            homes.dedup();
            assert_eq!(homes.len(), 16, "{}", app.name);
        }
    }

    #[test]
    fn node_programs_build() {
        for app in App::all() {
            let tiles: Vec<TileId> = app.nodes.iter().map(|n| n.home).collect();
            for i in 0..app.nodes.len() {
                let p = build_node_program(&app, i, 3, &tiles).unwrap();
                assert!(p.instrs.len() > 4, "{}: {}", app.name, app.nodes[i].name);
            }
        }
    }

    /// End-to-end: every application runs to completion on the baseline
    /// chip without deadlock, for a few frames.
    #[test]
    fn apps_run_on_baseline_chip() {
        for app in App::all() {
            let tiles: Vec<TileId> = app.nodes.iter().map(|n| n.home).collect();
            let mut chip = Chip::new(ChipConfig::baseline_16());
            for i in 0..app.nodes.len() {
                chip.load_program(tiles[i], &build_node_program(&app, i, 2, &tiles).unwrap())
                    .unwrap();
            }
            let summary = chip
                .run(2_000_000_000)
                .unwrap_or_else(|e| panic!("{} failed: {e}", app.name));
            assert!(summary.cycles > 0, "{}", app.name);
            assert!(
                summary.mesh.packets_delivered > 0,
                "{}: pipeline must exchange messages",
                app.name
            );
        }
    }
}
