//! # Deterministic fault injection for the Stitch chip
//!
//! Wearable SoCs are always-on: a single flaky patch or mesh link must
//! degrade throughput, not correctness. This crate defines the *plan*
//! side of the fault subsystem — a seed-driven, fully deterministic
//! [`FaultPlan`] that the simulator replays cycle-accurately — while the
//! *mechanism* side (detection, watchdogs, and the degradation ladder)
//! lives in `stitch-sim` and `stitch-noc`.
//!
//! Fault classes modelled (severity order matches the degradation ladder
//! in DESIGN.md):
//!
//! 1. **Patch failures** ([`FaultKind::PatchFail`]) — the polymorphic
//!    patch datapath of one tile dies, permanently or until a recovery
//!    cycle. Bound custom instructions demote to the equivalent W32
//!    software sequence.
//! 2. **Inter-patch switch failures** ([`FaultKind::SwitchFail`]) — the
//!    bufferless crossbar switch of one tile dies, severing every fused
//!    circuit routed through it. Fused CIs demote after a bounded
//!    watchdog retry.
//! 3. **Config-state soft errors** ([`FaultKind::ConfigUpset`]) — a bit
//!    flip in a patch's configuration registers, detected by parity on
//!    the next activation and scrubbed from the instruction stream at a
//!    fixed cycle cost (values are never corrupted by a *detected*
//!    upset).
//! 4. **Mesh link faults** ([`FaultKind::MeshLinkFail`]) — a core-mesh
//!    link goes down; the routers fall back to deterministic fault-aware
//!    routing, and persistent stalls surface as a typed
//!    `SimError::Faulted` instead of a silent hang.
//!
//! Classes 1–3 are *compute-only*: they may change cycle counts but never
//! architectural results. Class 4 can reorder message delivery, so plans
//! containing it are excluded from the bit-identity property
//! (see `FaultPlan::is_compute_only`).

pub mod rng;

pub use rng::SimRng;
use std::fmt;
use stitch_noc::{PortDir, TileId};

/// One injected hardware fault.
///
/// `until` fields give the first cycle at which the component works
/// again (half-open interval); `None` means the fault is permanent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The tile's patch datapath fails.
    PatchFail {
        /// Tile whose patch dies.
        tile: TileId,
        /// First healthy cycle again, or `None` for permanent.
        until: Option<u64>,
    },
    /// The tile's inter-patch crossbar switch fails, severing every
    /// fused circuit routed through the tile.
    SwitchFail {
        /// Tile whose switch dies.
        tile: TileId,
        /// First healthy cycle again, or `None` for permanent.
        until: Option<u64>,
    },
    /// A soft error flips the tile's patch configuration state. Parity
    /// detects it on the next activation; the configuration is scrubbed
    /// from the instruction stream at a fixed cycle cost.
    ConfigUpset {
        /// Tile whose patch configuration is upset.
        tile: TileId,
    },
    /// The mesh link leaving `tile` toward `dir` (and its reverse
    /// direction — links are physically bidirectional) goes down.
    MeshLinkFail {
        /// Tile on one end of the link.
        tile: TileId,
        /// Direction of the link (`North`/`East`/`South`/`West`).
        dir: PortDir,
        /// First healthy cycle again, or `None` for permanent.
        until: Option<u64>,
    },
}

impl FaultKind {
    /// The tile the fault is anchored to.
    #[must_use]
    pub fn tile(&self) -> TileId {
        match self {
            FaultKind::PatchFail { tile, .. }
            | FaultKind::SwitchFail { tile, .. }
            | FaultKind::ConfigUpset { tile }
            | FaultKind::MeshLinkFail { tile, .. } => *tile,
        }
    }

    /// True when the fault can only affect patch compute (cycles), never
    /// message ordering — the class covered by the bit-identity
    /// invariant.
    #[must_use]
    pub fn is_compute_only(&self) -> bool {
        !matches!(self, FaultKind::MeshLinkFail { .. })
    }

    /// Stable numeric code for observability streams and reports:
    /// 0 patch, 1 switch, 2 config upset, 3 mesh link. Kept fixed so
    /// recorded traces stay comparable across versions.
    #[must_use]
    pub fn trace_code(&self) -> u8 {
        match self {
            FaultKind::PatchFail { .. } => 0,
            FaultKind::SwitchFail { .. } => 1,
            FaultKind::ConfigUpset { .. } => 2,
            FaultKind::MeshLinkFail { .. } => 3,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let until = |u: &Option<u64>| match u {
            Some(c) => format!("until cycle {c}"),
            None => "permanently".to_string(),
        };
        match self {
            FaultKind::PatchFail { tile, until: u } => {
                write!(f, "{tile} patch fails {}", until(u))
            }
            FaultKind::SwitchFail { tile, until: u } => {
                write!(f, "{tile} inter-patch switch fails {}", until(u))
            }
            FaultKind::ConfigUpset { tile } => {
                write!(f, "{tile} patch config upset")
            }
            FaultKind::MeshLinkFail {
                tile,
                dir,
                until: u,
            } => {
                write!(f, "{tile} mesh link {dir:?} fails {}", until(u))
            }
        }
    }
}

/// A fault scheduled at an absolute simulation cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault manifests.
    pub cycle: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// A deterministic, replayable schedule of hardware faults.
///
/// Events are kept sorted by cycle; the simulator applies every event
/// whose cycle has been reached at the top of the corresponding tick, in
/// both the event-driven fast path and the cycle-by-cycle reference
/// engine, so the two stay bit-identical under an active plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    degrade: bool,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan tagged with a seed, in graceful-degradation mode.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            degrade: true,
            events: Vec::new(),
        }
    }

    /// Seed the plan was built from (diagnostic only).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the runtime should degrade gracefully on detection;
    /// false (strict mode) makes the first detection abort the run with
    /// a typed `SimError::Faulted`.
    #[must_use]
    pub fn degrade(&self) -> bool {
        self.degrade
    }

    /// Switches the plan to strict mode (no graceful degradation).
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.degrade = false;
        self
    }

    /// Schedules a fault, keeping events sorted by cycle (stable for
    /// equal cycles, so insertion order breaks ties deterministically).
    pub fn push(&mut self, cycle: u64, kind: FaultKind) {
        let at = self.events.partition_point(|e| e.cycle <= cycle);
        self.events.insert(at, FaultEvent { cycle, kind });
    }

    /// Builder-style [`push`](Self::push).
    #[must_use]
    pub fn with(mut self, cycle: u64, kind: FaultKind) -> Self {
        self.push(cycle, kind);
        self
    }

    /// The scheduled events, sorted by cycle.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no fault is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// True when every event is compute-only (no mesh link faults), the
    /// precondition for the bit-identical-results invariant.
    #[must_use]
    pub fn is_compute_only(&self) -> bool {
        self.events.iter().all(|e| e.kind.is_compute_only())
    }

    /// Tiles whose patch fails permanently under this plan — the set to
    /// mask when re-running the stitcher for a recovery mapping.
    #[must_use]
    pub fn failed_patches(&self) -> Vec<TileId> {
        let mut tiles: Vec<TileId> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::PatchFail { tile, until: None } => Some(tile),
                _ => None,
            })
            .collect();
        tiles.sort_unstable();
        tiles.dedup();
        tiles
    }

    /// Generates a randomized plan, deterministically from `seed`.
    #[must_use]
    pub fn random(seed: u64, space: &FaultSpace) -> Self {
        let mut rng = SimRng::new(seed);
        let mut plan = FaultPlan::new(seed);
        let n = 1 + rng.index(space.max_events.max(1));
        for _ in 0..n {
            let cycle = rng.below(space.horizon.max(1));
            let tile = TileId(rng.index(usize::from(space.tiles.max(1))) as u8);
            let until = (space.allow_transient && rng.chance(1, 2))
                .then(|| cycle + rng.range(1_000, 1_000 + space.horizon.max(2)));
            let choices = if space.compute_only { 3 } else { 4 };
            let kind = match rng.index(choices) {
                0 => FaultKind::PatchFail { tile, until },
                1 => FaultKind::SwitchFail { tile, until },
                2 => FaultKind::ConfigUpset { tile },
                _ => FaultKind::MeshLinkFail {
                    tile,
                    dir: [PortDir::North, PortDir::East, PortDir::South, PortDir::West]
                        [rng.index(4)],
                    until,
                },
            };
            plan.push(cycle, kind);
        }
        plan
    }
}

/// Sampling space for [`FaultPlan::random`].
#[derive(Debug, Clone)]
pub struct FaultSpace {
    /// Number of tiles faults may target.
    pub tiles: u8,
    /// Injection cycles are drawn from `[0, horizon)`.
    pub horizon: u64,
    /// A plan carries `1..=max_events` faults.
    pub max_events: usize,
    /// Restrict to compute-only faults (no mesh link faults).
    pub compute_only: bool,
    /// Allow transient faults (with a recovery cycle) as well as
    /// permanent ones.
    pub allow_transient: bool,
}

impl Default for FaultSpace {
    fn default() -> Self {
        FaultSpace {
            tiles: 16,
            horizon: 100_000,
            max_events: 4,
            compute_only: false,
            allow_transient: true,
        }
    }
}

impl FaultSpace {
    /// Restricts the space to compute-only faults.
    #[must_use]
    pub fn compute_only(mut self) -> Self {
        self.compute_only = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic() {
        let space = FaultSpace::default();
        for seed in 0..32 {
            let a = FaultPlan::random(seed, &space);
            let b = FaultPlan::random(seed, &space);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(!a.is_empty());
            assert!(a.len() <= space.max_events);
        }
    }

    #[test]
    fn events_stay_sorted() {
        let mut plan = FaultPlan::new(1);
        plan.push(50, FaultKind::ConfigUpset { tile: TileId(3) });
        plan.push(
            10,
            FaultKind::PatchFail {
                tile: TileId(1),
                until: None,
            },
        );
        plan.push(
            50,
            FaultKind::SwitchFail {
                tile: TileId(2),
                until: Some(60),
            },
        );
        let cycles: Vec<u64> = plan.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![10, 50, 50]);
        // Equal cycles keep insertion order.
        assert!(matches!(
            plan.events()[1].kind,
            FaultKind::ConfigUpset { .. }
        ));
    }

    #[test]
    fn compute_only_space_excludes_link_faults() {
        let space = FaultSpace {
            max_events: 8,
            ..FaultSpace::default()
        }
        .compute_only();
        for seed in 0..64 {
            let plan = FaultPlan::random(seed, &space);
            assert!(plan.is_compute_only(), "seed {seed} drew a link fault");
        }
    }

    #[test]
    fn failed_patches_lists_permanent_patch_faults_only() {
        let plan = FaultPlan::new(0)
            .with(
                5,
                FaultKind::PatchFail {
                    tile: TileId(9),
                    until: None,
                },
            )
            .with(
                7,
                FaultKind::PatchFail {
                    tile: TileId(2),
                    until: Some(100),
                },
            )
            .with(
                9,
                FaultKind::SwitchFail {
                    tile: TileId(4),
                    until: None,
                },
            )
            .with(
                11,
                FaultKind::PatchFail {
                    tile: TileId(9),
                    until: None,
                },
            );
        assert_eq!(plan.failed_patches(), vec![TileId(9)]);
    }

    #[test]
    fn strict_mode_flag() {
        let plan = FaultPlan::new(3);
        assert!(plan.degrade());
        assert!(!plan.strict().degrade());
    }

    #[test]
    fn display_is_readable() {
        let kind = FaultKind::PatchFail {
            tile: TileId(0),
            until: None,
        };
        assert_eq!(kind.to_string(), "tile1 patch fails permanently");
        let kind = FaultKind::MeshLinkFail {
            tile: TileId(5),
            dir: PortDir::East,
            until: Some(99),
        };
        assert_eq!(
            kind.to_string(),
            "tile6 mesh link East fails until cycle 99"
        );
    }
}
