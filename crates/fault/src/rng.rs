//! Tiny deterministic PRNG for tests, benchmarks, and fault plans.
//!
//! The sandboxed build has no crates-registry access, so `rand` is not
//! available; every randomized test and sweep in the workspace draws from
//! this xorshift64* generator instead. It lives in `stitch-fault` (the
//! lowest crate that needs randomness — seeded `FaultPlan` generation) and
//! is re-exported by `stitch-sim` for the rest of the workspace.
//! Determinism matters more than statistical quality here: a seed fully
//! reproduces a failing case.

/// A seedable xorshift64* generator.
///
/// Passes the basic avalanche checks that matter for test-input
/// diversity; do not use it for cryptography.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed (zero is mapped to a fixed
    /// non-zero constant, since xorshift has an all-zero fixed point).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift mapping; bias is negligible for test purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)` (half-open); `lo < hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A vector of `len` random 32-bit words.
    pub fn words(&mut self, len: usize) -> Vec<u32> {
        (0..len).map(|_| self.next_u32()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(7);
        for bound in [1u64, 2, 3, 16, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_covers_interval() {
        let mut r = SimRng::new(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = r.range(2, 10);
            assert!((2..10).contains(&v));
            seen[(v - 2) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!((0..50).all(|_| r.chance(1, 1)));
        assert!((0..50).all(|_| !r.chance(0, 2)));
    }
}
