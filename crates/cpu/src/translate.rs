//! Translated execution: the threaded-code micro-op engine.
//!
//! [`Core::step`] interprets one [`stitch_isa::Instr`] per call — exact,
//! but it re-matches the instruction tree and pays platform-dispatch
//! overhead on every retired instruction. This module executes whole
//! *compute windows* instead: straight-line stretches where the chip has
//! proven no chip-level event (message delivery, fault injection,
//! checkpoint, deadline) can land. Within a window the core runs from a
//! per-core [`TransCache`] of lowered [`MicroBlock`]s, with the register
//! files of all participating tiles batched struct-of-arrays in a shared
//! [`LaneBank`].
//!
//! ## Bit-exactness contract
//!
//! The executor reproduces `Core::step`'s cycle accounting *exactly* —
//! same I-cache fetch stalls, same per-class latencies, same statistics
//! fields — so a run interleaving windows with interpreted ticks is
//! indistinguishable from a pure reference run. Anything the window
//! cannot retire exactly is a **side exit**: the lane stops *before*
//! executing the instruction (in particular before its I-fetch, which
//! mutates cache state) and reports the cycle at which the interpreter
//! must execute it instead. Side exits are:
//!
//! - `send` / `recv` / `halt` (NIC traffic and liveness are chip events),
//! - a pc at or past the end of the text (architectural fault),
//! - statically out-of-range `jal`/branch targets (lowering decides),
//! - `jalr` whose runtime target is out of range (fault with partial
//!   effects only the interpreter replays exactly),
//! - stores into the crossbar-config window (chip reconfiguration),
//! - custom instructions while a fault plan is active or the CI is
//!   unbound on this tile.
//!
//! The cycle a lane reports back (`next_start`) is always the start
//! cycle of the *next unexecuted* instruction, which is exactly the
//! `busy_until` value the chip's tick loop would have converged to.

use crate::core::{Core, CustomOutcome, TEXT_BASE};
use crate::stats::CoreStats;
use crate::{BRANCH_PENALTY, MUL_LATENCY};
use stitch_isa::custom::CiId;
use stitch_isa::instr::{Instr, Width};
use stitch_isa::op::OpClass;
use stitch_isa::reg::Reg;
use stitch_isa::uop::{translate_block, BlockExit, MicroBlock, UOp};

/// Services a compute window needs from the chip. A deliberately smaller
/// surface than [`crate::Platform`]: no NIC, and custom execution is the
/// *healthy* path only — the window pre-checks the side conditions that
/// make customs fallible and bails to the interpreter instead.
pub trait LaneHost {
    /// Latency (cycles) of fetching the instruction word at `byte_addr`.
    fn fetch(&mut self, byte_addr: u32) -> u32;

    /// Data load; returns `(value, latency)`.
    fn load(&mut self, addr: u32, w: Width) -> (u32, u32);

    /// Data store; returns latency. Never called for addresses where
    /// [`LaneHost::store_side_exits`] returns true.
    fn store(&mut self, addr: u32, value: u32, w: Width) -> u32;

    /// True when a store to `addr` must be executed by the interpreter
    /// (crossbar-config writes reconfigure the chip).
    fn store_side_exits(&self, addr: u32) -> bool;

    /// True when custom instruction `ci` has a live binding on this tile
    /// (checked before the instruction's fetch, so an unbound CI can
    /// side-exit without perturbing cache state).
    fn custom_bound(&self, ci: CiId) -> bool;

    /// Executes a bound custom instruction on the healthy path.
    ///
    /// Returns `None` only if the binding vanished after
    /// [`LaneHost::custom_bound`] said it was live — impossible within a
    /// window, and treated as a defensive side exit.
    fn exec_custom(&mut self, ci: CiId, inputs: [u32; 4]) -> Option<CustomOutcome>;
}

/// Per-core cache of lowered basic blocks, keyed by entry pc.
///
/// The index is a direct-mapped table over instruction indices (program
/// texts are small), so block dispatch on the hot path is one bounds
/// check and one array read. The cache belongs to the *loaded program*:
/// the chip clears it whenever a tile's program is swapped.
#[derive(Debug, Clone, Default)]
pub struct TransCache {
    /// `index[pc]` = slot in `blocks`, or `NO_BLOCK`.
    index: Vec<u32>,
    blocks: Vec<MicroBlock>,
    /// Blocks lowered (cache misses) over the cache's lifetime.
    pub translated: u64,
    /// Block dispatches served from the cache.
    pub hits: u64,
}

const NO_BLOCK: u32 = u32::MAX;

impl TransCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all translations (program swap). Counters survive — they
    /// describe the cache's lifetime, not one program.
    pub fn invalidate(&mut self) {
        self.index.clear();
        self.blocks.clear();
    }

    /// Returns the slot of the block entered at `entry`, lowering it on
    /// first use. `entry` must be inside the text.
    fn block_slot(&mut self, instrs: &[Instr], word_offsets: &[u32], entry: u32) -> usize {
        if self.index.len() < instrs.len() {
            self.index.resize(instrs.len(), NO_BLOCK);
        }
        let slot = self.index[entry as usize];
        if slot != NO_BLOCK {
            self.hits += 1;
            return slot as usize;
        }
        let block = translate_block(instrs, word_offsets, entry);
        let slot = self.blocks.len();
        self.blocks.push(block);
        self.index[entry as usize] = slot as u32;
        self.translated += 1;
        slot
    }

    /// Entry pcs with a lowered block — the live block-coverage map of
    /// the loaded program. The fuzzer uses this as its coverage signal:
    /// a mutated program that lights up a new entry pc found a basic
    /// block the corpus had not reached.
    pub fn covered_entries(&self) -> impl Iterator<Item = u32> + '_ {
        self.index
            .iter()
            .enumerate()
            .filter(|(_, &slot)| slot != NO_BLOCK)
            .map(|(pc, _)| pc as u32)
    }
}

/// Struct-of-arrays register bank for the tiles participating in a
/// window: register `r` of lane `l` lives at `regs[r * lanes + l]`, so a
/// window sweeping the same micro-op pattern across tiles walks the bank
/// with unit stride per register index instead of hopping between
/// per-core `[u32; 32]` files.
#[derive(Debug, Clone)]
pub struct LaneBank {
    lanes: usize,
    regs: Vec<u32>,
}

impl LaneBank {
    /// Creates a bank for `lanes` tiles.
    #[must_use]
    pub fn new(lanes: usize) -> Self {
        LaneBank {
            lanes,
            regs: vec![0; lanes * 32],
        }
    }

    /// Number of lanes the bank was sized for.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Reads register `r` of `lane` (exercised by the disjointness test;
    /// window execution goes through a lane-local copy instead — see
    /// [`Core::run_translated`]).
    #[cfg(test)]
    fn get(&self, r: Reg, lane: usize) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize * self.lanes + lane]
        }
    }

    /// Writes register `r` of `lane` (test-only; see [`LaneBank::get`]).
    #[cfg(test)]
    fn set(&mut self, r: Reg, lane: usize, value: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize * self.lanes + lane] = value;
        }
    }

    /// Gathers a core's register file into the lane.
    fn load_lane(&mut self, lane: usize, regs: &[u32; 32]) {
        for (r, &v) in regs.iter().enumerate() {
            self.regs[r * self.lanes + lane] = v;
        }
    }

    /// Scatters the lane back into a core's register file.
    fn store_lane(&self, lane: usize, regs: &mut [u32; 32]) {
        for (r, v) in regs.iter_mut().enumerate() {
            *v = self.regs[r * self.lanes + lane];
        }
    }
}

/// Window bounds and capabilities for one lane run.
#[derive(Debug, Clone, Copy)]
pub struct WindowParams {
    /// Cycle at which the lane's first instruction starts (its current
    /// `busy_until`, clamped below by the chip clock).
    pub start: u64,
    /// Last cycle an instruction may *start* on. Chosen by the chip so
    /// no fault, checkpoint, or deadline lands at or before it.
    pub horizon: u64,
    /// True when custom instructions may execute inside the window
    /// (no fault plan active). Otherwise every custom side-exits.
    pub customs_inline: bool,
}

/// What one lane did inside a window.
#[derive(Debug, Clone, Copy)]
pub struct LaneRun {
    /// Start cycle of the next unexecuted instruction — the lane's new
    /// `busy_until`.
    pub next_start: u64,
    /// True when the lane stopped at an instruction the interpreter must
    /// execute (at cycle `next_start`); false when it merely ran out of
    /// horizon.
    pub side_exit: bool,
    /// Instructions retired inside the window.
    pub executed: u64,
}

/// Reads `r` from the window's lane-local register copy (`R0` is zero).
#[inline(always)]
fn reg_get(regs: &[u32; 32], r: Reg) -> u32 {
    if r.is_zero() {
        0
    } else {
        regs[r.index() as usize]
    }
}

/// Writes `r` in the window's lane-local register copy (`R0` ignored).
#[inline(always)]
fn reg_set(regs: &mut [u32; 32], r: Reg, value: u32) {
    if !r.is_zero() {
        regs[r.index() as usize] = value;
    }
}

/// Charges the I-fetch for an instruction occupying `words` words at
/// byte address `base`, exactly as `Core::step` does: per-word latency
/// accumulates, stalls beyond one cycle per word count as fetch stalls,
/// and the base cost of the words themselves is deducted (it is part of
/// the instruction's execute charge).
#[inline]
fn fetch_charge<H: LaneHost>(host: &mut H, stats: &mut CoreStats, base: u32, words: u32) -> u32 {
    let mut cycles = 0u32;
    for w in 0..words {
        let lat = host.fetch(base + w * 4);
        cycles += lat;
        stats.fetch_stall_cycles += u64::from(lat.saturating_sub(1));
    }
    cycles.saturating_sub(words)
}

impl Core {
    /// Runs this core's lane through one compute window.
    ///
    /// Executes translated micro-ops from `cache` starting at the
    /// current pc, first instruction starting at `p.start`, stopping
    /// when the next instruction would start past `p.horizon` or at a
    /// side exit (see the module docs for the exact rules). Registers
    /// are staged through `bank` lane `lane`; pc, registers, and
    /// statistics are committed back to the core on return.
    ///
    /// The caller must only invoke this on a running, non-waiting core.
    pub fn run_translated<H: LaneHost>(
        &mut self,
        cache: &mut TransCache,
        bank: &mut LaneBank,
        lane: usize,
        host: &mut H,
        p: WindowParams,
    ) -> LaneRun {
        let text = &self.text;
        let arch = &mut self.arch;
        let len = text.instrs.len() as u32;
        bank.load_lane(lane, &arch.regs);
        // Work on a stack-local copy of the lane: 128 contiguous bytes
        // with compile-time-bounded indices, instead of strided bank
        // accesses on every operand. The bank lane is recommitted below,
        // so its state at window end is identical.
        let mut regs = arch.regs;
        let mut stats = arch.stats;
        let mut pc = arch.pc;
        let mut t = p.start;
        let mut executed = 0u64;
        let mut side_exit = false;
        'dispatch: loop {
            if t > p.horizon {
                break;
            }
            if pc >= len {
                // The interpreter raises PcOutOfRange at cycle `t`.
                side_exit = true;
                break;
            }
            let slot = cache.block_slot(&text.instrs, &text.word_offsets, pc);
            let block = &cache.blocks[slot];
            for (idx, s) in block.uops.iter().enumerate() {
                if t > p.horizon {
                    pc = block.pc_at(idx);
                    break 'dispatch;
                }
                let base = TEXT_BASE + s.off * 4;
                let cycles = match s.op {
                    UOp::Nop => fetch_charge(host, &mut stats, base, s.words) + 1,
                    UOp::AluRR { op, rd, rs1, rs2 } => {
                        let fetch = fetch_charge(host, &mut stats, base, s.words);
                        let value = op.eval(reg_get(&regs, rs1), reg_get(&regs, rs2));
                        reg_set(&mut regs, rd, value);
                        fetch
                            + if op.class() == OpClass::M {
                                stats.mul_ops += 1;
                                MUL_LATENCY
                            } else {
                                stats.alu_ops += 1;
                                1
                            }
                    }
                    UOp::AluRI { op, rd, rs1, imm } => {
                        let fetch = fetch_charge(host, &mut stats, base, s.words);
                        let value = op.eval(reg_get(&regs, rs1), imm as u32);
                        reg_set(&mut regs, rd, value);
                        fetch
                            + if op.class() == OpClass::M {
                                stats.mul_ops += 1;
                                MUL_LATENCY
                            } else {
                                stats.alu_ops += 1;
                                1
                            }
                    }
                    UOp::Lui { rd, val } => {
                        let fetch = fetch_charge(host, &mut stats, base, s.words);
                        reg_set(&mut regs, rd, val);
                        stats.alu_ops += 1;
                        fetch + 1
                    }
                    UOp::Load {
                        w,
                        rd,
                        base: rb,
                        offset,
                    } => {
                        let fetch = fetch_charge(host, &mut stats, base, s.words);
                        let addr = reg_get(&regs, rb).wrapping_add_signed(offset);
                        let (value, lat) = host.load(addr, w);
                        reg_set(&mut regs, rd, value);
                        stats.mem_ops += 1;
                        stats.mem_stall_cycles += u64::from(lat.saturating_sub(1));
                        fetch + lat
                    }
                    UOp::Store {
                        w,
                        rs,
                        base: rb,
                        offset,
                    } => {
                        // Crossbar-config stores reconfigure the chip —
                        // checked before the fetch so the interpreter
                        // replays the instruction from scratch.
                        let addr = reg_get(&regs, rb).wrapping_add_signed(offset);
                        if host.store_side_exits(addr) {
                            pc = block.pc_at(idx);
                            side_exit = true;
                            break 'dispatch;
                        }
                        let fetch = fetch_charge(host, &mut stats, base, s.words);
                        let lat = host.store(addr, reg_get(&regs, rs), w);
                        stats.mem_ops += 1;
                        stats.mem_stall_cycles += u64::from(lat.saturating_sub(1));
                        fetch + lat
                    }
                    UOp::Custom {
                        id,
                        ins,
                        out0,
                        out1,
                    } => {
                        if !p.customs_inline || !host.custom_bound(id) {
                            pc = block.pc_at(idx);
                            side_exit = true;
                            break 'dispatch;
                        }
                        let inputs = [
                            reg_get(&regs, ins[0]),
                            reg_get(&regs, ins[1]),
                            reg_get(&regs, ins[2]),
                            reg_get(&regs, ins[3]),
                        ];
                        let fetch = fetch_charge(host, &mut stats, base, s.words);
                        let Some(o) = host.exec_custom(id, inputs) else {
                            debug_assert!(false, "custom binding vanished mid-window");
                            pc = block.pc_at(idx);
                            side_exit = true;
                            break 'dispatch;
                        };
                        if let Some(r) = out0 {
                            reg_set(&mut regs, r, o.out.out0);
                        }
                        if let Some(r) = out1 {
                            reg_set(&mut regs, r, o.out.out1);
                        }
                        stats.custom_ops += 1;
                        if o.fused {
                            stats.fused_ops += 1;
                        }
                        if o.demoted {
                            stats.demoted_ops += 1;
                        }
                        fetch + o.cycles.max(1)
                    }
                };
                stats.instructions += 1;
                stats.cycles += u64::from(cycles);
                executed += 1;
                // The tick loop spaces instructions by max(cycles - 1, 1)
                // (busy_until lands on cycle + cycles - 1, and the next
                // tick is at least one cycle later).
                t += u64::from((cycles.max(1) - 1).max(1));
            }
            match block.exit {
                BlockExit::SideExit { at } => {
                    pc = at;
                    side_exit = true;
                    break;
                }
                BlockExit::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                    at,
                    off,
                } => {
                    if t > p.horizon {
                        pc = at;
                        break;
                    }
                    let fetch = fetch_charge(host, &mut stats, TEXT_BASE + off * 4, 1);
                    let mut cycles = fetch + 1;
                    stats.branches += 1;
                    if cond.eval(reg_get(&regs, rs1), reg_get(&regs, rs2)) {
                        stats.branches_taken += 1;
                        cycles += BRANCH_PENALTY;
                        pc = target;
                    } else {
                        pc = at + 1;
                    }
                    stats.instructions += 1;
                    stats.cycles += u64::from(cycles);
                    executed += 1;
                    t += u64::from((cycles.max(1) - 1).max(1));
                }
                BlockExit::Jal {
                    rd,
                    target,
                    at,
                    off,
                } => {
                    if t > p.horizon {
                        pc = at;
                        break;
                    }
                    let fetch = fetch_charge(host, &mut stats, TEXT_BASE + off * 4, 1);
                    reg_set(&mut regs, rd, at + 1);
                    let cycles = fetch + 1 + BRANCH_PENALTY;
                    stats.branches += 1;
                    stats.branches_taken += 1;
                    stats.instructions += 1;
                    stats.cycles += u64::from(cycles);
                    executed += 1;
                    pc = target;
                    t += u64::from((cycles.max(1) - 1).max(1));
                }
                BlockExit::Jalr { rd, rs, at, off } => {
                    if t > p.horizon {
                        pc = at;
                        break;
                    }
                    let target = reg_get(&regs, rs);
                    if target > len {
                        // BadTarget retires rd and the stats before
                        // faulting; only the interpreter replays that
                        // partial effect exactly.
                        pc = at;
                        side_exit = true;
                        break;
                    }
                    let fetch = fetch_charge(host, &mut stats, TEXT_BASE + off * 4, 1);
                    reg_set(&mut regs, rd, at + 1);
                    let cycles = fetch + 1 + BRANCH_PENALTY;
                    stats.branches += 1;
                    stats.branches_taken += 1;
                    stats.instructions += 1;
                    stats.cycles += u64::from(cycles);
                    executed += 1;
                    pc = target;
                    t += u64::from((cycles.max(1) - 1).max(1));
                }
            }
        }
        bank.load_lane(lane, &regs);
        bank.store_lane(lane, &mut arch.regs);
        arch.pc = pc;
        arch.stats = stats;
        LaneRun {
            next_start: t,
            side_exit,
            executed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreState, CpuError, Platform, StepOutcome};
    use stitch_isa::{Cond, Program, ProgramBuilder};
    use stitch_patch::PatchOutput;

    /// Flat memory + unit-latency fetch host, usable both as the
    /// interpreter `Platform` and as a window `LaneHost`, so the test
    /// can drive the same program through both engines.
    #[derive(Clone)]
    struct FlatHost {
        mem: Vec<u8>,
        fetches: u64,
    }

    impl FlatHost {
        fn new() -> Self {
            FlatHost {
                mem: vec![0; 0x10000],
                fetches: 0,
            }
        }

        fn rd(&self, addr: u32, w: Width) -> u32 {
            let a = addr as usize % self.mem.len();
            match w {
                Width::Byte => u32::from(self.mem[a]),
                Width::Half => u32::from(u16::from_le_bytes([self.mem[a], self.mem[a + 1]])),
                Width::Word => u32::from_le_bytes([
                    self.mem[a],
                    self.mem[a + 1],
                    self.mem[a + 2],
                    self.mem[a + 3],
                ]),
            }
        }

        fn wr(&mut self, addr: u32, value: u32, w: Width) {
            let a = addr as usize % self.mem.len();
            match w {
                Width::Byte => self.mem[a] = value as u8,
                Width::Half => self.mem[a..a + 2].copy_from_slice(&(value as u16).to_le_bytes()),
                Width::Word => self.mem[a..a + 4].copy_from_slice(&value.to_le_bytes()),
            }
        }
    }

    impl Platform for FlatHost {
        fn fetch(&mut self, _byte_addr: u32) -> u32 {
            self.fetches += 1;
            1
        }
        fn load(&mut self, addr: u32, w: Width) -> (u32, u32) {
            (self.rd(addr, w), 1)
        }
        fn store(&mut self, addr: u32, value: u32, w: Width) -> u32 {
            self.wr(addr, value, w);
            1
        }
        fn exec_custom(
            &mut self,
            _ci: CiId,
            inputs: [u32; 4],
        ) -> Result<CustomOutcome, crate::CpuError> {
            Ok(CustomOutcome::healthy(
                PatchOutput {
                    out0: inputs[0].wrapping_add(inputs[1]),
                    out1: inputs[0] ^ inputs[1],
                },
                false,
            ))
        }
        fn send(&mut self, _dst: u32, _addr: u32, _len: u32) -> Result<(), CpuError> {
            Ok(())
        }
        fn try_recv(
            &mut self,
            _src: u32,
            _addr: u32,
            _len: u32,
        ) -> Result<Option<u32>, crate::CpuError> {
            Ok(None)
        }
    }

    impl LaneHost for FlatHost {
        fn fetch(&mut self, _byte_addr: u32) -> u32 {
            self.fetches += 1;
            1
        }
        fn load(&mut self, addr: u32, w: Width) -> (u32, u32) {
            (self.rd(addr, w), 1)
        }
        fn store(&mut self, addr: u32, value: u32, w: Width) -> u32 {
            self.wr(addr, value, w);
            1
        }
        fn store_side_exits(&self, addr: u32) -> bool {
            stitch_isa::memmap::is_xbar_cfg(addr)
        }
        fn custom_bound(&self, _ci: CiId) -> bool {
            true
        }
        fn exec_custom(&mut self, ci: CiId, inputs: [u32; 4]) -> Option<CustomOutcome> {
            Platform::exec_custom(self, ci, inputs).ok()
        }
    }

    fn loop_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, iters);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 0x4000);
        let top = b.bound_label();
        b.addi(Reg::R2, Reg::R2, 3);
        b.mul(Reg::R4, Reg::R2, Reg::R2);
        b.sw(Reg::R4, Reg::R3, 0);
        b.lw(Reg::R5, Reg::R3, 0);
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(Cond::Ne, Reg::R1, Reg::R0, top);
        b.halt();
        b.build().expect("program")
    }

    /// Steps the interpreter through the whole program, reproducing the
    /// chip tick's busy-until spacing, and returns the final clock.
    fn interpret(core: &mut Core, host: &mut FlatHost, start: u64) -> u64 {
        let mut t = start;
        loop {
            match core.step(host).expect("step") {
                StepOutcome::Retired { cycles } => {
                    if core.state() == CoreState::Halted {
                        return t;
                    }
                    t += u64::from((cycles.max(1) - 1).max(1));
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn window_matches_interpreter_exactly() {
        let program = loop_program(50);
        let mut ref_core = Core::new(&program);
        let mut ref_host = FlatHost::new();
        let halt_start = interpret(&mut ref_core, &mut ref_host, 1);

        let mut core = Core::new(&program);
        let mut host = FlatHost::new();
        let mut cache = TransCache::new();
        let mut bank = LaneBank::new(1);
        let run = core.run_translated(
            &mut cache,
            &mut bank,
            0,
            &mut host,
            WindowParams {
                start: 1,
                horizon: u64::MAX,
                customs_inline: true,
            },
        );
        // The window stops at the halt, which the interpreter then
        // retires at exactly the reference clock.
        assert!(run.side_exit);
        assert_eq!(run.next_start, halt_start);
        // Everything except the halt retired inside the window.
        assert_eq!(run.executed + 1, ref_core.stats().instructions);
        // Architectural state matches the reference just before halt.
        for r in 0..32u8 {
            let r = Reg::from_index(r).expect("reg");
            assert_eq!(core.reg(r), ref_core.reg(r), "register {r:?}");
        }
        assert_eq!(host.fetches + 1, ref_host.fetches);
        assert_eq!(host.mem, ref_host.mem);
        // Stats match except the halt's own retire (1 instruction, 1
        // cycle on this unit-latency host).
        let s = core.stats();
        let q = ref_core.stats();
        assert_eq!(s.instructions + 1, q.instructions);
        assert_eq!(s.cycles + 1, q.cycles);
        assert_eq!(s.alu_ops, q.alu_ops);
        assert_eq!(s.mul_ops, q.mul_ops);
        assert_eq!(s.mem_ops, q.mem_ops);
        assert_eq!(s.branches, q.branches);
        assert_eq!(s.branches_taken, q.branches_taken);
        assert_eq!(s.fetch_stall_cycles, q.fetch_stall_cycles);
    }

    #[test]
    fn window_respects_horizon_and_resumes() {
        let program = loop_program(50);
        let mut ref_core = Core::new(&program);
        let mut ref_host = FlatHost::new();
        let halt_start = interpret(&mut ref_core, &mut ref_host, 1);

        let mut core = Core::new(&program);
        let mut host = FlatHost::new();
        let mut cache = TransCache::new();
        let mut bank = LaneBank::new(1);
        // Run in many small windows; the clock must be preserved across
        // horizon stops.
        let mut t = 1u64;
        let mut windows = 0u64;
        loop {
            let run = core.run_translated(
                &mut cache,
                &mut bank,
                0,
                &mut host,
                WindowParams {
                    start: t,
                    horizon: t + 7,
                    customs_inline: true,
                },
            );
            t = run.next_start;
            windows += 1;
            if run.side_exit {
                break;
            }
        }
        assert_eq!(t, halt_start, "clock diverged across {windows} windows");
        assert_eq!(host.mem, ref_host.mem);
        assert!(cache.hits > cache.translated, "loop re-enters cached block");
    }

    #[test]
    fn bank_keeps_lanes_disjoint_and_r0_zero() {
        let mut bank = LaneBank::new(4);
        bank.set(Reg::R5, 1, 77);
        bank.set(Reg::R5, 2, 88);
        bank.set(Reg::R0, 3, 123);
        assert_eq!(bank.get(Reg::R5, 1), 77);
        assert_eq!(bank.get(Reg::R5, 2), 88);
        assert_eq!(bank.get(Reg::R5, 0), 0);
        assert_eq!(bank.get(Reg::R0, 3), 0);
        assert_eq!(bank.lanes(), 4);
    }

    #[test]
    fn cache_invalidation_drops_blocks_but_keeps_counters() {
        let program = loop_program(3);
        let core = Core::new(&program);
        let mut cache = TransCache::new();
        let slot = cache.block_slot(&core.text.instrs, &core.text.word_offsets, 0);
        assert_eq!(slot, 0);
        assert_eq!(cache.translated, 1);
        cache.block_slot(&core.text.instrs, &core.text.word_offsets, 0);
        assert_eq!(cache.hits, 1);
        cache.invalidate();
        assert!(cache.blocks.is_empty());
        cache.block_slot(&core.text.instrs, &core.text.word_offsets, 0);
        assert_eq!(cache.translated, 2, "re-lowered after invalidation");
    }
}
