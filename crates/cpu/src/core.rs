//! The in-order, single-issue core.

use crate::{CoreStats, CpuError, BRANCH_PENALTY, MUL_LATENCY};
use stitch_isa::custom::CiId;
use stitch_isa::instr::{Instr, Operand, Width};
use stitch_isa::op::OpClass;
use stitch_isa::program::Program;
use stitch_isa::reg::Reg;
use stitch_patch::PatchOutput;

/// Base byte address of a tile's program text (instruction fetch space).
pub const TEXT_BASE: u32 = 0x0100_0000;

/// Result of executing one custom instruction on the platform.
///
/// A healthy patch retires in one cycle ([`CustomOutcome::healthy`]); a
/// faulted one may demote to the equivalent W32 software sequence, which
/// produces the same values at a higher cycle cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomOutcome {
    /// The two architectural results.
    pub out: PatchOutput,
    /// True when the CI genuinely executed as a fused pair of patches.
    pub fused: bool,
    /// Execute-stage cycles charged for the instruction (≥ 1).
    pub cycles: u32,
    /// True when the binding was demoted to the software fallback.
    pub demoted: bool,
}

impl CustomOutcome {
    /// The fault-free outcome: single-cycle execution on the patch.
    #[must_use]
    pub fn healthy(out: PatchOutput, fused: bool) -> Self {
        CustomOutcome {
            out,
            fused,
            cycles: 1,
            demoted: false,
        }
    }
}

/// Services the chip provides to a core: memory, patches, and the NIC.
pub trait Platform {
    /// Latency (cycles) of fetching the instruction word at `byte_addr`.
    fn fetch(&mut self, byte_addr: u32) -> u32;

    /// Data load; returns `(value, latency)`.
    fn load(&mut self, addr: u32, w: Width) -> (u32, u32);

    /// Data store; returns latency.
    fn store(&mut self, addr: u32, value: u32, w: Width) -> u32;

    /// Executes custom instruction `ci` with the four operand words.
    ///
    /// Returns the patch outputs, the cycle charge, and whether the
    /// binding executed fused or demoted (see [`CustomOutcome`]).
    ///
    /// # Errors
    ///
    /// [`CpuError::UnboundCustom`] when the stitcher allocated no patch;
    /// [`CpuError::PatchFaulted`] when a fault plan in strict mode hits a
    /// dead patch or severed fused circuit.
    fn exec_custom(&mut self, ci: CiId, inputs: [u32; 4]) -> Result<CustomOutcome, CpuError>;

    /// Sends `len` words starting at local address `addr` to tile `dst`
    /// (NIC DMA; the platform reads the words functionally).
    ///
    /// # Errors
    ///
    /// [`CpuError::BadSendTarget`] when `dst` names a tile that does not
    /// exist on the platform (an unchecked flit would wedge the mesh).
    fn send(&mut self, dst: u32, addr: u32, len: u32) -> Result<(), CpuError>;

    /// Attempts to receive a message from tile `src`; on success the
    /// platform writes it to `addr` and returns its word count.
    ///
    /// # Errors
    ///
    /// [`CpuError::MessageLengthMismatch`] when the arrived message does
    /// not have `len` words.
    fn try_recv(&mut self, src: u32, addr: u32, len: u32) -> Result<Option<u32>, CpuError>;
}

/// Execution state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreState {
    /// Fetch/execute proceeding.
    Running,
    /// `halt` retired; the core is finished.
    Halted,
}

/// Result of stepping the core by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired, consuming this many cycles.
    Retired {
        /// Cycles consumed, including stalls.
        cycles: u32,
    },
    /// A `recv` found no message; one polling cycle was consumed.
    WaitingRecv {
        /// The tile being waited on.
        src: u32,
    },
    /// The core halted (no cycles consumed).
    Halted,
}

/// Immutable program image held by a core: decoded instruction text plus
/// the word-offset table used for I-cache addressing.
///
/// Kept separate from the mutable [`ArchState`] so that `step` can borrow
/// the current instruction from the text while updating registers and
/// statistics — the hot loop never clones an [`Instr`].
#[derive(Debug, Clone)]
pub(crate) struct TextImage {
    pub(crate) instrs: Vec<Instr>,
    pub(crate) word_offsets: Vec<u32>,
}

/// Mutable architectural state: registers, PC, run state, counters.
#[derive(Debug, Clone)]
pub(crate) struct ArchState {
    pub(crate) regs: [u32; 32],
    pub(crate) pc: u32,
    pub(crate) state: CoreState,
    pub(crate) stats: CoreStats,
}

impl ArchState {
    /// Reads a register (the zero register reads zero).
    fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    /// Writes a register (writes to the zero register are discarded).
    fn set_reg(&mut self, r: Reg, value: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = value;
        }
    }

    fn jump_to(&mut self, target: u32, text_len: usize) -> Result<(), CpuError> {
        if target as usize > text_len {
            return Err(CpuError::BadTarget { target });
        }
        self.pc = target;
        Ok(())
    }
}

/// One W32 core: architectural registers, PC and statistics.
///
/// The core holds its decoded program (instruction text plus the
/// word-offset table used for I-cache addressing); data memory, patches
/// and the NIC live behind the [`Platform`] trait.
#[derive(Debug, Clone)]
pub struct Core {
    pub(crate) text: TextImage,
    pub(crate) arch: ArchState,
}

/// Architectural snapshot of one core: everything `step` mutates.
///
/// The program text is *not* part of the snapshot — a snapshot restores
/// into a core running the same program (the chip validates program
/// identity before restoring). Statistics are included because the
/// simulator's `RunSummary` equivalence contract extends to every
/// counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreSnapshot {
    /// Architectural register file.
    pub regs: [u32; 32],
    /// Program counter (instruction index).
    pub pc: u32,
    /// Run state.
    pub state: CoreState,
    /// Counters accumulated so far.
    pub stats: CoreStats,
}

impl Core {
    /// Creates a core at `pc = 0` over a program.
    #[must_use]
    pub fn new(program: &Program) -> Self {
        let mut word_offsets = Vec::with_capacity(program.instrs.len());
        let mut off = 0;
        for i in &program.instrs {
            word_offsets.push(off);
            off += i.words();
        }
        Core {
            text: TextImage {
                instrs: program.instrs.clone(),
                word_offsets,
            },
            arch: ArchState {
                regs: [0; 32],
                pc: 0,
                state: CoreState::Running,
                stats: CoreStats::default(),
            },
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> CoreState {
        self.arch.state
    }

    /// Current program counter (instruction index).
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.arch.pc
    }

    /// Reads a register (the zero register reads zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.arch.reg(r)
    }

    /// Writes a register (writes to the zero register are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.arch.set_reg(r, value);
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CoreStats {
        &self.arch.stats
    }

    /// Restarts the core (registers, pc, state; statistics are kept).
    pub fn reset(&mut self) {
        self.arch.regs = [0; 32];
        self.arch.pc = 0;
        self.arch.state = CoreState::Running;
    }

    /// Captures the core's full architectural state.
    #[must_use]
    pub fn snapshot(&self) -> CoreSnapshot {
        CoreSnapshot {
            regs: self.arch.regs,
            pc: self.arch.pc,
            state: self.arch.state,
            stats: self.arch.stats,
        }
    }

    /// Restores a previously captured snapshot. The program text is left
    /// untouched; a snapshot whose `pc` does not fit the current text
    /// surfaces as a typed [`CpuError::PcOutOfRange`] on the next step.
    pub fn restore(&mut self, snap: &CoreSnapshot) {
        self.arch.regs = snap.regs;
        self.arch.pc = snap.pc;
        self.arch.state = snap.state;
        self.arch.stats = snap.stats;
    }

    /// Number of instructions in the loaded program text (used by the
    /// chip to validate that a snapshot matches the loaded workload).
    #[must_use]
    pub fn text_len(&self) -> usize {
        self.text.instrs.len()
    }

    /// Byte address and word count of the instruction the core is parked
    /// on. Used by the simulator's fast path to batch the instruction
    /// re-fetches of a polling `recv`.
    #[must_use]
    pub fn poll_footprint(&self) -> (u32, u32) {
        let pc = self.arch.pc as usize;
        let instr = &self.text.instrs[pc];
        debug_assert!(
            matches!(instr, Instr::Recv { .. }),
            "poll footprint of a non-recv instruction"
        );
        (TEXT_BASE + self.text.word_offsets[pc] * 4, instr.words())
    }

    /// Accounts `polls` skipped failed `recv` polls: each would have
    /// burned one core cycle and one recv-wait cycle. The caller accounts
    /// the matching instruction re-fetches on the tile memory separately.
    pub fn record_skipped_polls(&mut self, polls: u64) {
        self.arch.stats.recv_wait_cycles += polls;
        self.arch.stats.cycles += polls;
    }

    /// Executes one instruction against `platform`.
    ///
    /// # Errors
    ///
    /// Propagates [`CpuError`] on malformed control flow, unbound custom
    /// instructions, or message length mismatches.
    pub fn step<P: Platform>(&mut self, platform: &mut P) -> Result<StepOutcome, CpuError> {
        // Split-borrow: `instr` borrows the immutable text image while the
        // body mutates `cpu` — no per-step clone of the instruction.
        let text = &self.text;
        let cpu = &mut self.arch;
        if cpu.state == CoreState::Halted {
            return Ok(StepOutcome::Halted);
        }
        let Some(instr) = text.instrs.get(cpu.pc as usize) else {
            return Err(CpuError::PcOutOfRange { pc: cpu.pc });
        };

        // Fetch (all words of the instruction).
        let base = TEXT_BASE + text.word_offsets[cpu.pc as usize] * 4;
        let mut cycles = 0u32;
        for w in 0..instr.words() {
            let lat = platform.fetch(base + w * 4);
            cycles += lat;
            cpu.stats.fetch_stall_cycles += u64::from(lat.saturating_sub(1));
        }
        // The fetch pipeline overlaps with execute: only *stall* cycles
        // (I-cache misses) add latency. The base execute cycle per
        // instruction class is added below. Both words of a custom
        // instruction are fetched in one front-end cycle (the paper counts
        // custom instructions as single-cycle, Fig 4), so per-word hit
        // cycles are removed here and only miss stalls remain.
        cycles = cycles.saturating_sub(instr.words());

        let mut next_pc = cpu.pc + 1;
        match instr {
            Instr::Nop => cycles += 1,
            Instr::Halt => {
                cpu.state = CoreState::Halted;
                cpu.stats.instructions += 1;
                cpu.stats.cycles += u64::from(cycles + 1);
                return Ok(StepOutcome::Retired { cycles: cycles + 1 });
            }
            Instr::Alu { op, rd, rs1, src2 } => {
                let a = cpu.reg(*rs1);
                let b = match src2 {
                    Operand::Reg(r) => cpu.reg(*r),
                    Operand::Imm(v) => *v as u32,
                };
                cpu.set_reg(*rd, op.eval(a, b));
                match op.class() {
                    OpClass::M => {
                        cycles += MUL_LATENCY;
                        cpu.stats.mul_ops += 1;
                    }
                    _ => {
                        cycles += 1;
                        cpu.stats.alu_ops += 1;
                    }
                }
            }
            Instr::Lui { rd, imm } => {
                cpu.set_reg(*rd, imm << 12);
                cycles += 1;
                cpu.stats.alu_ops += 1;
            }
            Instr::Load {
                w,
                rd,
                base,
                offset,
            } => {
                let addr = cpu.reg(*base).wrapping_add_signed(*offset);
                let (value, lat) = platform.load(addr, *w);
                cpu.set_reg(*rd, value);
                cycles += lat;
                cpu.stats.mem_ops += 1;
                cpu.stats.mem_stall_cycles += u64::from(lat.saturating_sub(1));
            }
            Instr::Store {
                w,
                rs,
                base,
                offset,
            } => {
                let addr = cpu.reg(*base).wrapping_add_signed(*offset);
                let lat = platform.store(addr, cpu.reg(*rs), *w);
                cycles += lat;
                cpu.stats.mem_ops += 1;
                cpu.stats.mem_stall_cycles += u64::from(lat.saturating_sub(1));
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                cycles += 1;
                cpu.stats.branches += 1;
                if cond.eval(cpu.reg(*rs1), cpu.reg(*rs2)) {
                    cpu.stats.branches_taken += 1;
                    cycles += BRANCH_PENALTY;
                    next_pc = *target;
                }
            }
            Instr::Jal { rd, target } => {
                cpu.set_reg(*rd, cpu.pc + 1);
                cycles += 1 + BRANCH_PENALTY;
                cpu.stats.branches += 1;
                cpu.stats.branches_taken += 1;
                next_pc = *target;
            }
            Instr::Jalr { rd, rs } => {
                let target = cpu.reg(*rs);
                cpu.set_reg(*rd, cpu.pc + 1);
                cycles += 1 + BRANCH_PENALTY;
                cpu.stats.branches += 1;
                cpu.stats.branches_taken += 1;
                next_pc = target;
            }
            Instr::Custom(ci) => {
                let slots = ci.input_slots();
                let inputs = [
                    cpu.reg(slots[0]),
                    cpu.reg(slots[1]),
                    cpu.reg(slots[2]),
                    cpu.reg(slots[3]),
                ];
                let o = platform.exec_custom(ci.ci, inputs)?;
                let outs = ci.outputs();
                if let Some(r0) = outs.first() {
                    cpu.set_reg(*r0, o.out.out0);
                }
                if let Some(r1) = outs.get(1) {
                    cpu.set_reg(*r1, o.out.out1);
                }
                // Single-cycle execution on a healthy patch (the paper's
                // headline); a demoted CI charges its software-sequence
                // cost instead.
                cycles += o.cycles.max(1);
                cpu.stats.custom_ops += 1;
                if o.fused {
                    cpu.stats.fused_ops += 1;
                }
                if o.demoted {
                    cpu.stats.demoted_ops += 1;
                }
            }
            Instr::Send { dst, addr, len } => {
                let n = cpu.reg(*len);
                platform.send(cpu.reg(*dst), cpu.reg(*addr), n)?;
                cycles += 1 + n;
                cpu.stats.words_sent += u64::from(n);
            }
            Instr::Recv { src, addr, len } => {
                let src_tile = cpu.reg(*src);
                let n = cpu.reg(*len);
                match platform.try_recv(src_tile, cpu.reg(*addr), n)? {
                    Some(words) => {
                        cycles += 1 + words;
                        cpu.stats.words_received += u64::from(words);
                    }
                    None => {
                        cpu.stats.recv_wait_cycles += 1;
                        cpu.stats.cycles += 1;
                        return Ok(StepOutcome::WaitingRecv { src: src_tile });
                    }
                }
            }
        }

        cpu.stats.instructions += 1;
        cpu.stats.cycles += u64::from(cycles);
        cpu.jump_to(next_pc, text.instrs.len())?;
        Ok(StepOutcome::Retired { cycles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use stitch_isa::program::ProgramBuilder;

    /// Minimal platform: flat memory, perfect caches, no patches/NIC.
    #[derive(Default)]
    struct TestPlatform {
        mem: HashMap<u32, u32>,
        inbox: Vec<(u32, Vec<u32>)>,
        sent: Vec<(u32, u32, u32)>,
    }

    impl Platform for TestPlatform {
        fn fetch(&mut self, _addr: u32) -> u32 {
            1
        }
        fn load(&mut self, addr: u32, _w: Width) -> (u32, u32) {
            (self.mem.get(&(addr & !3)).copied().unwrap_or(0), 1)
        }
        fn store(&mut self, addr: u32, value: u32, _w: Width) -> u32 {
            self.mem.insert(addr & !3, value);
            1
        }
        fn exec_custom(&mut self, _ci: CiId, inputs: [u32; 4]) -> Result<CustomOutcome, CpuError> {
            Ok(CustomOutcome::healthy(
                PatchOutput {
                    out0: inputs[0].wrapping_add(inputs[1]),
                    out1: inputs[0],
                },
                false,
            ))
        }
        fn send(&mut self, dst: u32, addr: u32, len: u32) -> Result<(), CpuError> {
            self.sent.push((dst, addr, len));
            Ok(())
        }
        fn try_recv(&mut self, src: u32, _addr: u32, len: u32) -> Result<Option<u32>, CpuError> {
            if let Some(pos) = self.inbox.iter().position(|(s, _)| *s == src) {
                let (_, words) = self.inbox.remove(pos);
                if words.len() as u32 != len {
                    return Err(CpuError::MessageLengthMismatch {
                        expected: len,
                        got: words.len() as u32,
                    });
                }
                Ok(Some(len))
            } else {
                Ok(None)
            }
        }
    }

    fn run(p: &Program) -> (Core, TestPlatform) {
        let mut core = Core::new(p);
        let mut plat = TestPlatform::default();
        for _ in 0..100_000 {
            match core.step(&mut plat).unwrap() {
                StepOutcome::Halted => break,
                StepOutcome::WaitingRecv { .. } => panic!("unexpected wait"),
                StepOutcome::Retired { .. } => {}
            }
        }
        (core, plat)
    }

    #[test]
    fn arithmetic_loop() {
        // sum 1..=10
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 10);
        b.li(Reg::R2, 0);
        let top = b.bound_label();
        b.add(Reg::R2, Reg::R2, Reg::R1);
        b.addi(Reg::R1, Reg::R1, -1);
        b.branch(stitch_isa::Cond::Ne, Reg::R1, Reg::R0, top);
        b.halt();
        let (core, _) = run(&b.build().unwrap());
        assert_eq!(core.reg(Reg::R2), 55);
        assert_eq!(core.stats().branches, 10);
        assert_eq!(core.stats().branches_taken, 9);
    }

    #[test]
    fn memory_round_trip() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 0x1000);
        b.li(Reg::R2, 1234);
        b.sw(Reg::R2, Reg::R1, 8);
        b.lw(Reg::R3, Reg::R1, 8);
        b.halt();
        let (core, _) = run(&b.build().unwrap());
        assert_eq!(core.reg(Reg::R3), 1234);
        assert_eq!(core.stats().mem_ops, 2);
    }

    #[test]
    fn mul_costs_more() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 6);
        b.mul(Reg::R2, Reg::R1, Reg::R1);
        b.halt();
        let (core, _) = run(&b.build().unwrap());
        assert_eq!(core.reg(Reg::R2), 36);
        assert_eq!(core.stats().mul_ops, 1);
        // li(1) + mul(MUL_LATENCY) + halt(1)
        assert_eq!(core.stats().cycles, 1 + u64::from(MUL_LATENCY) + 1);
    }

    #[test]
    fn taken_branch_penalty() {
        let mut b = ProgramBuilder::new();
        let skip = b.label();
        b.jump(skip); // taken: 1 + BRANCH_PENALTY
        b.nop();
        b.bind(skip).unwrap();
        b.halt();
        let (core, _) = run(&b.build().unwrap());
        assert_eq!(core.stats().cycles, u64::from(1 + BRANCH_PENALTY) + 1);
        assert_eq!(core.stats().instructions, 2, "nop is skipped");
    }

    #[test]
    fn custom_instruction_single_cycle() {
        use stitch_isa::custom::{CiDescriptor, CiStage, PatchClass};
        let mut b = ProgramBuilder::new();
        let id = b.define_ci(CiDescriptor::single(
            CiId(0),
            "t",
            CiStage::new(PatchClass::AtMa, 0),
        ));
        b.li(Reg::R1, 20);
        b.li(Reg::R2, 22);
        b.custom(id, &[Reg::R1, Reg::R2], &[Reg::R3, Reg::R4])
            .unwrap();
        b.halt();
        let (core, _) = run(&b.build().unwrap());
        assert_eq!(core.reg(Reg::R3), 42, "out0 = a+b in test platform");
        assert_eq!(core.reg(Reg::R4), 20, "out1 = a");
        assert_eq!(core.stats().custom_ops, 1);
        // li + li + custom (single cycle) + halt
        assert_eq!(core.stats().cycles, 1 + 1 + 1 + 1);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        let func = b.label();
        b.li(Reg::R1, 1);
        b.call(func);
        b.halt();
        b.bind(func).unwrap();
        b.addi(Reg::R1, Reg::R1, 41);
        b.ret();
        let (core, _) = run(&b.build().unwrap());
        assert_eq!(core.reg(Reg::R1), 42);
    }

    #[test]
    fn send_and_recv() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 3); // peer tile
        b.li(Reg::R2, 0x100); // addr
        b.li(Reg::R3, 4); // len
        b.send(Reg::R1, Reg::R2, Reg::R3);
        b.recv(Reg::R1, Reg::R2, Reg::R3);
        b.halt();
        let p = b.build().unwrap();
        let mut core = Core::new(&p);
        let mut plat = TestPlatform::default();
        // Run until the recv blocks.
        let mut waited = false;
        for _ in 0..10 {
            match core.step(&mut plat).unwrap() {
                StepOutcome::WaitingRecv { src } => {
                    assert_eq!(src, 3);
                    waited = true;
                    break;
                }
                StepOutcome::Halted => panic!("halted before recv"),
                StepOutcome::Retired { .. } => {}
            }
        }
        assert!(waited);
        assert_eq!(plat.sent, vec![(3, 0x100, 4)]);
        // Deliver the message and resume.
        plat.inbox.push((3, vec![9, 9, 9, 9]));
        loop {
            if core.step(&mut plat).unwrap() == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(core.stats().words_received, 4);
        assert!(core.stats().recv_wait_cycles >= 1);
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R0, 99);
        b.add(Reg::R1, Reg::R0, Reg::R0);
        b.halt();
        let (core, _) = run(&b.build().unwrap());
        assert_eq!(core.reg(Reg::R1), 0);
    }

    #[test]
    fn bad_jalr_target_is_error() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 4000);
        b.emit(Instr::Jalr {
            rd: Reg::R0,
            rs: Reg::R1,
        });
        b.halt();
        let p = b.build().unwrap();
        let mut core = Core::new(&p);
        let mut plat = TestPlatform::default();
        let err = loop {
            match core.step(&mut plat) {
                Ok(StepOutcome::Halted) => panic!("expected jalr error"),
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert_eq!(err, CpuError::BadTarget { target: 4000 });
    }
}
