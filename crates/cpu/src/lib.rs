//! # In-order core model
//!
//! A single-issue, in-order pipeline executing the W32 ISA at cycle
//! granularity, with the polymorphic patch integrated in parallel to the
//! execute stage (paper §VI-D). The core is platform-agnostic: the chip
//! simulator implements [`Platform`] to supply memory, the NIC, and patch
//! execution (local or fused over the inter-patch NoC).
//!
//! ## Timing model (documented in DESIGN.md)
//!
//! | event | cycles |
//! |---|---|
//! | ALU / shift / branch not taken | 1 |
//! | multiply (`mul`, `mulh`) | [`MUL_LATENCY`] |
//! | taken branch / jump | 1 + [`BRANCH_PENALTY`] |
//! | load/store | 1 on D$/SPM hit, +30 on miss |
//! | custom instruction | 1 (single-cycle, even when fused) |
//! | `send` (n words) | 1 + n (NIC copy) |
//! | `recv` (n words) | 1 + n once the message arrived; polls while empty |
//!
//! Instruction fetch goes through the I-cache; a miss stalls the front end
//! for the DRAM latency. Custom instructions occupy two words but issue in
//! a single cycle once fetched (both words must be resident).

pub mod core;
pub mod stats;
pub mod translate;

pub use crate::core::{Core, CoreSnapshot, CoreState, CustomOutcome, Platform, StepOutcome};
pub use stats::CoreStats;
pub use translate::{LaneBank, LaneHost, LaneRun, TransCache, WindowParams};

/// Multiply latency on the base pipeline, in cycles. The open-source
/// Amber core the paper synthesizes uses an iterative multiplier (tens of
/// cycles); we model a conservative 6-cycle multiply. The multiplier in
/// an `{AT-MA}` patch executes within the single-cycle custom
/// instruction — the key reason multiply-rich kernels favour those
/// patches.
pub const MUL_LATENCY: u32 = 8;

/// Extra cycles paid by a taken branch or jump (pipeline refill).
pub const BRANCH_PENALTY: u32 = 2;

use std::fmt;
use stitch_isa::custom::CiId;

/// Errors surfaced while executing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// PC left the program text.
    PcOutOfRange {
        /// The offending instruction index.
        pc: u32,
    },
    /// A custom instruction had no binding for this tile (the stitcher
    /// never allocated a patch for it).
    UnboundCustom(CiId),
    /// A receive found a message of unexpected length.
    MessageLengthMismatch {
        /// Words expected by the `recv`.
        expected: u32,
        /// Words in the arrived message.
        got: u32,
    },
    /// Jump/branch target outside the text.
    BadTarget {
        /// The target instruction index.
        target: u32,
    },
    /// A `send` named a destination tile that does not exist on this
    /// chip. Left unchecked, such a flit would route toward
    /// out-of-mesh coordinates and wedge the network forever; the
    /// platform rejects it before injection instead.
    BadSendTarget {
        /// The destination tile id the program supplied.
        target: u32,
    },
    /// A custom instruction hit a faulted patch or severed fused circuit
    /// while the active fault plan forbids graceful degradation (strict
    /// mode). The chip simulator translates this into its typed
    /// `SimError::Faulted`.
    PatchFaulted {
        /// The custom instruction that detected the fault.
        ci: CiId,
        /// What was found broken.
        kind: PatchFaultKind,
    },
}

/// Hardware component a strict-mode custom instruction found broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchFaultKind {
    /// The local patch datapath is dead.
    PatchDead,
    /// The fused partner patch or a crossbar switch on the circuit is
    /// dead, so the inter-patch handshake cannot complete.
    CircuitDead,
}

impl fmt::Display for PatchFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchFaultKind::PatchDead => write!(f, "patch datapath dead"),
            PatchFaultKind::CircuitDead => write!(f, "fused circuit severed"),
        }
    }
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::PcOutOfRange { pc } => write!(f, "pc {pc} outside program text"),
            CpuError::UnboundCustom(id) => {
                write!(
                    f,
                    "custom instruction {id} has no patch binding on this tile"
                )
            }
            CpuError::MessageLengthMismatch { expected, got } => {
                write!(f, "recv expected {expected} words, message has {got}")
            }
            CpuError::BadTarget { target } => write!(f, "control transfer to {target}"),
            CpuError::BadSendTarget { target } => {
                write!(f, "send addressed to nonexistent tile {target}")
            }
            CpuError::PatchFaulted { ci, kind } => {
                write!(f, "custom instruction {ci} hit a hardware fault: {kind}")
            }
        }
    }
}

impl std::error::Error for CpuError {}
