//! Per-core execution statistics (inputs to the power model).

/// Counters collected by one core during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Total cycles consumed (including stalls).
    pub cycles: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// Committed ALU/shift operations.
    pub alu_ops: u64,
    /// Committed multiplies.
    pub mul_ops: u64,
    /// Committed loads/stores (core path, not LMAU).
    pub mem_ops: u64,
    /// Committed custom instructions.
    pub custom_ops: u64,
    /// Custom instructions that executed on a fused patch pair.
    pub fused_ops: u64,
    /// Custom instructions demoted to the W32 software fallback because
    /// of a patch or fused-circuit fault.
    pub demoted_ops: u64,
    /// Committed branches.
    pub branches: u64,
    /// Branches taken.
    pub branches_taken: u64,
    /// Cycles stalled on instruction fetch misses.
    pub fetch_stall_cycles: u64,
    /// Cycles stalled on data memory.
    pub mem_stall_cycles: u64,
    /// Cycles spent polling for a message in `recv`.
    pub recv_wait_cycles: u64,
    /// Words sent through the NIC.
    pub words_sent: u64,
    /// Words received through the NIC.
    pub words_received: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles spent executing (total minus `recv` polling). This is the
    /// quantity the observability layer's per-window `busy_cycles` sums
    /// to, since every retired instruction's cost is charged to exactly
    /// one window.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.cycles.saturating_sub(self.recv_wait_cycles)
    }

    /// Fraction of cycles spent waiting for messages (load imbalance
    /// indicator used by the stitching discussion in §VI-C).
    #[must_use]
    pub fn recv_wait_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.recv_wait_cycles as f64 / self.cycles as f64
        }
    }

    /// Merges another core's counters into this one (chip-level totals).
    pub fn merge(&mut self, other: &CoreStats) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.alu_ops += other.alu_ops;
        self.mul_ops += other.mul_ops;
        self.mem_ops += other.mem_ops;
        self.custom_ops += other.custom_ops;
        self.fused_ops += other.fused_ops;
        self.demoted_ops += other.demoted_ops;
        self.branches += other.branches;
        self.branches_taken += other.branches_taken;
        self.fetch_stall_cycles += other.fetch_stall_cycles;
        self.mem_stall_cycles += other.mem_stall_cycles;
        self.recv_wait_cycles += other.recv_wait_cycles;
        self.words_sent += other.words_sent;
        self.words_received += other.words_received;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_wait_fraction() {
        let s = CoreStats {
            cycles: 100,
            instructions: 50,
            recv_wait_cycles: 25,
            ..Default::default()
        };
        assert!((s.ipc() - 0.5).abs() < 1e-12);
        assert!((s.recv_wait_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(CoreStats::default().ipc(), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = CoreStats {
            cycles: 10,
            instructions: 5,
            ..Default::default()
        };
        let b = CoreStats {
            cycles: 7,
            instructions: 3,
            mul_ops: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.instructions, 8);
        assert_eq!(a.mul_ops, 2);
    }
}
