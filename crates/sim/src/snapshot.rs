//! Deterministic chip checkpoints: capture, restore, and a versioned
//! binary codec for disk persistence.
//!
//! A [`ChipSnapshot`] is the complete dynamic state of a [`crate::Chip`]
//! mid-run: every core's architectural state, every tile's memory image
//! (sparse DRAM pages, cache tag/LRU arrays, scratchpad), both networks
//! (buffered flits, wormhole ownership, reassemblies, reserved circuits
//! and switch configurations), the chip's scheduling bookkeeping, and
//! the fault runtime (plan, component deadlines, counters). Program
//! *text* and custom-instruction bindings are load-time artifacts and
//! deliberately excluded: a snapshot restores into a chip that has the
//! same programs loaded, which [`crate::Chip::restore`] validates.
//!
//! The on-disk format is hand-rolled (no serde): an 8-byte magic, a
//! version word, the mesh topology, then the state in a fixed field
//! order, all little-endian. Decoding is total — truncated, oversized,
//! or corrupt inputs surface as a typed [`SnapshotError`], never a panic
//! — and every collection length is validated against the remaining
//! input before allocation.

use crate::faults::FaultStats;
use crate::{TileId, Topology};
use std::fmt;
use stitch_cpu::{CoreSnapshot, CoreState, CoreStats};
use stitch_fault::{FaultKind, FaultPlan};
use stitch_mem::{
    CacheSnapshot, CacheStats, DramSnapshot, LineSnapshot, SpmSnapshot, TileMemorySnapshot,
    PAGE_SIZE,
};
use stitch_noc::{
    Circuit, FlitSnapshot, MeshError, MeshSnapshot, MeshStats, Message, PatchNetError,
    PatchNetSnapshot, PortDir, ReassemblySnapshot, RouterSnapshot,
};

/// Magic prefix of the on-disk snapshot format.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"STCHSNAP";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot could not be decoded or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The format version is newer/older than this build understands.
    UnsupportedVersion {
        /// Version word found in the header.
        found: u32,
    },
    /// The input ended before the encoded state was complete.
    Truncated,
    /// Bytes remain after the last encoded field.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// A field holds a value outside its domain (bad enum tag, an
    /// impossible length, a boolean that is neither 0 nor 1, ...).
    Corrupt {
        /// Which field was malformed.
        what: &'static str,
    },
    /// The snapshot was captured on a chip with a different mesh.
    TopologyMismatch {
        /// `(width, height)` of the restoring chip.
        expected: (u8, u8),
        /// `(width, height)` recorded in the snapshot.
        found: (u8, u8),
    },
    /// The snapshot is internally consistent but does not fit the chip
    /// it is being restored into (missing program, wrong vector sizes).
    Mismatch {
        /// What did not line up.
        what: &'static str,
    },
    /// The inter-patch network rejected the recorded configuration.
    PatchNet(PatchNetError),
    /// The mesh rejected the recorded network state.
    Mesh(MeshError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a chip snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot version {found} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot")
            }
            SnapshotError::Corrupt { what } => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::TopologyMismatch { expected, found } => write!(
                f,
                "snapshot topology {}x{} does not match chip {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            SnapshotError::Mismatch { what } => {
                write!(f, "snapshot does not fit this chip: {what}")
            }
            SnapshotError::PatchNet(e) => write!(f, "snapshot patch-net state rejected: {e}"),
            SnapshotError::Mesh(e) => write!(f, "snapshot mesh state rejected: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<PatchNetError> for SnapshotError {
    fn from(e: PatchNetError) -> Self {
        SnapshotError::PatchNet(e)
    }
}

impl From<MeshError> for SnapshotError {
    fn from(e: MeshError) -> Self {
        SnapshotError::Mesh(e)
    }
}

/// Snapshot of the fault runtime: the installed plan plus every piece of
/// replay-visible state (the chip-managed rollback arming flag and the
/// transient pending-mask queue are excluded — both are empty/derived at
/// every checkpoint boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRuntimeSnapshot {
    /// The installed fault plan (events sorted by cycle).
    pub plan: FaultPlan,
    /// Index of the next unapplied event.
    pub next: u64,
    /// Per tile: patch down while `cycle < patch_down_until`.
    pub patch_down_until: Vec<u64>,
    /// Per tile: switch down while `cycle < switch_down_until`.
    pub switch_down_until: Vec<u64>,
    /// Per tile: rollback mask deadline for the patch.
    pub patch_mask_until: Vec<u64>,
    /// Per tile: rollback mask deadline for the switch.
    pub switch_mask_until: Vec<u64>,
    /// Per tile: a config upset awaits its scrub.
    pub config_upset: Vec<bool>,
    /// `(tile, ci)` pairs that already paid the watchdog cost (sorted).
    pub watchdog_tripped: Vec<(u8, u16)>,
    /// Counters at capture time.
    pub stats: FaultStats,
}

/// Complete dynamic state of a chip at one cycle boundary.
///
/// Captured by [`crate::Chip::checkpoint`], reinstalled by
/// [`crate::Chip::restore`], persisted with [`ChipSnapshot::encode`] /
/// [`ChipSnapshot::decode`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSnapshot {
    /// Mesh geometry of the captured chip (restore is refused into a
    /// chip with a different topology).
    pub topo: Topology,
    /// Simulation cycle at capture time.
    pub cycle: u64,
    /// Per-tile core state (`None` = no program loaded on that tile).
    pub cores: Vec<Option<CoreSnapshot>>,
    /// Per-tile memory images.
    pub mems: Vec<TileMemorySnapshot>,
    /// Inter-core mesh state.
    pub mesh: MeshSnapshot,
    /// Inter-patch network state (switch words + reserved circuits).
    pub patchnet: PatchNetSnapshot,
    /// Per-tile: cycle until which the core is executing its current
    /// instruction.
    pub busy_until: Vec<u64>,
    /// Per-tile: source tile of a parked `recv`, if blocked.
    pub waiting_on: Vec<Option<u32>>,
    /// Per-tile patch activation counters.
    pub activations: Vec<u64>,
    /// Dropped crossbar-configuration writes so far.
    pub xbar_errors: u64,
    /// The fast path's cached earliest wake-up.
    pub next_wake: u64,
    /// Cycles elided by the fast path so far (diagnostic).
    pub skipped: u64,
    /// Fault runtime, when a plan is installed.
    pub faults: Option<FaultRuntimeSnapshot>,
}

impl ChipSnapshot {
    /// Serializes into the versioned binary format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(4096);
        w.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut w, SNAPSHOT_VERSION);
        w.push(self.topo.width);
        w.push(self.topo.height);
        put_u64(&mut w, self.cycle);
        put_u64(&mut w, self.xbar_errors);
        put_u64(&mut w, self.next_wake);
        put_u64(&mut w, self.skipped);
        put_u32(&mut w, self.cores.len() as u32);
        for core in &self.cores {
            match core {
                None => w.push(0),
                Some(c) => {
                    w.push(1);
                    put_core(&mut w, c);
                }
            }
        }
        put_u32(&mut w, self.mems.len() as u32);
        for m in &self.mems {
            put_tile_memory(&mut w, m);
        }
        put_u64_vec(&mut w, &self.busy_until);
        put_u32(&mut w, self.waiting_on.len() as u32);
        for slot in &self.waiting_on {
            match slot {
                None => w.push(0),
                Some(src) => {
                    w.push(1);
                    put_u32(&mut w, *src);
                }
            }
        }
        put_u64_vec(&mut w, &self.activations);
        put_mesh(&mut w, &self.mesh);
        put_patchnet(&mut w, &self.patchnet);
        match &self.faults {
            None => w.push(0),
            Some(fr) => {
                w.push(1);
                put_fault_runtime(&mut w, fr);
            }
        }
        w
    }

    /// Parses the versioned binary format.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] decoding variant; never panics on malformed
    /// input.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut d = Dec::new(bytes);
        if d.bytes(8)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = d.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let topo = Topology {
            width: d.u8()?,
            height: d.u8()?,
        };
        let cycle = d.u64()?;
        let xbar_errors = d.u64()?;
        let next_wake = d.u64()?;
        let skipped = d.u64()?;
        let n_cores = d.seq_len(1, "core count")?;
        let mut cores = Vec::with_capacity(n_cores);
        for _ in 0..n_cores {
            cores.push(match d.tag("core presence")? {
                false => None,
                true => Some(get_core(&mut d)?),
            });
        }
        let n_mems = d.seq_len(1, "memory count")?;
        let mut mems = Vec::with_capacity(n_mems);
        for _ in 0..n_mems {
            mems.push(get_tile_memory(&mut d)?);
        }
        let busy_until = get_u64_vec(&mut d, "busy_until")?;
        let n_waiting = d.seq_len(1, "waiting_on count")?;
        let mut waiting_on = Vec::with_capacity(n_waiting);
        for _ in 0..n_waiting {
            waiting_on.push(match d.tag("waiting_on presence")? {
                false => None,
                true => Some(d.u32()?),
            });
        }
        let activations = get_u64_vec(&mut d, "activations")?;
        let mesh = get_mesh(&mut d)?;
        let patchnet = get_patchnet(&mut d)?;
        let faults = match d.tag("fault runtime presence")? {
            false => None,
            true => Some(get_fault_runtime(&mut d)?),
        };
        d.finish()?;
        Ok(ChipSnapshot {
            topo,
            cycle,
            cores,
            mems,
            mesh,
            patchnet,
            busy_until,
            waiting_on,
            activations,
            xbar_errors,
            next_wake,
            skipped,
            faults,
        })
    }
}

// ---------------------------------------------------------------------
// Little-endian writers.

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u64_vec(w: &mut Vec<u8>, v: &[u64]) {
    put_u32(w, v.len() as u32);
    for x in v {
        put_u64(w, *x);
    }
}

fn put_u32_vec(w: &mut Vec<u8>, v: &[u32]) {
    put_u32(w, v.len() as u32);
    for x in v {
        put_u32(w, *x);
    }
}

fn put_core(w: &mut Vec<u8>, c: &CoreSnapshot) {
    for r in &c.regs {
        put_u32(w, *r);
    }
    put_u32(w, c.pc);
    w.push(match c.state {
        CoreState::Running => 0,
        CoreState::Halted => 1,
    });
    put_core_stats(w, &c.stats);
}

fn put_core_stats(w: &mut Vec<u8>, s: &CoreStats) {
    for v in [
        s.cycles,
        s.instructions,
        s.alu_ops,
        s.mul_ops,
        s.mem_ops,
        s.custom_ops,
        s.fused_ops,
        s.demoted_ops,
        s.branches,
        s.branches_taken,
        s.fetch_stall_cycles,
        s.mem_stall_cycles,
        s.recv_wait_cycles,
        s.words_sent,
        s.words_received,
    ] {
        put_u64(w, v);
    }
}

fn put_cache_stats(w: &mut Vec<u8>, s: &CacheStats) {
    for v in [s.accesses, s.hits, s.misses, s.writebacks] {
        put_u64(w, v);
    }
}

fn put_tile_memory(w: &mut Vec<u8>, m: &TileMemorySnapshot) {
    put_dram(w, &m.dram);
    put_cache(w, &m.icache);
    put_cache(w, &m.dcache);
    put_spm(w, &m.spm);
}

fn put_dram(w: &mut Vec<u8>, d: &DramSnapshot) {
    put_u32(w, d.pages.len() as u32);
    for (idx, page) in &d.pages {
        put_u32(w, *idx);
        w.extend_from_slice(&page[..]);
    }
}

fn put_cache(w: &mut Vec<u8>, c: &CacheSnapshot) {
    put_u32(w, c.lines.len() as u32);
    for line in &c.lines {
        w.push(u8::from(line.valid) | (u8::from(line.dirty) << 1));
        put_u32(w, line.tag);
        put_u64(w, line.lru);
    }
    put_cache_stats(w, &c.stats);
    put_u64(w, c.tick);
}

fn put_spm(w: &mut Vec<u8>, s: &SpmSnapshot) {
    put_u32(w, s.data.len() as u32);
    w.extend_from_slice(&s.data);
    put_u64(w, s.reads);
    put_u64(w, s.writes);
}

fn put_flit(w: &mut Vec<u8>, f: &FlitSnapshot) {
    w.push(f.dst.0);
    w.push(f.src.0);
    w.push(u8::from(f.is_head) | (u8::from(f.is_tail) << 1));
    put_u32(w, f.word);
    put_u64(w, f.msg_id);
    put_u32(w, f.msg_len);
    put_u64(w, f.injected_at);
    put_u64(w, f.ready_at);
}

fn put_flits(w: &mut Vec<u8>, flits: &[FlitSnapshot]) {
    put_u32(w, flits.len() as u32);
    for f in flits {
        put_flit(w, f);
    }
}

fn put_mesh(w: &mut Vec<u8>, m: &MeshSnapshot) {
    put_u32(w, m.routers.len() as u32);
    for r in &m.routers {
        for port in &r.inputs {
            put_flits(w, port);
        }
        for owner in &r.out_owner {
            match owner {
                None => w.push(0xFF),
                Some(p) => w.push(*p),
            }
        }
        w.extend_from_slice(&r.rr);
    }
    put_u32(w, m.inject.len() as u32);
    for tile in &m.inject {
        put_u32(w, tile.len() as u32);
        for packet in tile {
            put_flits(w, packet);
        }
    }
    put_u32(w, m.assembling.len() as u32);
    for tile in &m.assembling {
        put_u32(w, tile.len() as u32);
        for asm in tile {
            w.push(asm.src.0);
            put_u64(w, asm.msg_id);
            put_u32(w, asm.expected);
            put_u32_vec(w, &asm.words);
        }
    }
    put_u32(w, m.delivered.len() as u32);
    for tile in &m.delivered {
        put_u32(w, tile.len() as u32);
        for msg in tile {
            w.push(msg.src.0);
            put_u32_vec(w, &msg.words);
        }
    }
    for v in [
        m.stats.packets_sent,
        m.stats.packets_delivered,
        m.stats.flit_hops,
        m.stats.total_packet_latency,
    ] {
        put_u64(w, v);
    }
    put_u64(w, m.cycle);
    put_u64(w, m.next_msg_id);
    put_u32(w, m.link_down_until.len() as u32);
    for dirs in &m.link_down_until {
        for v in dirs {
            put_u64(w, *v);
        }
    }
    w.push(u8::from(m.any_link_faults));
    put_u64(w, m.stalled_ticks);
}

fn put_patchnet(w: &mut Vec<u8>, p: &PatchNetSnapshot) {
    put_u32_vec(w, &p.switches);
    put_u32(w, p.circuits.len() as u32);
    for c in &p.circuits {
        w.push(c.from.0);
        w.push(c.to.0);
        put_u32(w, c.tiles.len() as u32);
        for t in &c.tiles {
            w.push(t.0);
        }
        put_u32(w, c.hops);
    }
}

fn put_fault_runtime(w: &mut Vec<u8>, fr: &FaultRuntimeSnapshot) {
    put_u64(w, fr.plan.seed());
    w.push(u8::from(fr.plan.degrade()));
    put_u32(w, fr.plan.events().len() as u32);
    for ev in fr.plan.events() {
        put_u64(w, ev.cycle);
        match &ev.kind {
            FaultKind::PatchFail { tile, until } => {
                w.push(0);
                w.push(tile.0);
                put_opt_u64(w, *until);
            }
            FaultKind::SwitchFail { tile, until } => {
                w.push(1);
                w.push(tile.0);
                put_opt_u64(w, *until);
            }
            FaultKind::ConfigUpset { tile } => {
                w.push(2);
                w.push(tile.0);
            }
            FaultKind::MeshLinkFail { tile, dir, until } => {
                w.push(3);
                w.push(tile.0);
                w.push(dir.code() as u8);
                put_opt_u64(w, *until);
            }
        }
    }
    put_u64(w, fr.next);
    put_u64_vec(w, &fr.patch_down_until);
    put_u64_vec(w, &fr.switch_down_until);
    put_u64_vec(w, &fr.patch_mask_until);
    put_u64_vec(w, &fr.switch_mask_until);
    put_u32(w, fr.config_upset.len() as u32);
    for b in &fr.config_upset {
        w.push(u8::from(*b));
    }
    put_u32(w, fr.watchdog_tripped.len() as u32);
    for (tile, ci) in &fr.watchdog_tripped {
        w.push(*tile);
        w.extend_from_slice(&ci.to_le_bytes());
    }
    for v in [
        fr.stats.injected,
        fr.stats.demotions,
        fr.stats.watchdog_trips,
        fr.stats.scrubs,
        fr.stats.rollbacks,
    ] {
        put_u64(w, v);
    }
}

fn put_opt_u64(w: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => w.push(0),
        Some(x) => {
            w.push(1);
            put_u64(w, x);
        }
    }
}

// ---------------------------------------------------------------------
// Bounds-checked reader.

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Presence/boolean tag: strictly 0 or 1.
    fn tag(&mut self, what: &'static str) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt { what }),
        }
    }

    /// Reads a collection length and validates it against the remaining
    /// input (each element needs at least `min_elem` bytes), so corrupt
    /// lengths cannot trigger huge allocations.
    fn seq_len(&mut self, min_elem: usize, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(SnapshotError::Corrupt { what });
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

fn get_u64_vec(d: &mut Dec<'_>, what: &'static str) -> Result<Vec<u64>, SnapshotError> {
    let n = d.seq_len(8, what)?;
    (0..n).map(|_| d.u64()).collect()
}

fn get_u32_vec(d: &mut Dec<'_>, what: &'static str) -> Result<Vec<u32>, SnapshotError> {
    let n = d.seq_len(4, what)?;
    (0..n).map(|_| d.u32()).collect()
}

fn get_core(d: &mut Dec<'_>) -> Result<CoreSnapshot, SnapshotError> {
    let mut regs = [0u32; 32];
    for r in &mut regs {
        *r = d.u32()?;
    }
    let pc = d.u32()?;
    let state = match d.u8()? {
        0 => CoreState::Running,
        1 => CoreState::Halted,
        _ => return Err(SnapshotError::Corrupt { what: "core state" }),
    };
    let stats = get_core_stats(d)?;
    Ok(CoreSnapshot {
        regs,
        pc,
        state,
        stats,
    })
}

fn get_core_stats(d: &mut Dec<'_>) -> Result<CoreStats, SnapshotError> {
    Ok(CoreStats {
        cycles: d.u64()?,
        instructions: d.u64()?,
        alu_ops: d.u64()?,
        mul_ops: d.u64()?,
        mem_ops: d.u64()?,
        custom_ops: d.u64()?,
        fused_ops: d.u64()?,
        demoted_ops: d.u64()?,
        branches: d.u64()?,
        branches_taken: d.u64()?,
        fetch_stall_cycles: d.u64()?,
        mem_stall_cycles: d.u64()?,
        recv_wait_cycles: d.u64()?,
        words_sent: d.u64()?,
        words_received: d.u64()?,
    })
}

fn get_cache_stats(d: &mut Dec<'_>) -> Result<CacheStats, SnapshotError> {
    Ok(CacheStats {
        accesses: d.u64()?,
        hits: d.u64()?,
        misses: d.u64()?,
        writebacks: d.u64()?,
    })
}

fn get_tile_memory(d: &mut Dec<'_>) -> Result<TileMemorySnapshot, SnapshotError> {
    Ok(TileMemorySnapshot {
        dram: get_dram(d)?,
        icache: get_cache(d)?,
        dcache: get_cache(d)?,
        spm: get_spm(d)?,
    })
}

fn get_dram(d: &mut Dec<'_>) -> Result<DramSnapshot, SnapshotError> {
    let n = d.seq_len(4 + PAGE_SIZE, "dram page count")?;
    let mut pages = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = d.u32()?;
        let mut page = Box::new([0u8; PAGE_SIZE]);
        page.copy_from_slice(d.bytes(PAGE_SIZE)?);
        pages.push((idx, page));
    }
    Ok(DramSnapshot { pages })
}

fn get_cache(d: &mut Dec<'_>) -> Result<CacheSnapshot, SnapshotError> {
    let n = d.seq_len(13, "cache line count")?;
    let mut lines = Vec::with_capacity(n);
    for _ in 0..n {
        let flags = d.u8()?;
        if flags > 3 {
            return Err(SnapshotError::Corrupt {
                what: "cache line flags",
            });
        }
        lines.push(LineSnapshot {
            valid: flags & 1 != 0,
            dirty: flags & 2 != 0,
            tag: d.u32()?,
            lru: d.u64()?,
        });
    }
    Ok(CacheSnapshot {
        lines,
        stats: get_cache_stats(d)?,
        tick: d.u64()?,
    })
}

fn get_spm(d: &mut Dec<'_>) -> Result<SpmSnapshot, SnapshotError> {
    let n = d.seq_len(1, "spm size")?;
    let data: Box<[u8]> = d.bytes(n)?.into();
    Ok(SpmSnapshot {
        data,
        reads: d.u64()?,
        writes: d.u64()?,
    })
}

fn get_flit(d: &mut Dec<'_>) -> Result<FlitSnapshot, SnapshotError> {
    let dst = TileId(d.u8()?);
    let src = TileId(d.u8()?);
    let flags = d.u8()?;
    if flags > 3 {
        return Err(SnapshotError::Corrupt { what: "flit flags" });
    }
    Ok(FlitSnapshot {
        dst,
        src,
        is_head: flags & 1 != 0,
        is_tail: flags & 2 != 0,
        word: d.u32()?,
        msg_id: d.u64()?,
        msg_len: d.u32()?,
        injected_at: d.u64()?,
        ready_at: d.u64()?,
    })
}

fn get_flits(d: &mut Dec<'_>) -> Result<Vec<FlitSnapshot>, SnapshotError> {
    let n = d.seq_len(34, "flit count")?;
    (0..n).map(|_| get_flit(d)).collect()
}

fn get_mesh(d: &mut Dec<'_>) -> Result<MeshSnapshot, SnapshotError> {
    let n_routers = d.seq_len(1, "router count")?;
    let mut routers = Vec::with_capacity(n_routers);
    for _ in 0..n_routers {
        let mut router = RouterSnapshot::default();
        for port in &mut router.inputs {
            *port = get_flits(d)?;
        }
        for owner in &mut router.out_owner {
            *owner = match d.u8()? {
                0xFF => None,
                p => Some(p),
            };
        }
        let rr = d.bytes(router.rr.len())?;
        router.rr.copy_from_slice(rr);
        routers.push(router);
    }
    let n_inject = d.seq_len(4, "inject tile count")?;
    let mut inject = Vec::with_capacity(n_inject);
    for _ in 0..n_inject {
        let n_packets = d.seq_len(4, "inject packet count")?;
        let mut packets = Vec::with_capacity(n_packets);
        for _ in 0..n_packets {
            packets.push(get_flits(d)?);
        }
        inject.push(packets);
    }
    let n_asm_tiles = d.seq_len(4, "reassembly tile count")?;
    let mut assembling = Vec::with_capacity(n_asm_tiles);
    for _ in 0..n_asm_tiles {
        let n_asm = d.seq_len(17, "reassembly count")?;
        let mut tile = Vec::with_capacity(n_asm);
        for _ in 0..n_asm {
            tile.push(ReassemblySnapshot {
                src: TileId(d.u8()?),
                msg_id: d.u64()?,
                expected: d.u32()?,
                words: get_u32_vec(d, "reassembly words")?,
            });
        }
        assembling.push(tile);
    }
    let n_del_tiles = d.seq_len(4, "delivered tile count")?;
    let mut delivered = Vec::with_capacity(n_del_tiles);
    for _ in 0..n_del_tiles {
        let n_msgs = d.seq_len(5, "delivered message count")?;
        let mut tile = Vec::with_capacity(n_msgs);
        for _ in 0..n_msgs {
            tile.push(Message {
                src: TileId(d.u8()?),
                words: get_u32_vec(d, "message words")?,
            });
        }
        delivered.push(tile);
    }
    let stats = MeshStats {
        packets_sent: d.u64()?,
        packets_delivered: d.u64()?,
        flit_hops: d.u64()?,
        total_packet_latency: d.u64()?,
    };
    let cycle = d.u64()?;
    let next_msg_id = d.u64()?;
    let n_links = d.seq_len(32, "link fault count")?;
    let mut link_down_until = Vec::with_capacity(n_links);
    for _ in 0..n_links {
        let mut dirs = [0u64; 4];
        for v in &mut dirs {
            *v = d.u64()?;
        }
        link_down_until.push(dirs);
    }
    let any_link_faults = d.tag("any_link_faults")?;
    let stalled_ticks = d.u64()?;
    Ok(MeshSnapshot {
        routers,
        inject,
        assembling,
        delivered,
        stats,
        cycle,
        next_msg_id,
        link_down_until,
        any_link_faults,
        stalled_ticks,
    })
}

fn get_patchnet(d: &mut Dec<'_>) -> Result<PatchNetSnapshot, SnapshotError> {
    let switches = get_u32_vec(d, "switch config words")?;
    let n = d.seq_len(10, "circuit count")?;
    let mut circuits = Vec::with_capacity(n);
    for _ in 0..n {
        let from = TileId(d.u8()?);
        let to = TileId(d.u8()?);
        let n_tiles = d.seq_len(1, "circuit tile count")?;
        let tiles = d.bytes(n_tiles)?.iter().map(|b| TileId(*b)).collect();
        circuits.push(Circuit {
            from,
            to,
            tiles,
            hops: d.u32()?,
        });
    }
    Ok(PatchNetSnapshot { switches, circuits })
}

fn get_fault_runtime(d: &mut Dec<'_>) -> Result<FaultRuntimeSnapshot, SnapshotError> {
    let seed = d.u64()?;
    let degrade = d.tag("fault plan mode")?;
    let mut plan = FaultPlan::new(seed);
    if !degrade {
        plan = plan.strict();
    }
    let n_events = d.seq_len(10, "fault event count")?;
    for _ in 0..n_events {
        let cycle = d.u64()?;
        let kind = match d.u8()? {
            0 => FaultKind::PatchFail {
                tile: TileId(d.u8()?),
                until: get_opt_u64(d)?,
            },
            1 => FaultKind::SwitchFail {
                tile: TileId(d.u8()?),
                until: get_opt_u64(d)?,
            },
            2 => FaultKind::ConfigUpset {
                tile: TileId(d.u8()?),
            },
            3 => {
                let tile = TileId(d.u8()?);
                let dir = *PortDir::ALL
                    .get(d.u8()? as usize)
                    .ok_or(SnapshotError::Corrupt {
                        what: "link fault direction",
                    })?;
                FaultKind::MeshLinkFail {
                    tile,
                    dir,
                    until: get_opt_u64(d)?,
                }
            }
            _ => {
                return Err(SnapshotError::Corrupt {
                    what: "fault kind tag",
                })
            }
        };
        plan.push(cycle, kind);
    }
    let next = d.u64()?;
    let patch_down_until = get_u64_vec(d, "patch_down_until")?;
    let switch_down_until = get_u64_vec(d, "switch_down_until")?;
    let patch_mask_until = get_u64_vec(d, "patch_mask_until")?;
    let switch_mask_until = get_u64_vec(d, "switch_mask_until")?;
    let n_upsets = d.seq_len(1, "config upset count")?;
    let mut config_upset = Vec::with_capacity(n_upsets);
    for _ in 0..n_upsets {
        config_upset.push(d.tag("config upset flag")?);
    }
    let n_watchdog = d.seq_len(3, "watchdog entry count")?;
    let mut watchdog_tripped = Vec::with_capacity(n_watchdog);
    for _ in 0..n_watchdog {
        watchdog_tripped.push((d.u8()?, d.u16()?));
    }
    let stats = FaultStats {
        injected: d.u64()?,
        demotions: d.u64()?,
        watchdog_trips: d.u64()?,
        scrubs: d.u64()?,
        rollbacks: d.u64()?,
    };
    Ok(FaultRuntimeSnapshot {
        plan,
        next,
        patch_down_until,
        switch_down_until,
        patch_mask_until,
        switch_mask_until,
        config_upset,
        watchdog_tripped,
        stats,
    })
}

fn get_opt_u64(d: &mut Dec<'_>) -> Result<Option<u64>, SnapshotError> {
    Ok(match d.tag("optional u64")? {
        false => None,
        true => Some(d.u64()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> ChipSnapshot {
        use crate::{Chip, ChipConfig};
        let mut chip = Chip::new(ChipConfig::stitch_16());
        chip.checkpoint()
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = tiny_snapshot();
        let bytes = snap.encode();
        let back = ChipSnapshot::decode(&bytes).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = tiny_snapshot().encode();
        bytes[0] ^= 0xFF;
        assert_eq!(ChipSnapshot::decode(&bytes), Err(SnapshotError::BadMagic));
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut bytes = tiny_snapshot().encode();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            ChipSnapshot::decode(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn every_truncation_is_typed_never_panics() {
        let bytes = tiny_snapshot().encode();
        // Chop the snapshot at every prefix length; each must fail with a
        // typed error (mostly Truncated, occasionally Corrupt when a
        // length field is cut mid-value).
        for len in 0..bytes.len() {
            let err = ChipSnapshot::decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::Corrupt { .. }
                        | SnapshotError::BadMagic
                ),
                "prefix {len}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_typed() {
        let mut bytes = tiny_snapshot().encode();
        bytes.extend_from_slice(&[0, 1, 2]);
        assert_eq!(
            ChipSnapshot::decode(&bytes),
            Err(SnapshotError::TrailingBytes { extra: 3 })
        );
    }

    #[test]
    fn corrupt_length_cannot_cause_huge_allocation() {
        let bytes = tiny_snapshot().encode();
        // Overwrite the core-count length word with u32::MAX; decode must
        // reject it before allocating.
        let off = 8 + 4 + 2 + 8 * 4; // magic + version + topo + 4 u64 header fields
        let mut evil = bytes.clone();
        evil[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = ChipSnapshot::decode(&evil).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(
            SnapshotError::BadMagic.to_string(),
            "not a chip snapshot (bad magic)"
        );
        let e = SnapshotError::TopologyMismatch {
            expected: (4, 4),
            found: (2, 2),
        };
        assert_eq!(
            e.to_string(),
            "snapshot topology 2x2 does not match chip 4x4"
        );
    }
}
