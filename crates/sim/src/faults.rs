//! Runtime side of the fault subsystem: the mutable state the chip
//! threads through a run while replaying a [`FaultPlan`].
//!
//! The *plan* (which component breaks, when) lives in `stitch-fault`;
//! this module holds the *mechanism*: which patches and switches are
//! currently down, which configurations are awaiting a parity scrub, and
//! which fused bindings already paid their watchdog timeout. The
//! degradation ladder itself is implemented where detection happens —
//! `TilePlatform::exec_custom` in [`crate::chip`] for patch faults, the
//! mesh stall probe for link faults.
//!
//! The ladder's topmost rung — checkpoint rollback for *transient*
//! faults — also keeps its runtime state here: per-component mask
//! deadlines that make a rolled-back fault window read as healthy during
//! the replay, and the pending-mask queue a detection fills to ask the
//! chip for a rollback (serviced by `Chip` right after the tick).

use crate::snapshot::FaultRuntimeSnapshot;
use crate::TileId;
use std::collections::HashSet;
use stitch_fault::FaultPlan;

/// Cycles of one fused-handshake watchdog window.
pub const WATCHDOG_TIMEOUT_CYCLES: u32 = 8;

/// Bounded watchdog retries before a fused CI demotes to software.
pub const WATCHDOG_RETRIES: u32 = 3;

/// Cycle cost of re-scrubbing a patch configuration after a parity error
/// (the control word is re-driven from the custom instruction itself).
pub const CONFIG_SCRUB_CYCLES: u32 = 12;

/// Consecutive motionless mesh ticks treated as a hard NoC fault. Healthy
/// traffic never idles the switch fabric for more than the router
/// pipeline fill (~6 cycles); this threshold leaves orders of magnitude
/// of margin while still converting a wedged network into a typed error
/// long before a run budget expires.
pub const MESH_STALL_TICKS: u64 = 10_000;

/// Counters for fault handling during a run (diagnostics; deliberately
/// not part of [`crate::RunSummary`], whose equality pins architectural
/// behavior, not fault bookkeeping — though these too evolve identically
/// in the fast path and the reference engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault events applied so far.
    pub injected: u64,
    /// Custom-instruction activations executed via the software fallback.
    pub demotions: u64,
    /// Fused handshakes that timed out and paid the bounded retry cost.
    pub watchdog_trips: u64,
    /// Config-parity scrubs performed.
    pub scrubs: u64,
    /// Checkpoint rollbacks taken to replay past a transient fault.
    pub rollbacks: u64,
}

/// One component masked by a rollback: during the replay the component
/// reads healthy until the underlying transient fault's recovery cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingMask {
    /// Masks the inter-patch switch (`true`) or the patch datapath.
    pub switch: bool,
    /// Tile index of the masked component.
    pub tile: usize,
    /// First cycle at which the mask expires (the fault's recovery
    /// cycle — beyond it the component is genuinely healthy again).
    pub until: u64,
}

/// Mutable fault state for one run.
pub(crate) struct FaultRuntime {
    /// The installed plan (events sorted by cycle).
    pub plan: FaultPlan,
    /// Index of the next unapplied event.
    pub next: usize,
    /// Per tile: the patch is down while `cycle < patch_down_until`.
    pub patch_down_until: Vec<u64>,
    /// Per tile: the crossbar switch is down while `cycle < …`.
    pub switch_down_until: Vec<u64>,
    /// Per tile: rollback mask — while `cycle < patch_mask_until` the
    /// patch reads healthy even if down (replay of a rolled-back window).
    pub patch_mask_until: Vec<u64>,
    /// Per tile: rollback mask for the inter-patch switch.
    pub switch_mask_until: Vec<u64>,
    /// Per tile: a config upset awaits its parity scrub.
    pub config_upset: Vec<bool>,
    /// `(tile, ci)` pairs that already paid the watchdog timeout; later
    /// activations go straight to the software fallback.
    pub watchdog_tripped: HashSet<(u8, u16)>,
    /// Counters.
    pub stats: FaultStats,
    /// Maintained by the chip: true while a checkpoint and a rollback
    /// retry budget are both available. Detections only queue rollback
    /// requests while armed, so a queued request is always serviceable.
    pub rollback_armed: bool,
    /// Masks requested by detections during the current tick; drained by
    /// the chip's rollback service immediately after the tick.
    pub pending_masks: Vec<PendingMask>,
}

impl FaultRuntime {
    pub fn new(plan: FaultPlan, tiles: usize) -> Self {
        FaultRuntime {
            plan,
            next: 0,
            patch_down_until: vec![0; tiles],
            switch_down_until: vec![0; tiles],
            patch_mask_until: vec![0; tiles],
            switch_mask_until: vec![0; tiles],
            config_upset: vec![false; tiles],
            watchdog_tripped: HashSet::new(),
            stats: FaultStats::default(),
            rollback_armed: false,
            pending_masks: Vec::new(),
        }
    }

    /// Cycle of the next unapplied event, if any — the fast path never
    /// skips past it, so faults fire on the same cycle in both engines.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.plan.events().get(self.next).map(|e| e.cycle)
    }

    /// Whether `tile`'s patch datapath is down at `cycle`. A rollback
    /// mask overrides the fault: during a masked replay the patch reads
    /// healthy.
    pub fn patch_down(&self, tile: TileId, cycle: u64) -> bool {
        self.patch_down_until[tile.index()] > cycle && self.patch_mask_until[tile.index()] <= cycle
    }

    /// Whether `tile`'s inter-patch switch is down at `cycle` (mask-aware
    /// like [`FaultRuntime::patch_down`]).
    pub fn switch_down(&self, tile: TileId, cycle: u64) -> bool {
        self.switch_down_until[tile.index()] > cycle
            && self.switch_mask_until[tile.index()] <= cycle
    }

    /// Consumes a pending config upset on `tile`, returning the scrub
    /// penalty in cycles (0 when the configuration is clean). Detection
    /// happens on the next activation — parity is checked when the
    /// control word is driven — and the scrub restores the correct
    /// configuration from the instruction stream, so values are never
    /// affected.
    pub fn scrub(&mut self, tile: TileId) -> u32 {
        if std::mem::take(&mut self.config_upset[tile.index()]) {
            self.stats.scrubs += 1;
            CONFIG_SCRUB_CYCLES
        } else {
            0
        }
    }

    /// Queues a rollback for a transiently-down patch on `tile`. Returns
    /// false — leaving the caller to the demotion rungs — when rollback
    /// is not armed or the fault is permanent (masking a permanent fault
    /// would replay into the same wall forever).
    pub fn request_patch_rollback(&mut self, tile: TileId) -> bool {
        if !self.rollback_armed {
            return false;
        }
        let until = self.patch_down_until[tile.index()];
        if until == u64::MAX {
            return false;
        }
        self.pending_masks.push(PendingMask {
            switch: false,
            tile: tile.index(),
            until,
        });
        true
    }

    /// Queues a rollback for a severed fused circuit: every component
    /// blocking it (the partner patch and/or switches along the path)
    /// must be down *transiently*; a single permanent blocker makes the
    /// rollback pointless and the request is refused.
    pub fn request_circuit_rollback(
        &mut self,
        partner: TileId,
        path: &[TileId],
        cycle: u64,
    ) -> bool {
        if !self.rollback_armed {
            return false;
        }
        let before = self.pending_masks.len();
        if self.patch_down(partner, cycle) {
            let until = self.patch_down_until[partner.index()];
            if until == u64::MAX {
                self.pending_masks.truncate(before);
                return false;
            }
            self.pending_masks.push(PendingMask {
                switch: false,
                tile: partner.index(),
                until,
            });
        }
        for t in path {
            if self.switch_down(*t, cycle) {
                let until = self.switch_down_until[t.index()];
                if until == u64::MAX {
                    self.pending_masks.truncate(before);
                    return false;
                }
                self.pending_masks.push(PendingMask {
                    switch: true,
                    tile: t.index(),
                    until,
                });
            }
        }
        // No down component found means the circuit itself is missing
        // (defensive severed-path handling) — not a transient fault.
        if self.pending_masks.len() == before {
            return false;
        }
        true
    }

    /// Captures the runtime state (the transient `pending_masks` queue is
    /// always empty at checkpoint points — the chip services it right
    /// after every tick, before checkpointing).
    pub fn snapshot(&self) -> FaultRuntimeSnapshot {
        let mut watchdog: Vec<(u8, u16)> = self.watchdog_tripped.iter().copied().collect();
        watchdog.sort_unstable();
        FaultRuntimeSnapshot {
            plan: self.plan.clone(),
            next: self.next as u64,
            patch_down_until: self.patch_down_until.clone(),
            switch_down_until: self.switch_down_until.clone(),
            patch_mask_until: self.patch_mask_until.clone(),
            switch_mask_until: self.switch_mask_until.clone(),
            config_upset: self.config_upset.clone(),
            watchdog_tripped: watchdog,
            stats: self.stats,
        }
    }

    /// Rebuilds the runtime from a snapshot (lengths validated by the
    /// chip before this is called). `rollback_armed` is chip-managed and
    /// re-synced by the caller.
    pub fn from_snapshot(snap: &FaultRuntimeSnapshot) -> Self {
        FaultRuntime {
            plan: snap.plan.clone(),
            next: snap.next as usize,
            patch_down_until: snap.patch_down_until.clone(),
            switch_down_until: snap.switch_down_until.clone(),
            patch_mask_until: snap.patch_mask_until.clone(),
            switch_mask_until: snap.switch_mask_until.clone(),
            config_upset: snap.config_upset.clone(),
            watchdog_tripped: snap.watchdog_tripped.iter().copied().collect(),
            stats: snap.stats,
            rollback_armed: false,
            pending_masks: Vec::new(),
        }
    }
}
