//! Runtime side of the fault subsystem: the mutable state the chip
//! threads through a run while replaying a [`FaultPlan`].
//!
//! The *plan* (which component breaks, when) lives in `stitch-fault`;
//! this module holds the *mechanism*: which patches and switches are
//! currently down, which configurations are awaiting a parity scrub, and
//! which fused bindings already paid their watchdog timeout. The
//! degradation ladder itself is implemented where detection happens —
//! `TilePlatform::exec_custom` in [`crate::chip`] for patch faults, the
//! mesh stall probe for link faults.

use crate::TileId;
use std::collections::HashSet;
use stitch_fault::FaultPlan;

/// Cycles of one fused-handshake watchdog window.
pub const WATCHDOG_TIMEOUT_CYCLES: u32 = 8;

/// Bounded watchdog retries before a fused CI demotes to software.
pub const WATCHDOG_RETRIES: u32 = 3;

/// Cycle cost of re-scrubbing a patch configuration after a parity error
/// (the control word is re-driven from the custom instruction itself).
pub const CONFIG_SCRUB_CYCLES: u32 = 12;

/// Consecutive motionless mesh ticks treated as a hard NoC fault. Healthy
/// traffic never idles the switch fabric for more than the router
/// pipeline fill (~6 cycles); this threshold leaves orders of magnitude
/// of margin while still converting a wedged network into a typed error
/// long before a run budget expires.
pub const MESH_STALL_TICKS: u64 = 10_000;

/// Counters for fault handling during a run (diagnostics; deliberately
/// not part of [`crate::RunSummary`], whose equality pins architectural
/// behavior, not fault bookkeeping — though these too evolve identically
/// in the fast path and the reference engine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault events applied so far.
    pub injected: u64,
    /// Custom-instruction activations executed via the software fallback.
    pub demotions: u64,
    /// Fused handshakes that timed out and paid the bounded retry cost.
    pub watchdog_trips: u64,
    /// Config-parity scrubs performed.
    pub scrubs: u64,
}

/// Mutable fault state for one run.
pub(crate) struct FaultRuntime {
    /// The installed plan (events sorted by cycle).
    pub plan: FaultPlan,
    /// Index of the next unapplied event.
    pub next: usize,
    /// Per tile: the patch is down while `cycle < patch_down_until`.
    pub patch_down_until: Vec<u64>,
    /// Per tile: the crossbar switch is down while `cycle < …`.
    pub switch_down_until: Vec<u64>,
    /// Per tile: a config upset awaits its parity scrub.
    pub config_upset: Vec<bool>,
    /// `(tile, ci)` pairs that already paid the watchdog timeout; later
    /// activations go straight to the software fallback.
    pub watchdog_tripped: HashSet<(u8, u16)>,
    /// Counters.
    pub stats: FaultStats,
}

impl FaultRuntime {
    pub fn new(plan: FaultPlan, tiles: usize) -> Self {
        FaultRuntime {
            plan,
            next: 0,
            patch_down_until: vec![0; tiles],
            switch_down_until: vec![0; tiles],
            config_upset: vec![false; tiles],
            watchdog_tripped: HashSet::new(),
            stats: FaultStats::default(),
        }
    }

    /// Cycle of the next unapplied event, if any — the fast path never
    /// skips past it, so faults fire on the same cycle in both engines.
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.plan.events().get(self.next).map(|e| e.cycle)
    }

    /// Whether `tile`'s patch datapath is down at `cycle`.
    pub fn patch_down(&self, tile: TileId, cycle: u64) -> bool {
        self.patch_down_until[tile.index()] > cycle
    }

    /// Whether `tile`'s inter-patch switch is down at `cycle`.
    pub fn switch_down(&self, tile: TileId, cycle: u64) -> bool {
        self.switch_down_until[tile.index()] > cycle
    }

    /// Consumes a pending config upset on `tile`, returning the scrub
    /// penalty in cycles (0 when the configuration is clean). Detection
    /// happens on the next activation — parity is checked when the
    /// control word is driven — and the scrub restores the correct
    /// configuration from the instruction stream, so values are never
    /// affected.
    pub fn scrub(&mut self, tile: TileId) -> u32 {
        if std::mem::take(&mut self.config_upset[tile.index()]) {
            self.stats.scrubs += 1;
            CONFIG_SCRUB_CYCLES
        } else {
            0
        }
    }
}
