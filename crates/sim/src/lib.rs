//! # The Stitch chip simulator
//!
//! Cycle-level model of the 16-tile prototype (paper Fig 2): each tile has
//! an in-order core (`stitch-cpu`), private caches + scratchpad
//! (`stitch-mem`), an optional polymorphic patch, and a NIC on the
//! buffered inter-core mesh; the patches are interconnected by the
//! compiler-scheduled bufferless network (`stitch-noc`).
//!
//! The main type is [`Chip`]: load one program per tile (with its
//! custom-instruction [`CiBinding`]s produced by the compiler/stitcher),
//! reserve inter-patch circuits, then [`Chip::run`] until every core
//! halts. The returned [`RunSummary`] carries per-tile and chip-level
//! statistics consumed by the power model and the benchmark harness.
//!
//! ```
//! use stitch_sim::{Chip, ChipConfig};
//! use stitch_isa::{ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut chip = Chip::new(ChipConfig::stitch_16());
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::R1, 7);
//! b.li(Reg::R2, 0x1000);
//! b.sw(Reg::R1, Reg::R2, 0);
//! b.halt();
//! chip.load_program(stitch_noc::TileId(0), &b.build()?)?;
//! let summary = chip.run(1_000_000)?;
//! assert!(summary.cycles > 0);
//! assert_eq!(chip.peek_u32(stitch_noc::TileId(0), 0x1000), 7);
//! # Ok(())
//! # }
//! ```

pub mod chip;
pub mod faults;
pub mod rng;
pub mod snapshot;
pub mod summary;

pub use chip::{
    Blocked, BlockedOp, BudgetResource, Chip, CiBinding, FaultedKind, RunBudget, SimError,
    TranslationStats,
};
pub use faults::FaultStats;
pub use rng::SimRng;
pub use snapshot::{ChipSnapshot, FaultRuntimeSnapshot, SnapshotError};
pub use summary::{RunSummary, TileSummary};

pub use stitch_fault::{FaultEvent, FaultKind, FaultPlan, FaultSpace};
pub use stitch_noc::{TileId, Topology};
pub use stitch_trace::{
    to_chrome_trace, EventKind, EventMask, JsonValue, TileWindow, TraceCapture, TraceConfig,
    TraceEvent, TraceWindows, Tracer, WindowMetrics, NO_PARTNER,
};

use stitch_isa::custom::PatchClass;
use stitch_mem::TileMemoryConfig;

/// Clock frequency of the prototype in Hz (paper: 200 MHz).
pub const CLOCK_HZ: u64 = 200_000_000;

/// Architecture variants evaluated in the paper (§VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// 16-core message-passing chip without any ISE acceleration; larger
    /// 8 KB D-cache instead of an SPM.
    Baseline,
    /// One conventional LOCUS-style SFU per core (no load/store inside
    /// custom instructions, no fusion).
    Locus,
    /// Stitch patches, local use only (no fusion).
    StitchNoFusion,
    /// Full Stitch: heterogeneous patches plus fusion over the
    /// compiler-scheduled NoC.
    Stitch,
}

impl Arch {
    /// All four variants, in the paper's presentation order.
    pub const ALL: [Arch; 4] = [
        Arch::Baseline,
        Arch::Locus,
        Arch::StitchNoFusion,
        Arch::Stitch,
    ];

    /// Display name used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Arch::Baseline => "baseline",
            Arch::Locus => "LOCUS",
            Arch::StitchNoFusion => "Stitch w/o fusion",
            Arch::Stitch => "Stitch",
        }
    }

    /// Whether fused (two-patch) custom instructions are permitted.
    #[must_use]
    pub fn allows_fusion(self) -> bool {
        self == Arch::Stitch
    }

    /// Whether custom instructions may contain load/store (T) operations.
    #[must_use]
    pub fn allows_memory_ops(self) -> bool {
        matches!(self, Arch::Stitch | Arch::StitchNoFusion)
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Static configuration of a chip instance.
#[derive(Debug, Clone)]
pub struct ChipConfig {
    /// Mesh geometry.
    pub topo: Topology,
    /// Per-tile memory geometry.
    pub tile_mem: TileMemoryConfig,
    /// Patch class per tile (`None` = no accelerator).
    pub patches: Vec<Option<PatchClass>>,
}

impl ChipConfig {
    /// The paper's heterogeneous 16-tile layout: 8 `{AT-MA}`,
    /// 4 `{AT-AS}`, 4 `{AT-SA}` interleaved so that every class is
    /// reachable within a short fused path from anywhere (Fig 2).
    #[must_use]
    pub fn stitch_16() -> Self {
        use PatchClass::{AtAs, AtMa, AtSa};
        let layout = [
            AtMa, AtAs, AtMa, AtSa, //
            AtAs, AtMa, AtSa, AtMa, //
            AtMa, AtSa, AtMa, AtAs, //
            AtSa, AtMa, AtAs, AtMa,
        ];
        ChipConfig {
            topo: Topology::stitch_4x4(),
            tile_mem: TileMemoryConfig::stitch(),
            patches: layout.into_iter().map(Some).collect(),
        }
    }

    /// Baseline 16-tile chip: no patches, 8 KB D-cache.
    #[must_use]
    pub fn baseline_16() -> Self {
        ChipConfig {
            topo: Topology::stitch_4x4(),
            tile_mem: TileMemoryConfig::baseline(),
            patches: vec![None; 16],
        }
    }

    /// LOCUS 16-tile chip: one identical SFU per core, baseline memory
    /// (the SFU has no LMAU, so the D-cache stays at 8 KB).
    #[must_use]
    pub fn locus_16() -> Self {
        ChipConfig {
            topo: Topology::stitch_4x4(),
            tile_mem: TileMemoryConfig::baseline(),
            patches: vec![Some(PatchClass::LocusSfu); 16],
        }
    }

    /// Configuration for an architecture variant.
    #[must_use]
    pub fn for_arch(arch: Arch) -> Self {
        match arch {
            Arch::Baseline => Self::baseline_16(),
            Arch::Locus => Self::locus_16(),
            Arch::StitchNoFusion | Arch::Stitch => Self::stitch_16(),
        }
    }

    /// Tiles whose patch is of `class`.
    #[must_use]
    pub fn tiles_with(&self, class: PatchClass) -> Vec<TileId> {
        self.patches
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Some(class))
            .map(|(i, _)| TileId(i as u8))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_patch_mix() {
        let cfg = ChipConfig::stitch_16();
        assert_eq!(cfg.tiles_with(PatchClass::AtMa).len(), 8);
        assert_eq!(cfg.tiles_with(PatchClass::AtAs).len(), 4);
        assert_eq!(cfg.tiles_with(PatchClass::AtSa).len(), 4);
    }

    #[test]
    fn arch_capabilities() {
        assert!(!Arch::Baseline.allows_fusion());
        assert!(!Arch::Locus.allows_memory_ops());
        assert!(!Arch::StitchNoFusion.allows_fusion());
        assert!(Arch::StitchNoFusion.allows_memory_ops());
        assert!(Arch::Stitch.allows_fusion());
        assert_eq!(Arch::Stitch.name(), "Stitch");
    }

    #[test]
    fn baseline_has_bigger_dcache() {
        let b = ChipConfig::baseline_16();
        assert_eq!(b.tile_mem.dcache.size_bytes, 8 * 1024);
        assert!(!b.tile_mem.has_spm);
        let s = ChipConfig::stitch_16();
        assert_eq!(s.tile_mem.dcache.size_bytes, 4 * 1024);
        assert!(s.tile_mem.has_spm);
    }
}
