//! Run statistics returned by the chip simulator.

use crate::{TileId, CLOCK_HZ};
use stitch_cpu::CoreStats;
use stitch_mem::CacheStats;
use stitch_trace::TraceWindows;

/// Per-tile statistics after a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TileSummary {
    /// Core counters.
    pub core: CoreStats,
    /// Instruction-cache counters.
    pub icache: CacheStats,
    /// Data-cache counters.
    pub dcache: CacheStats,
    /// SPM `(reads, writes)`.
    pub spm: (u64, u64),
    /// Times this tile's patch executed (locally issued or as the remote
    /// half of a fused instruction).
    pub patch_activations: u64,
}

/// Chip-level statistics of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Wall-clock cycles until every core halted.
    pub cycles: u64,
    /// Per-tile breakdown.
    pub tiles: Vec<TileSummary>,
    /// Inter-core mesh statistics.
    pub mesh: stitch_noc::MeshStats,
    /// Number of reserved inter-patch circuits at run time.
    pub circuits: usize,
    /// Windowed per-tile utilization and link-heatmap metrics, present
    /// when the run was traced with windowed collection enabled.
    pub windows: Option<TraceWindows>,
}

impl RunSummary {
    /// Total committed instructions across the chip.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.tiles.iter().map(|t| t.core.instructions).sum()
    }

    /// Total custom instructions executed.
    #[must_use]
    pub fn total_custom(&self) -> u64 {
        self.tiles.iter().map(|t| t.core.custom_ops).sum()
    }

    /// Total fused custom instructions executed.
    #[must_use]
    pub fn total_fused(&self) -> u64 {
        self.tiles.iter().map(|t| t.core.fused_ops).sum()
    }

    /// Total custom instructions that ran (fully or partly) in the
    /// software fallback because of the degradation ladder.
    #[must_use]
    pub fn total_demoted(&self) -> u64 {
        self.tiles.iter().map(|t| t.core.demoted_ops).sum()
    }

    /// Merged core counters for the whole chip.
    #[must_use]
    pub fn merged_core(&self) -> CoreStats {
        let mut acc = CoreStats::default();
        for t in &self.tiles {
            acc.merge(&t.core);
        }
        acc
    }

    /// Runtime in seconds at the 200 MHz clock.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / CLOCK_HZ as f64
    }

    /// Runtime in milliseconds at the 200 MHz clock.
    #[must_use]
    pub fn millis(&self) -> f64 {
        self.seconds() * 1e3
    }

    /// The busiest tile (most core cycles) — the pipeline bottleneck.
    /// Ties break toward the lowest tile id so reports are stable.
    #[must_use]
    pub fn bottleneck_tile(&self) -> Option<TileId> {
        self.tiles
            .iter()
            .enumerate()
            // `max_by_key` keeps the *last* maximum, so rank equal cycle
            // counts by descending index to land on the lowest tile id.
            .max_by_key(|(i, t)| (t.core.cycles, std::cmp::Reverse(*i)))
            .map(|(i, _)| TileId(i as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let mut s = RunSummary::default();
        s.tiles.push(TileSummary {
            core: CoreStats {
                instructions: 10,
                custom_ops: 2,
                fused_ops: 1,
                demoted_ops: 3,
                ..Default::default()
            },
            ..Default::default()
        });
        s.tiles.push(TileSummary {
            core: CoreStats {
                instructions: 5,
                cycles: 99,
                demoted_ops: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        assert_eq!(s.total_instructions(), 15);
        assert_eq!(s.total_custom(), 2);
        assert_eq!(s.total_fused(), 1);
        assert_eq!(s.total_demoted(), 4);
        assert_eq!(s.bottleneck_tile(), Some(TileId(1)));
        assert_eq!(s.merged_core().instructions, 15);
    }

    #[test]
    fn bottleneck_tie_breaks_to_lowest_tile() {
        let mut s = RunSummary::default();
        for cycles in [50, 99, 99, 7] {
            s.tiles.push(TileSummary {
                core: CoreStats {
                    cycles,
                    ..Default::default()
                },
                ..Default::default()
            });
        }
        // Tiles 1 and 2 tie at 99 cycles: report the lowest id, not the
        // last maximum that `max_by_key` alone would return.
        assert_eq!(s.bottleneck_tile(), Some(TileId(1)));
        // An all-zero chip reports tile 0, deterministically.
        let z = RunSummary {
            tiles: vec![TileSummary::default(); 3],
            ..Default::default()
        };
        assert_eq!(z.bottleneck_tile(), Some(TileId(0)));
    }

    #[test]
    fn time_conversion() {
        let s = RunSummary {
            cycles: CLOCK_HZ,
            ..Default::default()
        };
        assert!((s.seconds() - 1.0).abs() < 1e-12);
        assert!((s.millis() - 1000.0).abs() < 1e-9);
    }
}
