//! Deterministic PRNG, re-exported for backwards compatibility.
//!
//! The generator moved to `stitch-fault` (which the simulator depends
//! on, never the reverse) so that fault plans, tests, and benchmarks all
//! draw from a single implementation. Existing `stitch_sim::SimRng` /
//! `stitch_sim::rng::SimRng` paths keep working through this re-export.

pub use stitch_fault::rng::SimRng;
