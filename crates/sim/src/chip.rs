//! The 16-tile chip: cores, memories, patches and both networks.

use crate::faults::{
    FaultRuntime, FaultStats, PendingMask, MESH_STALL_TICKS, WATCHDOG_RETRIES,
    WATCHDOG_TIMEOUT_CYCLES,
};
use crate::snapshot::{ChipSnapshot, SnapshotError};
use crate::summary::{RunSummary, TileSummary};
use crate::{ChipConfig, TileId};
use std::collections::HashMap;
use std::fmt;
use stitch_cpu::{
    Core, CoreState, CpuError, CustomOutcome, LaneBank, LaneHost, PatchFaultKind, Platform,
    StepOutcome, TransCache, WindowParams, MUL_LATENCY,
};
use stitch_fault::{FaultKind, FaultPlan};
use stitch_isa::custom::CiId;
use stitch_isa::instr::Width;
use stitch_isa::memmap;
use stitch_isa::program::Program;
use stitch_mem::{TileMemory, HIT_LATENCY};
use stitch_noc::mesh::{Mesh, MeshConfig};
use stitch_noc::{PatchNet, PatchNetError};
use stitch_patch::{
    eval_fused, eval_single, fused_path_legal, software_cycles, ControlWord, SpmPort,
};
use stitch_trace::{TraceCapture, TraceConfig, TraceEvent, Tracer, NO_PARTNER};

/// Where a custom instruction executes, as decided by the stitcher.
#[derive(Debug, Clone, PartialEq)]
pub enum CiBinding {
    /// A single patch on the issuing tile.
    Single {
        /// Decoded control word (class must match the tile's patch).
        control: ControlWord,
    },
    /// A fused pair: the issuing tile's patch plus a remote patch reached
    /// through a reserved inter-patch circuit.
    Fused {
        /// Control word of the local (first) patch.
        first: ControlWord,
        /// The remote tile providing the second patch.
        partner: TileId,
        /// Control word of the remote (second) patch.
        second: ControlWord,
    },
}

/// Simulator errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A core faulted.
    Cpu {
        /// Faulting tile.
        tile: TileId,
        /// Underlying error.
        error: CpuError,
    },
    /// `max_cycles` elapsed before every core halted.
    Timeout {
        /// The cycle budget that was exhausted.
        max_cycles: u64,
    },
    /// Every running core is blocked in `recv` with no traffic in flight.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// The blocked tiles and what each is waiting for.
        waiting: Vec<Blocked>,
    },
    /// A custom-instruction binding is inconsistent with the chip.
    BadBinding {
        /// Tile being loaded.
        tile: TileId,
        /// Explanation.
        reason: String,
    },
    /// Inter-patch network error (reservation conflicts etc.).
    PatchNet(PatchNetError),
    /// An injected hardware fault was detected and the active
    /// [`FaultPlan`] forbids graceful degradation (strict mode), or the
    /// mesh was wedged by link faults.
    Faulted {
        /// Tile where the fault was detected.
        tile: TileId,
        /// Cycle of detection.
        cycle: u64,
        /// What was found broken.
        kind: FaultedKind,
    },
    /// A runtime self-check failed (see [`Chip::set_paranoid`]): the
    /// simulated hardware reached a state its own conservation laws
    /// forbid — a simulator bug, not a modelled fault.
    InvariantViolation {
        /// Which component's invariant broke (`"mesh"`, `"patchnet"`).
        component: &'static str,
        /// Cycle at which the check failed.
        cycle: u64,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// A hard cap installed via [`Chip::set_budget`] was exceeded. This
    /// is the sandbox verdict for untrusted guest programs: the run is
    /// cut off with a typed error instead of a wall-clock kill, and
    /// both engines report the identical `at_cycle`.
    BudgetExhausted {
        /// The resource axis whose cap was hit.
        resource: BudgetResource,
        /// The installed cap (a count of the resource's unit).
        limit: u64,
        /// Simulation cycle at which the excess was detected.
        at_cycle: u64,
    },
    /// A host/loader operation named a tile that does not exist on this
    /// chip's topology.
    UnknownTile {
        /// The out-of-range tile.
        tile: TileId,
        /// Number of tiles the chip actually has.
        tiles: usize,
    },
}

/// Resource axis of a [`RunBudget`] cap (see
/// [`SimError::BudgetExhausted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// Simulated cycles elapsed in the current `run`.
    Cycles,
    /// DRAM pages materialized across all tiles (the fixed-size SPMs
    /// never grow, so resident DRAM pages are the chip's only elastic
    /// memory).
    MemoryPages,
    /// Total NoC packets injected over the chip's lifetime.
    Messages,
    /// NoC packets in flight (injected but not yet delivered).
    InFlightMessages,
    /// Trace events emitted by the chip's tracer.
    TraceEvents,
    /// Encoded size of the periodic rollback checkpoint, in bytes
    /// (checked at every checkpoint refresh).
    SnapshotBytes,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetResource::Cycles => write!(f, "sim cycles"),
            BudgetResource::MemoryPages => write!(f, "resident memory pages"),
            BudgetResource::Messages => write!(f, "NoC messages"),
            BudgetResource::InFlightMessages => write!(f, "in-flight NoC messages"),
            BudgetResource::TraceEvents => write!(f, "trace events"),
            BudgetResource::SnapshotBytes => write!(f, "snapshot bytes"),
        }
    }
}

/// Hard resource caps for a simulation run (see [`Chip::set_budget`]).
///
/// `None` on an axis means unlimited; the default budget is unlimited
/// on every axis and adds a single predicted-taken branch per tick.
/// Every cap is inclusive: a run may consume exactly `limit` units, and
/// fails with [`SimError::BudgetExhausted`] on the first tick that ends
/// with the count above it.
///
/// Enforcement is engine-identical by construction: every counted
/// resource mutates only inside [`Chip::tick`] (the fast path's cycle
/// skips execute no instructions and move no flits, and the translated
/// engine is switched off while a memory-page cap is installed because
/// windows execute stores inline), so the post-tick check fires at the
/// same cycle in [`Chip::run`] and [`Chip::run_reference`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Cap on simulated cycles per `run` call.
    pub cycles: Option<u64>,
    /// Cap on DRAM pages resident across all tiles.
    pub memory_pages: Option<u64>,
    /// Cap on total NoC packets injected (lifetime counter).
    pub messages: Option<u64>,
    /// Cap on NoC packets simultaneously in flight.
    pub in_flight_messages: Option<u64>,
    /// Cap on trace events emitted.
    pub trace_events: Option<u64>,
    /// Cap on the encoded size of the periodic rollback checkpoint.
    pub snapshot_bytes: Option<u64>,
}

impl RunBudget {
    /// No caps on any axis (the default).
    #[must_use]
    pub const fn unlimited() -> Self {
        RunBudget {
            cycles: None,
            memory_pages: None,
            messages: None,
            in_flight_messages: None,
            trace_events: None,
            snapshot_bytes: None,
        }
    }

    /// Whether every axis is uncapped.
    #[must_use]
    pub const fn is_unlimited(&self) -> bool {
        self.cycles.is_none() && self.no_post_tick_caps() && self.snapshot_bytes.is_none()
    }

    /// Whether none of the axes checked after each tick is capped
    /// (everything but `cycles`, which the run loop checks at its top,
    /// and `snapshot_bytes`, checked at checkpoint refreshes).
    #[must_use]
    const fn no_post_tick_caps(&self) -> bool {
        self.memory_pages.is_none()
            && self.messages.is_none()
            && self.in_flight_messages.is_none()
            && self.trace_events.is_none()
    }
}

/// One blocked tile in a [`SimError::Deadlock`] report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocked {
    /// The blocked tile.
    pub tile: TileId,
    /// The message operation it is parked in.
    pub op: BlockedOp,
}

/// The blocking operation of a deadlocked tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOp {
    /// Parked in `recv`, waiting for a message from `from`.
    Recv {
        /// Peer tile the receive is waiting on.
        from: TileId,
    },
    /// Parked in `send` toward `to`. The current NIC model has unbounded
    /// injection queues, so sends never block today; the variant keeps
    /// the report format complete for bounded-queue NIC models.
    Send {
        /// Peer tile the send is addressed to.
        to: TileId,
    },
}

impl fmt::Display for Blocked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            BlockedOp::Recv { from } => write!(f, "{} blocked in recv from {from}", self.tile),
            BlockedOp::Send { to } => write!(f, "{} blocked in send to {to}", self.tile),
        }
    }
}

/// What a [`SimError::Faulted`] run found broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultedKind {
    /// A patch datapath is dead (strict mode forbids demotion).
    PatchDead,
    /// A fused circuit is severed (strict mode forbids demotion).
    CircuitDead,
    /// The inter-core mesh made no progress for `MESH_STALL_TICKS` ticks
    /// while traffic was in flight — link faults isolated a router.
    MeshStall,
}

impl From<PatchFaultKind> for FaultedKind {
    fn from(k: PatchFaultKind) -> Self {
        match k {
            PatchFaultKind::PatchDead => FaultedKind::PatchDead,
            PatchFaultKind::CircuitDead => FaultedKind::CircuitDead,
        }
    }
}

impl fmt::Display for FaultedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultedKind::PatchDead => write!(f, "patch datapath dead"),
            FaultedKind::CircuitDead => write!(f, "fused circuit severed"),
            FaultedKind::MeshStall => write!(f, "mesh wedged by link faults"),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Cpu { tile, error } => write!(f, "{tile}: {error}"),
            SimError::Timeout { max_cycles } => {
                write!(f, "simulation exceeded {max_cycles} cycles")
            }
            SimError::Deadlock { cycle, waiting } => {
                write!(f, "deadlock at cycle {cycle};")?;
                for (i, b) in waiting.iter().enumerate() {
                    write!(f, "{} {b}", if i == 0 { "" } else { "," })?;
                }
                Ok(())
            }
            SimError::BadBinding { tile, reason } => write!(f, "bad binding on {tile}: {reason}"),
            SimError::PatchNet(e) => write!(f, "inter-patch NoC: {e}"),
            SimError::Faulted { tile, cycle, kind } => {
                write!(f, "{tile} faulted at cycle {cycle}: {kind}")
            }
            SimError::InvariantViolation {
                component,
                cycle,
                detail,
            } => {
                write!(
                    f,
                    "{component} invariant violated at cycle {cycle}: {detail}"
                )
            }
            SimError::BudgetExhausted {
                resource,
                limit,
                at_cycle,
            } => {
                write!(
                    f,
                    "budget exhausted at cycle {at_cycle}: {resource} cap {limit}"
                )
            }
            SimError::UnknownTile { tile, tiles } => {
                write!(f, "{tile} outside the {tiles}-tile topology")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<PatchNetError> for SimError {
    fn from(e: PatchNetError) -> Self {
        SimError::PatchNet(e)
    }
}

/// Scratchpad adapter handing the patch LMAU a tile's SPM.
struct SpmAdapter<'a>(&'a mut TileMemory);

impl SpmPort for SpmAdapter<'_> {
    fn load(&mut self, offset: u32) -> u32 {
        self.0.spm_lmau_load(offset)
    }

    fn store(&mut self, offset: u32, value: u32) {
        self.0.spm_lmau_store(offset, value);
    }
}

/// Per-core view of the chip, implementing the CPU's [`Platform`].
struct TilePlatform<'a> {
    tile: TileId,
    cycle: u64,
    mem: &'a mut TileMemory,
    /// Sorted `(ci, binding)` pairs — tables hold a handful of entries,
    /// so a linear scan beats hashing on every custom instruction.
    bindings: &'a [(u16, CiBinding)],
    mesh: &'a mut Mesh,
    patchnet: &'a mut PatchNet,
    activations: &'a mut [u64],
    xbar_errors: &'a mut u64,
    /// Set when a store reconfigures a crossbar this cycle, so the chip
    /// re-validates circuit legality right after the tick.
    xbar_reconfigured: &'a mut bool,
    faults: Option<&'a mut FaultRuntime>,
    tracer: &'a mut Tracer,
}

/// How a fused custom instruction executes under the active fault state.
enum FusedMode {
    /// Both patches and the circuit are live.
    Healthy,
    /// Local first stage on the live patch; the severed remote stage is
    /// emulated in software.
    LocalOnly,
    /// Whole instruction in software (the local patch is dead).
    Software,
}

impl TilePlatform<'_> {
    /// Reports a cache access that paid more than the hit latency. The
    /// fast path's skipped windows only ever replay icache *hits*
    /// (repeated-poll fetches), so miss events stay engine-identical.
    #[inline]
    fn note_miss(&mut self, icache: bool, latency: u32) {
        if latency > HIT_LATENCY {
            let (cycle, tile) = (self.cycle, self.tile.0);
            self.tracer.emit(|| TraceEvent::CacheMiss {
                cycle,
                tile,
                icache,
                penalty: latency - HIT_LATENCY,
            });
        }
    }
}

impl Platform for TilePlatform<'_> {
    fn fetch(&mut self, byte_addr: u32) -> u32 {
        let latency = self.mem.fetch(byte_addr);
        self.note_miss(true, latency);
        latency
    }

    fn load(&mut self, addr: u32, w: Width) -> (u32, u32) {
        let r = self.mem.load(addr, w);
        self.note_miss(false, r.latency);
        (r.value, r.latency)
    }

    fn store(&mut self, addr: u32, value: u32, w: Width) -> u32 {
        let r = self.mem.store(addr, value, w);
        self.note_miss(false, r.latency);
        if let Some((index, word)) = r.xbar_write {
            let target = TileId(index as u8);
            if index as usize >= self.patchnet.topology().tiles()
                || self.patchnet.write_config_register(target, word).is_err()
            {
                *self.xbar_errors += 1;
            } else {
                *self.xbar_reconfigured = true;
            }
        }
        r.latency
    }

    fn exec_custom(&mut self, ci: CiId, inputs: [u32; 4]) -> Result<CustomOutcome, CpuError> {
        let binding = self
            .bindings
            .iter()
            .find_map(|(id, b)| (*id == ci.0).then_some(b))
            .ok_or(CpuError::UnboundCustom(ci))?;
        match binding {
            CiBinding::Single { control } => {
                let mut extra = 0;
                let mut demoted = false;
                let (cycle, tile) = (self.cycle, self.tile.0);
                if let Some(f) = self.faults.as_deref_mut() {
                    let scrubbed = f.scrub(self.tile);
                    if scrubbed > 0 {
                        self.tracer.emit(|| TraceEvent::Scrub { cycle, tile });
                    }
                    extra += scrubbed;
                    if f.patch_down(self.tile, self.cycle) {
                        if !f.plan.degrade() {
                            return Err(CpuError::PatchFaulted {
                                ci,
                                kind: PatchFaultKind::PatchDead,
                            });
                        }
                        // Topmost ladder rung: for a *transient* fault
                        // with a checkpoint available, ask the chip to
                        // roll back and replay with the window masked.
                        // This tick's effects are then discarded by the
                        // restore, so the healthy path below is fine.
                        if !f.request_patch_rollback(self.tile) {
                            f.stats.demotions += 1;
                            demoted = true;
                            self.tracer.emit(|| TraceEvent::Demote {
                                cycle,
                                tile,
                                to_software: true,
                            });
                        }
                    }
                }
                // The software fallback runs the same dataflow through
                // the same evaluator, so values and SPM effects stay
                // bit-identical; only the cycle charge changes.
                let out = eval_single(control, inputs, &mut SpmAdapter(self.mem));
                if demoted {
                    return Ok(CustomOutcome {
                        out,
                        fused: false,
                        cycles: software_cycles(control, MUL_LATENCY) + extra,
                        demoted: true,
                    });
                }
                self.activations[self.tile.index()] += 1;
                self.tracer.emit(|| TraceEvent::PatchActivate {
                    cycle,
                    tile,
                    partner: NO_PARTNER,
                    fused: false,
                });
                Ok(CustomOutcome {
                    out,
                    fused: false,
                    cycles: 1 + extra,
                    demoted: false,
                })
            }
            CiBinding::Fused {
                first,
                partner,
                second,
            } => {
                let mut extra = 0;
                let mut mode = FusedMode::Healthy;
                let (cycle, tile) = (self.cycle, self.tile.0);
                if let Some(f) = self.faults.as_deref_mut() {
                    let scrubbed_local = f.scrub(self.tile);
                    if scrubbed_local > 0 {
                        self.tracer.emit(|| TraceEvent::Scrub { cycle, tile });
                    }
                    let scrubbed_remote = f.scrub(*partner);
                    if scrubbed_remote > 0 {
                        let remote = partner.0;
                        self.tracer.emit(|| TraceEvent::Scrub {
                            cycle,
                            tile: remote,
                        });
                    }
                    extra += scrubbed_local + scrubbed_remote;
                    if f.patch_down(self.tile, self.cycle) {
                        if !f.plan.degrade() {
                            return Err(CpuError::PatchFaulted {
                                ci,
                                kind: PatchFaultKind::PatchDead,
                            });
                        }
                        if !f.request_patch_rollback(self.tile) {
                            f.stats.demotions += 1;
                            mode = FusedMode::Software;
                            self.tracer.emit(|| TraceEvent::Demote {
                                cycle,
                                tile,
                                to_software: true,
                            });
                        }
                    } else {
                        let circuit_dead = f.patch_down(*partner, self.cycle)
                            || match self.patchnet.circuit(self.tile, *partner) {
                                Some(c) => c.tiles.iter().any(|t| f.switch_down(*t, self.cycle)),
                                // Bindings are validated at load time, so
                                // the circuit exists; treat absence as
                                // severed, defensively.
                                None => true,
                            };
                        if circuit_dead {
                            if !f.plan.degrade() {
                                return Err(CpuError::PatchFaulted {
                                    ci,
                                    kind: PatchFaultKind::CircuitDead,
                                });
                            }
                            // Topmost rung: if every blocker is transient
                            // and a checkpoint is armed, roll back instead
                            // of demoting (this tick is then discarded).
                            let rolled = match self.patchnet.circuit(self.tile, *partner) {
                                Some(c) => {
                                    f.request_circuit_rollback(*partner, &c.tiles, self.cycle)
                                }
                                None => false,
                            };
                            if !rolled {
                                // The fused handshake times out. The first
                                // detection per (tile, CI) pays the bounded
                                // watchdog retries; the demotion is then
                                // remembered and later activations go
                                // straight to the fallback.
                                if f.watchdog_tripped.insert((self.tile.0, ci.0)) {
                                    f.stats.watchdog_trips += 1;
                                    extra += WATCHDOG_RETRIES * WATCHDOG_TIMEOUT_CYCLES;
                                    self.tracer
                                        .emit(|| TraceEvent::WatchdogTrip { cycle, tile });
                                }
                                f.stats.demotions += 1;
                                mode = FusedMode::LocalOnly;
                                self.tracer.emit(|| TraceEvent::Demote {
                                    cycle,
                                    tile,
                                    to_software: false,
                                });
                            }
                        }
                    }
                }
                let out = eval_fused(first, second, inputs, &mut SpmAdapter(self.mem));
                Ok(match mode {
                    FusedMode::Healthy => {
                        self.activations[self.tile.index()] += 1;
                        self.activations[partner.index()] += 1;
                        let remote = partner.0;
                        self.tracer.emit(|| TraceEvent::PatchActivate {
                            cycle,
                            tile,
                            partner: remote,
                            fused: true,
                        });
                        CustomOutcome {
                            out,
                            fused: true,
                            cycles: 1 + extra,
                            demoted: false,
                        }
                    }
                    FusedMode::LocalOnly => {
                        self.activations[self.tile.index()] += 1;
                        self.tracer.emit(|| TraceEvent::PatchActivate {
                            cycle,
                            tile,
                            partner: NO_PARTNER,
                            fused: false,
                        });
                        CustomOutcome {
                            out,
                            fused: false,
                            cycles: 1 + software_cycles(second, MUL_LATENCY) + extra,
                            demoted: true,
                        }
                    }
                    FusedMode::Software => CustomOutcome {
                        out,
                        fused: false,
                        cycles: software_cycles(first, MUL_LATENCY)
                            + software_cycles(second, MUL_LATENCY)
                            + extra,
                        demoted: true,
                    },
                })
            }
        }
    }

    fn send(&mut self, dst: u32, addr: u32, len: u32) -> Result<(), CpuError> {
        // Reject out-of-mesh destinations before the u8 truncation: an
        // injected flit addressed past the mesh edge would never route
        // (no neighbor toward its coords) and would wedge the network
        // with no typed error.
        if dst as usize >= self.mesh.tiles() {
            return Err(CpuError::BadSendTarget { target: dst });
        }
        let words = self.mem.peek_words(addr, len as usize);
        self.mesh
            .send_traced(self.tile, TileId(dst as u8), &words, self.tracer);
        Ok(())
    }

    fn try_recv(&mut self, src: u32, addr: u32, len: u32) -> Result<Option<u32>, CpuError> {
        match self.mesh.pop_delivered(self.tile, TileId(src as u8)) {
            None => Ok(None),
            Some(msg) => {
                if msg.words.len() as u32 != len {
                    return Err(CpuError::MessageLengthMismatch {
                        expected: len,
                        got: msg.words.len() as u32,
                    });
                }
                self.mem.poke_words(addr, &msg.words);
                // The completing poll happens on a real tick in both
                // engines (a deliverable message blocks `try_skip`), so
                // this event is engine-identical.
                let (cycle, tile) = (self.cycle, self.tile.0);
                self.tracer.emit(|| TraceEvent::RecvDone {
                    cycle,
                    tile,
                    from: src as u8,
                    words: len,
                });
                Ok(Some(len))
            }
        }
    }
}

/// Chip services for one lane of a translated compute window: the
/// healthy-path subset of [`TilePlatform`].
///
/// Windows only run while tracing is off and — for custom instructions —
/// no fault plan is installed, so the fault ladder, trace emission, and
/// crossbar reconfiguration of the full platform can never be needed
/// here: anything that would reach them side-exits to the interpreter
/// first.
struct WindowHost<'a> {
    tile: TileId,
    mem: &'a mut TileMemory,
    /// Sorted `(ci, binding)` pairs, same table the interpreter scans.
    bindings: &'a [(u16, CiBinding)],
    activations: &'a mut [u64],
    /// I-cache line of the most recent fetch (`u64::MAX` = no streak),
    /// for the fetch-streak fast path below.
    fetch_line: u64,
    /// An address inside the streak line (any word works: residency and
    /// LRU are per-line).
    fetch_addr: u32,
    /// Same-line fetches after the streak's first, not yet recorded.
    fetch_hits: u64,
    /// `log2(icache line bytes)`.
    line_shift: u32,
}

impl WindowHost<'_> {
    /// Replays the pending fetch streak onto the i-cache.
    ///
    /// Consecutive fetches to one resident line are guaranteed hits —
    /// within a window only this lane's fetches touch its (dedicated)
    /// i-cache, and a just-accessed line cannot be evicted without
    /// another access to its set. Each streak member was therefore
    /// charged `HIT_LATENCY` up front; this applies the deferred state
    /// effects (LRU clock, timestamps, hit counters) in one batch,
    /// before the next real access — exactly the order the per-word
    /// path would have produced.
    fn flush_fetch_streak(&mut self) {
        if self.fetch_hits > 0 {
            self.mem
                .record_repeat_fetches(self.fetch_addr, 1, self.fetch_hits);
            self.fetch_hits = 0;
        }
    }
}

impl LaneHost for WindowHost<'_> {
    fn fetch(&mut self, byte_addr: u32) -> u32 {
        let line = u64::from(byte_addr >> self.line_shift);
        if line == self.fetch_line {
            self.fetch_hits += 1;
            return HIT_LATENCY;
        }
        self.flush_fetch_streak();
        self.fetch_line = line;
        self.fetch_addr = byte_addr;
        self.mem.fetch(byte_addr)
    }

    fn load(&mut self, addr: u32, w: Width) -> (u32, u32) {
        let r = self.mem.load(addr, w);
        (r.value, r.latency)
    }

    fn store(&mut self, addr: u32, value: u32, w: Width) -> u32 {
        // Crossbar-config addresses were bounced by `store_side_exits`,
        // so this store can never carry an xbar write.
        self.mem.store(addr, value, w).latency
    }

    fn store_side_exits(&self, addr: u32) -> bool {
        memmap::is_xbar_cfg(addr)
    }

    fn custom_bound(&self, ci: CiId) -> bool {
        self.bindings.iter().any(|(id, _)| *id == ci.0)
    }

    fn exec_custom(&mut self, ci: CiId, inputs: [u32; 4]) -> Option<CustomOutcome> {
        let binding = self
            .bindings
            .iter()
            .find_map(|(id, b)| (*id == ci.0).then_some(b))?;
        Some(match binding {
            CiBinding::Single { control } => {
                let out = eval_single(control, inputs, &mut SpmAdapter(self.mem));
                self.activations[self.tile.index()] += 1;
                CustomOutcome::healthy(out, false)
            }
            CiBinding::Fused {
                first,
                partner,
                second,
            } => {
                let out = eval_fused(first, second, inputs, &mut SpmAdapter(self.mem));
                self.activations[self.tile.index()] += 1;
                self.activations[partner.index()] += 1;
                CustomOutcome::healthy(out, true)
            }
        })
    }
}

/// Diagnostic counters for the translated window engine.
///
/// Like [`Chip::skipped_cycles`], these describe how the fast path got
/// to the answer, not the answer itself — they are not part of
/// snapshots or [`RunSummary`], which stay bit-identical to the
/// reference loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Compute windows committed (clock jumps through translated code).
    pub windows: u64,
    /// Cycles the clock jumped over at window commits.
    pub batched_cycles: u64,
    /// Instructions retired by the translated engine.
    pub uops_executed: u64,
    /// Basic blocks lowered to micro-ops across all tiles.
    pub blocks_translated: u64,
    /// Block dispatches served from the per-tile translation caches.
    pub cache_hits: u64,
}

/// The simulated chip.
pub struct Chip {
    cfg: ChipConfig,
    cores: Vec<Option<Core>>,
    mems: Vec<TileMemory>,
    bindings: Vec<Vec<(u16, CiBinding)>>,
    busy_until: Vec<u64>,
    waiting_on: Vec<Option<u32>>,
    mesh: Mesh,
    patchnet: PatchNet,
    activations: Vec<u64>,
    xbar_errors: u64,
    cycle: u64,
    /// Loaded cores that have not halted (maintained incrementally so the
    /// run loop never rescans every tile).
    live: usize,
    /// Cores currently blocked in `recv` (`waiting_on[i].is_some()`).
    waiting: usize,
    /// Earliest `busy_until` among non-waiting live cores after the last
    /// tick (`u64::MAX` when none; `0` when stale, e.g. after a load).
    /// Maintained by `tick` so the fast path's skip decision is O(1).
    next_wake: u64,
    /// Cycles elided by the fast path (diagnostic; not part of the
    /// summary, which must stay bit-identical to the reference loop).
    skipped: u64,
    /// Translated (basic-block micro-op) execution enabled for `run`.
    translate: bool,
    /// Per-tile translation caches (cleared on program swap; not part of
    /// snapshots — lowering is a pure function of the loaded program).
    trans: Vec<TransCache>,
    /// Struct-of-arrays register bank shared by window lanes.
    lane_bank: LaneBank,
    /// Translated-engine diagnostics (windows, batched cycles, uops).
    tstats: TranslationStats,
    /// Installed fault plan and its runtime state, if any. `None` keeps
    /// every fault check off the hot paths of fault-free runs.
    faults: Option<FaultRuntime>,
    /// Opt-in per-tick self-checks (see [`Chip::set_paranoid`]).
    paranoid: bool,
    /// A store reconfigured a crossbar during the current tick.
    xbar_reconfigured: bool,
    /// Hard resource caps for untrusted runs (unlimited by default).
    budget: RunBudget,
    /// Periodic-checkpoint + transient-fault-replay state, when enabled.
    rollback: Option<RollbackState>,
    /// Observability event recorder. Disabled by default (one branch per
    /// would-be event); not part of snapshots — an observer, not chip
    /// state — so rollback replays append to the same stream.
    tracer: Tracer,
}

/// State of the checkpoint-rollback rung (see [`Chip::enable_rollback`]).
struct RollbackState {
    /// Cycles between periodic checkpoint refreshes.
    interval: u64,
    /// Remaining rollback retries before detections fall through to the
    /// ordinary degradation ladder.
    budget_left: u32,
    /// Cycle of the next periodic checkpoint refresh.
    next_checkpoint: u64,
    /// The most recent checkpoint (boxed: a full chip image is large).
    last: Option<Box<ChipSnapshot>>,
}

impl Chip {
    /// Creates an idle chip.
    #[must_use]
    pub fn new(cfg: ChipConfig) -> Self {
        let n = cfg.topo.tiles();
        Chip {
            mems: (0..n).map(|_| TileMemory::new(cfg.tile_mem)).collect(),
            cores: (0..n).map(|_| None).collect(),
            bindings: vec![Vec::new(); n],
            busy_until: vec![0; n],
            waiting_on: vec![None; n],
            mesh: Mesh::new(MeshConfig {
                topo: cfg.topo,
                buffer_flits: 8,
            }),
            patchnet: PatchNet::new(cfg.topo),
            activations: vec![0; n],
            xbar_errors: 0,
            cycle: 0,
            live: 0,
            waiting: 0,
            next_wake: 0,
            skipped: 0,
            translate: true,
            trans: (0..n).map(|_| TransCache::new()).collect(),
            lane_bank: LaneBank::new(n),
            tstats: TranslationStats::default(),
            faults: None,
            paranoid: false,
            xbar_reconfigured: false,
            budget: RunBudget::unlimited(),
            rollback: None,
            tracer: Tracer::disabled(),
            cfg,
        }
    }

    /// Enables event tracing per `cfg` (the tile count is taken from the
    /// chip's own topology). Replaces any previously collected trace.
    /// Call before `run` so the stream covers the whole execution.
    pub fn set_trace(&mut self, cfg: &TraceConfig) {
        let cfg = TraceConfig {
            tiles: self.cfg.topo.tiles(),
            ..cfg.clone()
        };
        self.tracer = Tracer::new(&cfg);
    }

    /// The active tracer (e.g. to attach an extra sink).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Tears tracing down and returns the retained event stream, or
    /// `None` if tracing was never enabled.
    pub fn take_trace(&mut self) -> Option<TraceCapture> {
        self.tracer.take_capture()
    }

    /// Installs a fault plan to be replayed during subsequent runs.
    /// Event cycles are absolute simulation cycles; install the plan
    /// before the first `run` so they line up with the schedule.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(FaultRuntime::new(plan, self.cfg.topo.tiles()));
        self.sync_rollback_armed();
    }

    /// Fault-handling counters (all zero when no plan is installed).
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Enables (or disables) per-tick hardware self-checks: mesh flit
    /// conservation and buffer occupancy after every tick, inter-patch
    /// circuit legality after every crossbar reconfiguration. Violations
    /// surface as [`SimError::InvariantViolation`]. Debug builds run the
    /// same checks as `debug_assert`s even when this is off; release
    /// builds skip them entirely unless enabled here.
    pub fn set_paranoid(&mut self, on: bool) {
        self.paranoid = on;
    }

    /// Installs hard resource caps for subsequent runs (see
    /// [`RunBudget`]). Exceeding a cap fails the run with the typed
    /// [`SimError::BudgetExhausted`] instead of a wall-clock kill, at
    /// the identical cycle on both engines.
    ///
    /// A `memory_pages` cap disables the translated engine for the
    /// capped runs: translated windows execute stores (and thus DRAM
    /// page allocation) inline across a multi-cycle jump, which would
    /// blur the exact cycle the cap is crossed. Translation on/off is
    /// already bit-identical, so only throughput is affected while the
    /// cap is in place.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
    }

    /// The installed resource caps (unlimited unless
    /// [`Chip::set_budget`] was called).
    #[must_use]
    pub fn budget(&self) -> RunBudget {
        self.budget
    }

    /// Captures the complete dynamic state of the chip.
    ///
    /// Program text and custom-instruction bindings are load-time
    /// artifacts and are *not* captured; [`Chip::restore`] expects a chip
    /// with the same programs loaded. Takes `&mut self` only for the
    /// DRAM dirty-page bookkeeping — the simulated state is unchanged.
    pub fn checkpoint(&mut self) -> ChipSnapshot {
        ChipSnapshot {
            topo: self.cfg.topo,
            cycle: self.cycle,
            cores: self
                .cores
                .iter()
                .map(|c| c.as_ref().map(Core::snapshot))
                .collect(),
            mems: self.mems.iter_mut().map(TileMemory::snapshot).collect(),
            mesh: self.mesh.snapshot(),
            patchnet: self.patchnet.snapshot(),
            busy_until: self.busy_until.clone(),
            waiting_on: self.waiting_on.clone(),
            activations: self.activations.clone(),
            xbar_errors: self.xbar_errors,
            next_wake: self.next_wake,
            skipped: self.skipped,
            faults: self.faults.as_ref().map(FaultRuntime::snapshot),
        }
    }

    /// Updates an existing checkpoint of *this* chip in place, copying
    /// only DRAM pages dirtied since the snapshot was taken (everything
    /// else is small and rewritten wholesale).
    fn refresh_checkpoint(&mut self, snap: &mut ChipSnapshot) {
        snap.cycle = self.cycle;
        snap.cores = self
            .cores
            .iter()
            .map(|c| c.as_ref().map(Core::snapshot))
            .collect();
        for (m, s) in self.mems.iter_mut().zip(snap.mems.iter_mut()) {
            m.refresh_snapshot(s);
        }
        snap.mesh = self.mesh.snapshot();
        snap.patchnet = self.patchnet.snapshot();
        snap.busy_until.clone_from(&self.busy_until);
        snap.waiting_on.clone_from(&self.waiting_on);
        snap.activations.clone_from(&self.activations);
        snap.xbar_errors = self.xbar_errors;
        snap.next_wake = self.next_wake;
        snap.skipped = self.skipped;
        snap.faults = self.faults.as_ref().map(FaultRuntime::snapshot);
    }

    /// Reinstalls a previously captured state. The snapshot must come
    /// from a chip with the same topology and the same pattern of loaded
    /// programs (text and bindings are not part of the snapshot); resumed
    /// execution is then bit-identical to the run the snapshot was taken
    /// from.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TopologyMismatch`] / [`SnapshotError::Mismatch`]
    /// when the snapshot does not fit this chip, a propagated
    /// [`SnapshotError::Mesh`] when the recorded network state is
    /// malformed (bad port/tile indices, over-capacity buffers), or a
    /// propagated [`SnapshotError::PatchNet`] if the recorded switch
    /// state is invalid. The chip is unmodified on error.
    pub fn restore(&mut self, snap: &ChipSnapshot) -> Result<(), SnapshotError> {
        let n = self.cfg.topo.tiles();
        if snap.topo != self.cfg.topo {
            return Err(SnapshotError::TopologyMismatch {
                expected: (self.cfg.topo.width, self.cfg.topo.height),
                found: (snap.topo.width, snap.topo.height),
            });
        }
        if snap.cores.len() != n
            || snap.mems.len() != n
            || snap.busy_until.len() != n
            || snap.waiting_on.len() != n
            || snap.activations.len() != n
        {
            return Err(SnapshotError::Mismatch {
                what: "per-tile vector length",
            });
        }
        self.mesh.validate_snapshot(&snap.mesh)?;
        if let Some(fr) = &snap.faults {
            if fr.patch_down_until.len() != n
                || fr.switch_down_until.len() != n
                || fr.patch_mask_until.len() != n
                || fr.switch_mask_until.len() != n
                || fr.config_upset.len() != n
            {
                return Err(SnapshotError::Mismatch {
                    what: "fault-runtime vector length",
                });
            }
            if fr.next as usize > fr.plan.len() {
                return Err(SnapshotError::Mismatch {
                    what: "fault event index beyond plan",
                });
            }
        }
        for (have, want) in self.cores.iter().zip(&snap.cores) {
            match (have, want) {
                (Some(_), Some(_)) | (None, None) => {}
                (None, Some(_)) => {
                    return Err(SnapshotError::Mismatch {
                        what: "snapshot holds core state for an unloaded tile",
                    })
                }
                (Some(_), None) => {
                    return Err(SnapshotError::Mismatch {
                        what: "snapshot lacks core state for a loaded tile",
                    })
                }
            }
        }
        // Validation done; the patch-net restore re-validates its own
        // switch words, and rebuilding a chip-captured snapshot cannot
        // fail, so mutation starts here.
        self.patchnet.restore(&snap.patchnet)?;
        for (core, cs) in self.cores.iter_mut().zip(&snap.cores) {
            if let (Some(c), Some(s)) = (core.as_mut(), cs.as_ref()) {
                c.restore(s);
            }
        }
        for (m, s) in self.mems.iter_mut().zip(&snap.mems) {
            m.restore(s);
        }
        // Already validated above, so this cannot fail mid-mutation.
        self.mesh.restore(&snap.mesh)?;
        self.busy_until.clone_from(&snap.busy_until);
        self.waiting_on.clone_from(&snap.waiting_on);
        self.activations.clone_from(&snap.activations);
        self.xbar_errors = snap.xbar_errors;
        self.cycle = snap.cycle;
        self.next_wake = snap.next_wake;
        self.skipped = snap.skipped;
        self.faults = snap.faults.as_ref().map(FaultRuntime::from_snapshot);
        // The incremental counters are derived state: recompute them.
        self.live = self
            .cores
            .iter()
            .flatten()
            .filter(|c| c.state() != CoreState::Halted)
            .count();
        self.waiting = self.waiting_on.iter().filter(|w| w.is_some()).count();
        self.xbar_reconfigured = false;
        self.sync_rollback_armed();
        Ok(())
    }

    /// Arms the topmost rung of the degradation ladder: keep a periodic
    /// checkpoint (refreshed every `interval` cycles) and, when a
    /// *transient* patch/switch fault is detected, roll back to it and
    /// replay with the fault window masked instead of demoting — at most
    /// `budget` times per run, after which detections fall through to the
    /// ordinary ladder. Takes the first checkpoint immediately, so call
    /// it after programs are loaded. Each rollback is counted in
    /// [`FaultStats::rollbacks`].
    pub fn enable_rollback(&mut self, interval: u64, budget: u32) {
        let interval = interval.max(1);
        let snap = Box::new(self.checkpoint());
        let cycle = self.cycle;
        self.tracer.emit(|| TraceEvent::Checkpoint { cycle });
        self.rollback = Some(RollbackState {
            interval,
            budget_left: budget,
            next_checkpoint: self.cycle + interval,
            last: Some(snap),
        });
        self.sync_rollback_armed();
    }

    /// Encoded size in bytes of the current rollback checkpoint, or
    /// `None` when rollback is disabled (or its snapshot was consumed).
    /// This is the quantity the `snapshot_bytes` budget axis caps.
    #[must_use]
    pub fn checkpoint_bytes(&self) -> Option<u64> {
        self.rollback
            .as_ref()
            .and_then(|r| r.last.as_deref())
            .map(|s| s.encode().len() as u64)
    }

    /// Re-derives the fault runtime's `rollback_armed` flag from the
    /// chip-side rollback state. Detections only queue rollback requests
    /// while armed, so a queued request is always serviceable.
    fn sync_rollback_armed(&mut self) {
        let armed = self
            .rollback
            .as_ref()
            .is_some_and(|r| r.budget_left > 0 && r.last.is_some());
        if let Some(f) = self.faults.as_mut() {
            f.rollback_armed = armed;
        }
    }

    /// Runs right after every tick while rollback is enabled: serves a
    /// rollback request queued by this tick's fault detections, or else
    /// refreshes the periodic checkpoint when due. Ordered this way so a
    /// detection can never be checkpointed over before it is served.
    fn rollback_service(&mut self) -> Result<(), SimError> {
        let pending = match self.faults.as_mut() {
            Some(f) if !f.pending_masks.is_empty() => std::mem::take(&mut f.pending_masks),
            _ => Vec::new(),
        };
        if !pending.is_empty() {
            return self.serve_rollback(pending);
        }
        let due = self
            .rollback
            .as_ref()
            .is_some_and(|r| self.cycle >= r.next_checkpoint);
        if due {
            let mut last = self.rollback.as_mut().and_then(|r| r.last.take());
            match last.as_deref_mut() {
                Some(snap) => self.refresh_checkpoint(snap),
                None => last = Some(Box::new(self.checkpoint())),
            }
            let cycle = self.cycle;
            self.tracer.emit(|| TraceEvent::Checkpoint { cycle });
            if let Some(rb) = self.rollback.as_mut() {
                rb.last = last;
                rb.next_checkpoint = self.cycle + rb.interval;
            }
            self.sync_rollback_armed();
            // Snapshot-size budget: checked right where the checkpoint
            // grows. Both engines refresh at identical cycles (the fast
            // path never jumps a periodic checkpoint), so the failing
            // cycle is engine-identical.
            if let Some(cap) = self.budget.snapshot_bytes {
                let size = self
                    .rollback
                    .as_ref()
                    .and_then(|r| r.last.as_deref())
                    .map_or(0, |s| s.encode().len() as u64);
                if size > cap {
                    return Err(SimError::BudgetExhausted {
                        resource: BudgetResource::SnapshotBytes,
                        limit: cap,
                        at_cycle: self.cycle,
                    });
                }
            }
        }
        Ok(())
    }

    /// Performs one rollback: rewinds the chip to the last checkpoint and
    /// installs the requested masks so the replay reads the faulted
    /// components as healthy until their recovery cycles.
    fn serve_rollback(&mut self, pending: Vec<PendingMask>) -> Result<(), SimError> {
        // Mask state must survive the rewind (the checkpoint predates the
        // detection): merge-max the pre-restore masks plus the new
        // requests back in afterwards. A request is only ever queued by a
        // detection inside an active fault runtime while a checkpoint is
        // armed; should either be gone regardless, the requests are
        // dropped and the ordinary degradation ladder picks the fault up
        // at its next detection.
        let Some(f) = self.faults.as_ref() else {
            return Ok(());
        };
        let mut patch_mask = f.patch_mask_until.clone();
        let mut switch_mask = f.switch_mask_until.clone();
        for m in &pending {
            let slot = if m.switch {
                &mut switch_mask[m.tile]
            } else {
                &mut patch_mask[m.tile]
            };
            *slot = (*slot).max(m.until);
        }
        let rollbacks = f.stats.rollbacks + 1;
        let Some(snap) = self.rollback.as_mut().and_then(|r| r.last.take()) else {
            return Ok(());
        };
        let (cycle, to_cycle) = (self.cycle, snap.cycle);
        self.tracer
            .emit(|| TraceEvent::Rollback { cycle, to_cycle });
        // The checkpoint was captured from this very chip, so a failed
        // restore is a simulator bug, reported as a typed invariant
        // violation rather than a panic. The tracer is not chip state and
        // survives the restore.
        if let Err(e) = self.restore(&snap) {
            return Err(SimError::InvariantViolation {
                component: "rollback",
                cycle,
                detail: format!("restore of the chip's own checkpoint failed: {e}"),
            });
        }
        if let Some(rb) = self.rollback.as_mut() {
            rb.last = Some(snap);
            rb.budget_left -= 1;
        }
        // `restore` preserves the fault runtime it was captured with.
        if let Some(f) = self.faults.as_mut() {
            for i in 0..patch_mask.len() {
                f.patch_mask_until[i] = f.patch_mask_until[i].max(patch_mask[i]);
                f.switch_mask_until[i] = f.switch_mask_until[i].max(switch_mask[i]);
            }
            f.stats.rollbacks = rollbacks;
        }
        self.sync_rollback_armed();
        Ok(())
    }

    /// Configuration.
    #[must_use]
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// Mutable access to the inter-patch network (for the stitcher).
    pub fn patchnet_mut(&mut self) -> &mut PatchNet {
        &mut self.patchnet
    }

    /// Read access to the inter-patch network.
    #[must_use]
    pub fn patchnet(&self) -> &PatchNet {
        &self.patchnet
    }

    /// Checks a host-supplied tile id against the topology, so loader
    /// paths never index per-tile vectors with untrusted ids.
    fn check_tile(&self, tile: TileId) -> Result<(), SimError> {
        let tiles = self.cfg.topo.tiles();
        if tile.index() >= tiles {
            return Err(SimError::UnknownTile { tile, tiles });
        }
        Ok(())
    }

    /// Loads a program without custom-instruction bindings.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownTile`] when `tile` is outside the topology.
    pub fn load_program(&mut self, tile: TileId, program: &Program) -> Result<(), SimError> {
        self.check_tile(tile)?;
        // No bindings, nothing else to validate: install directly.
        self.install_kernel(tile, program, HashMap::new());
        Ok(())
    }

    /// Loads a program plus the stitcher's custom-instruction bindings.
    ///
    /// Validates that each binding's patch classes match the chip layout,
    /// that fused bindings have a reserved circuit meeting the single-cycle
    /// timing constraint, and that remote stages perform no memory (`T`)
    /// operations.
    ///
    /// # Errors
    ///
    /// [`SimError::BadBinding`] with an explanation on any inconsistency.
    pub fn load_kernel(
        &mut self,
        tile: TileId,
        program: &Program,
        bindings: HashMap<u16, CiBinding>,
    ) -> Result<(), SimError> {
        self.validate_bindings(tile, &bindings)?;
        self.install_kernel(tile, program, bindings);
        Ok(())
    }

    /// Checks every binding against the chip layout; all of
    /// [`Chip::load_kernel`]'s error paths live here.
    fn validate_bindings(
        &self,
        tile: TileId,
        bindings: &HashMap<u16, CiBinding>,
    ) -> Result<(), SimError> {
        self.check_tile(tile)?;
        let bad = |reason: String| SimError::BadBinding { tile, reason };
        for (ci, b) in bindings {
            match b {
                CiBinding::Single { control } => {
                    let have = self.cfg.patches[tile.index()];
                    if have != Some(control.class()) {
                        return Err(bad(format!(
                            "ci{ci}: tile has {have:?}, control targets {}",
                            control.class()
                        )));
                    }
                }
                CiBinding::Fused {
                    first,
                    partner,
                    second,
                } => {
                    self.check_tile(*partner)?;
                    let local = self.cfg.patches[tile.index()];
                    let remote = self.cfg.patches[partner.index()];
                    if local != Some(first.class()) {
                        return Err(bad(format!(
                            "ci{ci}: local patch is {local:?}, control targets {}",
                            first.class()
                        )));
                    }
                    if remote != Some(second.class()) {
                        return Err(bad(format!(
                            "ci{ci}: remote patch is {remote:?}, control targets {}",
                            second.class()
                        )));
                    }
                    if second.uses_memory() {
                        return Err(bad(format!(
                            "ci{ci}: remote stage performs T ops (disjoint SPMs)"
                        )));
                    }
                    let Some(circuit) = self.patchnet.circuit(tile, *partner) else {
                        return Err(bad(format!("ci{ci}: no circuit {tile} -> {partner}")));
                    };
                    if !fused_path_legal(first.class(), second.class(), circuit.hops) {
                        return Err(bad(format!(
                            "ci{ci}: {} + {} at {} hops misses the 5 ns cycle",
                            first.class(),
                            second.class(),
                            circuit.hops
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Infallible tail of a kernel load: installs the program, resets the
    /// core, and replaces the binding table (pre-validated or empty).
    fn install_kernel(
        &mut self,
        tile: TileId,
        program: &Program,
        bindings: HashMap<u16, CiBinding>,
    ) {
        // Load text data segments and reset the core.
        for seg in &program.data {
            self.mems[tile.index()].poke_words(seg.base, &seg.words);
        }
        let i = tile.index();
        // Keep the live/waiting counters consistent if a core is replaced.
        if self.cores[i]
            .as_ref()
            .is_some_and(|c| c.state() != CoreState::Halted)
        {
            self.live -= 1;
        }
        if self.waiting_on[i].take().is_some() {
            self.waiting -= 1;
        }
        self.cores[i] = Some(Core::new(program));
        self.trans[i].invalidate();
        self.live += 1;
        let mut table: Vec<(u16, CiBinding)> = bindings.into_iter().collect();
        table.sort_by_key(|(id, _)| *id);
        self.bindings[i] = table;
        self.busy_until[i] = self.cycle;
        self.next_wake = 0; // stale until the next tick
    }

    /// Reserves an inter-patch circuit (stitcher API).
    ///
    /// # Errors
    ///
    /// Propagates [`PatchNetError`] on contention.
    pub fn reserve_circuit(
        &mut self,
        from: TileId,
        to: TileId,
    ) -> Result<stitch_noc::Circuit, SimError> {
        let circuit = self.patchnet.reserve(from, to)?;
        let (cycle, hops) = (self.cycle, circuit.hops);
        self.tracer.emit(|| TraceEvent::CircuitReserve {
            cycle,
            from: from.0,
            to: to.0,
            hops: hops.min(u32::from(u8::MAX)) as u8,
        });
        Ok(circuit)
    }

    /// Host write into a tile's memory (inputs, parameters).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownTile`] when `tile` is outside the topology.
    pub fn poke_words(&mut self, tile: TileId, base: u32, words: &[u32]) -> Result<(), SimError> {
        self.check_tile(tile)?;
        self.mems[tile.index()].poke_words(base, words);
        Ok(())
    }

    /// Host read from a tile's memory (results). An out-of-topology
    /// tile reads as empty — observation never panics.
    #[must_use]
    pub fn peek_words(&mut self, tile: TileId, base: u32, count: usize) -> Vec<u32> {
        self.mems
            .get_mut(tile.index())
            .map_or_else(Vec::new, |m| m.peek_words(base, count))
    }

    /// Host read of a single word. An out-of-topology tile reads as 0.
    #[must_use]
    pub fn peek_u32(&mut self, tile: TileId, addr: u32) -> u32 {
        self.mems
            .get_mut(tile.index())
            .map_or(0, |m| m.peek_u32(addr))
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether every loaded core has halted.
    ///
    /// O(1) via the maintained live-core counter (checked against a full
    /// scan in debug builds).
    #[must_use]
    pub fn all_halted(&self) -> bool {
        let fast = self.live == 0;
        debug_assert_eq!(
            fast,
            self.cores
                .iter()
                .flatten()
                .all(|c| c.state() == CoreState::Halted)
        );
        fast
    }

    /// Advances the chip one cycle.
    ///
    /// # Errors
    ///
    /// Propagates core faults as [`SimError::Cpu`].
    pub fn tick(&mut self) -> Result<(), SimError> {
        self.cycle += 1;
        if self.faults.is_some() {
            self.apply_due_faults();
        }
        self.mesh.tick_traced(&mut self.tracer);
        let n = self.cfg.topo.tiles();
        // Earliest future step among live cores that are *not* parked in
        // `recv` (waiting cores poll every cycle; the fast path batches
        // those polls separately).
        let mut next_wake = u64::MAX;
        for i in 0..n {
            if self.busy_until[i] > self.cycle {
                next_wake = next_wake.min(self.busy_until[i]);
                continue;
            }
            let Some(core) = self.cores[i].as_mut() else {
                continue;
            };
            if core.state() == CoreState::Halted {
                continue;
            }
            let mut plat = TilePlatform {
                tile: TileId(i as u8),
                cycle: self.cycle,
                mem: &mut self.mems[i],
                bindings: &self.bindings[i],
                mesh: &mut self.mesh,
                patchnet: &mut self.patchnet,
                activations: &mut self.activations,
                xbar_errors: &mut self.xbar_errors,
                xbar_reconfigured: &mut self.xbar_reconfigured,
                faults: self.faults.as_mut(),
                tracer: &mut self.tracer,
            };
            let outcome = core.step(&mut plat);
            let halted_now = core.state() == CoreState::Halted;
            match outcome {
                Ok(StepOutcome::Retired { cycles }) => {
                    self.busy_until[i] = self.cycle + u64::from(cycles.max(1)) - 1;
                    if self.waiting_on[i].take().is_some() {
                        self.waiting -= 1;
                    }
                    let cycle = self.cycle;
                    self.tracer.emit(|| TraceEvent::Retire {
                        cycle,
                        tile: i as u8,
                        cost: cycles.max(1),
                    });
                    if halted_now {
                        // `halt` retires like any instruction; the core
                        // leaves the live set here.
                        self.live -= 1;
                        self.tracer.emit(|| TraceEvent::Halt {
                            cycle,
                            tile: i as u8,
                        });
                    } else {
                        next_wake = next_wake.min(self.busy_until[i]);
                    }
                }
                Ok(StepOutcome::WaitingRecv { src }) => {
                    if self.waiting_on[i].replace(src).is_none() {
                        self.waiting += 1;
                        // Transition into waiting only — repeated failed
                        // polls are event-free, so the fast path's batch
                        // replay leaves the stream unchanged.
                        let cycle = self.cycle;
                        self.tracer.emit(|| TraceEvent::RecvWait {
                            cycle,
                            tile: i as u8,
                            from: src as u8,
                        });
                    }
                }
                Ok(StepOutcome::Halted) => {}
                // Strict-mode fault detections become the typed error the
                // property harness asserts on.
                Err(CpuError::PatchFaulted { kind, .. }) => {
                    return Err(SimError::Faulted {
                        tile: TileId(i as u8),
                        cycle: self.cycle,
                        kind: kind.into(),
                    })
                }
                Err(error) => {
                    return Err(SimError::Cpu {
                        tile: TileId(i as u8),
                        error,
                    })
                }
            }
        }
        self.next_wake = next_wake;
        let reconfigured = std::mem::take(&mut self.xbar_reconfigured);
        if self.paranoid || cfg!(debug_assertions) {
            self.verify_tick_invariants(reconfigured)?;
        }
        Ok(())
    }

    /// Per-tick self-checks: mesh conservation always, circuit legality
    /// after a crossbar reconfiguration. In paranoid mode a violation is
    /// a typed error; in plain debug builds it is a `debug_assert`.
    fn verify_tick_invariants(&mut self, reconfigured: bool) -> Result<(), SimError> {
        // Plain debug builds only pay for the mesh scan while traffic is
        // in flight; paranoid mode scans every tick (a ghost flit after
        // delivery would only be caught with traffic drained).
        if (self.paranoid || !self.mesh.idle()) && self.mesh.check_invariants().is_err() {
            return self.report_mesh_violation();
        }
        if reconfigured {
            if let Err(e) = self.patchnet.validate_circuits() {
                let err = SimError::InvariantViolation {
                    component: "patchnet",
                    cycle: self.cycle,
                    detail: e.to_string(),
                };
                if self.paranoid {
                    return Err(err);
                }
                debug_assert!(false, "{err}");
            }
        }
        Ok(())
    }

    /// Builds (and, in paranoid mode, returns) the typed error for a mesh
    /// invariant violation; out of line to keep the per-tick check small.
    #[cold]
    fn report_mesh_violation(&self) -> Result<(), SimError> {
        if let Err(detail) = self.mesh.check_invariants() {
            let err = SimError::InvariantViolation {
                component: "mesh",
                cycle: self.cycle,
                detail,
            };
            if self.paranoid {
                return Err(err);
            }
            debug_assert!(false, "{err}");
        }
        Ok(())
    }

    /// Applies every fault event whose cycle has been reached.
    ///
    /// Runs at the top of [`Chip::tick`] — after the clock advances,
    /// before the mesh moves — and [`Chip::try_skip`] never jumps past a
    /// pending event, so both engines apply each fault at exactly its
    /// scheduled cycle.
    fn apply_due_faults(&mut self) {
        loop {
            let Some(f) = self.faults.as_mut() else {
                return;
            };
            let Some(ev) = f.plan.events().get(f.next) else {
                return;
            };
            if ev.cycle > self.cycle {
                return;
            }
            let kind = ev.kind.clone();
            f.next += 1;
            f.stats.injected += 1;
            let cycle = self.cycle;
            self.tracer.emit(|| TraceEvent::FaultInject {
                cycle,
                tile: kind.tile().0,
                kind: kind.trace_code(),
            });
            // Overlapping transient faults accumulate to the latest
            // recovery cycle.
            match kind {
                FaultKind::PatchFail { tile, until } => {
                    let slot = &mut f.patch_down_until[tile.index()];
                    *slot = (*slot).max(until.unwrap_or(u64::MAX));
                }
                FaultKind::SwitchFail { tile, until } => {
                    let slot = &mut f.switch_down_until[tile.index()];
                    *slot = (*slot).max(until.unwrap_or(u64::MAX));
                }
                FaultKind::ConfigUpset { tile } => f.config_upset[tile.index()] = true,
                FaultKind::MeshLinkFail { tile, dir, until } => {
                    self.mesh
                        .set_link_fault(tile, dir, until.unwrap_or(u64::MAX));
                }
            }
        }
    }

    /// Converts a wedged mesh — no flit movement for [`MESH_STALL_TICKS`]
    /// ticks while traffic is in flight — into a typed fault. Armed only
    /// while a fault plan is installed: a healthy mesh never stalls, and
    /// gating on the plan guarantees fault-free runs are unaffected.
    fn check_mesh_stall(&self) -> Result<(), SimError> {
        if self.faults.is_none() || self.mesh.stalled_ticks() < MESH_STALL_TICKS {
            return Ok(());
        }
        let tile = self
            .waiting_on
            .iter()
            .position(Option::is_some)
            .map_or(TileId(0), |i| TileId(i as u8));
        Err(SimError::Faulted {
            tile,
            cycle: self.cycle,
            kind: FaultedKind::MeshStall,
        })
    }

    /// Runs until every core halts, using the event-driven fast path.
    ///
    /// Whenever the mesh is idle and every live core is either busy
    /// beyond the next cycle or parked in a `recv` with no deliverable
    /// message, the intermediate cycles are fully deterministic: busy
    /// cores stall and waiting cores repeat the same failed poll. The
    /// loop jumps straight to the earliest wake-up, replaying the
    /// batched poll side effects, instead of ticking through them.
    /// Produces a [`RunSummary`] bit-identical to
    /// [`Chip::run_reference`].
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] after `max_cycles`, [`SimError::Deadlock`]
    /// when all running cores block on `recv` with no traffic in flight,
    /// or a propagated core fault.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        let start = self.cycle;
        let deadline = start.saturating_add(max_cycles);
        // The cycle budget acts like a second deadline with a typed
        // error; the skip/window horizon is clamped below the earlier of
        // the two so either fires on its exact cycle.
        let budget_deadline = self
            .budget
            .cycles
            .map_or(u64::MAX, |cap| start.saturating_add(cap));
        let horizon = deadline.min(budget_deadline);
        while !self.all_halted() {
            if self.cycle >= budget_deadline {
                return Err(SimError::BudgetExhausted {
                    resource: BudgetResource::Cycles,
                    limit: self.budget.cycles.unwrap_or(0),
                    at_cycle: self.cycle,
                });
            }
            if self.cycle >= deadline {
                return Err(SimError::Timeout { max_cycles });
            }
            self.try_window(horizon);
            self.try_skip(horizon);
            self.tick()?;
            if self.rollback.is_some() {
                self.rollback_service()?;
            }
            if !self.budget.no_post_tick_caps() {
                self.check_budget()?;
            }
            self.check_mesh_stall()?;
            // Deadlock is only possible when every live core is parked in
            // `recv` and nothing is in flight; the O(1) gate keeps the
            // per-tile scan out of the common case.
            if self.waiting > 0 && self.waiting == self.live && self.mesh.idle() {
                self.check_deadlock()?;
            }
        }
        Ok(self.summary(self.cycle - start))
    }

    /// Runs until every core halts with the naive cycle-by-cycle loop.
    ///
    /// This is the golden reference for [`Chip::run`]: it advances one
    /// tick at a time and re-checks halting and deadlock every cycle.
    /// Kept (and exercised by the equivalence tests) to pin down the
    /// fast path's cycle-skipping invariant.
    ///
    /// # Errors
    ///
    /// Same contract as [`Chip::run`].
    pub fn run_reference(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        let start = self.cycle;
        while !self.all_halted() {
            if let Some(cap) = self.budget.cycles {
                if self.cycle - start >= cap {
                    return Err(SimError::BudgetExhausted {
                        resource: BudgetResource::Cycles,
                        limit: cap,
                        at_cycle: self.cycle,
                    });
                }
            }
            if self.cycle - start >= max_cycles {
                return Err(SimError::Timeout { max_cycles });
            }
            self.tick()?;
            if self.rollback.is_some() {
                self.rollback_service()?;
            }
            if !self.budget.no_post_tick_caps() {
                self.check_budget()?;
            }
            self.check_mesh_stall()?;
            self.check_deadlock()?;
        }
        Ok(self.summary(self.cycle - start))
    }

    /// Post-tick budget enforcement (all axes but `cycles`, which the
    /// run loops check at their top, and `snapshot_bytes`, checked at
    /// checkpoint refresh). Runs only when some axis is capped; every
    /// counted resource mutates exclusively inside [`Chip::tick`], so
    /// the first failing cycle is identical on both engines.
    #[cold]
    fn check_budget(&mut self) -> Result<(), SimError> {
        let at_cycle = self.cycle;
        let over = |resource, limit| SimError::BudgetExhausted {
            resource,
            limit,
            at_cycle,
        };
        let mesh = self.mesh.stats();
        if let Some(cap) = self.budget.messages {
            if mesh.packets_sent > cap {
                return Err(over(BudgetResource::Messages, cap));
            }
        }
        if let Some(cap) = self.budget.in_flight_messages {
            if mesh.packets_sent - mesh.packets_delivered > cap {
                return Err(over(BudgetResource::InFlightMessages, cap));
            }
        }
        if let Some(cap) = self.budget.memory_pages {
            let pages: u64 = self.mems.iter().map(|m| m.resident_pages() as u64).sum();
            if pages > cap {
                return Err(over(BudgetResource::MemoryPages, cap));
            }
        }
        if let Some(cap) = self.budget.trace_events {
            if self.tracer.events_emitted() > cap {
                return Err(over(BudgetResource::TraceEvents, cap));
            }
        }
        Ok(())
    }

    /// Translated compute window: runs every ready core through the
    /// basic-block micro-op engine up to the next event boundary.
    ///
    /// Fires under the same quiescence conditions as [`Chip::try_skip`]
    /// — idle mesh, no deliverable message — plus tracing off (windows
    /// emit no per-instruction events). The horizon is clamped below
    /// the deadline and the next scheduled fault / periodic checkpoint,
    /// so nothing the interpreter would have interleaved can land
    /// inside a window. Each lane executes translated micro-ops with
    /// `Core::step`'s exact cycle accounting and stops at the horizon
    /// or at a side exit (send/recv/halt, crossbar-config store,
    /// custom under an active fault plan, architectural fault); the
    /// clock then jumps to the earliest stop, with waiting cores' poll
    /// side effects batch-replayed exactly as in `try_skip`. A lane's
    /// new `busy_until` is the start cycle of its next unexecuted
    /// instruction, which is precisely where the tick loop would have
    /// put it — so the interpreter resumes seamlessly and every
    /// summary, snapshot, and error stays bit-identical to
    /// [`Chip::run_reference`].
    fn try_window(&mut self, deadline: u64) {
        if !self.translate || self.live == 0 || self.tracer.is_enabled() || !self.mesh.idle() {
            return;
        }
        // A memory-page cap needs the exact tick each store lands on
        // (windows allocate pages inline across a multi-cycle jump), so
        // capped runs fall back to the interpreter — see
        // [`Chip::set_budget`].
        if self.budget.memory_pages.is_some() {
            return;
        }
        // A deliverable message completes that core's recv on the very
        // next tick — the window would jump over the delivery.
        for (i, src) in self.waiting_on.iter().enumerate() {
            if let Some(src) = src {
                if self.mesh.has_delivered(TileId(i as u8), TileId(*src as u8)) {
                    return;
                }
            }
        }
        let mut horizon = deadline.saturating_sub(1);
        if let Some(next_fault) = self
            .faults
            .as_ref()
            .and_then(FaultRuntime::next_event_cycle)
        {
            horizon = horizon.min(next_fault.saturating_sub(1));
        }
        if let Some(rb) = self.rollback.as_ref() {
            horizon = horizon.min(rb.next_checkpoint.saturating_sub(1));
        }
        if horizon <= self.cycle {
            return;
        }
        // Customs run inline only while no fault plan is installed: the
        // fault ladder (scrubs, demotions, rollback requests) belongs to
        // the interpreter.
        let customs_inline = self.faults.is_none();
        let mut fence = horizon;
        let mut progressed = false;
        for i in 0..self.cores.len() {
            if self.waiting_on[i].is_some() {
                continue;
            }
            let Some(core) = self.cores[i].as_mut() else {
                continue;
            };
            if core.state() == CoreState::Halted {
                continue;
            }
            let start = (self.cycle + 1).max(self.busy_until[i]);
            if start > horizon {
                continue;
            }
            let line_shift = self.mems[i].config().icache.block_bytes.trailing_zeros();
            let mut host = WindowHost {
                tile: TileId(i as u8),
                mem: &mut self.mems[i],
                bindings: &self.bindings[i],
                activations: &mut self.activations,
                fetch_line: u64::MAX,
                fetch_addr: 0,
                fetch_hits: 0,
                line_shift,
            };
            let run = core.run_translated(
                &mut self.trans[i],
                &mut self.lane_bank,
                i,
                &mut host,
                WindowParams {
                    start,
                    horizon,
                    customs_inline,
                },
            );
            // The streak's deferred i-cache effects must land before the
            // interpreter (or the next window) touches this tile.
            host.flush_fetch_streak();
            // The lane's next instruction starts at `next_start` whether
            // it stopped for the horizon or a side exit; parking
            // busy_until there reproduces the tick loop's spacing.
            self.busy_until[i] = run.next_start;
            if run.executed > 0 {
                progressed = true;
                self.tstats.uops_executed += run.executed;
            }
            if run.side_exit {
                // The interpreter must execute this lane's instruction
                // at `next_start`; the clock may advance at most to the
                // cycle before it.
                fence = fence.min(run.next_start.saturating_sub(1));
            }
        }
        if !progressed || fence <= self.cycle {
            // Nothing retired (or a side exit is due on the very next
            // tick): leave the clock alone. The busy_until updates above
            // are still exact.
            return;
        }
        // Jump the clock, replaying waiting cores' per-cycle poll side
        // effects in one batch (same bookkeeping as `try_skip`).
        let polls = fence - self.cycle;
        if self.waiting > 0 {
            for i in 0..self.waiting_on.len() {
                if self.waiting_on[i].is_none() {
                    continue;
                }
                let Some(core) = self.cores[i].as_mut() else {
                    continue;
                };
                let (addr, words) = core.poll_footprint();
                core.record_skipped_polls(polls);
                self.mems[i].record_repeat_fetches(addr, words, polls);
            }
        }
        self.mesh.fast_forward(fence);
        self.tstats.windows += 1;
        self.tstats.batched_cycles += polls;
        self.cycle = fence;
        // Busy-until values changed wholesale; let the next tick
        // recompute the wake heuristic from scratch.
        self.next_wake = 0;
    }

    /// Enables or disables the translated (basic-block micro-op) engine
    /// used by [`Chip::run`]. On by default; disabling forces every
    /// instruction through the interpreter (the fast path then consists
    /// of `try_skip` alone). Results are bit-identical either way.
    pub fn set_translation(&mut self, enabled: bool) {
        self.translate = enabled;
    }

    /// True when the translated engine is enabled for [`Chip::run`].
    #[must_use]
    pub fn translation_enabled(&self) -> bool {
        self.translate
    }

    /// Diagnostic counters for the translated engine, including the
    /// per-tile translation caches' lifetime totals.
    #[must_use]
    pub fn translation_stats(&self) -> TranslationStats {
        let mut s = self.tstats;
        for c in &self.trans {
            s.blocks_translated += c.translated;
            s.cache_hits += c.hits;
        }
        s
    }

    /// Total resident DRAM pages across every tile — the quantity the
    /// `memory_pages` budget axis caps.
    #[must_use]
    pub fn resident_pages(&self) -> u64 {
        self.mems.iter().map(|m| m.resident_pages() as u64).sum()
    }

    /// Lifetime trace events emitted so far — the quantity the
    /// `trace_events` budget axis caps. Zero when tracing is disabled.
    #[must_use]
    pub fn trace_events_emitted(&self) -> u64 {
        self.tracer.events_emitted()
    }

    /// Basic blocks lowered by the translated engine, as `(tile index,
    /// entry pc)` pairs. This is the coverage signal the fuzzer feeds
    /// back on: a mutated program that lights up a new entry exercised
    /// a control-flow path no earlier input reached.
    #[must_use]
    pub fn translation_coverage(&self) -> Vec<(usize, u32)> {
        self.trans
            .iter()
            .enumerate()
            .flat_map(|(tile, c)| c.covered_entries().map(move |pc| (tile, pc)))
            .collect()
    }

    /// Event-driven cycle skip.
    ///
    /// Fires only when (a) the mesh is idle — no flit moves during the
    /// skipped window, (b) every non-waiting live core is busy past the
    /// next cycle (`next_wake`, maintained by [`Chip::tick`]), and
    /// (c) no waiting core has a deliverable message — so each skipped
    /// tick would repeat the exact same failed `recv` poll. Under those
    /// conditions every intervening tick is deterministic; the clock
    /// jumps to the cycle before the earliest wake-up (clamped below the
    /// deadline so timeouts fire on schedule) and the waiting cores'
    /// per-cycle poll side effects — instruction-fetch icache hits and
    /// `recv_wait_cycles` — are replayed in one batch, keeping every
    /// statistic bit-identical to the naive loop.
    fn try_skip(&mut self, deadline: u64) {
        if self.next_wake <= self.cycle + 1 || self.next_wake == u64::MAX || !self.mesh.idle() {
            return;
        }
        // A deliverable message completes that core's recv on the very
        // next tick — nothing to skip.
        for (i, src) in self.waiting_on.iter().enumerate() {
            if let Some(src) = src {
                if self.mesh.has_delivered(TileId(i as u8), TileId(*src as u8)) {
                    return;
                }
            }
        }
        let mut target = (self.next_wake - 1).min(deadline.saturating_sub(1));
        // Never jump over a scheduled fault: it must be applied at the
        // top of its exact tick, in both engines.
        if let Some(next_fault) = self
            .faults
            .as_ref()
            .and_then(FaultRuntime::next_event_cycle)
        {
            target = target.min(next_fault.saturating_sub(1));
        }
        // Nor over a periodic checkpoint: both engines must refresh it at
        // exactly the same cycle for resumed runs to stay bit-identical.
        if let Some(rb) = self.rollback.as_ref() {
            target = target.min(rb.next_checkpoint.saturating_sub(1));
        }
        if target <= self.cycle {
            return;
        }
        let polls = target - self.cycle;
        if self.waiting > 0 {
            for i in 0..self.waiting_on.len() {
                if self.waiting_on[i].is_none() {
                    continue;
                }
                // `waiting_on[i]` is only populated by `tick` for a
                // loaded, non-halted core; anything else has no poll
                // footprint to batch.
                let Some(core) = self.cores[i].as_mut() else {
                    continue;
                };
                let (addr, words) = core.poll_footprint();
                core.record_skipped_polls(polls);
                self.mems[i].record_repeat_fetches(addr, words, polls);
            }
        }
        self.mesh.fast_forward(target);
        self.skipped += target - self.cycle;
        self.cycle = target;
    }

    /// Cycles the fast path jumped over instead of ticking (diagnostic).
    #[must_use]
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped
    }

    fn check_deadlock(&self) -> Result<(), SimError> {
        if !self.mesh.idle() {
            return Ok(());
        }
        // First pass: allocation-free scan that bails as soon as any core
        // can still make progress.
        let mut stuck = 0usize;
        for (i, core) in self.cores.iter().enumerate() {
            let Some(core) = core else { continue };
            if core.state() == CoreState::Halted {
                continue;
            }
            if self.busy_until[i] > self.cycle {
                return Ok(()); // someone is still executing
            }
            match self.waiting_on[i] {
                Some(src) => {
                    if self.mesh.has_delivered(TileId(i as u8), TileId(src as u8)) {
                        return Ok(()); // message available, will progress
                    }
                    stuck += 1;
                }
                None => return Ok(()), // running normally
            }
        }
        if stuck == 0 {
            return Ok(());
        }
        // Genuine deadlock: only now build the report, with each tile's
        // blocked operation and peer.
        let waiting = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.as_ref().is_some_and(|c| c.state() != CoreState::Halted))
            .filter_map(|(i, _)| {
                self.waiting_on[i].map(|src| Blocked {
                    tile: TileId(i as u8),
                    op: BlockedOp::Recv {
                        from: TileId(src as u8),
                    },
                })
            })
            .collect();
        Err(SimError::Deadlock {
            cycle: self.cycle,
            waiting,
        })
    }

    /// Collects statistics for the elapsed run.
    fn summary(&self, cycles: u64) -> RunSummary {
        let tiles = (0..self.cfg.topo.tiles())
            .map(|i| TileSummary {
                core: self.cores[i]
                    .as_ref()
                    .map(|c| *c.stats())
                    .unwrap_or_default(),
                icache: self.mems[i].icache_stats(),
                dcache: self.mems[i].dcache_stats(),
                spm: self.mems[i].spm_counts(),
                patch_activations: self.activations[i],
            })
            .collect();
        RunSummary {
            cycles,
            tiles,
            mesh: self.mesh.stats(),
            circuits: self.patchnet.circuits().len(),
            windows: self.tracer.windows_snapshot(self.cycle),
        }
    }

    /// Register value of a tile's core (post-run inspection). `None`
    /// for unloaded or out-of-topology tiles.
    #[must_use]
    pub fn core_reg(&self, tile: TileId, r: stitch_isa::Reg) -> Option<u32> {
        self.cores
            .get(tile.index())
            .and_then(Option::as_ref)
            .map(|c| c.reg(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_isa::custom::{CiDescriptor, CiStage, PatchClass};
    use stitch_isa::op::AluOp;
    use stitch_isa::{Cond, ProgramBuilder, Reg};
    use stitch_patch::{AtMaControl, Sel4, Stage1, T1Mode};

    fn stitch_chip() -> Chip {
        Chip::new(ChipConfig::stitch_16())
    }

    #[test]
    fn single_tile_compute() {
        let mut chip = stitch_chip();
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 6);
        b.li(Reg::R2, 7);
        b.mul(Reg::R3, Reg::R1, Reg::R2);
        b.li(Reg::R4, 0x2000);
        b.sw(Reg::R3, Reg::R4, 0);
        b.halt();
        chip.load_program(TileId(0), &b.build().unwrap()).unwrap();
        let s = chip.run(1_000_000).unwrap();
        assert_eq!(chip.peek_u32(TileId(0), 0x2000), 42);
        assert!(s.cycles > 0);
        assert_eq!(s.tiles[0].core.mul_ops, 1);
    }

    #[test]
    fn two_tile_message_passing() {
        let mut chip = stitch_chip();
        // Tile 0: sends [10, 20, 30] to tile 5.
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 0x1000);
        b.li(Reg::R2, 10);
        b.sw(Reg::R2, Reg::R1, 0);
        b.li(Reg::R2, 20);
        b.sw(Reg::R2, Reg::R1, 4);
        b.li(Reg::R2, 30);
        b.sw(Reg::R2, Reg::R1, 8);
        b.li(Reg::R3, 5); // destination
        b.li(Reg::R4, 3); // words
        b.send(Reg::R3, Reg::R1, Reg::R4);
        b.halt();
        chip.load_program(TileId(0), &b.build().unwrap()).unwrap();

        // Tile 5: receives and sums into 0x3000.
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 0x1000);
        b.li(Reg::R3, 0); // source tile
        b.li(Reg::R4, 3);
        b.recv(Reg::R3, Reg::R1, Reg::R4);
        b.lw(Reg::R5, Reg::R1, 0);
        b.lw(Reg::R6, Reg::R1, 4);
        b.lw(Reg::R7, Reg::R1, 8);
        b.add(Reg::R5, Reg::R5, Reg::R6);
        b.add(Reg::R5, Reg::R5, Reg::R7);
        b.li(Reg::R8, 0x3000);
        b.sw(Reg::R5, Reg::R8, 0);
        b.halt();
        chip.load_program(TileId(5), &b.build().unwrap()).unwrap();

        chip.run(1_000_000).unwrap();
        assert_eq!(chip.peek_u32(TileId(5), 0x3000), 60);
    }

    #[test]
    fn deadlock_detected() {
        let mut chip = stitch_chip();
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 1); // wait on tile 1, which never sends
        b.li(Reg::R2, 0x1000);
        b.li(Reg::R3, 1);
        b.recv(Reg::R1, Reg::R2, Reg::R3);
        b.halt();
        chip.load_program(TileId(0), &b.build().unwrap()).unwrap();
        match chip.run(100_000) {
            Err(SimError::Deadlock { cycle, waiting }) => {
                assert!(cycle > 0, "deadlock reports its detection cycle");
                assert_eq!(
                    waiting,
                    vec![Blocked {
                        tile: TileId(0),
                        op: BlockedOp::Recv { from: TileId(1) },
                    }]
                );
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn deadlock_report_is_readable() {
        let err = SimError::Deadlock {
            cycle: 412,
            waiting: vec![
                Blocked {
                    tile: TileId(2),
                    op: BlockedOp::Recv { from: TileId(7) },
                },
                Blocked {
                    tile: TileId(7),
                    op: BlockedOp::Send { to: TileId(2) },
                },
            ],
        };
        assert_eq!(
            err.to_string(),
            "deadlock at cycle 412; tile3 blocked in recv from tile8, tile8 blocked in send to tile3"
        );
    }

    #[test]
    fn custom_instruction_on_local_patch() {
        let mut chip = stitch_chip();
        // Tile 0 has {AT-MA}; build CI: out0 = in0*in1 + in2.
        let control = ControlWord::AtMa(AtMaControl {
            s1: Stage1::default(),
            m_src1: Sel4::In2,
            m_src2: Sel4::In3,
            a2_takes_a1: false,
            a2_op: AluOp::Add,
            a2_src2: Sel4::A1,
        });
        // a1 = or(in0,in0) = in0; product = in2*in3; out0 = product + in0.
        let mut b = ProgramBuilder::new();
        let ci = b.define_ci(CiDescriptor::single(
            CiId(0),
            "madd",
            CiStage::new(PatchClass::AtMa, control.pack().unwrap()),
        ));
        b.li(Reg::R1, 100);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 6);
        b.li(Reg::R4, 7);
        b.custom(ci, &[Reg::R1, Reg::R2, Reg::R3, Reg::R4], &[Reg::R5])
            .unwrap();
        b.halt();
        let program = b.build().unwrap();
        let bindings = HashMap::from([(0u16, CiBinding::Single { control })]);
        chip.load_kernel(TileId(0), &program, bindings).unwrap();
        let s = chip.run(100_000).unwrap();
        assert_eq!(chip.core_reg(TileId(0), Reg::R5), Some(6 * 7 + 100));
        assert_eq!(s.tiles[0].patch_activations, 1);
        assert_eq!(s.total_custom(), 1);
        assert_eq!(s.total_fused(), 0);
    }

    #[test]
    fn fused_custom_instruction() {
        let mut chip = stitch_chip();
        // Fuse tile1 ({AT-AS}) with tile9 ({AT-SA}), paper Fig 5 pair.
        chip.reserve_circuit(TileId(1), TileId(9)).unwrap();
        // First ({AT-AS}): a2 = in2 + in3; s = a2 << 1? shift amount comes
        // from in2... use bypass: out0 = in2 + in3.
        let first = ControlWord::AtAs(stitch_patch::AtAsControl {
            s1: Stage1::default(),
            a2_op: AluOp::Add,
            a2_src1: Sel4::In2,
            a2_src2: Sel4::In3,
            s_op: None,
            s_amt_in3: false,
        });
        // Second ({AT-SA}): receives [p1.out0, p1.out1, in2, in3];
        // s = p1.out0 << in3? amount from in3 (ride-along). Then a2 = s + in2.
        let second = ControlWord::AtSa(stitch_patch::AtSaControl {
            s1: Stage1::default(),
            s_in: Sel4::A1, // a1 = or(in0,in0) = p1.out0
            s_op: Some(AluOp::Sll),
            s_amt_in3: true,
            a2_op: AluOp::Add,
            a2_src2: Sel4::In2,
        });
        let mut b = ProgramBuilder::new();
        let ci = b.define_ci(CiDescriptor::fused(
            CiId(0),
            "addshladd",
            CiStage::new(PatchClass::AtAs, first.pack().unwrap()),
            CiStage::new(PatchClass::AtSa, second.pack().unwrap()),
        ));
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 5); // in2
        b.li(Reg::R4, 2); // in3
        b.custom(ci, &[Reg::R1, Reg::R2, Reg::R3, Reg::R4], &[Reg::R5])
            .unwrap();
        b.halt();
        let program = b.build().unwrap();
        let bindings = HashMap::from([(
            0u16,
            CiBinding::Fused {
                first,
                partner: TileId(9),
                second,
            },
        )]);
        chip.load_kernel(TileId(1), &program, bindings).unwrap();
        let s = chip.run(100_000).unwrap();
        // p1.out0 = 5 + 2 = 7; second: (7 << 2) + 5 = 33.
        assert_eq!(chip.core_reg(TileId(1), Reg::R5), Some(33));
        assert_eq!(s.total_fused(), 1);
        assert_eq!(s.tiles[1].patch_activations, 1);
        assert_eq!(s.tiles[9].patch_activations, 1);
    }

    #[test]
    fn binding_validation_rejects_wrong_class() {
        let mut chip = stitch_chip();
        let control = ControlWord::AtAs(stitch_patch::AtAsControl::default());
        let mut b = ProgramBuilder::new();
        let ci = b.define_ci(CiDescriptor::single(
            CiId(0),
            "x",
            CiStage::new(PatchClass::AtAs, 0),
        ));
        b.custom(ci, &[Reg::R1], &[Reg::R2]).unwrap();
        b.halt();
        // Tile 0 has {AT-MA}, not {AT-AS}.
        let err = chip.load_kernel(
            TileId(0),
            &b.build().unwrap(),
            HashMap::from([(0u16, CiBinding::Single { control })]),
        );
        assert!(matches!(err, Err(SimError::BadBinding { .. })));
    }

    #[test]
    fn binding_validation_requires_circuit() {
        let mut chip = stitch_chip();
        let first = ControlWord::AtAs(stitch_patch::AtAsControl::default());
        let second = ControlWord::AtSa(stitch_patch::AtSaControl::default());
        let mut b = ProgramBuilder::new();
        let ci = b.define_ci(CiDescriptor::fused(
            CiId(0),
            "x",
            CiStage::new(PatchClass::AtAs, 0),
            CiStage::new(PatchClass::AtSa, 0),
        ));
        b.custom(ci, &[Reg::R1], &[Reg::R2]).unwrap();
        b.halt();
        // No circuit reserved between tile1 and tile9.
        let err = chip.load_kernel(
            TileId(1),
            &b.build().unwrap(),
            HashMap::from([(
                0u16,
                CiBinding::Fused {
                    first,
                    partner: TileId(9),
                    second,
                },
            )]),
        );
        assert!(matches!(err, Err(SimError::BadBinding { .. })));
    }

    #[test]
    fn binding_validation_rejects_remote_memory_ops() {
        let mut chip = stitch_chip();
        chip.reserve_circuit(TileId(1), TileId(9)).unwrap();
        let first = ControlWord::AtAs(stitch_patch::AtAsControl::default());
        let second = ControlWord::AtSa(stitch_patch::AtSaControl {
            s1: Stage1 {
                t1: T1Mode::Load,
                ..Stage1::default()
            },
            ..stitch_patch::AtSaControl::default()
        });
        let mut b = ProgramBuilder::new();
        let ci = b.define_ci(CiDescriptor::fused(
            CiId(0),
            "x",
            CiStage::new(PatchClass::AtAs, 0),
            CiStage::new(PatchClass::AtSa, 0),
        ));
        b.custom(ci, &[Reg::R1], &[Reg::R2]).unwrap();
        b.halt();
        let err = chip.load_kernel(
            TileId(1),
            &b.build().unwrap(),
            HashMap::from([(
                0u16,
                CiBinding::Fused {
                    first,
                    partner: TileId(9),
                    second,
                },
            )]),
        );
        assert!(matches!(err, Err(SimError::BadBinding { .. })));
    }

    #[test]
    fn unbound_custom_instruction_faults() {
        let mut chip = stitch_chip();
        let mut b = ProgramBuilder::new();
        let ci = b.define_ci(CiDescriptor::single(
            CiId(0),
            "x",
            CiStage::new(PatchClass::AtMa, 0),
        ));
        b.custom(ci, &[Reg::R1], &[Reg::R2]).unwrap();
        b.halt();
        chip.load_program(TileId(0), &b.build().unwrap()).unwrap();
        match chip.run(10_000) {
            Err(SimError::Cpu {
                tile,
                error: CpuError::UnboundCustom(_),
            }) => {
                assert_eq!(tile, TileId(0));
            }
            other => panic!("expected unbound custom fault, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_ring_of_four_tiles() {
        // tile0 -> tile1 -> tile2 -> tile3, three frames, each adds 1.
        let mut chip = stitch_chip();
        let frames = 3u32;

        // Source (tile 0): sends values 100, 200, 300 to tile 1.
        let mut b = ProgramBuilder::new();
        b.li(Reg::R10, i64::from(frames));
        b.li(Reg::R1, 0x1000);
        b.li(Reg::R2, 100);
        let top = b.bound_label();
        b.sw(Reg::R2, Reg::R1, 0);
        b.li(Reg::R3, 1);
        b.li(Reg::R4, 1);
        b.send(Reg::R3, Reg::R1, Reg::R4);
        b.addi(Reg::R2, Reg::R2, 100);
        b.addi(Reg::R10, Reg::R10, -1);
        b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
        b.halt();
        chip.load_program(TileId(0), &b.build().unwrap()).unwrap();

        // Middle tiles 1, 2: recv from prev, add 1, send to next.
        for t in 1..=2u8 {
            let mut b = ProgramBuilder::new();
            b.li(Reg::R10, i64::from(frames));
            b.li(Reg::R1, 0x1000);
            b.li(Reg::R5, i64::from(t) - 1); // prev tile
            b.li(Reg::R6, i64::from(t) + 1); // next tile
            b.li(Reg::R4, 1);
            let top = b.bound_label();
            b.recv(Reg::R5, Reg::R1, Reg::R4);
            b.lw(Reg::R2, Reg::R1, 0);
            b.addi(Reg::R2, Reg::R2, 1);
            b.sw(Reg::R2, Reg::R1, 0);
            b.send(Reg::R6, Reg::R1, Reg::R4);
            b.addi(Reg::R10, Reg::R10, -1);
            b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
            b.halt();
            chip.load_program(TileId(t), &b.build().unwrap()).unwrap();
        }

        // Sink (tile 3): accumulates into 0x4000.
        let mut b = ProgramBuilder::new();
        b.li(Reg::R10, i64::from(frames));
        b.li(Reg::R1, 0x1000);
        b.li(Reg::R5, 2);
        b.li(Reg::R4, 1);
        b.li(Reg::R7, 0);
        let top = b.bound_label();
        b.recv(Reg::R5, Reg::R1, Reg::R4);
        b.lw(Reg::R2, Reg::R1, 0);
        b.add(Reg::R7, Reg::R7, Reg::R2);
        b.addi(Reg::R10, Reg::R10, -1);
        b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
        b.li(Reg::R8, 0x4000);
        b.sw(Reg::R7, Reg::R8, 0);
        b.halt();
        chip.load_program(TileId(3), &b.build().unwrap()).unwrap();

        chip.run(10_000_000).unwrap();
        // (100+2) + (200+2) + (300+2) = 606
        assert_eq!(chip.peek_u32(TileId(3), 0x4000), 606);
    }

    #[test]
    fn xbar_store_configures_patchnet() {
        let mut chip = stitch_chip();
        let mut b = ProgramBuilder::new();
        // Write "North drives East" into switch 5's register:
        // out East is index 1; in North code 0 -> bits [5:3] = 0; all other
        // outputs unconnected (7).
        let mut word: i64 = 0;
        for out in 0..6 {
            let code = if out == 1 { 0 } else { 7 };
            word |= code << (3 * out);
        }
        b.li(Reg::R1, i64::from(stitch_isa::memmap::XBAR_CFG_BASE as i32));
        b.li(Reg::R2, word);
        b.sw(Reg::R2, Reg::R1, 5 * 4);
        b.halt();
        chip.load_program(TileId(0), &b.build().unwrap()).unwrap();
        chip.run(10_000).unwrap();
        use stitch_noc::PortDir;
        assert_eq!(
            chip.patchnet().switch(TileId(5)).driver(PortDir::East),
            Some(PortDir::North)
        );
    }

    /// The `madd` kernel from `custom_instruction_on_local_patch`:
    /// `R5 = 6*7 + 100` via one CI on tile 0's {AT-MA} patch.
    fn madd_kernel() -> (Program, HashMap<u16, CiBinding>) {
        let control = ControlWord::AtMa(AtMaControl {
            s1: Stage1::default(),
            m_src1: Sel4::In2,
            m_src2: Sel4::In3,
            a2_takes_a1: false,
            a2_op: AluOp::Add,
            a2_src2: Sel4::A1,
        });
        let mut b = ProgramBuilder::new();
        let ci = b.define_ci(CiDescriptor::single(
            CiId(0),
            "madd",
            CiStage::new(PatchClass::AtMa, control.pack().unwrap()),
        ));
        b.li(Reg::R1, 100);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 6);
        b.li(Reg::R4, 7);
        b.custom(ci, &[Reg::R1, Reg::R2, Reg::R3, Reg::R4], &[Reg::R5])
            .unwrap();
        b.halt();
        let bindings = HashMap::from([(0u16, CiBinding::Single { control })]);
        (b.build().unwrap(), bindings)
    }

    #[test]
    fn failed_patch_demotes_to_software_with_identical_result() {
        let (program, bindings) = madd_kernel();
        let mut healthy = stitch_chip();
        healthy
            .load_kernel(TileId(0), &program, bindings.clone())
            .unwrap();
        let hs = healthy.run(100_000).unwrap();

        let mut faulted = stitch_chip();
        faulted.set_fault_plan(FaultPlan::new(1).with(
            0,
            FaultKind::PatchFail {
                tile: TileId(0),
                until: None,
            },
        ));
        faulted.load_kernel(TileId(0), &program, bindings).unwrap();
        let fs = faulted.run(100_000).unwrap();

        // Same architectural result, software cycle cost, no activation.
        assert_eq!(faulted.core_reg(TileId(0), Reg::R5), Some(6 * 7 + 100));
        assert_eq!(fs.tiles[0].patch_activations, 0);
        assert_eq!(fs.tiles[0].core.demoted_ops, 1);
        assert_eq!(faulted.fault_stats().demotions, 1);
        assert!(fs.cycles > hs.cycles, "demotion must cost extra cycles");
    }

    #[test]
    fn strict_mode_reports_typed_fault() {
        let (program, bindings) = madd_kernel();
        let mut chip = stitch_chip();
        chip.set_fault_plan(
            FaultPlan::new(2)
                .with(
                    0,
                    FaultKind::PatchFail {
                        tile: TileId(0),
                        until: None,
                    },
                )
                .strict(),
        );
        chip.load_kernel(TileId(0), &program, bindings).unwrap();
        match chip.run(100_000) {
            Err(SimError::Faulted { tile, kind, .. }) => {
                assert_eq!(tile, TileId(0));
                assert_eq!(kind, FaultedKind::PatchDead);
            }
            other => panic!("expected typed fault, got {other:?}"),
        }
    }

    #[test]
    fn severed_circuit_demotes_fused_ci_after_watchdog() {
        // Same fused kernel as `fused_custom_instruction`, but a switch on
        // the circuit dies before the CI issues.
        let mut chip = stitch_chip();
        chip.reserve_circuit(TileId(1), TileId(9)).unwrap();
        let first = ControlWord::AtAs(stitch_patch::AtAsControl {
            s1: Stage1::default(),
            a2_op: AluOp::Add,
            a2_src1: Sel4::In2,
            a2_src2: Sel4::In3,
            s_op: None,
            s_amt_in3: false,
        });
        let second = ControlWord::AtSa(stitch_patch::AtSaControl {
            s1: Stage1::default(),
            s_in: Sel4::A1,
            s_op: Some(AluOp::Sll),
            s_amt_in3: true,
            a2_op: AluOp::Add,
            a2_src2: Sel4::In2,
        });
        let mut b = ProgramBuilder::new();
        let ci = b.define_ci(CiDescriptor::fused(
            CiId(0),
            "addshladd",
            CiStage::new(PatchClass::AtAs, first.pack().unwrap()),
            CiStage::new(PatchClass::AtSa, second.pack().unwrap()),
        ));
        b.li(Reg::R1, 0);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 5);
        b.li(Reg::R4, 2);
        b.custom(ci, &[Reg::R1, Reg::R2, Reg::R3, Reg::R4], &[Reg::R5])
            .unwrap();
        b.halt();
        chip.set_fault_plan(FaultPlan::new(3).with(
            0,
            FaultKind::SwitchFail {
                tile: TileId(9),
                until: None,
            },
        ));
        chip.load_kernel(
            TileId(1),
            &b.build().unwrap(),
            HashMap::from([(
                0u16,
                CiBinding::Fused {
                    first,
                    partner: TileId(9),
                    second,
                },
            )]),
        )
        .unwrap();
        let s = chip.run(100_000).unwrap();
        // Same value as the healthy fused run, but demoted: the local
        // patch computed stage one, software emulated stage two.
        assert_eq!(chip.core_reg(TileId(1), Reg::R5), Some(33));
        assert_eq!(s.total_fused(), 0);
        assert_eq!(s.tiles[1].core.demoted_ops, 1);
        assert_eq!(s.tiles[1].patch_activations, 1);
        assert_eq!(s.tiles[9].patch_activations, 0);
        let stats = chip.fault_stats();
        assert_eq!(stats.watchdog_trips, 1);
        assert_eq!(stats.demotions, 1);
        assert_eq!(stats.injected, 1);
    }

    #[test]
    fn transient_patch_fault_recovers() {
        // Patch on tile 0 is down for cycles [0, 40); a CI executed after
        // recovery runs on the patch again.
        let (program, bindings) = madd_kernel();
        let mut chip = stitch_chip();
        chip.set_fault_plan(FaultPlan::new(4).with(
            0,
            FaultKind::PatchFail {
                tile: TileId(0),
                until: Some(1),
            },
        ));
        chip.load_kernel(TileId(0), &program, bindings).unwrap();
        let s = chip.run(100_000).unwrap();
        // The fault recovered at cycle 1, long before the CI issued
        // (four `li` instructions precede it).
        assert_eq!(chip.core_reg(TileId(0), Reg::R5), Some(142));
        assert_eq!(s.tiles[0].core.demoted_ops, 0);
        assert_eq!(s.tiles[0].patch_activations, 1);
    }

    #[test]
    fn config_upset_scrubs_at_fixed_cost() {
        let (program, bindings) = madd_kernel();
        let mut healthy = stitch_chip();
        healthy
            .load_kernel(TileId(0), &program, bindings.clone())
            .unwrap();
        let hs = healthy.run(100_000).unwrap();

        let mut upset = stitch_chip();
        upset.set_fault_plan(FaultPlan::new(5).with(0, FaultKind::ConfigUpset { tile: TileId(0) }));
        upset.load_kernel(TileId(0), &program, bindings).unwrap();
        let us = upset.run(100_000).unwrap();

        assert_eq!(upset.core_reg(TileId(0), Reg::R5), Some(142));
        assert_eq!(upset.fault_stats().scrubs, 1);
        // The scrub charges exactly its fixed cost on the core counter
        // (wall-clock grows one less: the issue cycle overlaps).
        assert_eq!(
            us.tiles[0].core.cycles,
            hs.tiles[0].core.cycles + u64::from(crate::faults::CONFIG_SCRUB_CYCLES)
        );
        assert!(us.cycles > hs.cycles);
    }
}
