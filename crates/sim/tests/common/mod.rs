//! Shared randomized workload generators for the integration-test
//! binaries (`equivalence.rs`, `faults.rs`).
//!
//! Each generator is fully deterministic in its seed, so a failing case
//! reproduces from the seed alone.

#![allow(dead_code)] // each test binary uses its own subset

use std::collections::HashMap;
use stitch_isa::custom::{CiDescriptor, CiId, CiStage, PatchClass};
use stitch_isa::op::AluOp;
use stitch_isa::{Cond, Program, ProgramBuilder, Reg};
use stitch_patch::{AtAsControl, AtSaControl, ControlWord, Sel4, Stage1};
use stitch_sim::{Chip, ChipConfig, CiBinding, SimRng, TileId};

/// Address the pipeline sink writes its accumulated checksum to.
pub const SINK_ADDR: u32 = 0x4000;

/// Emits a compute loop with a random trip count: multi-cycle `mul`s
/// create the busy gaps the fast path is designed to skip.
fn compute_pad(b: &mut ProgramBuilder, rng: &mut SimRng) {
    let n = 1 + rng.index(40) as i64;
    b.li(Reg::R20, n);
    let top = b.bound_label();
    b.mul(Reg::R21, Reg::R20, Reg::R20);
    b.add(Reg::R22, Reg::R22, Reg::R21);
    b.addi(Reg::R20, Reg::R20, -1);
    b.branch(Cond::Ne, Reg::R20, Reg::R0, top);
}

/// A random linear pipeline: `chain[0]` produces `frames` messages of
/// `len` words, middle tiles bump the first word and forward, the last
/// tile accumulates into [`SINK_ADDR`]. Always terminates, so any
/// Timeout/Deadlock on a fault-free run is a bug.
pub fn random_pipeline(seed: u64) -> Vec<(TileId, Program)> {
    let mut rng = SimRng::new(seed);
    let k = 2 + rng.index(6); // 2..=7 tiles in the chain
    let mut tiles: Vec<u8> = (0..16).collect();
    for i in 0..k {
        let j = i + rng.index(16 - i);
        tiles.swap(i, j);
    }
    let chain = &tiles[..k];
    let frames = 1 + rng.index(4) as i64;
    let len = 1 + rng.index(8) as i64; // up to 2 mesh packets
    let mut programs = Vec::new();

    // Source.
    let mut b = ProgramBuilder::new();
    b.li(Reg::R10, frames);
    b.li(Reg::R1, 0x1000);
    b.li(Reg::R2, 1 + rng.index(1000) as i64);
    b.li(Reg::R3, i64::from(chain[1]));
    b.li(Reg::R4, len);
    let top = b.bound_label();
    compute_pad(&mut b, &mut rng);
    for w in 0..len {
        b.sw(Reg::R2, Reg::R1, (w * 4) as i32);
    }
    b.send(Reg::R3, Reg::R1, Reg::R4);
    b.addi(Reg::R2, Reg::R2, 7);
    b.addi(Reg::R10, Reg::R10, -1);
    b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
    b.halt();
    programs.push((TileId(chain[0]), b.build().expect("source program")));

    // Middles.
    for m in 1..k - 1 {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R10, frames);
        b.li(Reg::R1, 0x1000);
        b.li(Reg::R5, i64::from(chain[m - 1]));
        b.li(Reg::R6, i64::from(chain[m + 1]));
        b.li(Reg::R4, len);
        let top = b.bound_label();
        b.recv(Reg::R5, Reg::R1, Reg::R4);
        b.lw(Reg::R2, Reg::R1, 0);
        b.addi(Reg::R2, Reg::R2, 1);
        b.sw(Reg::R2, Reg::R1, 0);
        compute_pad(&mut b, &mut rng);
        b.send(Reg::R6, Reg::R1, Reg::R4);
        b.addi(Reg::R10, Reg::R10, -1);
        b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
        b.halt();
        programs.push((TileId(chain[m]), b.build().expect("middle program")));
    }

    // Sink.
    let mut b = ProgramBuilder::new();
    b.li(Reg::R10, frames);
    b.li(Reg::R1, 0x1000);
    b.li(Reg::R5, i64::from(chain[k - 2]));
    b.li(Reg::R4, len);
    b.li(Reg::R7, 0);
    let top = b.bound_label();
    b.recv(Reg::R5, Reg::R1, Reg::R4);
    b.lw(Reg::R2, Reg::R1, 0);
    b.add(Reg::R7, Reg::R7, Reg::R2);
    compute_pad(&mut b, &mut rng);
    b.addi(Reg::R10, Reg::R10, -1);
    b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
    b.li(Reg::R8, SINK_ADDR as i64);
    b.sw(Reg::R7, Reg::R8, 0);
    b.halt();
    programs.push((TileId(chain[k - 1]), b.build().expect("sink program")));

    programs
}

/// A chip loaded with [`random_pipeline`]`(seed)`.
pub fn pipeline_chip(seed: u64) -> Chip {
    let mut chip = Chip::new(ChipConfig::stitch_16());
    for (tile, program) in random_pipeline(seed) {
        chip.load_program(tile, &program).unwrap();
    }
    chip
}

/// Sink tile of [`random_pipeline`]`(seed)` — where the checksum lands.
pub fn pipeline_sink(seed: u64) -> TileId {
    random_pipeline(seed).last().expect("nonempty pipeline").0
}

/// Fused custom-instruction workload (paper Fig 5 pair {AT-AS}+{AT-SA}):
/// tile 1 iterates a fused CI (partner tile 9) with per-iteration inputs
/// while tile 0 runs an independent compute loop. The CI accumulates
/// into R9 of tile 1.
pub fn fused_chip(seed: u64) -> Chip {
    let mut rng = SimRng::new(seed);
    let mut chip = Chip::new(ChipConfig::stitch_16());
    chip.reserve_circuit(TileId(1), TileId(9)).expect("circuit");
    let first = ControlWord::AtAs(AtAsControl {
        s1: Stage1::default(),
        a2_op: AluOp::Add,
        a2_src1: Sel4::In2,
        a2_src2: Sel4::In3,
        s_op: None,
        s_amt_in3: false,
    });
    let second = ControlWord::AtSa(AtSaControl {
        s1: Stage1::default(),
        s_in: Sel4::A1,
        s_op: Some(AluOp::Sll),
        s_amt_in3: true,
        a2_op: AluOp::Add,
        a2_src2: Sel4::In2,
    });
    let mut b = ProgramBuilder::new();
    let ci = b.define_ci(CiDescriptor::fused(
        CiId(0),
        "addshladd",
        CiStage::new(PatchClass::AtAs, first.pack().expect("pack")),
        CiStage::new(PatchClass::AtSa, second.pack().expect("pack")),
    ));
    let iters = 4 + rng.index(12) as i64;
    b.li(Reg::R10, iters);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, 0);
    b.li(Reg::R3, 1 + rng.index(50) as i64);
    b.li(Reg::R4, rng.index(3) as i64);
    b.li(Reg::R9, 0);
    let top = b.bound_label();
    b.custom(ci, &[Reg::R1, Reg::R2, Reg::R3, Reg::R4], &[Reg::R5])
        .expect("ci");
    b.add(Reg::R9, Reg::R9, Reg::R5);
    b.addi(Reg::R3, Reg::R3, 3);
    b.addi(Reg::R10, Reg::R10, -1);
    b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
    b.halt();
    let bindings = HashMap::from([(
        0u16,
        CiBinding::Fused {
            first,
            partner: TileId(9),
            second,
        },
    )]);
    chip.load_kernel(TileId(1), &b.build().expect("fused program"), bindings)
        .expect("load fused kernel");

    // Independent compute on another tile so the chains interleave.
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, 10 + rng.index(60) as i64);
    let top = b.bound_label();
    b.mul(Reg::R2, Reg::R1, Reg::R1);
    b.addi(Reg::R1, Reg::R1, -1);
    b.branch(Cond::Ne, Reg::R1, Reg::R0, top);
    b.halt();
    chip.load_program(TileId(0), &b.build().expect("compute program"))
        .unwrap();
    chip
}
