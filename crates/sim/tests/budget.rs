//! Boundary tests for [`RunBudget`] — one per resource axis.
//!
//! Each test pins the inclusive-cap contract on *both* engines: a run
//! may consume exactly `limit` units of a resource and still succeed;
//! the first cycle that ends with the counter above the cap (or, for
//! the `cycles` axis, the first cycle past the allowance) fails with
//! `SimError::BudgetExhausted`, bit-identically between [`Chip::run`]
//! and [`Chip::run_reference`].

use stitch_isa::{Cond, Program, ProgramBuilder, Reg};
use stitch_sim::{BudgetResource, Chip, ChipConfig, RunBudget, SimError, TileId};
use stitch_trace::TraceConfig;

const MAX: u64 = 10_000_000;

/// A single-tile compute loop with a deterministic cycle count.
fn busy_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, iters);
    let top = b.bound_label();
    b.mul(Reg::R2, Reg::R1, Reg::R1);
    b.addi(Reg::R1, Reg::R1, -1);
    b.branch(Cond::Ne, Reg::R1, Reg::R0, top);
    b.halt();
    b.build().expect("busy program")
}

/// Touches `pages` distinct DRAM pages with one word store each.
fn page_toucher(pages: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, 0x10_0000); // well clear of program data, far from SPM
    b.li(Reg::R2, pages);
    b.li(Reg::R3, 4096); // DRAM page stride
    let top = b.bound_label();
    b.sw(Reg::R2, Reg::R1, 0);
    b.add(Reg::R1, Reg::R1, Reg::R3);
    b.addi(Reg::R2, Reg::R2, -1);
    b.branch(Cond::Ne, Reg::R2, Reg::R0, top);
    b.halt();
    b.build().expect("page toucher")
}

/// Tile 0 sends `frames` one-packet messages to tile 1, which receives
/// them all; every packet is drained, so in-flight stays low.
fn ping_programs(frames: i64) -> Vec<(TileId, Program)> {
    let mut tx = ProgramBuilder::new();
    tx.li(Reg::R1, frames);
    tx.li(Reg::R2, 0x1000);
    tx.li(Reg::R3, 1); // dest tile
    tx.li(Reg::R4, 1); // words per message
    let top = tx.bound_label();
    tx.sw(Reg::R1, Reg::R2, 0);
    tx.send(Reg::R3, Reg::R2, Reg::R4);
    tx.addi(Reg::R1, Reg::R1, -1);
    tx.branch(Cond::Ne, Reg::R1, Reg::R0, top);
    tx.halt();

    let mut rx = ProgramBuilder::new();
    rx.li(Reg::R1, frames);
    rx.li(Reg::R2, 0x2000);
    rx.li(Reg::R5, 0); // source tile
    rx.li(Reg::R4, 1);
    let top = rx.bound_label();
    rx.recv(Reg::R5, Reg::R2, Reg::R4);
    rx.addi(Reg::R1, Reg::R1, -1);
    rx.branch(Cond::Ne, Reg::R1, Reg::R0, top);
    rx.halt();

    vec![
        (TileId(0), tx.build().expect("tx")),
        (TileId(1), rx.build().expect("rx")),
    ]
}

/// Tile 0 fires `frames` packets at tile 1, which never receives: the
/// whole burst piles up in flight.
fn flood_programs(frames: i64) -> Vec<(TileId, Program)> {
    let mut tx = ProgramBuilder::new();
    tx.li(Reg::R1, frames);
    tx.li(Reg::R2, 0x1000);
    tx.li(Reg::R3, 1);
    tx.li(Reg::R4, 1);
    let top = tx.bound_label();
    tx.send(Reg::R3, Reg::R2, Reg::R4);
    tx.addi(Reg::R1, Reg::R1, -1);
    tx.branch(Cond::Ne, Reg::R1, Reg::R0, top);
    tx.halt();
    vec![(TileId(0), tx.build().expect("flood tx"))]
}

fn chip_with(programs: &[(TileId, Program)], budget: RunBudget) -> Chip {
    let mut chip = Chip::new(ChipConfig::stitch_16());
    for (tile, program) in programs {
        chip.load_program(*tile, program).expect("in-range tile");
    }
    chip.set_budget(budget);
    chip
}

/// Runs `programs` under `budget` on both engines and asserts the two
/// outcomes are bit-identical, returning the shared outcome.
fn both_engines(
    programs: &[(TileId, Program)],
    budget: RunBudget,
    trace: bool,
) -> Result<stitch_sim::RunSummary, SimError> {
    let mut fast = chip_with(programs, budget);
    let mut reference = chip_with(programs, budget);
    if trace {
        fast.set_trace(&TraceConfig::full(16));
        reference.set_trace(&TraceConfig::full(16));
    }
    let a = fast.run(MAX);
    let b = reference.run_reference(MAX);
    assert_eq!(a, b, "engines disagree under budget {budget:?}");
    a
}

fn expect_exhausted(
    outcome: Result<stitch_sim::RunSummary, SimError>,
    resource: BudgetResource,
    limit: u64,
) -> u64 {
    match outcome {
        Err(SimError::BudgetExhausted {
            resource: r,
            limit: l,
            at_cycle,
        }) => {
            assert_eq!(r, resource);
            assert_eq!(l, limit);
            at_cycle
        }
        other => panic!("expected {resource} budget exhaustion at cap {limit}, got {other:?}"),
    }
}

#[test]
fn cycle_budget_boundary() {
    let programs = [(TileId(0), busy_program(64))];
    // Establish the exact fault-free cycle count first.
    let n = both_engines(&programs, RunBudget::unlimited(), false)
        .expect("uncapped run halts")
        .cycles;
    assert!(n > 2, "workload too small to probe the boundary");

    // Exactly enough cycles: the run completes.
    let exact = RunBudget {
        cycles: Some(n),
        ..RunBudget::unlimited()
    };
    let s = both_engines(&programs, exact, false).expect("cap == need succeeds");
    assert_eq!(s.cycles, n);

    // One short: fails after consuming precisely the allowance.
    let short = RunBudget {
        cycles: Some(n - 1),
        ..RunBudget::unlimited()
    };
    let at = expect_exhausted(
        both_engines(&programs, short, false),
        BudgetResource::Cycles,
        n - 1,
    );
    assert_eq!(at, n - 1, "cycle budget must fail exactly at the cap");

    // A tight cap trips long before the workload finishes.
    let tiny = RunBudget {
        cycles: Some(2),
        ..RunBudget::unlimited()
    };
    let at = expect_exhausted(
        both_engines(&programs, tiny, false),
        BudgetResource::Cycles,
        2,
    );
    assert_eq!(at, 2);
}

#[test]
fn memory_page_budget_boundary() {
    let programs = [(TileId(0), page_toucher(24))];
    // Count the pages the fault-free run leaves resident (program data
    // pages included — the cap covers everything the guest allocates).
    let mut probe = chip_with(&programs, RunBudget::unlimited());
    probe.run(MAX).expect("uncapped run halts");
    let pages = probe.resident_pages();
    assert!(pages >= 24, "expected at least the 24 touched pages");

    let exact = RunBudget {
        memory_pages: Some(pages),
        ..RunBudget::unlimited()
    };
    both_engines(&programs, exact, false).expect("cap == resident pages succeeds");

    let short = RunBudget {
        memory_pages: Some(pages - 1),
        ..RunBudget::unlimited()
    };
    expect_exhausted(
        both_engines(&programs, short, false),
        BudgetResource::MemoryPages,
        pages - 1,
    );
}

#[test]
fn message_budget_boundary() {
    let programs = ping_programs(16);
    let sent = both_engines(&programs, RunBudget::unlimited(), false)
        .expect("uncapped run halts")
        .mesh
        .packets_sent;
    assert_eq!(sent, 16);

    let exact = RunBudget {
        messages: Some(sent),
        ..RunBudget::unlimited()
    };
    both_engines(&programs, exact, false).expect("cap == packets sent succeeds");

    let short = RunBudget {
        messages: Some(sent - 1),
        ..RunBudget::unlimited()
    };
    expect_exhausted(
        both_engines(&programs, short, false),
        BudgetResource::Messages,
        sent - 1,
    );
}

#[test]
fn in_flight_message_budget_boundary() {
    // Drained traffic never exceeds a generous in-flight cap...
    let drained = RunBudget {
        in_flight_messages: Some(8),
        ..RunBudget::unlimited()
    };
    both_engines(&ping_programs(16), drained, false).expect("drained traffic stays under cap");

    // ...but an unreceived burst trips it.
    let tight = RunBudget {
        in_flight_messages: Some(3),
        ..RunBudget::unlimited()
    };
    expect_exhausted(
        both_engines(&flood_programs(16), tight, false),
        BudgetResource::InFlightMessages,
        3,
    );
}

#[test]
fn trace_event_budget_boundary() {
    let programs = [(TileId(0), busy_program(48))];
    // Count the events of a fault-free traced run.
    let mut probe = chip_with(&programs, RunBudget::unlimited());
    probe.set_trace(&TraceConfig::full(16));
    probe.run(MAX).expect("uncapped traced run halts");
    let events = probe.trace_events_emitted();
    assert!(events > 8, "traced run should emit a healthy event stream");

    let exact = RunBudget {
        trace_events: Some(events),
        ..RunBudget::unlimited()
    };
    both_engines(&programs, exact, true).expect("cap == events emitted succeeds");

    let short = RunBudget {
        trace_events: Some(events - 1),
        ..RunBudget::unlimited()
    };
    expect_exhausted(
        both_engines(&programs, short, true),
        BudgetResource::TraceEvents,
        events - 1,
    );

    // The axis is inert while tracing is off: no events, no trips.
    let untraced = both_engines(&programs, short, false);
    untraced.expect("trace event cap must not fire on an untraced run");
}

#[test]
fn snapshot_byte_budget_boundary() {
    let programs = [(TileId(0), page_toucher(24))];
    // Measure a periodic checkpoint of the fault-free run.
    let mut probe = chip_with(&programs, RunBudget::unlimited());
    probe.enable_rollback(64, 4);
    probe.run(MAX).expect("uncapped rollback run halts");
    let bytes = probe
        .checkpoint_bytes()
        .expect("periodic checkpointing left a snapshot");
    assert!(bytes > 0);

    // A cap below the working-set snapshot size trips on both engines.
    let tight = RunBudget {
        snapshot_bytes: Some(bytes / 2),
        ..RunBudget::unlimited()
    };
    let mut fast = chip_with(&programs, tight);
    fast.enable_rollback(64, 4);
    let mut reference = chip_with(&programs, tight);
    reference.enable_rollback(64, 4);
    let a = fast.run(MAX);
    let b = reference.run_reference(MAX);
    assert_eq!(a, b, "engines disagree on snapshot byte budget");
    expect_exhausted(a, BudgetResource::SnapshotBytes, bytes / 2);

    // A cap at or above the largest checkpoint never fires.
    let roomy = RunBudget {
        snapshot_bytes: Some(bytes * 2),
        ..RunBudget::unlimited()
    };
    let mut ok = chip_with(&programs, roomy);
    ok.enable_rollback(64, 4);
    ok.run(MAX).expect("roomy snapshot cap succeeds");
}

#[test]
fn unlimited_budget_is_inert() {
    assert!(RunBudget::unlimited().is_unlimited());
    let programs = ping_programs(4);
    let plain = both_engines(&programs, RunBudget::unlimited(), false).expect("plain run");
    let mut chip = chip_with(&programs, RunBudget::unlimited());
    assert_eq!(chip.budget(), RunBudget::unlimited());
    let s = chip.run(MAX).expect("unlimited budget run");
    assert_eq!(s, plain, "an unlimited budget must not perturb the run");
}
