//! Golden equivalence tests for the event-driven fast path.
//!
//! `Chip::run` skips cycles whenever the mesh is idle, no core is polling
//! `recv`, and every live core is busy beyond the next cycle. These tests
//! pin the invariant: over randomized multi-tile message-passing pipelines
//! and fused custom-instruction workloads — with and without an active
//! [`FaultPlan`] — the fast path must produce a `RunSummary` bit-identical
//! to the naive cycle-by-cycle `Chip::run_reference` loop.

mod common;

use common::{fused_chip, pipeline_chip};
use stitch_isa::{Cond, ProgramBuilder, Reg};
use stitch_sim::{Chip, ChipConfig, FaultPlan, FaultSpace, TileId};

const BUDGET: u64 = 50_000_000;

#[test]
fn fast_path_matches_reference_on_random_pipelines() {
    for seed in 0..24u64 {
        let mut fast = pipeline_chip(0xE0_0100 + seed);
        let mut naive = pipeline_chip(0xE0_0100 + seed);
        let a = fast.run(BUDGET).expect("fast run terminates");
        let b = naive
            .run_reference(BUDGET)
            .expect("reference run terminates");
        assert_eq!(a, b, "summary diverges for seed {seed}");
        assert_eq!(
            fast.cycle(),
            naive.cycle(),
            "clock diverges for seed {seed}"
        );
    }
}

#[test]
fn fast_path_matches_reference_on_fused_ci_workloads() {
    for seed in 0..16u64 {
        let mut fast = fused_chip(0xF5_ED00 + seed);
        let mut naive = fused_chip(0xF5_ED00 + seed);
        let a = fast.run(BUDGET).expect("fast run terminates");
        let b = naive
            .run_reference(BUDGET)
            .expect("reference run terminates");
        assert_eq!(a, b, "summary diverges for seed {seed}");
        assert!(
            a.total_fused() > 0,
            "workload must exercise fusion (seed {seed})"
        );
    }
}

/// The translated (basic-block micro-op) engine is on by default in
/// `Chip::run`; with it forced off, `run` degrades to the pure
/// interpreter + `try_skip` fast path. Both must agree bit-for-bit —
/// and the translated side must actually have fired, otherwise this
/// test is vacuous.
#[test]
fn translated_engine_fires_and_matches_interpreter() {
    for seed in 0..8u64 {
        let mut translated = pipeline_chip(0xE0_0100 + seed);
        let mut interp = pipeline_chip(0xE0_0100 + seed);
        interp.set_translation(false);
        assert!(translated.translation_enabled());
        assert!(!interp.translation_enabled());
        let a = translated.run(BUDGET).expect("translated run terminates");
        let b = interp.run(BUDGET).expect("interpreted run terminates");
        assert_eq!(a, b, "summary diverges for seed {seed}");
        assert_eq!(
            translated.cycle(),
            interp.cycle(),
            "clock diverges for seed {seed}"
        );
        let ts = translated.translation_stats();
        assert!(ts.windows > 0, "no window fired (seed {seed})");
        assert!(ts.uops_executed > 0, "no translated uops (seed {seed})");
        assert!(ts.blocks_translated > 0, "nothing lowered (seed {seed})");
        assert_eq!(interp.translation_stats().uops_executed, 0);
    }
    // Fused CI workloads exercise the custom-instruction inline path
    // and the translation cache (tight CI loops re-enter their block).
    for seed in 0..8u64 {
        let mut translated = fused_chip(0xF5_ED00 + seed);
        let mut interp = fused_chip(0xF5_ED00 + seed);
        interp.set_translation(false);
        let a = translated.run(BUDGET).expect("translated run terminates");
        let b = interp.run(BUDGET).expect("interpreted run terminates");
        assert_eq!(a, b, "fused summary diverges for seed {seed}");
        let ts = translated.translation_stats();
        assert!(
            ts.cache_hits > ts.blocks_translated,
            "loops must mostly hit the translation cache (seed {seed}: {ts:?})"
        );
    }
}

#[test]
fn fast_path_is_deterministic() {
    for seed in [3u64, 11, 19] {
        let mut first = pipeline_chip(0xD0_0D00 + seed);
        let mut second = pipeline_chip(0xD0_0D00 + seed);
        let a = first.run(BUDGET).expect("run");
        let b = second.run(BUDGET).expect("run");
        assert_eq!(a, b, "two identical runs diverge for seed {seed}");
        assert_eq!(
            first.peek_u32(TileId(0), 0x1000),
            second.peek_u32(TileId(0), 0x1000)
        );
    }
}

/// The fast path must also reproduce reference *failure* behavior:
/// deadlocks are reported with identical waiting sets and cycle counts.
#[test]
fn fast_path_matches_reference_on_deadlock() {
    let deadlocked = || {
        let mut chip = Chip::new(ChipConfig::stitch_16());
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 7); // tile 7 never sends
        b.li(Reg::R2, 0x1000);
        b.li(Reg::R3, 1);
        b.recv(Reg::R1, Reg::R2, Reg::R3);
        b.halt();
        chip.load_program(TileId(2), &b.build().expect("program"))
            .unwrap();
        chip
    };
    let mut fast = deadlocked();
    let mut naive = deadlocked();
    let a = fast.run(100_000).expect_err("deadlock");
    let b = naive.run_reference(100_000).expect_err("deadlock");
    assert_eq!(a, b);
    assert_eq!(fast.cycle(), naive.cycle());
}

/// Timeouts fire after exactly the same budget on both paths.
#[test]
fn fast_path_matches_reference_on_timeout() {
    let endless = || {
        let mut chip = Chip::new(ChipConfig::stitch_16());
        let mut b = ProgramBuilder::new();
        let top = b.bound_label();
        b.mul(Reg::R1, Reg::R2, Reg::R3);
        b.branch(Cond::Eq, Reg::R0, Reg::R0, top);
        b.halt();
        chip.load_program(TileId(4), &b.build().expect("program"))
            .unwrap();
        chip
    };
    let mut fast = endless();
    let mut naive = endless();
    let a = fast.run(10_000).expect_err("timeout");
    let b = naive.run_reference(10_000).expect_err("timeout");
    assert_eq!(a, b);
    assert_eq!(fast.cycle(), naive.cycle());
}

/// Compute-only faults (patch death, switch death, config upsets) must be
/// invisible to the fast path's cycle skipping: both engines apply each
/// event at exactly its scheduled cycle — including events that land
/// inside an idle window the fast path would otherwise elide — so
/// summaries, clocks, and fault counters all stay bit-identical.
#[test]
fn fast_path_matches_reference_under_compute_faults() {
    // Short horizon so faults land while the CI loop is still running.
    let space = FaultSpace {
        tiles: 10, // covers the fused pair on tiles 1 and 9
        horizon: 500,
        max_events: 4,
        allow_transient: true,
        ..FaultSpace::default()
    }
    .compute_only();
    for seed in 0..16u64 {
        let plan = FaultPlan::random(0xFA_0000 + seed, &space);
        let mut fast = fused_chip(0xF5_ED00 + seed);
        let mut naive = fused_chip(0xF5_ED00 + seed);
        fast.set_fault_plan(plan.clone());
        naive.set_fault_plan(plan);
        let a = fast.run(BUDGET).expect("fast run terminates");
        let b = naive
            .run_reference(BUDGET)
            .expect("reference run terminates");
        assert_eq!(a, b, "summary diverges under faults for seed {seed}");
        assert_eq!(
            fast.cycle(),
            naive.cycle(),
            "clock diverges under faults for seed {seed}"
        );
        assert_eq!(
            fast.fault_stats(),
            naive.fault_stats(),
            "fault bookkeeping diverges for seed {seed}"
        );
    }
}

/// Full fault space, link faults included, over message-passing
/// pipelines: both engines must agree bit-for-bit on the outcome —
/// identical summaries on success, identical typed errors (Timeout,
/// Deadlock, Faulted) otherwise — and on the clock and fault counters.
#[test]
fn fast_path_matches_reference_under_link_faults() {
    let space = FaultSpace {
        tiles: 16,
        horizon: 20_000,
        max_events: 4,
        compute_only: false,
        allow_transient: true,
    };
    for seed in 0..16u64 {
        let plan = FaultPlan::random(0x11_F000 + seed, &space);
        let mut fast = pipeline_chip(0xE0_0100 + seed);
        let mut naive = pipeline_chip(0xE0_0100 + seed);
        fast.set_fault_plan(plan.clone());
        naive.set_fault_plan(plan);
        let a = fast.run(BUDGET);
        let b = naive.run_reference(BUDGET);
        assert_eq!(a, b, "outcome diverges under link faults for seed {seed}");
        assert_eq!(
            fast.cycle(),
            naive.cycle(),
            "clock diverges under link faults for seed {seed}"
        );
        assert_eq!(
            fast.fault_stats(),
            naive.fault_stats(),
            "fault bookkeeping diverges for seed {seed}"
        );
    }
}
