//! Golden equivalence tests for the event-driven fast path.
//!
//! `Chip::run` skips cycles whenever the mesh is idle, no core is polling
//! `recv`, and every live core is busy beyond the next cycle. These tests
//! pin the invariant: over randomized multi-tile message-passing pipelines
//! and fused custom-instruction workloads, the fast path must produce a
//! `RunSummary` bit-identical to the naive cycle-by-cycle
//! `Chip::run_reference` loop.

use std::collections::HashMap;
use stitch_isa::custom::{CiDescriptor, CiId, CiStage, PatchClass};
use stitch_isa::op::AluOp;
use stitch_isa::{Cond, Program, ProgramBuilder, Reg};
use stitch_patch::{AtAsControl, AtSaControl, ControlWord, Sel4, Stage1};
use stitch_sim::{Chip, ChipConfig, CiBinding, SimRng, TileId};

const BUDGET: u64 = 50_000_000;

/// Emits a compute loop with a random trip count: multi-cycle `mul`s
/// create the busy gaps the fast path is designed to skip.
fn compute_pad(b: &mut ProgramBuilder, rng: &mut SimRng) {
    let n = 1 + rng.index(40) as i64;
    b.li(Reg::R20, n);
    let top = b.bound_label();
    b.mul(Reg::R21, Reg::R20, Reg::R20);
    b.add(Reg::R22, Reg::R22, Reg::R21);
    b.addi(Reg::R20, Reg::R20, -1);
    b.branch(Cond::Ne, Reg::R20, Reg::R0, top);
}

/// A random linear pipeline: `chain[0]` produces `frames` messages of
/// `len` words, middle tiles bump the first word and forward, the last
/// tile accumulates. Always terminates, so any Timeout/Deadlock is a bug.
fn random_pipeline(seed: u64) -> Vec<(TileId, Program)> {
    let mut rng = SimRng::new(seed);
    let k = 2 + rng.index(6); // 2..=7 tiles in the chain
    let mut tiles: Vec<u8> = (0..16).collect();
    for i in 0..k {
        let j = i + rng.index(16 - i);
        tiles.swap(i, j);
    }
    let chain = &tiles[..k];
    let frames = 1 + rng.index(4) as i64;
    let len = 1 + rng.index(8) as i64; // up to 2 mesh packets
    let mut programs = Vec::new();

    // Source.
    let mut b = ProgramBuilder::new();
    b.li(Reg::R10, frames);
    b.li(Reg::R1, 0x1000);
    b.li(Reg::R2, 1 + rng.index(1000) as i64);
    b.li(Reg::R3, i64::from(chain[1]));
    b.li(Reg::R4, len);
    let top = b.bound_label();
    compute_pad(&mut b, &mut rng);
    for w in 0..len {
        b.sw(Reg::R2, Reg::R1, (w * 4) as i32);
    }
    b.send(Reg::R3, Reg::R1, Reg::R4);
    b.addi(Reg::R2, Reg::R2, 7);
    b.addi(Reg::R10, Reg::R10, -1);
    b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
    b.halt();
    programs.push((TileId(chain[0]), b.build().expect("source program")));

    // Middles.
    for m in 1..k - 1 {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R10, frames);
        b.li(Reg::R1, 0x1000);
        b.li(Reg::R5, i64::from(chain[m - 1]));
        b.li(Reg::R6, i64::from(chain[m + 1]));
        b.li(Reg::R4, len);
        let top = b.bound_label();
        b.recv(Reg::R5, Reg::R1, Reg::R4);
        b.lw(Reg::R2, Reg::R1, 0);
        b.addi(Reg::R2, Reg::R2, 1);
        b.sw(Reg::R2, Reg::R1, 0);
        compute_pad(&mut b, &mut rng);
        b.send(Reg::R6, Reg::R1, Reg::R4);
        b.addi(Reg::R10, Reg::R10, -1);
        b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
        b.halt();
        programs.push((TileId(chain[m]), b.build().expect("middle program")));
    }

    // Sink.
    let mut b = ProgramBuilder::new();
    b.li(Reg::R10, frames);
    b.li(Reg::R1, 0x1000);
    b.li(Reg::R5, i64::from(chain[k - 2]));
    b.li(Reg::R4, len);
    b.li(Reg::R7, 0);
    let top = b.bound_label();
    b.recv(Reg::R5, Reg::R1, Reg::R4);
    b.lw(Reg::R2, Reg::R1, 0);
    b.add(Reg::R7, Reg::R7, Reg::R2);
    compute_pad(&mut b, &mut rng);
    b.addi(Reg::R10, Reg::R10, -1);
    b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
    b.li(Reg::R8, 0x4000);
    b.sw(Reg::R7, Reg::R8, 0);
    b.halt();
    programs.push((TileId(chain[k - 1]), b.build().expect("sink program")));

    programs
}

fn pipeline_chip(seed: u64) -> Chip {
    let mut chip = Chip::new(ChipConfig::stitch_16());
    for (tile, program) in random_pipeline(seed) {
        chip.load_program(tile, &program);
    }
    chip
}

#[test]
fn fast_path_matches_reference_on_random_pipelines() {
    for seed in 0..24u64 {
        let mut fast = pipeline_chip(0xE0_0100 + seed);
        let mut naive = pipeline_chip(0xE0_0100 + seed);
        let a = fast.run(BUDGET).expect("fast run terminates");
        let b = naive
            .run_reference(BUDGET)
            .expect("reference run terminates");
        assert_eq!(a, b, "summary diverges for seed {seed}");
        assert_eq!(
            fast.cycle(),
            naive.cycle(),
            "clock diverges for seed {seed}"
        );
    }
}

/// Fused custom-instruction workload (paper Fig 5 pair {AT-AS}+{AT-SA}):
/// tile 1 iterates a fused CI with per-iteration inputs while tile 0 runs
/// an independent compute loop — exercising skips around patch activity.
fn fused_chip(seed: u64) -> Chip {
    let mut rng = SimRng::new(seed);
    let mut chip = Chip::new(ChipConfig::stitch_16());
    chip.reserve_circuit(TileId(1), TileId(9)).expect("circuit");
    let first = ControlWord::AtAs(AtAsControl {
        s1: Stage1::default(),
        a2_op: AluOp::Add,
        a2_src1: Sel4::In2,
        a2_src2: Sel4::In3,
        s_op: None,
        s_amt_in3: false,
    });
    let second = ControlWord::AtSa(AtSaControl {
        s1: Stage1::default(),
        s_in: Sel4::A1,
        s_op: Some(AluOp::Sll),
        s_amt_in3: true,
        a2_op: AluOp::Add,
        a2_src2: Sel4::In2,
    });
    let mut b = ProgramBuilder::new();
    let ci = b.define_ci(CiDescriptor::fused(
        CiId(0),
        "addshladd",
        CiStage::new(PatchClass::AtAs, first.pack().expect("pack")),
        CiStage::new(PatchClass::AtSa, second.pack().expect("pack")),
    ));
    let iters = 4 + rng.index(12) as i64;
    b.li(Reg::R10, iters);
    b.li(Reg::R1, 0);
    b.li(Reg::R2, 0);
    b.li(Reg::R3, 1 + rng.index(50) as i64);
    b.li(Reg::R4, rng.index(3) as i64);
    b.li(Reg::R9, 0);
    let top = b.bound_label();
    b.custom(ci, &[Reg::R1, Reg::R2, Reg::R3, Reg::R4], &[Reg::R5])
        .expect("ci");
    b.add(Reg::R9, Reg::R9, Reg::R5);
    b.addi(Reg::R3, Reg::R3, 3);
    b.addi(Reg::R10, Reg::R10, -1);
    b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
    b.halt();
    let bindings = HashMap::from([(
        0u16,
        CiBinding::Fused {
            first,
            partner: TileId(9),
            second,
        },
    )]);
    chip.load_kernel(TileId(1), &b.build().expect("fused program"), bindings)
        .expect("load fused kernel");

    // Independent compute on another tile so the chains interleave.
    let mut b = ProgramBuilder::new();
    b.li(Reg::R1, 10 + rng.index(60) as i64);
    let top = b.bound_label();
    b.mul(Reg::R2, Reg::R1, Reg::R1);
    b.addi(Reg::R1, Reg::R1, -1);
    b.branch(Cond::Ne, Reg::R1, Reg::R0, top);
    b.halt();
    chip.load_program(TileId(0), &b.build().expect("compute program"));
    chip
}

#[test]
fn fast_path_matches_reference_on_fused_ci_workloads() {
    for seed in 0..16u64 {
        let mut fast = fused_chip(0xF5_ED00 + seed);
        let mut naive = fused_chip(0xF5_ED00 + seed);
        let a = fast.run(BUDGET).expect("fast run terminates");
        let b = naive
            .run_reference(BUDGET)
            .expect("reference run terminates");
        assert_eq!(a, b, "summary diverges for seed {seed}");
        assert!(
            a.total_fused() > 0,
            "workload must exercise fusion (seed {seed})"
        );
    }
}

#[test]
fn fast_path_is_deterministic() {
    for seed in [3u64, 11, 19] {
        let mut first = pipeline_chip(0xD0_0D00 + seed);
        let mut second = pipeline_chip(0xD0_0D00 + seed);
        let a = first.run(BUDGET).expect("run");
        let b = second.run(BUDGET).expect("run");
        assert_eq!(a, b, "two identical runs diverge for seed {seed}");
        assert_eq!(
            first.peek_u32(TileId(0), 0x1000),
            second.peek_u32(TileId(0), 0x1000)
        );
    }
}

/// The fast path must also reproduce reference *failure* behavior:
/// deadlocks are reported with identical waiting sets and cycle counts.
#[test]
fn fast_path_matches_reference_on_deadlock() {
    let deadlocked = || {
        let mut chip = Chip::new(ChipConfig::stitch_16());
        let mut b = ProgramBuilder::new();
        b.li(Reg::R1, 7); // tile 7 never sends
        b.li(Reg::R2, 0x1000);
        b.li(Reg::R3, 1);
        b.recv(Reg::R1, Reg::R2, Reg::R3);
        b.halt();
        chip.load_program(TileId(2), &b.build().expect("program"));
        chip
    };
    let mut fast = deadlocked();
    let mut naive = deadlocked();
    let a = fast.run(100_000).expect_err("deadlock");
    let b = naive.run_reference(100_000).expect_err("deadlock");
    assert_eq!(a, b);
    assert_eq!(fast.cycle(), naive.cycle());
}

/// Timeouts fire after exactly the same budget on both paths.
#[test]
fn fast_path_matches_reference_on_timeout() {
    let endless = || {
        let mut chip = Chip::new(ChipConfig::stitch_16());
        let mut b = ProgramBuilder::new();
        let top = b.bound_label();
        b.mul(Reg::R1, Reg::R2, Reg::R3);
        b.branch(Cond::Eq, Reg::R0, Reg::R0, top);
        b.halt();
        chip.load_program(TileId(4), &b.build().expect("program"));
        chip
    };
    let mut fast = endless();
    let mut naive = endless();
    let a = fast.run(10_000).expect_err("timeout");
    let b = naive.run_reference(10_000).expect_err("timeout");
    assert_eq!(a, b);
    assert_eq!(fast.cycle(), naive.cycle());
}
