//! Observability-layer integration tests.
//!
//! The tracing contract is engine-independence: `Chip::run` (event-driven
//! fast path) and `Chip::run_reference` (naive cycle loop) must emit
//! **bit-identical** event streams, because every event marks a
//! transition both engines execute on the same cycle — the windows the
//! fast path skips are exactly the cycles in which nothing is emitted.
//! These tests pin that property over the same randomized workloads the
//! summary-equivalence suite uses, fault-free and under active fault
//! plans, and then pin the exporter: the Chrome-trace JSON must parse
//! and its event counts must reconcile exactly with the `RunSummary` of
//! the run that produced it.

mod common;

use common::{fused_chip, pipeline_chip};
use stitch_sim::{
    to_chrome_trace, Chip, FaultPlan, FaultSpace, JsonValue, TraceCapture, TraceConfig,
};

const BUDGET: u64 = 50_000_000;

/// Enables full-stream tracing (every event class) on a chip.
fn arm(chip: &mut Chip) {
    chip.set_trace(&TraceConfig::full(16));
}

/// Runs the chip on the chosen engine and returns its captured stream.
fn capture(chip: &mut Chip, reference: bool) -> TraceCapture {
    let outcome = if reference {
        chip.run_reference(BUDGET)
    } else {
        chip.run(BUDGET)
    };
    // Faulted runs may end in a typed error; the stream up to that
    // point must still match across engines.
    drop(outcome);
    let cap = chip.take_trace().expect("tracing was enabled");
    assert_eq!(cap.dropped, 0, "ring too small for this workload");
    cap
}

#[test]
fn engines_emit_identical_streams_fault_free() {
    // 30 message-passing pipelines + 20 fused-CI workloads.
    for seed in 0..30u64 {
        let mut fast = pipeline_chip(0xE0_0100 + seed);
        let mut naive = pipeline_chip(0xE0_0100 + seed);
        arm(&mut fast);
        arm(&mut naive);
        let a = capture(&mut fast, false);
        let b = capture(&mut naive, true);
        assert!(!a.events.is_empty(), "pipeline seed {seed} emitted nothing");
        assert_eq!(a, b, "streams diverge for pipeline seed {seed}");
    }
    for seed in 0..20u64 {
        let mut fast = fused_chip(0xF5_ED00 + seed);
        let mut naive = fused_chip(0xF5_ED00 + seed);
        arm(&mut fast);
        arm(&mut naive);
        let a = capture(&mut fast, false);
        let b = capture(&mut naive, true);
        assert!(
            a.events.iter().any(|e| {
                matches!(e, stitch_sim::TraceEvent::PatchActivate { fused: true, .. })
            }),
            "fused seed {seed} must trace a fused activation"
        );
        assert_eq!(a, b, "streams diverge for fused seed {seed}");
    }
}

#[test]
fn engines_emit_identical_streams_under_faults() {
    // Compute-only faults over fused workloads: degradation ladder
    // events (Demote, Scrub, WatchdogTrip, FaultInject) included.
    let compute = FaultSpace {
        tiles: 10,
        horizon: 500,
        max_events: 4,
        allow_transient: true,
        ..FaultSpace::default()
    }
    .compute_only();
    for seed in 0..16u64 {
        let plan = FaultPlan::random(0xFA_0000 + seed, &compute);
        let mut fast = fused_chip(0xF5_ED00 + seed);
        let mut naive = fused_chip(0xF5_ED00 + seed);
        fast.set_fault_plan(plan.clone());
        naive.set_fault_plan(plan);
        arm(&mut fast);
        arm(&mut naive);
        let a = capture(&mut fast, false);
        let b = capture(&mut naive, true);
        assert_eq!(a, b, "streams diverge under compute faults, seed {seed}");
    }
    // Full fault space (link faults included) over pipelines; runs may
    // end in typed errors, the streams must still match.
    let full = FaultSpace {
        tiles: 16,
        horizon: 20_000,
        max_events: 4,
        compute_only: false,
        allow_transient: true,
    };
    for seed in 0..8u64 {
        let plan = FaultPlan::random(0x11_F000 + seed, &full);
        let mut fast = pipeline_chip(0xE0_0100 + seed);
        let mut naive = pipeline_chip(0xE0_0100 + seed);
        fast.set_fault_plan(plan.clone());
        naive.set_fault_plan(plan);
        arm(&mut fast);
        arm(&mut naive);
        let a = capture(&mut fast, false);
        let b = capture(&mut naive, true);
        assert_eq!(a, b, "streams diverge under link faults, seed {seed}");
    }
}

/// Golden exporter test: the Chrome-trace JSON parses, and both the
/// rendered spans and the windowed counter totals reconcile exactly
/// with the `RunSummary` of the run.
#[test]
fn perfetto_export_reconciles_with_summary() {
    let mut chip = pipeline_chip(0xE0_0105);
    arm(&mut chip);
    let summary = chip.run(BUDGET).expect("run terminates");
    let cap = chip.take_trace().expect("capture");
    assert_eq!(cap.dropped, 0);

    let json = to_chrome_trace(&cap, summary.windows.as_ref(), summary.tiles.len(), 5);
    let v = JsonValue::parse(&json).expect("export is valid JSON");
    assert_eq!(
        v.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ns")
    );
    let events = v
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");

    let count = |ph: &str, name: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some(ph)
                    && e.get("name").and_then(JsonValue::as_str) == Some(name)
            })
            .count() as u64
    };
    // One "exec" span per committed instruction, one "flit" instant per
    // flit-hop, one "deliver" instant per delivered packet.
    assert_eq!(count("X", "exec"), summary.total_instructions());
    assert_eq!(count("i", "flit"), summary.mesh.flit_hops);
    assert_eq!(count("i", "deliver"), summary.mesh.packets_delivered);

    // Windowed totals reconcile with the per-tile counters.
    let windows = summary.windows.as_ref().expect("windows collected");
    for (w, tile) in windows.tile_totals().iter().zip(&summary.tiles) {
        assert_eq!(w.retired, tile.core.instructions);
        assert_eq!(w.busy_cycles, tile.core.busy_cycles());
        assert_eq!(w.recv_wait_cycles, tile.core.recv_wait_cycles);
        assert_eq!(w.icache_misses, tile.icache.misses);
        assert_eq!(w.dcache_misses, tile.dcache.misses);
    }
    let link_flits: u64 = windows.link_totals().iter().flatten().sum();
    assert_eq!(link_flits, summary.mesh.flit_hops);
}
