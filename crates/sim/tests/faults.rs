//! Property harness for the fault-injection subsystem.
//!
//! Two invariants, asserted over randomized seed-driven [`FaultPlan`]s
//! (ISSUE 2):
//!
//! 1. **No hangs** — whatever the plan throws at the chip (dead patches,
//!    severed switches, config upsets, downed mesh links), `Chip::run`
//!    always returns: the workload halts, times out, deadlocks with a
//!    typed report, or surfaces a typed `SimError::Faulted`. It never
//!    panics and never spins forever.
//! 2. **Compute faults never change values** — for compute-only plans
//!    (no mesh link faults) the run completes and every architectural
//!    result is bit-identical to the fault-free run. Graceful
//!    degradation changes cycles, never values.
//!
//! The seed base and plan count are env-overridable so CI can run a
//! fixed-seed job plus a randomized smoke loop:
//! `STITCH_FAULT_SEED_BASE=1234 STITCH_FAULT_PLANS=25 cargo test -q -p
//! stitch-sim --test faults`.

mod common;

use common::{fused_chip, pipeline_chip, pipeline_sink, SINK_ADDR};
use stitch_isa::Reg;
use stitch_sim::{FaultKind, FaultPlan, FaultSpace, SimError, TileId};

/// Generous per-run budget; every legitimate workload here finishes in
/// well under 100k cycles even while waiting out transient faults.
const BUDGET: u64 = 5_000_000;

fn seed_base() -> u64 {
    std::env::var("STITCH_FAULT_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA_17_00)
}

fn plan_count() -> u64 {
    std::env::var("STITCH_FAULT_PLANS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// Full fault space over the whole chip, sized so events land while the
/// randomized pipelines are still in flight.
fn full_space() -> FaultSpace {
    FaultSpace {
        tiles: 16,
        horizon: 20_000,
        max_events: 4,
        compute_only: false,
        allow_transient: true,
    }
}

/// Compute-only space focused on the fused workload's tiles (the fused
/// pair lives on tiles 1 and 9), with a short horizon so faults fire
/// mid-run rather than after the last custom instruction retires.
fn ci_space() -> FaultSpace {
    FaultSpace {
        tiles: 10,
        horizon: 500,
        max_events: 4,
        allow_transient: true,
        ..FaultSpace::default()
    }
    .compute_only()
}

/// Invariant 1: randomized plans — link faults included — never hang the
/// chip. Every outcome is a clean halt or a typed error; `Cpu`,
/// `BadBinding` and `PatchNet` never escape from an injected hardware
/// fault.
#[test]
fn randomized_fault_plans_never_hang() {
    let base = seed_base();
    let mut outcomes = [0u64; 4]; // ok, timeout, deadlock, faulted
    for i in 0..plan_count() {
        let seed = base + i;
        // Alternate between message-passing pipelines (exercise the mesh
        // and its fault-aware routing) and fused CI workloads (exercise
        // the patch degradation ladder).
        let (mut chip, space) = if i % 2 == 0 {
            (pipeline_chip(seed), full_space())
        } else {
            (fused_chip(seed), ci_space())
        };
        chip.set_fault_plan(FaultPlan::random(seed, &space));
        match chip.run(BUDGET) {
            Ok(_) => outcomes[0] += 1,
            Err(SimError::Timeout { .. }) => outcomes[1] += 1,
            Err(SimError::Deadlock { .. }) => outcomes[2] += 1,
            Err(SimError::Faulted { .. }) => outcomes[3] += 1,
            Err(other) => panic!("seed {seed}: untyped failure under faults: {other}"),
        }
        assert!(
            chip.cycle() <= BUDGET,
            "seed {seed}: run past its budget ({} cycles)",
            chip.cycle()
        );
    }
    // The harness must exercise the success path, not only wreckage.
    assert!(
        outcomes[0] > 0,
        "no plan completed — fault space is too hostile to be informative ({outcomes:?})"
    );
}

/// Invariant 2a: compute-only plans over message-passing pipelines
/// complete and deliver a bit-identical sink checksum. (Pipelines bind
/// no custom instructions, so patch-class faults must be fully inert.)
#[test]
fn compute_faults_preserve_pipeline_results() {
    let base = seed_base();
    let space = FaultSpace {
        tiles: 16,
        horizon: 20_000,
        max_events: 4,
        allow_transient: true,
        ..FaultSpace::default()
    }
    .compute_only();
    for i in 0..plan_count() / 2 {
        let seed = base + i;
        let sink = pipeline_sink(seed);
        let mut clean = pipeline_chip(seed);
        clean.run(BUDGET).expect("fault-free pipeline completes");
        let expected = clean.peek_u32(sink, SINK_ADDR);

        let mut faulted = pipeline_chip(seed);
        faulted.set_fault_plan(FaultPlan::random(seed, &space));
        faulted
            .run(BUDGET)
            .expect("compute-only faults never block completion");
        assert_eq!(
            faulted.peek_u32(sink, SINK_ADDR),
            expected,
            "seed {seed}: compute fault changed the architectural result"
        );
    }
}

/// Invariant 2b: compute-only plans over fused CI workloads complete
/// with bit-identical register results — demotion to the W32 software
/// sequence changes cycles, never values — and the harness as a whole
/// actually exercises demotion.
#[test]
fn compute_faults_preserve_fused_ci_results() {
    let base = seed_base();
    let space = ci_space();
    let mut total_demotions = 0;
    let mut degraded_runs = 0;
    // Plan 0 is a deterministic anchor — a permanent patch death on the
    // fused pair's host tile, guaranteed to demote every activation — so
    // the "harness has teeth" assertion below never depends on what the
    // random draw happened to hit.
    for i in 0..plan_count() / 2 {
        let seed = base + i;
        let mut clean = fused_chip(seed);
        let cs = clean.run(BUDGET).expect("fault-free CI workload completes");
        let expected_acc = clean.core_reg(TileId(1), Reg::R9);
        let expected_last = clean.core_reg(TileId(1), Reg::R5);

        let plan = if i == 0 {
            FaultPlan::new(seed).with(
                0,
                FaultKind::PatchFail {
                    tile: TileId(1),
                    until: None,
                },
            )
        } else {
            FaultPlan::random(seed, &space)
        };
        let mut faulted = fused_chip(seed);
        faulted.set_fault_plan(plan);
        let fs = faulted
            .run(BUDGET)
            .expect("degradation never blocks completion");
        assert_eq!(
            faulted.core_reg(TileId(1), Reg::R9),
            expected_acc,
            "seed {seed}: demotion changed the accumulated CI results"
        );
        assert_eq!(
            faulted.core_reg(TileId(1), Reg::R5),
            expected_last,
            "seed {seed}: demotion changed the last CI result"
        );
        let stats = faulted.fault_stats();
        total_demotions += stats.demotions;
        if stats.demotions > 0 || stats.scrubs > 0 {
            degraded_runs += 1;
            assert!(
                fs.cycles >= cs.cycles,
                "seed {seed}: degradation must never make the run faster"
            );
        }
    }
    assert!(
        total_demotions > 0 && degraded_runs > 0,
        "the sampled plans never hit the fused pair — harness lost its teeth"
    );
}

/// Strict mode (degradation forbidden) turns every detected compute
/// fault into the typed `SimError::Faulted` instead of silently running
/// the fallback; plans that miss the workload still complete cleanly.
#[test]
fn strict_mode_faults_are_typed() {
    let base = seed_base();
    let mut typed = 0;
    // Same deterministic anchor as the demotion test: plan 0 kills the
    // host patch outright, so strict mode is guaranteed to trip at least
    // once regardless of the random seeds.
    for i in 0..plan_count() / 2 {
        let seed = base + i;
        let plan = if i == 0 {
            FaultPlan::new(seed).with(
                0,
                FaultKind::PatchFail {
                    tile: TileId(1),
                    until: None,
                },
            )
        } else {
            FaultPlan::random(seed, &ci_space())
        };
        let mut chip = fused_chip(seed);
        chip.set_fault_plan(plan.strict());
        match chip.run(BUDGET) {
            Ok(_) => {}
            Err(SimError::Faulted { cycle, .. }) => {
                typed += 1;
                assert!(cycle <= BUDGET, "seed {seed}: detection cycle out of range");
            }
            Err(other) => panic!("seed {seed}: strict mode produced untyped error: {other}"),
        }
    }
    assert!(typed > 0, "strict mode never triggered — space too gentle");
}
