//! Differential fuzz harness for the translated engine (ISSUE 6).
//!
//! Randomized W32 programs — dense ALU mixes over every [`AluOp`], word
//! and byte memory traffic against both DRAM and the SPM, forward
//! branches on every condition, `jal`/`jalr` subroutine calls,
//! single-patch custom instructions, and the multi-tile `send`/`recv`
//! pipelines from `common` — run once through the translated fast path
//! (`Chip::run`, basic-block micro-op windows) and once through the
//! tick-by-tick reference loop (`Chip::run_reference`). Summaries,
//! final cycles, architectural results, and truncated-budget *error*
//! outcomes must all match bit-for-bit.
//!
//! Seed base and count are env-overridable, mirroring the other
//! randomized oracles (`faults.rs`, `snapshot.rs`):
//! `STITCH_FUZZ_SEED_BASE=1234 STITCH_FUZZ_SEEDS=50 cargo test -q -p
//! stitch-sim --test fuzz_translate`. A failing case reproduces from
//! the printed seed alone.

mod common;

use std::collections::HashMap;

use common::{fused_chip, pipeline_chip, pipeline_sink, SINK_ADDR};
use stitch_isa::custom::{CiDescriptor, CiId, CiStage, PatchClass};
use stitch_isa::op::AluOp;
use stitch_isa::{memmap, Cond, ProgramBuilder, Reg};
use stitch_patch::{AtMaControl, ControlWord, Sel4, Stage1};
use stitch_sim::{Chip, ChipConfig, CiBinding, SimRng, TileId};

const BUDGET: u64 = 50_000_000;

fn seed_base() -> u64 {
    std::env::var("STITCH_FUZZ_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF0_22_00)
}

fn seed_count() -> u64 {
    std::env::var("STITCH_FUZZ_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(40)
}

/// Data registers the generator shuffles values through. `R10` is the
/// loop counter, `R12`/`R13` the DRAM/SPM base pointers, `LR` belongs
/// to the call/return pair — none of them may appear as a random `rd`.
const DATA: [Reg; 8] = [
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
];

fn reg(rng: &mut SimRng) -> Reg {
    DATA[rng.index(DATA.len())]
}

/// Source operand: mostly data registers, sometimes the hardwired zero.
fn src(rng: &mut SimRng) -> Reg {
    if rng.chance(1, 8) {
        Reg::R0
    } else {
        reg(rng)
    }
}

/// Emits one random loop-body instruction. Offsets stay inside the
/// first 1 KiB of each region so byte and word accesses always land in
/// mapped memory.
fn random_instr(b: &mut ProgramBuilder, rng: &mut SimRng) {
    match rng.index(8) {
        0 => {
            let op = AluOp::ALL[rng.index(AluOp::ALL.len())];
            b.alu(op, reg(rng), src(rng), src(rng));
        }
        1 => {
            let op = AluOp::ALL[rng.index(AluOp::ALL.len())];
            let imm = rng.below(4096) as i32 - 2048;
            b.alui(op, reg(rng), src(rng), imm);
        }
        2 => {
            b.lui(reg(rng), rng.below(1 << 20) as u32);
        }
        3 => {
            let base = if rng.chance(1, 2) { Reg::R12 } else { Reg::R13 };
            let off = (rng.index(256) * 4) as i32;
            b.lw(reg(rng), base, off);
        }
        4 => {
            let base = if rng.chance(1, 2) { Reg::R12 } else { Reg::R13 };
            let off = (rng.index(256) * 4) as i32;
            b.sw(src(rng), base, off);
        }
        5 => {
            let off = rng.index(1024) as i32;
            b.lb(reg(rng), Reg::R12, off);
        }
        6 => {
            let off = rng.index(1024) as i32;
            b.sb(src(rng), Reg::R12, off);
        }
        _ => {
            // Forward branch over one instruction: every condition gets
            // exercised, and the skipped slot keeps block shapes varied.
            const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];
            let skip = b.label();
            b.branch(CONDS[rng.index(6)], src(rng), src(rng), skip);
            b.addi(reg(rng), src(rng), rng.below(64) as i32);
            b.bind(skip).expect("forward label binds");
        }
    }
}

/// A random single-tile compute program: seeded data registers, a
/// bounded loop of [`random_instr`] bodies with occasional subroutine
/// calls (`jal`/`jalr`), an optional `{AT-MA}` multiply-add custom
/// instruction, and a final checksum store to [`SINK_ADDR`].
fn random_compute_chip(seed: u64) -> Chip {
    let mut rng = SimRng::new(seed);
    let mut chip = Chip::new(ChipConfig::stitch_16());
    let with_ci = rng.chance(1, 2);

    let control = ControlWord::AtMa(AtMaControl {
        s1: Stage1::default(),
        m_src1: Sel4::In2,
        m_src2: Sel4::In3,
        a2_takes_a1: false,
        a2_op: AluOp::Add,
        a2_src2: Sel4::A1,
    });

    let mut b = ProgramBuilder::new();
    let ci = with_ci.then(|| {
        b.define_ci(CiDescriptor::single(
            CiId(0),
            "madd",
            CiStage::new(PatchClass::AtMa, control.pack().expect("pack")),
        ))
    });
    for r in DATA {
        b.li(r, rng.below(1 << 20) as i64);
    }
    b.li(Reg::R12, 0x1000);
    b.li(Reg::R13, i64::from(memmap::SPM_BASE));
    b.li(Reg::R10, 1 + rng.index(24) as i64);
    let done = b.label();
    let sub = b.label();
    let top = b.bound_label();
    for _ in 0..4 + rng.index(10) {
        random_instr(&mut b, &mut rng);
    }
    if rng.chance(1, 2) {
        b.call(sub);
    }
    if let Some(ci) = ci {
        b.custom(ci, &[Reg::R1, Reg::R2, Reg::R3, Reg::R4], &[Reg::R5])
            .expect("4-in/1-out CI");
    }
    b.addi(Reg::R10, Reg::R10, -1);
    b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
    b.jump(done);
    // Subroutine: a couple of random ops, returned through `lr`.
    b.bind(sub).expect("subroutine label binds");
    random_instr(&mut b, &mut rng);
    random_instr(&mut b, &mut rng);
    b.ret();
    b.bind(done).expect("exit label binds");
    for r in DATA {
        b.add(Reg::R9, Reg::R9, r);
    }
    b.li(Reg::R11, i64::from(SINK_ADDR));
    b.sw(Reg::R9, Reg::R11, 0);
    b.halt();
    let program = b.build().expect("random compute program encodes");

    if with_ci {
        // Tile 0 carries the {AT-MA} patch in the stitch_16 layout.
        let bindings = HashMap::from([(0u16, CiBinding::Single { control })]);
        chip.load_kernel(TileId(0), &program, bindings)
            .expect("load random kernel");
    } else {
        chip.load_program(TileId(0), &program).unwrap();
    }
    chip
}

/// One differential case: the translated engine and the reference loop
/// must agree on the summary, the final cycle, and (when given) the
/// architectural checksum; a truncated budget must produce the *same
/// typed error* from both. Returns the translated windows committed, so
/// callers can assert the fast path actually fired.
fn differential(seed: u64, make: &dyn Fn(u64) -> Chip, sink: Option<TileId>) -> u64 {
    let mut fast = make(seed);
    assert!(fast.translation_enabled(), "translation must default on");
    let fast_sum = fast
        .run(BUDGET)
        .unwrap_or_else(|e| panic!("seed {seed}: translated run failed: {e}"));
    let mut reference = make(seed);
    let ref_sum = reference
        .run_reference(BUDGET)
        .unwrap_or_else(|e| panic!("seed {seed}: reference run failed: {e}"));
    assert_eq!(
        fast_sum, ref_sum,
        "seed {seed}: translated summary diverges from the reference loop"
    );
    assert_eq!(
        fast.cycle(),
        reference.cycle(),
        "seed {seed}: engines end on different cycles"
    );
    if let Some(tile) = sink {
        assert_eq!(
            fast.peek_u32(tile, SINK_ADDR),
            reference.peek_u32(tile, SINK_ADDR),
            "seed {seed}: architectural checksum diverges"
        );
    }

    // Error outcomes must agree too: interrupt both engines at the same
    // random budget strictly inside the run and compare the full result,
    // Ok or Err.
    let mut rng = SimRng::new(seed ^ 0xD1FF_BEEF);
    let stop = 1 + rng.below(fast.cycle().max(2) - 1);
    let mut a = make(seed);
    let mut b = make(seed);
    assert_eq!(
        a.run(stop),
        b.run_reference(stop),
        "seed {seed}: outcomes diverge at budget {stop}"
    );
    assert_eq!(
        a.cycle(),
        b.cycle(),
        "seed {seed}: interrupted engines end on different cycles"
    );

    fast.translation_stats().windows
}

/// Random compute programs (ALU mixes, byte/word memory, calls, CIs):
/// the core fuzz loop of the translated engine.
#[test]
fn random_compute_programs_match_reference() {
    let base = seed_base();
    let mut windows = 0;
    for i in 0..seed_count() {
        windows += differential(base + i, &random_compute_chip, Some(TileId(0)));
    }
    assert!(
        windows > 0,
        "no translated window ever committed — the fuzz harness lost its teeth"
    );
}

/// Random multi-tile pipelines: `send`/`recv` side exits, mesh traffic,
/// and cross-tile timing under translation.
#[test]
fn random_pipelines_match_reference() {
    let base = seed_base() ^ 0x9E_37_79;
    let mut windows = 0;
    for i in 0..seed_count() {
        let seed = base + i;
        windows += differential(seed, &pipeline_chip, Some(pipeline_sink(seed)));
    }
    assert!(windows > 0, "pipelines never committed a translated window");
}

/// Random fused-CI workloads: the inter-patch circuit path (partner
/// activations, fused outcome plumbing) under translation.
#[test]
fn random_fused_workloads_match_reference() {
    let base = seed_base() ^ 0x51_7C_4B;
    let mut windows = 0;
    for i in 0..seed_count() {
        windows += differential(base + i, &fused_chip, None);
    }
    assert!(
        windows > 0,
        "fused workloads never committed a translated window"
    );
}
