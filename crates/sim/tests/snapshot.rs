//! Snapshot-equivalence oracle for checkpoint/restore (ISSUE 3).
//!
//! The property under test: interrupt a run at a random cycle, capture a
//! [`ChipSnapshot`], round-trip it through the binary codec, restore it
//! into a *fresh* chip (same programs loaded), and resume — the resumed
//! run must be bit-identical to the uninterrupted one: same
//! [`RunSummary`] counters, same final cycle, same architectural
//! results, same [`FaultStats`]. Engines are crossed deliberately (fast
//! path to capture, reference loop to resume, and vice versa), so the
//! oracle also re-pins engine equivalence through a checkpoint boundary.
//!
//! Seed base and count are env-overridable, mirroring `faults.rs`:
//! `STITCH_SNAPSHOT_SEED_BASE=1234 STITCH_SNAPSHOT_SEEDS=25 cargo test
//! -q -p stitch-sim --test snapshot`.

mod common;

use common::{fused_chip, pipeline_chip, pipeline_sink, SINK_ADDR};
use stitch_sim::{
    Chip, ChipSnapshot, FaultKind, FaultPlan, FaultSpace, SimError, SimRng, SnapshotError, TileId,
};

const BUDGET: u64 = 5_000_000;

fn seed_base() -> u64 {
    std::env::var("STITCH_SNAPSHOT_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5A_A9_00)
}

fn seed_count() -> u64 {
    std::env::var("STITCH_SNAPSHOT_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100)
}

/// Compute-only fault space aimed at the fused pair (tiles 1 and 9),
/// matching the one the fault property tests use: plans from it never
/// block completion, so the oracle's "run finishes" precondition holds.
fn ci_space() -> FaultSpace {
    FaultSpace {
        tiles: 10,
        horizon: 500,
        max_events: 4,
        allow_transient: true,
        ..FaultSpace::default()
    }
    .compute_only()
}

/// One oracle case: run `make(seed)` to completion, then re-run it,
/// interrupt at a random cycle, checkpoint, codec-round-trip, restore
/// into a fresh chip, resume, and demand bit-identical behavior.
///
/// `fast_capture` picks the engine for the uninterrupted and the
/// interrupted runs; `fast_resume` picks the engine for the resumed leg.
/// Returns the fault injections seen, so callers can assert their
/// fault-active harness actually had teeth.
fn oracle(
    seed: u64,
    make: &dyn Fn(u64) -> Chip,
    plan: Option<&FaultPlan>,
    fast_capture: bool,
    fast_resume: bool,
) -> u64 {
    let run = |chip: &mut Chip, fast: bool, budget: u64| {
        if fast {
            chip.run(budget)
        } else {
            chip.run_reference(budget)
        }
    };

    // Uninterrupted baseline.
    let mut clean = make(seed);
    if let Some(p) = plan {
        clean.set_fault_plan(p.clone());
    }
    let clean_sum = run(&mut clean, fast_capture, BUDGET)
        .unwrap_or_else(|e| panic!("seed {seed}: uninterrupted run failed: {e}"));
    let total = clean.cycle();
    assert!(total > 1, "seed {seed}: run too short to interrupt");

    // Interrupted run: stop somewhere strictly inside the run.
    let mut rng = SimRng::new(seed ^ 0x5AFE_C0DE);
    let stop = 1 + rng.below(total - 1);
    let mut partial = make(seed);
    if let Some(p) = plan {
        partial.set_fault_plan(p.clone());
    }
    match run(&mut partial, fast_capture, stop) {
        Err(SimError::Timeout { .. }) => {}
        other => panic!("seed {seed}: interrupt at {stop}/{total} gave {other:?}"),
    }
    let snap = partial.checkpoint();
    assert_eq!(snap.cycle, stop, "seed {seed}: checkpoint cycle drifted");

    // The wire format must reproduce the snapshot exactly.
    let bytes = snap.encode();
    let decoded = ChipSnapshot::decode(&bytes)
        .unwrap_or_else(|e| panic!("seed {seed}: decode of own encoding failed: {e}"));
    assert_eq!(decoded, snap, "seed {seed}: codec round-trip not identical");

    // Resume in a fresh chip (same programs, virgin dynamic state).
    let mut resumed = make(seed);
    resumed
        .restore(&decoded)
        .unwrap_or_else(|e| panic!("seed {seed}: restore into fresh chip failed: {e}"));
    let resumed_sum = run(&mut resumed, fast_resume, BUDGET)
        .unwrap_or_else(|e| panic!("seed {seed}: resumed run failed: {e}"));

    assert_eq!(
        resumed.cycle(),
        total,
        "seed {seed}: resumed run ended on a different cycle"
    );
    // The resumed summary counts cycles from the restore point; shift it
    // back to the common origin and demand bitwise equality.
    let mut adjusted = resumed_sum;
    adjusted.cycles += snap.cycle;
    assert_eq!(
        adjusted, clean_sum,
        "seed {seed}: resumed summary diverges from the uninterrupted run"
    );
    let (cs, rs) = (clean.fault_stats(), resumed.fault_stats());
    assert_eq!(
        cs, rs,
        "seed {seed}: fault bookkeeping diverges across the checkpoint"
    );
    cs.injected
}

/// Fault-free pipelines: resume must be bit-identical, architectural
/// results included, under all four capture/resume engine pairings.
#[test]
fn resumed_pipeline_runs_are_bit_identical() {
    let base = seed_base();
    for i in 0..seed_count() {
        let seed = base + i;
        let (fast_capture, fast_resume) = (i % 4 < 2, i % 2 == 0);
        oracle(seed, &pipeline_chip, None, fast_capture, fast_resume);

        // Spot-check the architectural result too (the summary pins
        // counters, not memory contents) on a subset — one extra full
        // run per checked seed.
        if i % 8 == 0 {
            let sink = pipeline_sink(seed);
            let mut clean = pipeline_chip(seed);
            clean.run(BUDGET).expect("pipeline completes");
            let mut partial = pipeline_chip(seed);
            let stop = clean.cycle() / 2;
            assert!(matches!(
                partial.run(stop.max(1)),
                Err(SimError::Timeout { .. })
            ));
            let snap = partial.checkpoint();
            let mut resumed = pipeline_chip(seed);
            resumed.restore(&snap).expect("restore");
            resumed.run(BUDGET).expect("resumed pipeline completes");
            assert_eq!(
                resumed.peek_u32(sink, SINK_ADDR),
                clean.peek_u32(sink, SINK_ADDR),
                "seed {seed}: resumed run produced a different checksum"
            );
        }
    }
}

/// Fault-active runs: the checkpoint may land before, between, or after
/// scheduled fault events; the restored fault runtime must replay them
/// identically. Fused CI workloads exercise the degradation ladder
/// (scrubs, demotions) across the checkpoint boundary.
#[test]
fn resumed_fault_active_runs_are_bit_identical() {
    let base = seed_base();
    let space = ci_space();
    let mut injected = 0;
    for i in 0..seed_count() {
        let seed = base + i;
        let plan = FaultPlan::random(seed, &space);
        let (fast_capture, fast_resume) = (i % 4 < 2, i % 2 == 0);
        injected += oracle(seed, &fused_chip, Some(&plan), fast_capture, fast_resume);
    }
    assert!(
        injected > 0,
        "no plan injected anything — fault-active oracle lost its teeth"
    );
}

/// Restoring into a chip that does not match the snapshot fails with a
/// typed error and leaves the chip untouched — never panics, never
/// half-applies.
#[test]
fn restore_into_mismatched_chip_is_typed_and_harmless() {
    let seed = seed_base();
    let mut donor = pipeline_chip(seed);
    assert!(matches!(donor.run(200), Err(SimError::Timeout { .. })));
    let good = donor.checkpoint();

    // Wrong topology.
    let mut bad_topo = good.clone();
    bad_topo.topo.width = 2;
    bad_topo.topo.height = 2;
    let mut target = pipeline_chip(seed);
    match target.restore(&bad_topo) {
        Err(SnapshotError::TopologyMismatch { expected, found }) => {
            assert_eq!(expected, (4, 4));
            assert_eq!(found, (2, 2));
        }
        other => panic!("topology mismatch not detected: {other:?}"),
    }

    // Wrong program pattern: the snapshot holds core state for tiles the
    // target never loaded.
    let mut empty = Chip::new(stitch_sim::ChipConfig::stitch_16());
    assert!(matches!(
        empty.restore(&good),
        Err(SnapshotError::Mismatch { .. })
    ));
    // ... and the reverse: the target has a loaded tile the snapshot
    // does not cover.
    let mut fresh = Chip::new(stitch_sim::ChipConfig::stitch_16());
    let fresh_snap = fresh.checkpoint();
    let mut loaded = pipeline_chip(seed);
    assert!(matches!(
        loaded.restore(&fresh_snap),
        Err(SnapshotError::Mismatch { .. })
    ));

    // Truncated per-tile vectors.
    let mut short = good.clone();
    short.busy_until.pop();
    assert!(matches!(
        target.restore(&short),
        Err(SnapshotError::Mismatch { .. })
    ));

    // The failed restores above left `target` untouched: it still
    // resumes from its own (virgin) state and completes normally.
    assert_eq!(target.cycle(), 0);
    target.restore(&good).expect("matching restore succeeds");
    target.run(BUDGET).expect("restored chip completes");
}

/// Snapshot *files* that were truncated or corrupted in flight decode to
/// typed errors (or, for payload-byte flips, to a structurally valid
/// snapshot) — never a panic, never an unbounded allocation.
#[test]
fn truncated_and_corrupted_snapshot_files_are_typed() {
    let seed = seed_base() ^ 0xF11E;
    let mut chip = fused_chip(seed);
    assert!(matches!(chip.run(100), Err(SimError::Timeout { .. })));
    let bytes = chip.checkpoint().encode();

    // Round-trip through an actual file, the way the sweep harness
    // stores manifests.
    let path = std::env::temp_dir().join(format!("stitch-snap-test-{seed:x}.bin"));
    std::fs::write(&path, &bytes).expect("write snapshot file");
    let reread = std::fs::read(&path).expect("read snapshot file");
    let _ = std::fs::remove_file(&path);
    assert_eq!(reread, bytes);
    ChipSnapshot::decode(&reread).expect("file round-trip decodes");

    // Truncations: every short prefix of the header region, then a
    // deterministic spread across the payload (every prefix is covered
    // by the codec's unit tests on a small snapshot; quadratic cost
    // rules it out here).
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    let mut rng = SimRng::new(seed);
    cuts.extend((0..256).map(|_| rng.index(bytes.len())));
    for cut in cuts {
        assert!(
            ChipSnapshot::decode(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} decoded successfully",
            bytes.len()
        );
    }

    // Corruptions: single-byte flips anywhere must never panic; flips in
    // the magic/version header must be rejected outright.
    for i in 0..8 {
        let mut dented = bytes.clone();
        dented[i] ^= 0xA5;
        assert!(
            ChipSnapshot::decode(&dented).is_err(),
            "corrupted header byte {i} was accepted"
        );
    }
    for _ in 0..100 {
        let mut dented = bytes.clone();
        let at = rng.index(dented.len());
        dented[at] ^= 1 << rng.index(8);
        // Payload flips may still decode (a register value is just a
        // different register value); the property is totality.
        let _ = ChipSnapshot::decode(&dented);
    }
}

/// The rollback rung above demotion: a *transient* switch fault on the
/// fused circuit, detected while a checkpoint is armed, is recovered by
/// rewinding and replaying with the fault window masked — the run
/// finishes at full fused-ISE throughput, bit-identical to the healthy
/// run, with the recovery visible only in [`FaultStats::rollbacks`].
#[test]
fn rollback_recovers_transient_circuit_fault_without_demotion() {
    let seed = seed_base() ^ 0x0_11B;
    let mut healthy = fused_chip(seed);
    let healthy_sum = healthy.run(BUDGET).expect("healthy run completes");
    assert!(healthy_sum.total_fused() > 0, "workload must fuse");
    let total = healthy.cycle();

    // Transient fault on the partner tile's inter-patch switch, covering
    // the rest of the run; `until` is finite, so the rollback rung (not
    // demotion) handles it.
    let plan = FaultPlan::new(seed).with(
        20,
        FaultKind::SwitchFail {
            tile: TileId(9),
            until: Some(total + 1_000),
        },
    );
    for fast in [true, false] {
        let mut chip = fused_chip(seed);
        // Order matters: `set_fault_plan` installs a fresh fault runtime,
        // so the rollback rung must be armed afterwards.
        chip.set_fault_plan(plan.clone());
        chip.enable_rollback(1_000_000, 4);
        let sum = if fast {
            chip.run(BUDGET)
        } else {
            chip.run_reference(BUDGET)
        }
        .expect("rollback run completes");

        // The replay masks the fault window, so the run is bit-identical
        // to the healthy one — full fused throughput, no demotion, no
        // watchdog cost.
        assert_eq!(sum, healthy_sum, "rollback replay diverged (fast={fast})");
        assert_eq!(chip.cycle(), total);
        let fs = chip.fault_stats();
        assert_eq!(fs.rollbacks, 1, "exactly one rollback (fast={fast})");
        assert_eq!(fs.demotions, 0, "no demotion (fast={fast})");
        assert_eq!(fs.watchdog_trips, 0, "no watchdog cost (fast={fast})");
        assert_eq!(fs.injected, 1);
    }

    // With the budget exhausted (or rollback never armed), the same
    // fault falls through to the ordinary ladder: watchdog + demotion,
    // still completing with correct values.
    let mut chip = fused_chip(seed);
    chip.set_fault_plan(plan.clone());
    chip.enable_rollback(1_000_000, 0);
    let sum = chip.run(BUDGET).expect("degraded run completes");
    let fs = chip.fault_stats();
    assert_eq!(fs.rollbacks, 0, "zero budget must never roll back");
    assert!(fs.demotions > 0, "ladder fall-through must demote");
    assert!(
        sum.total_fused() < healthy_sum.total_fused(),
        "demoted run cannot be at full fused throughput"
    );
}
