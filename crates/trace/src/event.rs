//! The structured event vocabulary of the observability layer.
//!
//! Events carry only plain integers (tile indices as `u8`, cycles as
//! `u64`) so that every crate in the stack — the mesh, the chip, the
//! fault runtime — can construct them without depending on each other's
//! types. The stream is designed around one invariant: **no event is
//! emitted during a window the event-driven fast path may skip.** Busy
//! cores stalling, waiting cores repeating a failed `recv` poll, and an
//! idle mesh advancing its clock all emit nothing; every event marks a
//! state *transition* that both simulator engines execute on the exact
//! same cycle. Bit-identical streams across engines follow by
//! construction and are pinned by `crates/sim/tests/trace.rs`.

/// Partner value of a [`TraceEvent::PatchActivate`] for a single-patch
/// (unfused) activation.
pub const NO_PARTNER: u8 = u8::MAX;

/// One observed hardware event.
///
/// `cycle` is always the simulated chip cycle at which the event
/// occurred. Where a direction is carried it uses the mesh port
/// encoding: 0 = North, 1 = East, 2 = South, 3 = West.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A core retired one instruction costing `cost` cycles (the core is
    /// busy for cycles `cycle .. cycle + cost`).
    Retire {
        /// Cycle of the retirement.
        cycle: u64,
        /// Retiring tile.
        tile: u8,
        /// Charged execution cycles (≥ 1).
        cost: u32,
    },
    /// A core executed its `halt` and left the live set.
    Halt {
        /// Cycle of the halt.
        cycle: u64,
        /// Halting tile.
        tile: u8,
    },
    /// A core entered the blocked-in-`recv` state (first failed poll).
    /// Emitted only on the *transition* into waiting — repeated failed
    /// polls emit nothing, which is what lets the fast path skip them.
    RecvWait {
        /// Cycle of the first failed poll.
        cycle: u64,
        /// Waiting tile.
        tile: u8,
        /// Peer tile the receive is waiting on.
        from: u8,
    },
    /// A `recv` completed (message consumed from the NIC).
    RecvDone {
        /// Cycle of the successful poll.
        cycle: u64,
        /// Receiving tile.
        tile: u8,
        /// Sender.
        from: u8,
        /// Message length in words.
        words: u32,
    },
    /// A cache access missed and paid the DRAM penalty.
    CacheMiss {
        /// Cycle of the access.
        cycle: u64,
        /// Accessing tile.
        tile: u8,
        /// Instruction cache (`true`) or data cache.
        icache: bool,
        /// Stall cycles beyond the hit latency.
        penalty: u32,
    },
    /// A message entered the mesh NIC (segmented into `packets` packets).
    MessageSend {
        /// Injection cycle.
        cycle: u64,
        /// Sending tile.
        src: u8,
        /// Destination tile.
        dst: u8,
        /// Message length in words.
        words: u32,
        /// Data/control packets the message was segmented into.
        packets: u32,
    },
    /// A packet's tail flit ejected at its destination NIC.
    PacketDeliver {
        /// Delivery cycle.
        cycle: u64,
        /// Sending tile.
        src: u8,
        /// Destination tile.
        dst: u8,
        /// Injection-to-delivery latency in cycles.
        latency: u32,
    },
    /// One flit traversed the outgoing link of `tile` through port `dir`
    /// (0 = N, 1 = E, 2 = S, 3 = W). The per-link heatmap integrates
    /// these.
    FlitHop {
        /// Traversal cycle.
        cycle: u64,
        /// Router the flit left.
        tile: u8,
        /// Outgoing port (0..4).
        dir: u8,
    },
    /// A patch executed a custom instruction. For a fused activation the
    /// event names the remote `partner` (whose patch also fired);
    /// `partner` is [`NO_PARTNER`] for single-patch activations.
    PatchActivate {
        /// Activation cycle.
        cycle: u64,
        /// Issuing tile.
        tile: u8,
        /// Remote tile of a fused pair, or [`NO_PARTNER`].
        partner: u8,
        /// Whether the activation ran as a fused pair.
        fused: bool,
    },
    /// An inter-patch circuit was reserved (stitch time).
    CircuitReserve {
        /// Reservation cycle.
        cycle: u64,
        /// First (issuing) tile.
        from: u8,
        /// Second (remote) tile.
        to: u8,
        /// Switch hops of the reserved path.
        hops: u8,
    },
    /// A scheduled hardware fault manifested. `kind` uses
    /// `stitch-fault`'s stable code (0 = patch, 1 = switch, 2 = config
    /// upset, 3 = mesh link).
    FaultInject {
        /// Injection cycle.
        cycle: u64,
        /// Tile the fault is anchored to.
        tile: u8,
        /// Stable fault-class code.
        kind: u8,
    },
    /// A custom instruction demoted to its software fallback.
    Demote {
        /// Cycle of the demoted activation.
        cycle: u64,
        /// Issuing tile.
        tile: u8,
        /// Whole instruction in software (`true`) or only the remote
        /// stage of a fused pair.
        to_software: bool,
    },
    /// A fused handshake timed out and paid the bounded watchdog retries.
    WatchdogTrip {
        /// Cycle of the trip.
        cycle: u64,
        /// Issuing tile.
        tile: u8,
    },
    /// A patch configuration was re-scrubbed after a detected parity
    /// error.
    Scrub {
        /// Cycle of the scrub.
        cycle: u64,
        /// Scrubbed tile.
        tile: u8,
    },
    /// The chip rolled back to its last checkpoint to replay past a
    /// transient fault. Events already emitted for the rolled-back
    /// window remain in the stream (the trace is an observer log, not
    /// checkpointed state).
    Rollback {
        /// Cycle the rollback was served at.
        cycle: u64,
        /// Checkpoint cycle execution resumes from.
        to_cycle: u64,
    },
    /// A periodic checkpoint was (re)taken.
    Checkpoint {
        /// Checkpoint cycle.
        cycle: u64,
    },
}

/// Event class, used for masks and reconciliation counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)] // variants mirror `TraceEvent` one-to-one
pub enum EventKind {
    Retire = 0,
    Halt = 1,
    RecvWait = 2,
    RecvDone = 3,
    CacheMiss = 4,
    MessageSend = 5,
    PacketDeliver = 6,
    FlitHop = 7,
    PatchActivate = 8,
    CircuitReserve = 9,
    FaultInject = 10,
    Demote = 11,
    WatchdogTrip = 12,
    Scrub = 13,
    Rollback = 14,
    Checkpoint = 15,
}

impl TraceEvent {
    /// The cycle the event occurred at.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Retire { cycle, .. }
            | TraceEvent::Halt { cycle, .. }
            | TraceEvent::RecvWait { cycle, .. }
            | TraceEvent::RecvDone { cycle, .. }
            | TraceEvent::CacheMiss { cycle, .. }
            | TraceEvent::MessageSend { cycle, .. }
            | TraceEvent::PacketDeliver { cycle, .. }
            | TraceEvent::FlitHop { cycle, .. }
            | TraceEvent::PatchActivate { cycle, .. }
            | TraceEvent::CircuitReserve { cycle, .. }
            | TraceEvent::FaultInject { cycle, .. }
            | TraceEvent::Demote { cycle, .. }
            | TraceEvent::WatchdogTrip { cycle, .. }
            | TraceEvent::Scrub { cycle, .. }
            | TraceEvent::Rollback { cycle, .. }
            | TraceEvent::Checkpoint { cycle } => cycle,
        }
    }

    /// The event's class.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::Retire { .. } => EventKind::Retire,
            TraceEvent::Halt { .. } => EventKind::Halt,
            TraceEvent::RecvWait { .. } => EventKind::RecvWait,
            TraceEvent::RecvDone { .. } => EventKind::RecvDone,
            TraceEvent::CacheMiss { .. } => EventKind::CacheMiss,
            TraceEvent::MessageSend { .. } => EventKind::MessageSend,
            TraceEvent::PacketDeliver { .. } => EventKind::PacketDeliver,
            TraceEvent::FlitHop { .. } => EventKind::FlitHop,
            TraceEvent::PatchActivate { .. } => EventKind::PatchActivate,
            TraceEvent::CircuitReserve { .. } => EventKind::CircuitReserve,
            TraceEvent::FaultInject { .. } => EventKind::FaultInject,
            TraceEvent::Demote { .. } => EventKind::Demote,
            TraceEvent::WatchdogTrip { .. } => EventKind::WatchdogTrip,
            TraceEvent::Scrub { .. } => EventKind::Scrub,
            TraceEvent::Rollback { .. } => EventKind::Rollback,
            TraceEvent::Checkpoint { .. } => EventKind::Checkpoint,
        }
    }
}

/// A set of [`EventKind`]s, used to choose which classes the ring buffer
/// retains (the windowed metrics always see every event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMask(u32);

impl EventMask {
    /// Every event class.
    pub const ALL: EventMask = EventMask(u32::MAX);
    /// No event class.
    pub const NONE: EventMask = EventMask(0);

    /// The control-plane classes: everything except the three
    /// per-cycle-dense classes (`Retire`, `CacheMiss`, `FlitHop`), whose
    /// aggregate view lives in the windowed metrics. This is the
    /// practical mask for long application traces.
    #[must_use]
    pub fn control() -> EventMask {
        Self::ALL
            .without(EventKind::Retire)
            .without(EventKind::CacheMiss)
            .without(EventKind::FlitHop)
    }

    /// A mask of exactly `kinds`.
    #[must_use]
    pub fn of(kinds: &[EventKind]) -> EventMask {
        let mut m = 0u32;
        for k in kinds {
            m |= 1 << (*k as u32);
        }
        EventMask(m)
    }

    /// This mask with `kind` removed.
    #[must_use]
    pub fn without(self, kind: EventKind) -> EventMask {
        EventMask(self.0 & !(1 << (kind as u32)))
    }

    /// Whether `kind` is in the mask.
    #[must_use]
    pub fn contains(self, kind: EventKind) -> bool {
        self.0 & (1 << (kind as u32)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_and_kind_accessors() {
        let ev = TraceEvent::Retire {
            cycle: 42,
            tile: 3,
            cost: 5,
        };
        assert_eq!(ev.cycle(), 42);
        assert_eq!(ev.kind(), EventKind::Retire);
        let ev = TraceEvent::Checkpoint { cycle: 7 };
        assert_eq!(ev.cycle(), 7);
        assert_eq!(ev.kind(), EventKind::Checkpoint);
    }

    #[test]
    fn masks_compose() {
        assert!(EventMask::ALL.contains(EventKind::FlitHop));
        assert!(!EventMask::NONE.contains(EventKind::FlitHop));
        let m = EventMask::control();
        assert!(!m.contains(EventKind::Retire));
        assert!(!m.contains(EventKind::FlitHop));
        assert!(!m.contains(EventKind::CacheMiss));
        assert!(m.contains(EventKind::RecvWait));
        assert!(m.contains(EventKind::Demote));
        let m = EventMask::of(&[EventKind::Halt]);
        assert!(m.contains(EventKind::Halt));
        assert!(!m.contains(EventKind::Retire));
    }
}
