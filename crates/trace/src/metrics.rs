//! Windowed metrics: integrating the event stream into fixed-size cycle
//! windows of per-tile utilization, stall breakdowns, and a per-link
//! flit heatmap.
//!
//! All counters are integers so the containing `RunSummary` keeps its
//! `Eq` derive and the engine-equivalence tests can compare summaries
//! exactly. Attribution rules:
//!
//! * a retired instruction's full `cost` is charged to the window its
//!   *retire* cycle falls in (an instruction spanning a boundary is not
//!   split);
//! * receive-wait spans are split exactly at window boundaries, so
//!   `recv_wait_cycles` per window never exceeds the window length;
//! * flit hops, cache misses, activations, and demotions are charged to
//!   the window of their event cycle.
//!
//! Globally the windows reconcile with the run's aggregate counters:
//! summed over windows, `busy_cycles[t]` equals the core's
//! `cycles - recv_wait_cycles`, `recv_wait_cycles[t]` equals the core's
//! `recv_wait_cycles`, `retired[t]` equals `instructions`, and the link
//! heatmap sums to the mesh's `flit_hops`. (Under checkpoint rollback
//! the window stream is rewound to the restore point and rebuilt from
//! the replay, so counts observed between the enclosing window boundary
//! and the restore cycle are approximate; the exact identities hold for
//! rollback-free runs, which is what the reconciliation tests pin.)

use crate::event::{TraceEvent, NO_PARTNER};

/// Per-tile counters for one cycle window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileWindow {
    /// Instructions retired in the window.
    pub retired: u64,
    /// Execution cycles charged in the window (retire-cycle attribution).
    pub busy_cycles: u64,
    /// Cycles spent blocked in `recv` during the window (boundary-split).
    pub recv_wait_cycles: u64,
    /// Of the busy cycles, those paying a cache-miss penalty.
    pub miss_penalty_cycles: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Patch activations (a fused activation counts on both tiles).
    pub activations: u64,
    /// Custom instructions demoted to software fallback.
    pub demotions: u64,
}

/// One closed cycle window across the whole chip.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowMetrics {
    /// First cycle of the window (it covers `start .. start + window`).
    pub start: u64,
    /// Per-tile counters, indexed by tile id.
    pub tiles: Vec<TileWindow>,
    /// Flits that left each router through ports N/E/S/W (`[tile][dir]`).
    pub link_flits: Vec<[u64; 4]>,
}

impl WindowMetrics {
    fn new(start: u64, tiles: usize) -> WindowMetrics {
        WindowMetrics {
            start,
            tiles: vec![TileWindow::default(); tiles],
            link_flits: vec![[0; 4]; tiles],
        }
    }

    /// Whether any counter in the window is nonzero.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.tiles.iter().all(|t| *t == TileWindow::default())
            && self.link_flits.iter().all(|l| *l == [0; 4])
    }
}

/// The windowed view of a traced run, attached to `RunSummary`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceWindows {
    /// Window length in cycles.
    pub window: u64,
    /// Closed windows in time order. The final window is closed at the
    /// snapshot cycle and may be shorter than `window`.
    pub windows: Vec<WindowMetrics>,
}

impl TraceWindows {
    /// Per-tile totals summed over all windows.
    #[must_use]
    pub fn tile_totals(&self) -> Vec<TileWindow> {
        let tiles = self.windows.first().map_or(0, |w| w.tiles.len());
        let mut tot = vec![TileWindow::default(); tiles];
        for w in &self.windows {
            for (acc, t) in tot.iter_mut().zip(&w.tiles) {
                acc.retired += t.retired;
                acc.busy_cycles += t.busy_cycles;
                acc.recv_wait_cycles += t.recv_wait_cycles;
                acc.miss_penalty_cycles += t.miss_penalty_cycles;
                acc.icache_misses += t.icache_misses;
                acc.dcache_misses += t.dcache_misses;
                acc.activations += t.activations;
                acc.demotions += t.demotions;
            }
        }
        tot
    }

    /// The link heatmap summed over all windows (`[tile][dir]`).
    #[must_use]
    pub fn link_totals(&self) -> Vec<[u64; 4]> {
        let tiles = self.windows.first().map_or(0, |w| w.link_flits.len());
        let mut tot = vec![[0u64; 4]; tiles];
        for w in &self.windows {
            for (acc, l) in tot.iter_mut().zip(&w.link_flits) {
                for d in 0..4 {
                    acc[d] += l[d];
                }
            }
        }
        tot
    }
}

/// Streams events into windows. Fed by the tracer with *every* event
/// (the ring-buffer mask does not apply here).
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    window: u64,
    tiles: usize,
    done: Vec<WindowMetrics>,
    cur: WindowMetrics,
    /// Cycle each tile's open receive-wait started at, if blocked.
    wait_since: Vec<Option<u64>>,
}

impl MetricsCollector {
    /// A collector with `window`-cycle windows (min 1) over `tiles` tiles.
    #[must_use]
    pub fn new(window: u64, tiles: usize) -> MetricsCollector {
        let window = window.max(1);
        MetricsCollector {
            window,
            tiles,
            done: Vec::new(),
            cur: WindowMetrics::new(0, tiles),
            wait_since: vec![None; tiles],
        }
    }

    fn cur_end(&self) -> u64 {
        self.cur.start + self.window
    }

    /// Close windows until `cycle` falls inside the current one.
    fn roll_to(&mut self, cycle: u64) {
        while cycle >= self.cur_end() {
            let end = self.cur_end();
            // Split open receive-waits at the boundary.
            for (tile, since) in self.wait_since.iter_mut().enumerate() {
                if let Some(w) = since {
                    let from = (*w).max(self.cur.start);
                    self.cur.tiles[tile].recv_wait_cycles += end - from;
                    *w = end;
                }
            }
            let next = WindowMetrics::new(end, self.tiles);
            self.done.push(std::mem::replace(&mut self.cur, next));
        }
    }

    /// Consume one event.
    pub fn record(&mut self, ev: &TraceEvent) {
        // A rollback rewinds the chip clock; re-open the window stream at
        // the restore point so subsequent (replayed) events land in
        // in-range windows. Earlier closed windows are kept as observed.
        if let TraceEvent::Rollback { to_cycle, .. } = *ev {
            let start = to_cycle - to_cycle % self.window;
            self.done.retain(|w| w.start < start);
            self.cur = WindowMetrics::new(start, self.tiles);
            self.wait_since = vec![None; self.tiles];
            return;
        }
        self.roll_to(ev.cycle());
        match *ev {
            TraceEvent::Retire { tile, cost, .. } => {
                let t = &mut self.cur.tiles[tile as usize];
                t.retired += 1;
                t.busy_cycles += u64::from(cost);
            }
            TraceEvent::RecvWait { cycle, tile, .. } => {
                self.wait_since[tile as usize] = Some(cycle);
            }
            TraceEvent::RecvDone { cycle, tile, .. } => {
                if let Some(w) = self.wait_since[tile as usize].take() {
                    let from = w.max(self.cur.start);
                    self.cur.tiles[tile as usize].recv_wait_cycles += cycle - from;
                }
            }
            TraceEvent::CacheMiss {
                tile,
                icache,
                penalty,
                ..
            } => {
                let t = &mut self.cur.tiles[tile as usize];
                if icache {
                    t.icache_misses += 1;
                } else {
                    t.dcache_misses += 1;
                }
                t.miss_penalty_cycles += u64::from(penalty);
            }
            TraceEvent::FlitHop { tile, dir, .. } => {
                if let Some(d) = self.cur.link_flits[tile as usize].get_mut(dir as usize) {
                    *d += 1;
                }
            }
            TraceEvent::PatchActivate { tile, partner, .. } => {
                self.cur.tiles[tile as usize].activations += 1;
                if partner != NO_PARTNER {
                    self.cur.tiles[partner as usize].activations += 1;
                }
            }
            TraceEvent::Demote { tile, .. } => {
                self.cur.tiles[tile as usize].demotions += 1;
            }
            _ => {}
        }
    }

    /// A finished view of the windows with the open window closed at
    /// `end_cycle`. Non-destructive: the collector keeps streaming.
    #[must_use]
    pub fn snapshot(&self, end_cycle: u64) -> TraceWindows {
        let mut windows = self.done.clone();
        let mut last = self.cur.clone();
        let end = end_cycle.max(last.start);
        for (tile, since) in self.wait_since.iter().enumerate() {
            if let Some(w) = since {
                let from = (*w).max(last.start);
                if end > from {
                    last.tiles[tile].recv_wait_cycles += end - from;
                }
            }
        }
        windows.push(last);
        TraceWindows {
            window: self.window,
            windows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_and_retired_attribution() {
        let mut m = MetricsCollector::new(100, 2);
        m.record(&TraceEvent::Retire {
            cycle: 10,
            tile: 0,
            cost: 5,
        });
        m.record(&TraceEvent::Retire {
            cycle: 150,
            tile: 1,
            cost: 2,
        });
        let w = m.snapshot(200);
        assert_eq!(w.windows.len(), 2);
        assert_eq!(w.windows[0].start, 0);
        assert_eq!(w.windows[0].tiles[0].retired, 1);
        assert_eq!(w.windows[0].tiles[0].busy_cycles, 5);
        assert_eq!(w.windows[1].start, 100);
        assert_eq!(w.windows[1].tiles[1].busy_cycles, 2);
        let tot = w.tile_totals();
        assert_eq!(tot[0].retired + tot[1].retired, 2);
    }

    #[test]
    fn recv_wait_splits_at_boundaries() {
        let mut m = MetricsCollector::new(100, 1);
        m.record(&TraceEvent::RecvWait {
            cycle: 80,
            tile: 0,
            from: 0,
        });
        m.record(&TraceEvent::RecvDone {
            cycle: 250,
            tile: 0,
            from: 0,
            words: 1,
        });
        let w = m.snapshot(300);
        // 80..100 in window 0, 100..200 in window 1, 200..250 in window 2.
        assert_eq!(w.windows[0].tiles[0].recv_wait_cycles, 20);
        assert_eq!(w.windows[1].tiles[0].recv_wait_cycles, 100);
        assert_eq!(w.windows[2].tiles[0].recv_wait_cycles, 50);
        assert_eq!(w.tile_totals()[0].recv_wait_cycles, 250 - 80);
    }

    #[test]
    fn open_wait_counted_in_snapshot() {
        let mut m = MetricsCollector::new(1_000, 1);
        m.record(&TraceEvent::RecvWait {
            cycle: 10,
            tile: 0,
            from: 0,
        });
        let w = m.snapshot(60);
        assert_eq!(w.windows[0].tiles[0].recv_wait_cycles, 50);
        // The collector itself is unchanged: a later snapshot re-derives.
        let w = m.snapshot(110);
        assert_eq!(w.windows[0].tiles[0].recv_wait_cycles, 100);
    }

    #[test]
    fn heatmap_and_fused_activations() {
        let mut m = MetricsCollector::new(50, 4);
        m.record(&TraceEvent::FlitHop {
            cycle: 1,
            tile: 2,
            dir: 1,
        });
        m.record(&TraceEvent::FlitHop {
            cycle: 2,
            tile: 2,
            dir: 1,
        });
        m.record(&TraceEvent::PatchActivate {
            cycle: 3,
            tile: 0,
            partner: 3,
            fused: true,
        });
        m.record(&TraceEvent::PatchActivate {
            cycle: 4,
            tile: 1,
            partner: NO_PARTNER,
            fused: false,
        });
        let w = m.snapshot(50);
        assert_eq!(w.link_totals()[2][1], 2);
        let tot = w.tile_totals();
        assert_eq!(tot[0].activations, 1);
        assert_eq!(tot[3].activations, 1);
        assert_eq!(tot[1].activations, 1);
    }

    #[test]
    fn rollback_reopens_windows() {
        let mut m = MetricsCollector::new(100, 1);
        m.record(&TraceEvent::Retire {
            cycle: 250,
            tile: 0,
            cost: 1,
        });
        m.record(&TraceEvent::Rollback {
            cycle: 260,
            to_cycle: 100,
        });
        m.record(&TraceEvent::Retire {
            cycle: 120,
            tile: 0,
            cost: 1,
        });
        let w = m.snapshot(200);
        assert_eq!(w.windows.last().unwrap().start, 100);
        assert_eq!(w.windows.last().unwrap().tiles[0].retired, 1);
    }
}
