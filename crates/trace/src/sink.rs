//! Event sinks: where recorded events go.
//!
//! The tracer always drives exactly one [`RingSink`] (a fixed-capacity
//! ring buffer whose contents become the exported trace) and optionally
//! one extra boxed [`TraceSink`] for callers that want to stream events
//! elsewhere (a test harness, a live aggregator).

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// Anything that can consume the event stream.
pub trait TraceSink {
    /// Record one event. Events arrive in nondecreasing cycle order
    /// except across a rollback, where the stream rewinds together with
    /// the chip (a [`TraceEvent::Rollback`] marks the discontinuity).
    fn record(&mut self, ev: &TraceEvent);
}

/// A fixed-capacity ring buffer of events. When full, the oldest events
/// are evicted and counted in `dropped` — a bounded trace of a long run
/// keeps its most recent history.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> RingSink {
        let capacity = capacity.max(1);
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain the ring into an owned capture.
    #[must_use]
    pub fn into_capture(self) -> TraceCapture {
        TraceCapture {
            events: self.buf.into_iter().collect(),
            dropped: self.dropped,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*ev);
    }
}

/// An owned copy of the retained event stream, taken from a chip after a
/// run. `dropped > 0` means the ring overflowed and `events` holds only
/// the most recent history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCapture {
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted by ring overflow.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent::Checkpoint { cycle }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut ring = RingSink::new(3);
        for c in 0..5 {
            ring.record(&ev(c));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let cap = ring.into_capture();
        assert_eq!(cap.events, vec![ev(2), ev(3), ev(4)]);
        assert_eq!(cap.dropped, 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = RingSink::new(0);
        ring.record(&ev(1));
        ring.record(&ev(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.into_capture().events, vec![ev(2)]);
    }
}
