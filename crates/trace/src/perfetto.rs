//! Chrome-trace-event JSON export, loadable in `ui.perfetto.dev` (or
//! `chrome://tracing`).
//!
//! Layout:
//! * **pid 1 — "cores"**: one thread per tile. Receive-wait spans are
//!   complete (`ph:"X"`) events; halts, activations, demotions,
//!   watchdog trips, scrubs, fault injections, sends/deliveries and
//!   cache misses are instants; per-tile windowed counters (`ph:"C"`)
//!   carry the busy/wait/miss-penalty breakdown and retire/activation/
//!   demotion counts.
//! * **pid 2 — "mesh links"**: one thread per router output port
//!   (`tile*4 + dir`), with flit-hop instants and per-link windowed
//!   flit counters — the link heatmap over time.
//! * **pid 3 — "inter-patch circuits"**: one thread per distinct
//!   `(from, to)` circuit with a reservation instant per stitch.
//!
//! Timestamps are microseconds of simulated time at the chip clock
//! (`ns_per_cycle`, 5 ns at the nominal 200 MHz), rendered with
//! nanosecond precision so distinct cycles never alias.

use std::fmt::Write as _;

use crate::event::{TraceEvent, NO_PARTNER};
use crate::metrics::TraceWindows;
use crate::sink::TraceCapture;

const PID_CORES: u32 = 1;
const PID_LINKS: u32 = 2;
const PID_CIRCUITS: u32 = 3;

const DIR_NAMES: [&str; 5] = ["N", "E", "S", "W", "local"];

/// Render `cycle` as a microsecond timestamp string.
fn ts(cycle: u64, ns_per_cycle: u64) -> String {
    let ns = cycle * ns_per_cycle;
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

struct TraceJson {
    out: String,
    first: bool,
}

impl TraceJson {
    fn new() -> TraceJson {
        TraceJson {
            out: String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    /// Append one event object; `body` is the inner `"k":v` list.
    fn push(&mut self, body: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push('{');
        self.out.push_str(body);
        self.out.push('}');
    }

    fn meta_process(&mut self, pid: u32, name: &str) {
        self.push(&format!(
            "\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}"
        ));
    }

    fn meta_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.push(&format!(
            "\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{name}\"}}"
        ));
    }

    fn instant(&mut self, pid: u32, tid: u32, ts: &str, name: &str, args: &str) {
        let mut body = format!(
            "\"ph\":\"i\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"name\":\"{name}\""
        );
        if !args.is_empty() {
            let _ = write!(body, ",\"args\":{{{args}}}");
        }
        self.push(&body);
    }

    fn span(&mut self, pid: u32, tid: u32, ts: &str, dur: &str, name: &str, args: &str) {
        let mut body = format!(
            "\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"name\":\"{name}\""
        );
        if !args.is_empty() {
            let _ = write!(body, ",\"args\":{{{args}}}");
        }
        self.push(&body);
    }

    fn counter(&mut self, pid: u32, ts: &str, name: &str, args: &str) {
        self.push(&format!(
            "\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"name\":\"{name}\",\
             \"args\":{{{args}}}"
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Serialize a captured event stream (and, when windowed metrics were
/// collected, their counter tracks) into Chrome trace-event JSON.
#[must_use]
pub fn to_chrome_trace(
    capture: &TraceCapture,
    windows: Option<&TraceWindows>,
    tiles: usize,
    ns_per_cycle: u64,
) -> String {
    let mut j = TraceJson::new();
    let end_cycle = capture
        .events
        .iter()
        .map(TraceEvent::cycle)
        .max()
        .unwrap_or(0);

    j.meta_process(PID_CORES, "cores");
    for t in 0..tiles {
        j.meta_thread(PID_CORES, t as u32, &format!("tile {t}"));
    }
    j.meta_process(PID_LINKS, "mesh links");
    j.meta_process(PID_CIRCUITS, "inter-patch circuits");

    // Lazily named tracks, so quiet links/circuits stay out of the UI.
    let mut link_named = vec![false; tiles * 4];
    let mut circuit_tids: Vec<(u8, u8)> = Vec::new();

    let mut wait_start: Vec<Option<u64>> = vec![None; tiles];
    for ev in &capture.events {
        match *ev {
            TraceEvent::Retire { cycle, tile, cost } => {
                j.span(
                    PID_CORES,
                    u32::from(tile),
                    &ts(cycle, ns_per_cycle),
                    &ts(u64::from(cost), ns_per_cycle),
                    "exec",
                    &format!("\"cost_cycles\":{cost}"),
                );
            }
            TraceEvent::Halt { cycle, tile } => {
                j.instant(
                    PID_CORES,
                    u32::from(tile),
                    &ts(cycle, ns_per_cycle),
                    "halt",
                    "",
                );
            }
            TraceEvent::RecvWait { cycle, tile, .. } => {
                wait_start[tile as usize] = Some(cycle);
            }
            TraceEvent::RecvDone {
                cycle,
                tile,
                from,
                words,
            } => {
                let start = wait_start[tile as usize].take().unwrap_or(cycle);
                j.span(
                    PID_CORES,
                    u32::from(tile),
                    &ts(start, ns_per_cycle),
                    &ts(cycle - start, ns_per_cycle),
                    "recv wait",
                    &format!("\"from\":{from},\"words\":{words}"),
                );
            }
            TraceEvent::CacheMiss {
                cycle,
                tile,
                icache,
                penalty,
            } => {
                let name = if icache { "icache miss" } else { "dcache miss" };
                j.instant(
                    PID_CORES,
                    u32::from(tile),
                    &ts(cycle, ns_per_cycle),
                    name,
                    &format!("\"penalty_cycles\":{penalty}"),
                );
            }
            TraceEvent::MessageSend {
                cycle,
                src,
                dst,
                words,
                packets,
            } => {
                j.instant(
                    PID_CORES,
                    u32::from(src),
                    &ts(cycle, ns_per_cycle),
                    "send",
                    &format!("\"dst\":{dst},\"words\":{words},\"packets\":{packets}"),
                );
            }
            TraceEvent::PacketDeliver {
                cycle,
                src,
                dst,
                latency,
            } => {
                j.instant(
                    PID_CORES,
                    u32::from(dst),
                    &ts(cycle, ns_per_cycle),
                    "deliver",
                    &format!("\"src\":{src},\"latency_cycles\":{latency}"),
                );
            }
            TraceEvent::FlitHop { cycle, tile, dir } => {
                let tid = u32::from(tile) * 4 + u32::from(dir.min(3));
                if let Some(named) = link_named.get_mut(tid as usize) {
                    if !*named {
                        *named = true;
                        let d = DIR_NAMES[usize::from(dir.min(4))];
                        j.meta_thread(PID_LINKS, tid, &format!("link {tile}\u{2192}{d}"));
                    }
                }
                j.instant(PID_LINKS, tid, &ts(cycle, ns_per_cycle), "flit", "");
            }
            TraceEvent::PatchActivate {
                cycle,
                tile,
                partner,
                fused,
            } => {
                let name = if fused { "fused activate" } else { "activate" };
                let args = if partner == NO_PARTNER {
                    String::new()
                } else {
                    format!("\"partner\":{partner}")
                };
                j.instant(
                    PID_CORES,
                    u32::from(tile),
                    &ts(cycle, ns_per_cycle),
                    name,
                    &args,
                );
            }
            TraceEvent::CircuitReserve {
                cycle,
                from,
                to,
                hops,
            } => {
                let key = (from.min(to), from.max(to));
                let tid = match circuit_tids.iter().position(|k| *k == key) {
                    Some(i) => i as u32,
                    None => {
                        circuit_tids.push(key);
                        let tid = (circuit_tids.len() - 1) as u32;
                        j.meta_thread(
                            PID_CIRCUITS,
                            tid,
                            &format!("circuit {}\u{2194}{}", key.0, key.1),
                        );
                        tid
                    }
                };
                j.instant(
                    PID_CIRCUITS,
                    tid,
                    &ts(cycle, ns_per_cycle),
                    "reserve",
                    &format!("\"hops\":{hops}"),
                );
            }
            TraceEvent::FaultInject { cycle, tile, kind } => {
                j.instant(
                    PID_CORES,
                    u32::from(tile),
                    &ts(cycle, ns_per_cycle),
                    "fault",
                    &format!("\"kind\":{kind}"),
                );
            }
            TraceEvent::Demote {
                cycle,
                tile,
                to_software,
            } => {
                j.instant(
                    PID_CORES,
                    u32::from(tile),
                    &ts(cycle, ns_per_cycle),
                    "demote",
                    &format!("\"to_software\":{to_software}"),
                );
            }
            TraceEvent::WatchdogTrip { cycle, tile } => {
                j.instant(
                    PID_CORES,
                    u32::from(tile),
                    &ts(cycle, ns_per_cycle),
                    "watchdog trip",
                    "",
                );
            }
            TraceEvent::Scrub { cycle, tile } => {
                j.instant(
                    PID_CORES,
                    u32::from(tile),
                    &ts(cycle, ns_per_cycle),
                    "scrub",
                    "",
                );
            }
            TraceEvent::Rollback { cycle, to_cycle } => {
                j.instant(
                    PID_CORES,
                    0,
                    &ts(cycle, ns_per_cycle),
                    "rollback",
                    &format!("\"to_cycle\":{to_cycle}"),
                );
            }
            TraceEvent::Checkpoint { cycle } => {
                j.instant(PID_CORES, 0, &ts(cycle, ns_per_cycle), "checkpoint", "");
            }
        }
    }
    // A wait still open at end-of-capture renders to the last cycle.
    for (tile, start) in wait_start.iter().enumerate() {
        if let Some(start) = start {
            j.span(
                PID_CORES,
                tile as u32,
                &ts(*start, ns_per_cycle),
                &ts(end_cycle.saturating_sub(*start), ns_per_cycle),
                "recv wait",
                "",
            );
        }
    }

    if let Some(w) = windows {
        for win in &w.windows {
            let t0 = ts(win.start, ns_per_cycle);
            for (tile, tw) in win.tiles.iter().enumerate() {
                j.counter(
                    PID_CORES,
                    &t0,
                    &format!("tile {tile} cycles"),
                    &format!(
                        "\"busy\":{},\"recv_wait\":{},\"miss_penalty\":{}",
                        tw.busy_cycles, tw.recv_wait_cycles, tw.miss_penalty_cycles
                    ),
                );
                j.counter(
                    PID_CORES,
                    &t0,
                    &format!("tile {tile} events"),
                    &format!(
                        "\"retired\":{},\"activations\":{},\"demotions\":{}",
                        tw.retired, tw.activations, tw.demotions
                    ),
                );
            }
            for (tile, flits) in win.link_flits.iter().enumerate() {
                for (dir, n) in flits.iter().enumerate() {
                    if *n > 0 {
                        j.counter(
                            PID_LINKS,
                            &t0,
                            &format!("link {tile}\u{2192}{} flits", DIR_NAMES[dir]),
                            &format!("\"flits\":{n}"),
                        );
                    }
                }
            }
        }
    }

    j.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn export_parses_and_pairs_waits() {
        let capture = TraceCapture {
            events: vec![
                TraceEvent::RecvWait {
                    cycle: 10,
                    tile: 1,
                    from: 0,
                },
                TraceEvent::RecvDone {
                    cycle: 30,
                    tile: 1,
                    from: 0,
                    words: 4,
                },
                TraceEvent::FlitHop {
                    cycle: 12,
                    tile: 0,
                    dir: 1,
                },
                TraceEvent::Demote {
                    cycle: 40,
                    tile: 2,
                    to_software: true,
                },
            ],
            dropped: 0,
        };
        let out = to_chrome_trace(&capture, None, 4, 5);
        let v = JsonValue::parse(&out).expect("exporter emits valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 1);
        // 20 cycles at 5 ns/cycle = 100 ns = 0.100 µs.
        assert_eq!(spans[0].get("dur").and_then(JsonValue::as_f64), Some(0.1));
        assert!(out.contains("link 0\u{2192}E"));
        assert!(out.contains("demote"));
    }

    #[test]
    fn counters_render_windows() {
        let mut m = crate::metrics::MetricsCollector::new(100, 2);
        m.record(&TraceEvent::Retire {
            cycle: 5,
            tile: 0,
            cost: 3,
        });
        let w = m.snapshot(100);
        let out = to_chrome_trace(&TraceCapture::default(), Some(&w), 2, 5);
        let v = JsonValue::parse(&out).expect("valid JSON");
        let events = v.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C")
                && e.get("name").and_then(JsonValue::as_str) == Some("tile 0 cycles")));
    }
}
