//! A minimal recursive-descent JSON parser, used to validate the
//! exporter's output and to let tests and `obs_report` reconcile a
//! trace file against `RunSummary` without external dependencies.
//!
//! Strict where it matters for validation: rejects trailing garbage,
//! bare NaN/Infinity tokens (the whole point of the NaN satellite fix),
//! unterminated strings, and malformed escapes. Accepts the standard
//! JSON grammar, nothing more.

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order preserved, duplicate keys kept as-is.
    Object(Vec<(String, JsonValue)>),
}

/// Maximum container nesting the parser accepts. The parser is
/// recursive-descent, so unbounded nesting lets a hostile document
/// (`[[[[…`) overflow the host stack; 128 levels is far beyond any
/// document the exporter emits while costing well under the default
/// stack size.
pub const MAX_DEPTH: usize = 128;

/// Maximum input size the parser accepts (64 MiB). Exported traces
/// stay well under this; the cap bounds peak memory when a hostile
/// upload is handed straight to `parse`.
pub const MAX_INPUT_BYTES: usize = 64 << 20;

impl JsonValue {
    /// Parse a complete JSON document. Errors carry a byte offset and a
    /// short description.
    ///
    /// Hardened for hostile input: documents larger than
    /// [`MAX_INPUT_BYTES`] or nested deeper than [`MAX_DEPTH`] are
    /// rejected with an error instead of exhausting memory or
    /// overflowing the stack.
    pub fn parse(src: &str) -> Result<JsonValue, String> {
        if src.len() > MAX_INPUT_BYTES {
            return Err(format!(
                "input of {} bytes exceeds the {MAX_INPUT_BYTES}-byte cap",
                src.len()
            ));
        }
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member lookup on an object (first match); `None` otherwise.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting, capped at [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    /// Bumps the nesting depth on container entry; errors past the cap.
    /// The matching decrement happens on the container's successful
    /// exit (error paths abort the whole parse, so their counts are
    /// never read again).
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogates in export output never occur;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Copy the whole unescaped run in one go. `"` and
                    // `\` are ASCII, so they never occur inside a
                    // multi-byte UTF-8 sequence and the slice below is
                    // always on a character boundary.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8")?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            JsonValue::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": true, "e": null}"#)
                .unwrap();
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("d").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_nan_and_garbage() {
        assert!(JsonValue::parse("NaN").is_err());
        assert!(JsonValue::parse("{\"x\": NaN}").is_err());
        assert!(JsonValue::parse("[1, Infinity]").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("{\"open\": ").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn rejects_hostile_nesting_and_oversized_input() {
        // A document nested just past the cap is rejected with an error
        // (before this guard it would overflow the parser's stack).
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        // Same for objects.
        let deep_obj: String = "{\"k\":".repeat(MAX_DEPTH + 1) + "0" + &"}".repeat(MAX_DEPTH + 1);
        assert!(JsonValue::parse(&deep_obj).is_err());
        // Exactly at the cap still parses.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(JsonValue::parse(&ok).is_ok());
        // Depth is container nesting, not element count: a wide array
        // at depth 1 is fine.
        let wide = format!("[{}1]", "1,".repeat(1000));
        assert!(JsonValue::parse(&wide).is_ok());
        // Oversized input is rejected up front, before any scanning.
        let huge = "x".repeat(MAX_INPUT_BYTES + 1);
        let err = JsonValue::parse(&huge).unwrap_err();
        assert!(err.contains("byte cap"), "{err}");
    }

    #[test]
    fn integers_roundtrip_as_u64() {
        let v = JsonValue::parse("{\"n\": 123456789}").unwrap();
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(123_456_789));
        let v = JsonValue::parse("{\"n\": -1}").unwrap();
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), None);
        let v = JsonValue::parse("{\"n\": 1.5}").unwrap();
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), None);
    }
}
