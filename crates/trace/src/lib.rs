//! Chip-wide observability for the Stitch simulator.
//!
//! The simulator's hot loops call [`Tracer::emit`] at every state
//! transition worth observing. A disabled tracer (the default) costs a
//! single branch on a `None` — the event closure is never built — so an
//! untraced run pays essentially nothing. An enabled tracer fans each
//! event out to up to three consumers:
//!
//! 1. a [`RingSink`] holding the most recent events of the classes
//!    selected by [`TraceConfig::ring_mask`] (dense classes like
//!    `Retire`/`FlitHop` are usually masked out of the ring and viewed
//!    through the windows instead);
//! 2. an optional [`MetricsCollector`] integrating **every** event —
//!    mask-independent — into fixed cycle windows of per-tile
//!    utilization, stall breakdowns, and a NoC link heatmap;
//! 3. an optional caller-supplied extra [`TraceSink`].
//!
//! The captured stream exports to Chrome-trace-event JSON via
//! [`to_chrome_trace`] and loads directly in `ui.perfetto.dev`.
//!
//! Both simulator engines (`Chip::run` and `Chip::run_reference`) emit
//! bit-identical event streams: events only mark transitions that both
//! engines execute on the same cycle, and the fast path's skippable
//! windows are event-free by construction (see `crates/trace/src/event.rs`).

#![warn(missing_docs)]

mod event;
mod json;
mod metrics;
mod perfetto;
mod sink;

pub use event::{EventKind, EventMask, TraceEvent, NO_PARTNER};
pub use json::{JsonValue, MAX_DEPTH as JSON_MAX_DEPTH, MAX_INPUT_BYTES as JSON_MAX_INPUT_BYTES};
pub use metrics::{MetricsCollector, TileWindow, TraceWindows, WindowMetrics};
pub use perfetto::to_chrome_trace;
pub use sink::{RingSink, TraceCapture, TraceSink};

/// How a [`Tracer`] is set up.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events.
    pub ring_capacity: usize,
    /// Event classes retained in the ring (the windowed metrics always
    /// see every event regardless).
    pub ring_mask: EventMask,
    /// Window length in cycles for the windowed metrics, or `None` to
    /// skip collecting them.
    pub window: Option<u64>,
    /// Number of tiles on the chip being traced.
    pub tiles: usize,
}

impl TraceConfig {
    /// A practical default for application traces on a `tiles`-tile
    /// chip: a 1 Mi-event ring of control-plane events (dense
    /// `Retire`/`CacheMiss`/`FlitHop` masked out) and 10 k-cycle metric
    /// windows.
    #[must_use]
    pub fn new(tiles: usize) -> TraceConfig {
        TraceConfig {
            ring_capacity: 1 << 20,
            ring_mask: EventMask::control(),
            window: Some(10_000),
            tiles,
        }
    }

    /// Keep every event class in the ring (short runs / tests).
    #[must_use]
    pub fn full(tiles: usize) -> TraceConfig {
        TraceConfig {
            ring_mask: EventMask::ALL,
            ..TraceConfig::new(tiles)
        }
    }

    /// Replace the window length.
    #[must_use]
    pub fn with_window(mut self, window: Option<u64>) -> TraceConfig {
        self.window = window;
        self
    }

    /// Replace the ring capacity.
    #[must_use]
    pub fn with_ring_capacity(mut self, capacity: usize) -> TraceConfig {
        self.ring_capacity = capacity;
        self
    }
}

struct TraceCore {
    ring: RingSink,
    mask: EventMask,
    metrics: Option<MetricsCollector>,
    extra: Option<Box<dyn TraceSink + Send>>,
    /// Events emitted over the tracer's lifetime (counted before any
    /// ring eviction, so it is the true production count, not the
    /// retained count). The simulator's trace-event budget reads this.
    emitted: u64,
}

/// The per-chip event recorder. Disabled by default; the simulator
/// threads one of these through its hot loops and calls
/// [`Tracer::emit`] with a closure that builds the event only when
/// tracing is on.
#[derive(Default)]
pub struct Tracer {
    core: Option<Box<TraceCore>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.core {
            None => f.write_str("Tracer(disabled)"),
            Some(core) => f
                .debug_struct("Tracer")
                .field("ring_len", &core.ring.len())
                .field("ring_dropped", &core.ring.dropped())
                .field("windowed", &core.metrics.is_some())
                .finish(),
        }
    }
}

impl Tracer {
    /// The no-op tracer: `emit` is a single branch.
    #[must_use]
    pub fn disabled() -> Tracer {
        Tracer { core: None }
    }

    /// An enabled tracer per `cfg`.
    #[must_use]
    pub fn new(cfg: &TraceConfig) -> Tracer {
        Tracer {
            core: Some(Box::new(TraceCore {
                ring: RingSink::new(cfg.ring_capacity),
                mask: cfg.ring_mask,
                metrics: cfg.window.map(|w| MetricsCollector::new(w, cfg.tiles)),
                extra: None,
                emitted: 0,
            })),
        }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Attach an extra sink that receives every event (no-op if the
    /// tracer is disabled).
    pub fn set_extra_sink(&mut self, sink: Box<dyn TraceSink + Send>) {
        if let Some(core) = &mut self.core {
            core.extra = Some(sink);
        }
    }

    /// Record the event built by `f`, if tracing is enabled. `f` runs
    /// only when it is — keep event construction inside the closure.
    #[inline]
    pub fn emit(&mut self, f: impl FnOnce() -> TraceEvent) {
        if let Some(core) = &mut self.core {
            let ev = f();
            core.emitted += 1;
            if let Some(m) = &mut core.metrics {
                m.record(&ev);
            }
            if core.mask.contains(ev.kind()) {
                core.ring.record(&ev);
            }
            if let Some(x) = &mut core.extra {
                x.record(&ev);
            }
        }
    }

    /// Total events emitted since the tracer was enabled (0 when
    /// disabled). Monotonic; unaffected by ring eviction.
    #[must_use]
    pub fn events_emitted(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.emitted)
    }

    /// The windowed metrics closed at `end_cycle`, if collected.
    /// Non-destructive.
    #[must_use]
    pub fn windows_snapshot(&self, end_cycle: u64) -> Option<TraceWindows> {
        self.core
            .as_ref()
            .and_then(|c| c.metrics.as_ref())
            .map(|m| m.snapshot(end_cycle))
    }

    /// Tear the tracer down (leaving it disabled) and return the ring's
    /// contents, or `None` if it was disabled.
    pub fn take_capture(&mut self) -> Option<TraceCapture> {
        self.core.take().map(|c| c.ring.into_capture())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn disabled_tracer_never_builds_events() {
        let built = Cell::new(false);
        let mut t = Tracer::disabled();
        t.emit(|| {
            built.set(true);
            TraceEvent::Checkpoint { cycle: 0 }
        });
        assert!(!built.get());
        assert!(!t.is_enabled());
        assert_eq!(t.take_capture(), None);
    }

    #[test]
    fn mask_filters_ring_but_not_metrics() {
        let cfg = TraceConfig {
            ring_capacity: 16,
            ring_mask: EventMask::control(),
            window: Some(100),
            tiles: 2,
        };
        let mut t = Tracer::new(&cfg);
        t.emit(|| TraceEvent::Retire {
            cycle: 1,
            tile: 0,
            cost: 4,
        });
        t.emit(|| TraceEvent::Demote {
            cycle: 2,
            tile: 1,
            to_software: true,
        });
        let w = t.windows_snapshot(100).expect("windowed");
        assert_eq!(w.tile_totals()[0].busy_cycles, 4);
        assert_eq!(w.tile_totals()[1].demotions, 1);
        let cap = t.take_capture().expect("enabled");
        // Retire is masked out of the ring; Demote is retained.
        assert_eq!(cap.events.len(), 1);
        assert!(matches!(cap.events[0], TraceEvent::Demote { .. }));
    }

    #[test]
    fn extra_sink_sees_everything() {
        struct Count(usize);
        impl TraceSink for Count {
            fn record(&mut self, _: &TraceEvent) {
                self.0 += 1;
            }
        }
        let mut t = Tracer::new(&TraceConfig::full(1).with_window(None));
        t.set_extra_sink(Box::new(Count(0)));
        t.emit(|| TraceEvent::Checkpoint { cycle: 1 });
        t.emit(|| TraceEvent::Checkpoint { cycle: 2 });
        let cap = t.take_capture().unwrap();
        assert_eq!(cap.events.len(), 2);
    }
}
