//! # Representative wearable kernels
//!
//! The paper evaluates Stitch on kernels from an IoT/wearable benchmark
//! suite (fft, ifft, dtw, 2dconv, aes, histogram, svm, astar, ...). This
//! crate implements each kernel three ways:
//!
//! 1. **W32 assembly** via [`Kernel::emit_compute`] — written in the
//!    "patch-friendly" style a real ISE compiler would produce: hot-loop
//!    constants preloaded into registers, addresses computed with `add`,
//!    offset-0 loads/stores, and hot arrays placed in the scratchpad
//!    window so the compiler's SPM-pointer analysis can admit them into
//!    custom instructions;
//! 2. a **golden Rust reference** ([`Kernel::reference`]) used by
//!    differential tests;
//! 3. two program wrappers: [`Kernel::standalone`] (input embedded as a
//!    data segment, for profiling/measurement) and [`Kernel::pipelined`]
//!    (receive a frame, compute, send the result — the building block of
//!    the multi-kernel applications).
//!
//! All kernels use fixed-point arithmetic (the cores have no FPU, like
//! the Cortex-M-class wearables the paper targets).

pub mod aes;
pub mod conv;
pub mod dtw;
pub mod fft;
pub mod misc;
pub mod signal;

use stitch_isa::memmap::SPM_BASE;
use stitch_isa::program::{Program, ProgramBuilder};
use stitch_isa::{IsaError, Reg};

/// Base DRAM address of kernel outputs (checked by tests and the driver).
pub const OUTPUT_BASE: u32 = 0x0010_0000;
/// Base DRAM address of staged (non-SPM) inputs.
pub const INPUT_BASE: u32 = 0x0020_0000;
/// Convenient alias for the scratchpad window base.
pub const SPM: u32 = SPM_BASE;

/// Wrapper registers reserved by the standalone/pipelined scaffolding.
/// Kernel compute code may use `r1..=r19` freely.
pub mod wrap_regs {
    use stitch_isa::Reg;
    /// Frame counter.
    pub const FRAMES: Reg = Reg::R27;
    /// Upstream tile id.
    pub const SRC: Reg = Reg::R26;
    /// Downstream tile id.
    pub const DST: Reg = Reg::R25;
    /// Input address.
    pub const IN_ADDR: Reg = Reg::R24;
    /// Input length (words).
    pub const IN_LEN: Reg = Reg::R23;
    /// Output address.
    pub const OUT_ADDR: Reg = Reg::R22;
    /// Output length (words).
    pub const OUT_LEN: Reg = Reg::R21;
}

/// Static description of a kernel's memory interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSpec {
    /// Kernel name as used in the paper's figures.
    pub name: &'static str,
    /// Where the kernel expects its input frame.
    pub input_addr: u32,
    /// Input frame length in words.
    pub input_words: u32,
    /// Where the kernel leaves its result.
    pub output_addr: u32,
    /// Output length in words.
    pub output_words: u32,
}

/// Pipeline endpoints for [`Kernel::pipelined`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeIo {
    /// Upstream tile (`None` = source kernel, uses its embedded input).
    pub src: Option<u8>,
    /// Downstream tile (`None` = sink kernel, keeps its output local).
    pub dst: Option<u8>,
    /// Frames to process before halting.
    pub frames: u32,
}

/// A wearable kernel: assembly emission plus golden reference.
pub trait Kernel: Sync + Send {
    /// Memory interface.
    fn spec(&self) -> KernelSpec;

    /// Deterministic synthetic input frame.
    fn input(&self) -> Vec<u32>;

    /// Emits the compute body: consumes `spec().input_words` words at
    /// `spec().input_addr`, produces `spec().output_words` at
    /// `spec().output_addr`. May clobber `r1..=r19`.
    fn emit_compute(&self, b: &mut ProgramBuilder);

    /// Golden reference (must match the simulated output exactly).
    fn reference(&self, input: &[u32]) -> Vec<u32>;

    /// Standalone program: embedded input, one compute pass, halt.
    ///
    /// # Errors
    ///
    /// Propagates [`stitch_isa::IsaError`] from program assembly (an
    /// unbound label in a kernel's compute body).
    fn standalone(&self) -> Result<Program, IsaError> {
        let spec = self.spec();
        let mut b = ProgramBuilder::new();
        b.data_segment(spec.input_addr, self.input());
        self.emit_compute(&mut b);
        b.halt();
        b.symbol("output", spec.output_addr);
        b.build()
    }

    /// Pipelined program: per frame, receive (unless source), compute,
    /// send (unless sink).
    ///
    /// # Errors
    ///
    /// Propagates [`stitch_isa::IsaError`] from program assembly.
    fn pipelined(&self, io: PipeIo) -> Result<Program, IsaError> {
        use wrap_regs as w;
        let spec = self.spec();
        let mut b = ProgramBuilder::new();
        if io.src.is_none() {
            // Source kernels regenerate the same frame each iteration.
            b.data_segment(spec.input_addr, self.input());
        }
        b.li(w::FRAMES, i64::from(io.frames));
        b.li(w::IN_ADDR, i64::from(spec.input_addr as i32));
        b.li(w::IN_LEN, i64::from(spec.input_words));
        b.li(w::OUT_ADDR, i64::from(spec.output_addr as i32));
        b.li(w::OUT_LEN, i64::from(spec.output_words));
        if let Some(src) = io.src {
            b.li(w::SRC, i64::from(src));
        }
        if let Some(dst) = io.dst {
            b.li(w::DST, i64::from(dst));
        }
        let frame_loop = b.bound_label();
        if io.src.is_some() {
            b.recv(w::SRC, w::IN_ADDR, w::IN_LEN);
        }
        self.emit_compute(&mut b);
        if io.dst.is_some() {
            b.send(w::DST, w::OUT_ADDR, w::OUT_LEN);
        }
        b.addi(w::FRAMES, w::FRAMES, -1);
        b.branch(stitch_isa::Cond::Ne, w::FRAMES, Reg::R0, frame_loop);
        b.halt();
        b.symbol("output", spec.output_addr);
        b.build()
    }
}

/// Deterministic pseudo-random input generator (xorshift32), used by all
/// kernels so references and simulations agree.
#[must_use]
pub fn synth_input(seed: u32, len: usize, mask: u32) -> Vec<u32> {
    let mut x = seed.max(1);
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x & mask
        })
        .collect()
}

/// All kernels evaluated in Fig 11, in presentation order.
#[must_use]
pub fn all_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(fft::Fft::new(64)),
        Box::new(fft::Ifft::new(64)),
        Box::new(signal::FirFilter::new(128, 8)),
        Box::new(signal::UpdateFeature::new(128)),
        Box::new(signal::Classify::new(64, 4)),
        Box::new(conv::Conv2d::new(16, 16)),
        Box::new(conv::Pool2x2::new(16, 16)),
        Box::new(conv::FullyConnected::new(64, 10)),
        Box::new(dtw::Dtw::new(24)),
        Box::new(aes::AesEnc::new(8)),
        Box::new(aes::AesDec::new(8)),
        Box::new(misc::Histogram::new(256)),
        Box::new(misc::Svm::new(32, 4)),
        Box::new(misc::Crc32::new(64)),
        Box::new(misc::AStar::new(8)),
    ]
}

/// Looks a kernel up by name.
#[must_use]
pub fn kernel_by_name(name: &str) -> Option<Box<dyn Kernel>> {
    all_kernels().into_iter().find(|k| k.spec().name == name)
}

/// Emits a tight copy loop `count` words from `src` to `dst` using
/// registers `r16..=r19` (helper shared by kernels that stage data
/// between DRAM and the scratchpad).
pub fn emit_copy_words(b: &mut ProgramBuilder, src: u32, dst: u32, count: u32) {
    b.li(Reg::R16, i64::from(src as i32));
    b.li(Reg::R17, i64::from(dst as i32));
    b.li(Reg::R18, i64::from(count));
    let top = b.bound_label();
    b.lw(Reg::R19, Reg::R16, 0);
    b.sw(Reg::R19, Reg::R17, 0);
    b.addi(Reg::R16, Reg::R16, 4);
    b.addi(Reg::R17, Reg::R17, 4);
    b.addi(Reg::R18, Reg::R18, -1);
    b.branch(stitch_isa::Cond::Ne, Reg::R18, Reg::R0, top);
}

#[cfg(test)]
mod tests {
    use super::*;
    use stitch_sim::TileId;
    use stitch_sim::{Chip, ChipConfig};

    /// Runs a kernel standalone on the baseline chip and compares the
    /// output region against the golden reference.
    pub(crate) fn check_kernel(k: &dyn Kernel) {
        let spec = k.spec();
        let program = k.standalone().unwrap();
        let expected = k.reference(&k.input());
        assert_eq!(
            expected.len() as u32,
            spec.output_words,
            "{}: reference length mismatch",
            spec.name
        );
        let mut chip = Chip::new(ChipConfig::baseline_16());
        chip.load_program(TileId(0), &program).unwrap();
        chip.run(500_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let got = chip.peek_words(TileId(0), spec.output_addr, expected.len());
        assert_eq!(got, expected, "{}: output mismatch", spec.name);
    }

    #[test]
    fn every_kernel_matches_its_reference() {
        for k in all_kernels() {
            check_kernel(k.as_ref());
        }
    }

    #[test]
    fn kernels_also_run_on_stitch_memory_geometry() {
        // Same programs must work with 4KB D$ + SPM (data segments land
        // in the scratchpad window).
        for k in all_kernels().into_iter().take(4) {
            let spec = k.spec();
            let expected = k.reference(&k.input());
            let mut chip = Chip::new(ChipConfig::stitch_16());
            chip.load_program(TileId(0), &k.standalone().unwrap())
                .unwrap();
            chip.run(500_000_000).unwrap();
            let got = chip.peek_words(TileId(0), spec.output_addr, expected.len());
            assert_eq!(got, expected, "{}: stitch-geometry mismatch", spec.name);
        }
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let kernels = all_kernels();
        let mut names: Vec<&str> = kernels.iter().map(|k| k.spec().name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(kernel_by_name("fft").is_some());
        assert!(kernel_by_name("nonexistent").is_none());
    }

    #[test]
    fn pipelined_source_and_sink_round_trip() {
        // fir as a 2-stage pipeline: tile0 (source) -> tile1 (sink compute).
        let k = signal::FirFilter::new(64, 4);
        let spec = k.spec();
        let mut chip = Chip::new(ChipConfig::baseline_16());

        // Source: emits its own computed output once.
        let src_prog = k
            .pipelined(PipeIo {
                src: None,
                dst: Some(1),
                frames: 2,
            })
            .unwrap();
        chip.load_program(TileId(0), &src_prog).unwrap();

        // Sink: a fir instance whose input frame matches the source's
        // output length (64 - 4 + 1 = 61 words).
        let sink = signal::FirFilter::new(61, 4);
        let sink_prog = sink
            .pipelined(PipeIo {
                src: Some(0),
                dst: None,
                frames: 2,
            })
            .unwrap();
        chip.load_program(TileId(1), &sink_prog).unwrap();

        chip.run(500_000_000).unwrap();
        // The sink received the source's output as input; verify it
        // computed the expected composition of the two filters.
        let _ = spec;
        let expected = sink.reference(&k.reference(&k.input()));
        let got = chip.peek_words(TileId(1), sink.spec().output_addr, expected.len());
        assert_eq!(got, expected, "composed pipeline output");
    }

    #[test]
    fn synth_input_is_deterministic() {
        assert_eq!(synth_input(7, 16, 0xFF), synth_input(7, 16, 0xFF));
        assert_ne!(synth_input(7, 16, 0xFFFF), synth_input(8, 16, 0xFFFF));
        assert!(synth_input(3, 100, 0xFF).iter().all(|&v| v <= 0xFF));
    }
}
