//! Remaining wearable kernels: histogram, SVM, CRC32 and A* search.

use crate::{synth_input, Kernel, KernelSpec, OUTPUT_BASE, SPM};
use stitch_isa::op::AluOp;
use stitch_isa::program::ProgramBuilder;
use stitch_isa::{Cond, Reg};

/// 256-bin byte histogram — the paper's SPM-sizing example (§III-C):
/// bins live entirely in the scratchpad, making the
/// load-increment-store bin update a custom-instruction pattern.
#[derive(Debug, Clone)]
pub struct Histogram {
    n: u32,
}

impl Histogram {
    /// Number of input samples.
    ///
    /// # Panics
    ///
    /// Panics when samples + the 256 bins exceed the scratchpad.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!((n + 256) * 4 <= 4096, "histogram SPM footprint");
        Histogram { n }
    }
}

impl Kernel for Histogram {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "histogram",
            input_addr: SPM,
            input_words: self.n,
            output_addr: OUTPUT_BASE,
            output_words: 256,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0x4157, self.n as usize, 0xFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        let bins = SPM + self.n * 4;
        // Zero the bins.
        b.li(Reg::R1, i64::from(bins as i32));
        b.li(Reg::R2, 256);
        b.li(Reg::R14, 4);
        let zero = b.bound_label();
        b.sw(Reg::R0, Reg::R1, 0);
        b.add(Reg::R1, Reg::R1, Reg::R14);
        b.addi(Reg::R2, Reg::R2, -1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, zero);
        // Count: bin = bins + (v << 2); *bin += 1.
        b.li(Reg::R1, i64::from(SPM as i32));
        b.li(Reg::R2, i64::from(self.n));
        b.li(Reg::R12, 2);
        b.li(Reg::R13, i64::from(bins as i32));
        b.li(Reg::R11, 1);
        let top = b.bound_label();
        b.lw(Reg::R5, Reg::R1, 0);
        b.alu(AluOp::Sll, Reg::R5, Reg::R5, Reg::R12);
        b.add(Reg::R5, Reg::R13, Reg::R5);
        b.lw(Reg::R6, Reg::R5, 0);
        b.add(Reg::R6, Reg::R6, Reg::R11);
        b.sw(Reg::R6, Reg::R5, 0);
        b.add(Reg::R1, Reg::R1, Reg::R14);
        b.addi(Reg::R2, Reg::R2, -1);
        b.branch(Cond::Ne, Reg::R2, Reg::R0, top);
        // Copy bins out.
        b.li(Reg::R1, i64::from(bins as i32));
        b.li(Reg::R2, i64::from(OUTPUT_BASE as i32));
        b.li(Reg::R3, 256);
        let copy = b.bound_label();
        b.lw(Reg::R4, Reg::R1, 0);
        b.sw(Reg::R4, Reg::R2, 0);
        b.add(Reg::R1, Reg::R1, Reg::R14);
        b.add(Reg::R2, Reg::R2, Reg::R14);
        b.addi(Reg::R3, Reg::R3, -1);
        b.branch(Cond::Ne, Reg::R3, Reg::R0, copy);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let mut bins = vec![0u32; 256];
        for &v in input {
            bins[(v & 0xFF) as usize] += 1;
        }
        bins
    }
}

/// Linear multi-class SVM: `score[c] = (w_c . x) >> 8 + bias_c`, output
/// scores plus the argmax class (APP3's recognizer).
#[derive(Debug, Clone)]
pub struct Svm {
    dims: u32,
    classes: u32,
}

impl Svm {
    /// Feature dimensionality and class count.
    ///
    /// # Panics
    ///
    /// Panics when features + weights + biases exceed the scratchpad.
    #[must_use]
    pub fn new(dims: u32, classes: u32) -> Self {
        assert!(
            (dims + dims * classes + classes) * 4 <= 4096,
            "svm SPM footprint"
        );
        Svm { dims, classes }
    }

    fn weights(&self) -> Vec<u32> {
        synth_input(
            0x5F3 + self.classes,
            (self.dims * self.classes) as usize,
            0xFF,
        )
    }

    fn biases(&self) -> Vec<u32> {
        synth_input(0xB1A5, self.classes as usize, 0xFFF)
    }
}

impl Kernel for Svm {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "svm",
            input_addr: SPM,
            input_words: self.dims,
            output_addr: OUTPUT_BASE,
            output_words: self.classes + 1,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0x5F35, self.dims as usize, 0xFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        let w_base = SPM + self.dims * 4;
        let b_base = w_base + self.dims * self.classes * 4;
        b.data_segment(w_base, self.weights());
        b.data_segment(b_base, self.biases());
        b.li(Reg::R10, 4);
        b.li(Reg::R11, 8);
        b.li(Reg::R12, i64::from(w_base as i32)); // weight cursor
        b.li(Reg::R18, i64::from(b_base as i32)); // bias cursor
        b.li(Reg::R13, i64::from(OUTPUT_BASE as i32));
        b.li(Reg::R9, i64::from(self.classes));
        b.li(Reg::R14, i64::from(i32::MIN)); // best score
        b.li(Reg::R15, 0); // best class
        b.li(Reg::R16, 0); // class index
        let class_loop = b.bound_label();
        b.li(Reg::R1, i64::from(SPM as i32));
        b.li(Reg::R3, 0);
        b.li(Reg::R4, i64::from(self.dims));
        let dot = b.bound_label();
        b.lw(Reg::R5, Reg::R1, 0);
        b.lw(Reg::R6, Reg::R12, 0);
        b.mul(Reg::R7, Reg::R5, Reg::R6);
        b.add(Reg::R3, Reg::R3, Reg::R7);
        b.add(Reg::R1, Reg::R1, Reg::R10);
        b.add(Reg::R12, Reg::R12, Reg::R10);
        b.addi(Reg::R4, Reg::R4, -1);
        b.branch(Cond::Ne, Reg::R4, Reg::R0, dot);
        b.alu(AluOp::Sra, Reg::R3, Reg::R3, Reg::R11);
        b.lw(Reg::R5, Reg::R18, 0);
        b.add(Reg::R3, Reg::R3, Reg::R5);
        b.add(Reg::R18, Reg::R18, Reg::R10);
        b.sw(Reg::R3, Reg::R13, 0);
        b.add(Reg::R13, Reg::R13, Reg::R10);
        let not_better = b.label();
        b.branch(Cond::Ge, Reg::R14, Reg::R3, not_better);
        b.mv(Reg::R14, Reg::R3);
        b.mv(Reg::R15, Reg::R16);
        b.bind_once(not_better);
        b.addi(Reg::R16, Reg::R16, 1);
        b.addi(Reg::R9, Reg::R9, -1);
        b.branch(Cond::Ne, Reg::R9, Reg::R0, class_loop);
        b.sw(Reg::R15, Reg::R13, 0);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let w = self.weights();
        let biases = self.biases();
        let mut out = Vec::new();
        let mut best = i32::MIN;
        let mut best_idx = 0u32;
        for c in 0..self.classes as usize {
            let mut acc: i32 = 0;
            for d in 0..self.dims as usize {
                acc = acc.wrapping_add(
                    (input[d] as i32).wrapping_mul(w[c * self.dims as usize + d] as i32),
                );
            }
            let score = (acc >> 8).wrapping_add(biases[c] as i32);
            out.push(score as u32);
            if score > best {
                best = score;
                best_idx = c as u32;
            }
        }
        out.push(best_idx);
        out
    }
}

/// Bitwise CRC-32 (reflected 0xEDB88320 polynomial), branchless inner
/// loop — dense shift/xor chains suiting the shifter patches.
#[derive(Debug, Clone)]
pub struct Crc32 {
    n: u32,
}

impl Crc32 {
    /// Number of input words.
    #[must_use]
    pub fn new(n: u32) -> Self {
        Crc32 { n }
    }
}

impl Kernel for Crc32 {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "crc",
            input_addr: SPM,
            input_words: self.n,
            output_addr: OUTPUT_BASE,
            output_words: 1,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0xC3C, self.n as usize, 0xFFFF_FFFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        // r2 = crc, r1 = data ptr, r3 = word count, r4 = bit count,
        // r5 = data word, r6/r7 = temps, r12 = poly, r13 = 1, r14 = 4.
        b.li(Reg::R2, -1); // 0xFFFFFFFF
        b.li(Reg::R1, i64::from(SPM as i32));
        b.li(Reg::R3, i64::from(self.n));
        b.li(Reg::R12, i64::from(0xEDB8_8320u32 as i32));
        b.li(Reg::R13, 1);
        b.li(Reg::R14, 4);
        let word_loop = b.bound_label();
        b.lw(Reg::R5, Reg::R1, 0);
        b.li(Reg::R4, 32);
        let bit_loop = b.bound_label();
        // bit = (crc ^ data) & 1; mask = 0 - bit
        b.alu(AluOp::Xor, Reg::R6, Reg::R2, Reg::R5);
        b.alu(AluOp::And, Reg::R6, Reg::R6, Reg::R13);
        b.sub(Reg::R6, Reg::R0, Reg::R6);
        // crc = (crc >> 1) ^ (mask & poly)
        b.alu(AluOp::Srl, Reg::R2, Reg::R2, Reg::R13);
        b.alu(AluOp::And, Reg::R7, Reg::R6, Reg::R12);
        b.alu(AluOp::Xor, Reg::R2, Reg::R2, Reg::R7);
        // data >>= 1
        b.alu(AluOp::Srl, Reg::R5, Reg::R5, Reg::R13);
        b.addi(Reg::R4, Reg::R4, -1);
        b.branch(Cond::Ne, Reg::R4, Reg::R0, bit_loop);
        b.add(Reg::R1, Reg::R1, Reg::R14);
        b.addi(Reg::R3, Reg::R3, -1);
        b.branch(Cond::Ne, Reg::R3, Reg::R0, word_loop);
        // Final inversion and store.
        b.alu(AluOp::Nor, Reg::R2, Reg::R2, Reg::R2);
        b.li(Reg::R6, i64::from(OUTPUT_BASE as i32));
        b.sw(Reg::R2, Reg::R6, 0);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let mut crc: u32 = 0xFFFF_FFFF;
        for &word in input {
            let mut data = word;
            for _ in 0..32 {
                let bit = (crc ^ data) & 1;
                let mask = bit.wrapping_neg();
                crc = (crc >> 1) ^ (mask & 0xEDB8_8320);
                data >>= 1;
            }
        }
        vec![!crc]
    }
}

/// A* grid search (8-connected costs simplified to 4-connected) on a
/// `size x size` grid with synthetic walls — data-dependent control flow
/// with almost no acceleratable patterns, matching the paper's
/// observation that `astar` barely benefits.
///
/// Implemented as uniform-cost search with an open set scanned linearly
/// (no heap). Output: the cost of the best path corner-to-corner.
#[derive(Debug, Clone)]
pub struct AStar {
    size: u32,
}

impl AStar {
    /// Grid edge length (at least 4).
    ///
    /// # Panics
    ///
    /// Panics for tiny grids.
    #[must_use]
    pub fn new(size: u32) -> Self {
        assert!(size >= 4);
        AStar { size }
    }

    fn walls(&self) -> Vec<u32> {
        // ~25% walls, but keep start/goal clear; derive from the input.
        let mut w: Vec<u32> = synth_input(0xA57A, (self.size * self.size) as usize, 0x3)
            .iter()
            .map(|&v| u32::from(v == 0))
            .collect();
        let n = w.len();
        w[0] = 0;
        w[n - 1] = 0;
        w
    }
}

const UNVISITED: i64 = 0x0FFF_FFFF;

impl Kernel for AStar {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "astar",
            input_addr: SPM,
            input_words: self.size * self.size,
            output_addr: OUTPUT_BASE,
            output_words: 1,
        }
    }

    fn input(&self) -> Vec<u32> {
        self.walls()
    }

    #[allow(clippy::too_many_lines)]
    fn emit_compute(&self, b: &mut ProgramBuilder) {
        let n = self.size * self.size;
        let dist_base = SPM + n * 4;
        // r14=4, r15=size*4 (row stride), r13=n*4, r10=walls, r11=dist.
        b.li(Reg::R14, 4);
        b.li(Reg::R15, i64::from(self.size * 4));
        b.li(Reg::R13, i64::from(n * 4));
        b.li(Reg::R10, i64::from(SPM as i32));
        b.li(Reg::R11, i64::from(dist_base as i32));
        // dist[] = UNVISITED; dist[0] = 0.
        b.mv(Reg::R1, Reg::R11);
        b.li(Reg::R2, UNVISITED);
        b.li(Reg::R3, i64::from(n));
        let init = b.bound_label();
        b.sw(Reg::R2, Reg::R1, 0);
        b.add(Reg::R1, Reg::R1, Reg::R14);
        b.addi(Reg::R3, Reg::R3, -1);
        b.branch(Cond::Ne, Reg::R3, Reg::R0, init);
        b.sw(Reg::R0, Reg::R11, 0);
        // Bellman-Ford-style relaxation sweeps: size*size/2 rounds
        // suffice for shortest paths on the grid.
        b.li(Reg::R9, i64::from(n / 2 + 2)); // sweep count
        let sweep = b.bound_label();
        b.li(Reg::R1, 0); // byte offset of the current cell
        let cell = b.bound_label();
        // Skip walls.
        b.add(Reg::R2, Reg::R10, Reg::R1);
        b.lw(Reg::R2, Reg::R2, 0);
        let next_cell = b.label();
        b.branch(Cond::Ne, Reg::R2, Reg::R0, next_cell);
        // d = dist[cell]
        b.add(Reg::R2, Reg::R11, Reg::R1);
        b.lw(Reg::R3, Reg::R2, 0);
        // Relax the four neighbours: for each, if in range and not a
        // wall: dist[nb] = min(dist[nb], d+1).
        // East neighbour exists when (off/4 + 1) % size != 0.
        for dir in 0..4u32 {
            let skip = b.label();
            match dir {
                0 => {
                    // East: column check ((off>>2)+1) % size != 0 —
                    // compute ((off + 4) & (size*4 - 1)) != 0 since size
                    // is a power of two times 4.
                    b.add(Reg::R4, Reg::R1, Reg::R14);
                    b.li(Reg::R5, i64::from(self.size * 4 - 1));
                    b.alu(AluOp::And, Reg::R5, Reg::R4, Reg::R5);
                    b.branch(Cond::Eq, Reg::R5, Reg::R0, skip);
                }
                1 => {
                    // West: (off & (size*4-1)) != 0.
                    b.li(Reg::R5, i64::from(self.size * 4 - 1));
                    b.alu(AluOp::And, Reg::R5, Reg::R1, Reg::R5);
                    b.branch(Cond::Eq, Reg::R5, Reg::R0, skip);
                    b.sub(Reg::R4, Reg::R1, Reg::R14);
                }
                2 => {
                    // South: off + stride < n*4.
                    b.add(Reg::R4, Reg::R1, Reg::R15);
                    b.branch(Cond::Geu, Reg::R4, Reg::R13, skip);
                }
                _ => {
                    // North: off >= stride.
                    b.branch(Cond::Ltu, Reg::R1, Reg::R15, skip);
                    b.sub(Reg::R4, Reg::R1, Reg::R15);
                }
            }
            // Wall check on the neighbour.
            b.add(Reg::R5, Reg::R10, Reg::R4);
            b.lw(Reg::R5, Reg::R5, 0);
            b.branch(Cond::Ne, Reg::R5, Reg::R0, skip);
            // Relax.
            b.add(Reg::R5, Reg::R11, Reg::R4);
            b.lw(Reg::R6, Reg::R5, 0);
            b.addi(Reg::R7, Reg::R3, 1);
            b.branch(Cond::Ge, Reg::R7, Reg::R6, skip);
            b.sw(Reg::R7, Reg::R5, 0);
            b.bind_once(skip);
        }
        b.bind_once(next_cell);
        b.add(Reg::R1, Reg::R1, Reg::R14);
        b.branch(Cond::Ne, Reg::R1, Reg::R13, cell);
        b.addi(Reg::R9, Reg::R9, -1);
        b.branch(Cond::Ne, Reg::R9, Reg::R0, sweep);
        // Output dist[n-1].
        b.sub(Reg::R1, Reg::R13, Reg::R14);
        b.add(Reg::R1, Reg::R11, Reg::R1);
        b.lw(Reg::R2, Reg::R1, 0);
        b.li(Reg::R3, i64::from(OUTPUT_BASE as i32));
        b.sw(Reg::R2, Reg::R3, 0);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let n = (self.size * self.size) as usize;
        let size = self.size as usize;
        let mut dist = vec![UNVISITED; n];
        dist[0] = 0;
        for _ in 0..n / 2 + 2 {
            for cell in 0..n {
                if input[cell] != 0 {
                    continue;
                }
                let d = dist[cell];
                let (x, y) = (cell % size, cell / size);
                let mut neighbours = Vec::new();
                if x + 1 < size {
                    neighbours.push(cell + 1);
                }
                if x > 0 {
                    neighbours.push(cell - 1);
                }
                if y + 1 < size {
                    neighbours.push(cell + size);
                }
                if y > 0 {
                    neighbours.push(cell - size);
                }
                for nb in neighbours {
                    if input[nb] == 0 && d + 1 < dist[nb] {
                        dist[nb] = d + 1;
                    }
                }
            }
        }
        vec![dist[n - 1] as u32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts_sum_to_n() {
        let k = Histogram::new(100);
        let out = k.reference(&k.input());
        assert_eq!(out.iter().sum::<u32>(), 100);
    }

    #[test]
    fn crc32_known_answer() {
        // CRC-32 of the little-endian bytes of [0x44434241] ("ABCD").
        let k = Crc32::new(1);
        let out = k.reference(&[0x4443_4241]);
        assert_eq!(out[0], 0xDB17_20A5, "CRC32(\"ABCD\")");
    }

    #[test]
    fn astar_open_grid_is_manhattan() {
        let k = AStar::new(4);
        let open = vec![0u32; 16];
        assert_eq!(k.reference(&open), vec![6], "corner to corner = 2*(4-1)");
    }

    #[test]
    fn astar_reference_order_matches_sweeps() {
        // The emitted code relaxes in the same sweep order as the
        // reference; ensure walls from the synthetic input keep a path.
        let k = AStar::new(8);
        let out = k.reference(&k.input());
        assert!(out[0] >= 14, "at least manhattan distance, got {}", out[0]);
    }

    #[test]
    fn svm_scores_argmax() {
        let k = Svm::new(8, 3);
        let out = k.reference(&k.input());
        assert_eq!(out.len(), 4);
        let best = out[3] as usize;
        for c in 0..3 {
            assert!((out[best] as i32) >= (out[c] as i32));
        }
    }
}
