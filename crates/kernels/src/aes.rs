//! AES-128 encryption/decryption kernels (APP3 encrypts anomalous
//! images, APP4 decrypts/encrypts sensor data, paper §VI-A).
//!
//! The state is held one byte per 32-bit word so that S-box lookups
//! become word loads from the scratchpad — the `sll; add; lw` chains are
//! exactly the `{AT-SA}`-shaped patterns the patches accelerate. All
//! GF(2^8) arithmetic is branchless (`xtime` via shift/mask idioms).

use crate::{synth_input, Kernel, KernelSpec, OUTPUT_BASE, SPM};
use stitch_isa::op::AluOp;
use stitch_isa::program::ProgramBuilder;
use stitch_isa::{Cond, Reg};

/// The AES S-box (FIPS-197).
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &v) in SBOX.iter().enumerate() {
        inv[v as usize] = i as u8;
    }
    inv
}

fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1B)
}

fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// Expands an AES-128 key into 176 round-key bytes.
#[must_use]
pub fn expand_key(key: &[u8; 16]) -> Vec<u8> {
    const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36];
    let mut w = key.to_vec();
    for i in 4..44 {
        let mut t = [
            w[(i - 1) * 4],
            w[(i - 1) * 4 + 1],
            w[(i - 1) * 4 + 2],
            w[(i - 1) * 4 + 3],
        ];
        if i % 4 == 0 {
            t.rotate_left(1);
            for v in &mut t {
                *v = SBOX[*v as usize];
            }
            t[0] ^= RCON[i / 4 - 1];
        }
        for k in 0..4 {
            let b = w[(i - 4) * 4 + k] ^ t[k];
            w.push(b);
        }
    }
    w
}

/// Encrypts one block (bytes, column-major state order as in FIPS-197).
#[must_use]
pub fn aes_encrypt_block(rk: &[u8], block: &[u8; 16]) -> [u8; 16] {
    let mut s = *block;
    let ark = |s: &mut [u8; 16], round: usize| {
        for i in 0..16 {
            s[i] ^= rk[round * 16 + i];
        }
    };
    let sub = |s: &mut [u8; 16]| {
        for v in s.iter_mut() {
            *v = SBOX[*v as usize];
        }
    };
    let shift = |s: &mut [u8; 16]| {
        let old = *s;
        for r in 0..4 {
            for c in 0..4 {
                s[r + 4 * c] = old[r + 4 * ((c + r) % 4)];
            }
        }
    };
    let mix = |s: &mut [u8; 16]| {
        for c in 0..4 {
            let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
            let t = col[0] ^ col[1] ^ col[2] ^ col[3];
            for k in 0..4 {
                s[4 * c + k] = col[k] ^ t ^ xtime(col[k] ^ col[(k + 1) % 4]);
            }
        }
    };
    ark(&mut s, 0);
    for round in 1..10 {
        sub(&mut s);
        shift(&mut s);
        mix(&mut s);
        ark(&mut s, round);
    }
    sub(&mut s);
    shift(&mut s);
    ark(&mut s, 10);
    s
}

/// Decrypts one block (inverse cipher, FIPS-197 §5.3).
#[must_use]
pub fn aes_decrypt_block(rk: &[u8], block: &[u8; 16]) -> [u8; 16] {
    let inv = inv_sbox();
    let mut s = *block;
    let ark = |s: &mut [u8; 16], round: usize| {
        for i in 0..16 {
            s[i] ^= rk[round * 16 + i];
        }
    };
    let inv_sub = |s: &mut [u8; 16]| {
        for v in s.iter_mut() {
            *v = inv[*v as usize];
        }
    };
    let inv_shift = |s: &mut [u8; 16]| {
        let old = *s;
        for r in 0..4 {
            for c in 0..4 {
                s[r + 4 * c] = old[r + 4 * ((c + 4 - r) % 4)];
            }
        }
    };
    let inv_mix = |s: &mut [u8; 16]| {
        for c in 0..4 {
            let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
            for k in 0..4 {
                s[4 * c + k] = gmul(col[k], 14)
                    ^ gmul(col[(k + 1) % 4], 11)
                    ^ gmul(col[(k + 2) % 4], 13)
                    ^ gmul(col[(k + 3) % 4], 9);
            }
        }
    };
    ark(&mut s, 10);
    for round in (1..10).rev() {
        inv_shift(&mut s);
        inv_sub(&mut s);
        ark(&mut s, round);
        inv_mix(&mut s);
    }
    inv_shift(&mut s);
    inv_sub(&mut s);
    ark(&mut s, 0);
    s
}

/// The fixed benchmark key.
fn bench_key() -> [u8; 16] {
    let mut k = [0u8; 16];
    for (i, v) in synth_input(0xAE5, 16, 0xFF).iter().enumerate() {
        k[i] = *v as u8;
    }
    k
}

// ---------------------------------------------------------------------
// Shared assembly emission
// ---------------------------------------------------------------------

/// Scratchpad layout (word addresses) for the AES kernels.
struct Layout {
    input: u32,
    sbox: u32,
    rk: u32,
    perm: u32,
    tmp: u32,
    state: u32,
}

fn layout(blocks: u32) -> Layout {
    let input = SPM;
    let sbox = input + blocks * 16 * 4;
    let rk = sbox + 256 * 4;
    let perm = rk + 176 * 4;
    let tmp = perm + 16 * 4;
    // One spare word behind `tmp` (offset 64) is used by the decryptor
    // to stash its descending round-key cursor.
    let state = tmp + 17 * 4;
    assert!(
        state + 16 * 4 <= SPM + 4096,
        "AES layout exceeds the 4 KB SPM"
    );
    Layout {
        input,
        sbox,
        rk,
        perm,
        tmp,
        state,
    }
}

/// Constant registers used throughout the AES bodies.
mod regs {
    use stitch_isa::Reg;
    pub const SBOX_BASE: Reg = Reg::R11;
    pub const STATE_BASE: Reg = Reg::R16;
    pub const TMP_BASE: Reg = Reg::R15;
    pub const FOUR: Reg = Reg::R14;
    pub const MASK_FF: Reg = Reg::R13;
    pub const TWO: Reg = Reg::R12;
    pub const SEVEN: Reg = Reg::R17;
    pub const POLY: Reg = Reg::R19; // 0x1B
                                    // Loop/cursor registers.
    pub const BLOCKS: Reg = Reg::R8;
    pub const IN_PTR: Reg = Reg::R7;
    pub const OUT_PTR: Reg = Reg::R6;
    pub const RK_PTR: Reg = Reg::R9;
    pub const ROUNDS: Reg = Reg::R5;
}

/// `state[i] ^= *rk_ptr++` for 16 bytes (advances the round-key cursor).
fn emit_ark(b: &mut ProgramBuilder) {
    use regs::{FOUR, RK_PTR, STATE_BASE};
    b.mv(Reg::R1, STATE_BASE);
    b.li(Reg::R3, 16);
    let top = b.bound_label();
    b.lw(Reg::R4, Reg::R1, 0);
    b.lw(Reg::R10, RK_PTR, 0);
    b.alu(AluOp::Xor, Reg::R4, Reg::R4, Reg::R10);
    b.sw(Reg::R4, Reg::R1, 0);
    b.add(Reg::R1, Reg::R1, FOUR);
    b.add(RK_PTR, RK_PTR, FOUR);
    b.addi(Reg::R3, Reg::R3, -1);
    b.branch(Cond::Ne, Reg::R3, Reg::R0, top);
}

/// `state[i] = sbox[state[i]]` for 16 bytes.
fn emit_subbytes(b: &mut ProgramBuilder) {
    use regs::{FOUR, SBOX_BASE, STATE_BASE, TWO};
    b.mv(Reg::R1, STATE_BASE);
    b.li(Reg::R3, 16);
    let top = b.bound_label();
    b.lw(Reg::R4, Reg::R1, 0);
    b.alu(AluOp::Sll, Reg::R4, Reg::R4, TWO);
    b.add(Reg::R4, SBOX_BASE, Reg::R4);
    b.lw(Reg::R4, Reg::R4, 0);
    b.sw(Reg::R4, Reg::R1, 0);
    b.add(Reg::R1, Reg::R1, FOUR);
    b.addi(Reg::R3, Reg::R3, -1);
    b.branch(Cond::Ne, Reg::R3, Reg::R0, top);
}

/// `tmp[i] = state[perm[i]]; state = tmp` (perm holds byte offsets x4).
fn emit_shiftrows(b: &mut ProgramBuilder, perm_base: u32) {
    use regs::{FOUR, STATE_BASE, TMP_BASE};
    b.li(Reg::R2, i64::from(perm_base as i32));
    b.mv(Reg::R1, TMP_BASE);
    b.li(Reg::R3, 16);
    let gather = b.bound_label();
    b.lw(Reg::R4, Reg::R2, 0);
    b.add(Reg::R4, STATE_BASE, Reg::R4);
    b.lw(Reg::R4, Reg::R4, 0);
    b.sw(Reg::R4, Reg::R1, 0);
    b.add(Reg::R1, Reg::R1, FOUR);
    b.add(Reg::R2, Reg::R2, FOUR);
    b.addi(Reg::R3, Reg::R3, -1);
    b.branch(Cond::Ne, Reg::R3, Reg::R0, gather);
    // Copy back.
    b.mv(Reg::R1, TMP_BASE);
    b.mv(Reg::R2, STATE_BASE);
    b.li(Reg::R3, 16);
    let copy = b.bound_label();
    b.lw(Reg::R4, Reg::R1, 0);
    b.sw(Reg::R4, Reg::R2, 0);
    b.add(Reg::R1, Reg::R1, FOUR);
    b.add(Reg::R2, Reg::R2, FOUR);
    b.addi(Reg::R3, Reg::R3, -1);
    b.branch(Cond::Ne, Reg::R3, Reg::R0, copy);
}

/// Branchless `xtime` of `reg` in place, clobbering `scratch`.
fn emit_xtime(b: &mut ProgramBuilder, reg: Reg, scratch: Reg) {
    use regs::{MASK_FF, POLY, SEVEN};
    b.alu(AluOp::Srl, scratch, reg, SEVEN); // high bit (0/1)
    b.sub(scratch, Reg::R0, scratch); // 0 or -1
    b.alu(AluOp::And, scratch, scratch, POLY); // 0 or 0x1B
    b.add(reg, reg, reg); // << 1
    b.alu(AluOp::And, reg, reg, MASK_FF);
    b.alu(AluOp::Xor, reg, reg, scratch);
}

/// Forward MixColumns, columns unrolled.
fn emit_mixcolumns(b: &mut ProgramBuilder) {
    use regs::STATE_BASE;
    for c in 0..4i32 {
        // t = b0^b1^b2^b3 in r4.
        b.lw(Reg::R4, STATE_BASE, 16 * c);
        for k in 1..4i32 {
            b.lw(Reg::R10, STATE_BASE, 16 * c + 4 * k);
            b.alu(AluOp::Xor, Reg::R4, Reg::R4, Reg::R10);
        }
        for k in 0..4i32 {
            b.lw(Reg::R10, STATE_BASE, 16 * c + 4 * k); // b_k
            b.lw(Reg::R18, STATE_BASE, 16 * c + 4 * ((k + 1) % 4)); // b_k+1
            b.alu(AluOp::Xor, Reg::R18, Reg::R10, Reg::R18);
            emit_xtime(b, Reg::R18, Reg::R2);
            b.alu(AluOp::Xor, Reg::R10, Reg::R10, Reg::R4);
            b.alu(AluOp::Xor, Reg::R10, Reg::R10, Reg::R18);
            b.sw(Reg::R10, regs::TMP_BASE, 4 * k);
        }
        for k in 0..4i32 {
            b.lw(Reg::R10, regs::TMP_BASE, 4 * k);
            b.sw(Reg::R10, STATE_BASE, 16 * c + 4 * k);
        }
    }
}

/// Inverse MixColumns (coefficients 14/11/13/9 via xtime chains).
fn emit_inv_mixcolumns(b: &mut ProgramBuilder) {
    use regs::STATE_BASE;
    for c in 0..4i32 {
        for k in 0..4i32 {
            // acc (r4) = 14*b_k ^ 11*b_{k+1} ^ 13*b_{k+2} ^ 9*b_{k+3}
            b.li(Reg::R4, 0);
            for (j, coeff) in [(0i32, 14u8), (1, 11), (2, 13), (3, 9)] {
                b.lw(Reg::R10, STATE_BASE, 16 * c + 4 * ((k + j) % 4));
                // x1 = b (r10); x2 = xt(x1) (r18); x4, x8 chained.
                b.mv(Reg::R18, Reg::R10);
                let mut power = 1u8;
                let mut acc_started = false;
                for _ in 0..4 {
                    if coeff & power != 0 {
                        if acc_started {
                            b.alu(AluOp::Xor, Reg::R4, Reg::R4, Reg::R18);
                        } else {
                            b.alu(AluOp::Xor, Reg::R4, Reg::R4, Reg::R18);
                            acc_started = true;
                        }
                    }
                    power <<= 1;
                    if power <= 8 {
                        emit_xtime(b, Reg::R18, Reg::R2);
                    }
                }
            }
            b.sw(Reg::R4, regs::TMP_BASE, 4 * k);
        }
        for k in 0..4i32 {
            b.lw(Reg::R10, regs::TMP_BASE, 4 * k);
            b.sw(Reg::R10, STATE_BASE, 16 * c + 4 * k);
        }
    }
}

fn shift_perm(inverse: bool) -> Vec<u32> {
    let mut p = vec![0u32; 16];
    for r in 0..4usize {
        for c in 0..4usize {
            let src = if inverse {
                (c + 4 - r) % 4
            } else {
                (c + r) % 4
            };
            p[r + 4 * c] = ((r + 4 * src) * 4) as u32;
        }
    }
    p
}

/// Emits constants + tables shared by both directions.
fn emit_prologue(
    b: &mut ProgramBuilder,
    l: &Layout,
    sbox_words: Vec<u32>,
    perm: Vec<u32>,
    rk: &[u8],
) {
    b.data_segment(l.sbox, sbox_words);
    b.data_segment(l.perm, perm);
    b.data_segment(l.rk, rk.iter().map(|&v| u32::from(v)).collect::<Vec<_>>());
    b.li(regs::SBOX_BASE, i64::from(l.sbox as i32));
    b.li(regs::STATE_BASE, i64::from(l.state as i32));
    b.li(regs::TMP_BASE, i64::from(l.tmp as i32));
    b.li(regs::FOUR, 4);
    b.li(regs::MASK_FF, 0xFF);
    b.li(regs::TWO, 2);
    b.li(regs::SEVEN, 7);
    b.li(regs::POLY, 0x1B);
}

/// Copies 16 words between cursors `from`/`to`, advancing both.
fn emit_copy16(b: &mut ProgramBuilder, from: Reg, to: Reg) {
    b.li(Reg::R3, 16);
    let top = b.bound_label();
    b.lw(Reg::R4, from, 0);
    b.sw(Reg::R4, to, 0);
    b.add(from, from, regs::FOUR);
    b.add(to, to, regs::FOUR);
    b.addi(Reg::R3, Reg::R3, -1);
    b.branch(Cond::Ne, Reg::R3, Reg::R0, top);
}

// ---------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------

/// AES-128 encryption of `blocks` 16-byte blocks (byte-per-word frames).
#[derive(Debug, Clone)]
pub struct AesEnc {
    blocks: u32,
}

impl AesEnc {
    /// Number of blocks per frame.
    #[must_use]
    pub fn new(blocks: u32) -> Self {
        AesEnc { blocks }
    }
}

impl Kernel for AesEnc {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "aes",
            input_addr: SPM,
            input_words: self.blocks * 16,
            output_addr: OUTPUT_BASE,
            output_words: self.blocks * 16,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0xAE51, (self.blocks * 16) as usize, 0xFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        let l = layout(self.blocks);
        let rk = expand_key(&bench_key());
        emit_prologue(
            b,
            &l,
            SBOX.iter().map(|&v| u32::from(v)).collect(),
            shift_perm(false),
            &rk,
        );
        b.li(regs::BLOCKS, i64::from(self.blocks));
        b.li(regs::IN_PTR, i64::from(l.input as i32));
        b.li(regs::OUT_PTR, i64::from(OUTPUT_BASE as i32));
        let block_loop = b.bound_label();
        // Load the state.
        b.mv(Reg::R2, regs::STATE_BASE);
        emit_copy16(b, regs::IN_PTR, Reg::R2);
        // Round 0 key.
        b.li(regs::RK_PTR, i64::from(l.rk as i32));
        emit_ark(b);
        // Rounds 1..=9.
        b.li(regs::ROUNDS, 9);
        let round_loop = b.bound_label();
        emit_subbytes(b);
        emit_shiftrows(b, l.perm);
        emit_mixcolumns(b);
        emit_ark(b);
        b.addi(regs::ROUNDS, regs::ROUNDS, -1);
        b.branch(Cond::Ne, regs::ROUNDS, Reg::R0, round_loop);
        // Final round.
        emit_subbytes(b);
        emit_shiftrows(b, l.perm);
        emit_ark(b);
        // Write out.
        b.mv(Reg::R1, regs::STATE_BASE);
        emit_copy16(b, Reg::R1, regs::OUT_PTR);
        b.addi(regs::BLOCKS, regs::BLOCKS, -1);
        b.branch(Cond::Ne, regs::BLOCKS, Reg::R0, block_loop);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let rk = expand_key(&bench_key());
        let mut out = Vec::new();
        for blk in input.chunks(16) {
            let mut block = [0u8; 16];
            for (i, v) in blk.iter().enumerate() {
                block[i] = *v as u8;
            }
            out.extend(aes_encrypt_block(&rk, &block).iter().map(|&v| u32::from(v)));
        }
        out
    }
}

/// AES-128 decryption (inverse cipher) of `blocks` blocks.
#[derive(Debug, Clone)]
pub struct AesDec {
    blocks: u32,
}

impl AesDec {
    /// Number of blocks per frame.
    #[must_use]
    pub fn new(blocks: u32) -> Self {
        AesDec { blocks }
    }
}

impl Kernel for AesDec {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "aesdec",
            input_addr: SPM,
            input_words: self.blocks * 16,
            output_addr: OUTPUT_BASE,
            output_words: self.blocks * 16,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0xDEC1, (self.blocks * 16) as usize, 0xFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        let l = layout(self.blocks);
        let rk = expand_key(&bench_key());
        emit_prologue(
            b,
            &l,
            inv_sbox().iter().map(|&v| u32::from(v)).collect(),
            shift_perm(true),
            &rk,
        );
        b.li(regs::BLOCKS, i64::from(self.blocks));
        b.li(regs::IN_PTR, i64::from(l.input as i32));
        b.li(regs::OUT_PTR, i64::from(OUTPUT_BASE as i32));
        let block_loop = b.bound_label();
        b.mv(Reg::R2, regs::STATE_BASE);
        emit_copy16(b, regs::IN_PTR, Reg::R2);
        // Round-key cursor walks backward by resetting per round: round
        // 10 first.
        b.li(regs::RK_PTR, i64::from((l.rk + 640) as i32)); // rk10: 10 rounds x 16 words x 4 B
        emit_ark(b);
        // Rounds 9..=1: InvShiftRows, InvSubBytes, ARK(round), InvMix.
        b.li(regs::ROUNDS, 9);
        b.li(Reg::R18, i64::from((l.rk + 576) as i32)); // rk9 cursor (word-per-byte layout)
        let round_loop = b.bound_label();
        // Stash the descending rk pointer in tmp[15] while r18 is
        // clobbered by the body.
        b.sw(Reg::R18, regs::TMP_BASE, 64);
        emit_shiftrows(b, l.perm);
        emit_subbytes(b);
        b.lw(regs::RK_PTR, regs::TMP_BASE, 64);
        emit_ark(b);
        emit_inv_mixcolumns(b);
        b.lw(Reg::R18, regs::TMP_BASE, 64);
        b.addi(Reg::R18, Reg::R18, -64);
        b.addi(regs::ROUNDS, regs::ROUNDS, -1);
        b.branch(Cond::Ne, regs::ROUNDS, Reg::R0, round_loop);
        // Final: InvShiftRows, InvSubBytes, ARK(rk0).
        emit_shiftrows(b, l.perm);
        emit_subbytes(b);
        b.li(regs::RK_PTR, i64::from(l.rk as i32));
        emit_ark(b);
        b.mv(Reg::R1, regs::STATE_BASE);
        emit_copy16(b, Reg::R1, regs::OUT_PTR);
        b.addi(regs::BLOCKS, regs::BLOCKS, -1);
        b.branch(Cond::Ne, regs::BLOCKS, Reg::R0, block_loop);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let rk = expand_key(&bench_key());
        let mut out = Vec::new();
        for blk in input.chunks(16) {
            let mut block = [0u8; 16];
            for (i, v) in blk.iter().enumerate() {
                block[i] = *v as u8;
            }
            out.extend(aes_decrypt_block(&rk, &block).iter().map(|&v| u32::from(v)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix C.1 known-answer test.
    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let plain: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expect: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let rk = expand_key(&key);
        assert_eq!(aes_encrypt_block(&rk, &plain), expect);
        assert_eq!(aes_decrypt_block(&rk, &expect), plain);
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let enc = AesEnc::new(2);
        let dec = AesDec::new(2);
        let plain = enc.input();
        let cipher = enc.reference(&plain);
        assert_ne!(cipher, plain);
        assert_eq!(dec.reference(&cipher), plain);
    }

    #[test]
    fn sbox_inverse_is_consistent() {
        let inv = inv_sbox();
        for v in 0..=255u8 {
            assert_eq!(inv[SBOX[v as usize] as usize], v);
        }
    }

    #[test]
    fn xtime_matches_gmul() {
        for v in 0..=255u8 {
            assert_eq!(xtime(v), gmul(v, 2));
        }
    }
}
