//! CNN-style kernels: 2-D convolution, pooling, fully-connected layer
//! (the building blocks of APP2, paper Fig 9).

use crate::{synth_input, Kernel, KernelSpec, OUTPUT_BASE, SPM};
use stitch_isa::op::AluOp;
use stitch_isa::program::ProgramBuilder;
use stitch_isa::{Cond, Reg};

/// 3x3 Q4 convolution over a `w x h` image (valid padding), with
/// per-tap rescaling `acc += (pix * coeff) >> 4` — the fixed-point style
/// whose load-multiply-shift-add chains make 2dconv the showcase for
/// fused `{AT-MA}`+`{AT-AS}` pairs in the paper (§VI-C).
#[derive(Debug, Clone)]
pub struct Conv2d {
    w: u32,
    h: u32,
}

impl Conv2d {
    /// Image width and height (both at least 3).
    ///
    /// # Panics
    ///
    /// Panics for degenerate image sizes.
    #[must_use]
    pub fn new(w: u32, h: u32) -> Self {
        assert!(w >= 3 && h >= 3);
        assert!((w * h + 9) * 4 <= 4096, "conv SPM footprint");
        Conv2d { w, h }
    }

    fn coeffs(&self) -> Vec<u32> {
        synth_input(0xC04, 9, 0x3F)
    }
}

impl Kernel for Conv2d {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "2dconv",
            input_addr: SPM,
            input_words: self.w * self.h,
            output_addr: OUTPUT_BASE,
            output_words: (self.w - 2) * (self.h - 2),
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0xC0C0, (self.w * self.h) as usize, 0xFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        let coeff_base = SPM + self.w * self.h * 4;
        b.data_segment(coeff_base, self.coeffs());
        // r9 = coefficient base, r10/r11/r12 = row pointers, r13 = out
        // ptr, r14 = 4, r15 = Q shift (8), r16/r17 = loop counters,
        // r18 = acc, r1..r5 = tap temps.
        b.li(Reg::R9, i64::from(coeff_base as i32));
        b.li(Reg::R13, i64::from(OUTPUT_BASE as i32));
        b.li(Reg::R14, 4);
        b.li(Reg::R15, 4); // per-tap Q4 rescale amount
        b.li(Reg::R10, i64::from(SPM as i32));
        b.addi(Reg::R11, Reg::R10, (self.w * 4) as i32);
        b.addi(Reg::R12, Reg::R11, (self.w * 4) as i32);
        b.li(Reg::R16, i64::from(self.h - 2));
        let row_loop = b.bound_label();
        b.li(Reg::R17, i64::from(self.w - 2));
        let col_loop = b.bound_label();
        b.li(Reg::R18, 0);
        b.mv(Reg::R2, Reg::R9); // coefficient cursor
                                // Nine unrolled taps: r1 walks each row, r2 walks coefficients.
        for (ri, row_reg) in [Reg::R10, Reg::R11, Reg::R12].into_iter().enumerate() {
            b.mv(Reg::R1, row_reg);
            for dx in 0..3 {
                b.lw(Reg::R3, Reg::R1, 0);
                b.lw(Reg::R4, Reg::R2, 0);
                b.mul(Reg::R5, Reg::R3, Reg::R4);
                b.alu(AluOp::Sra, Reg::R5, Reg::R5, Reg::R15);
                b.add(Reg::R18, Reg::R18, Reg::R5);
                if dx < 2 {
                    b.add(Reg::R1, Reg::R1, Reg::R14);
                }
                if !(ri == 2 && dx == 2) {
                    b.add(Reg::R2, Reg::R2, Reg::R14);
                }
            }
        }
        b.sw(Reg::R18, Reg::R13, 0);
        b.add(Reg::R13, Reg::R13, Reg::R14);
        b.add(Reg::R10, Reg::R10, Reg::R14);
        b.add(Reg::R11, Reg::R11, Reg::R14);
        b.add(Reg::R12, Reg::R12, Reg::R14);
        b.addi(Reg::R17, Reg::R17, -1);
        b.branch(Cond::Ne, Reg::R17, Reg::R0, col_loop);
        // Skip the two edge columns.
        b.add(Reg::R10, Reg::R10, Reg::R14);
        b.add(Reg::R10, Reg::R10, Reg::R14);
        b.add(Reg::R11, Reg::R11, Reg::R14);
        b.add(Reg::R11, Reg::R11, Reg::R14);
        b.add(Reg::R12, Reg::R12, Reg::R14);
        b.add(Reg::R12, Reg::R12, Reg::R14);
        b.addi(Reg::R16, Reg::R16, -1);
        b.branch(Cond::Ne, Reg::R16, Reg::R0, row_loop);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let c = self.coeffs();
        let (w, h) = (self.w as usize, self.h as usize);
        let mut out = Vec::new();
        for y in 0..h - 2 {
            for x in 0..w - 2 {
                let mut acc: i32 = 0;
                for ky in 0..3 {
                    for kx in 0..3 {
                        let pix = input[(y + ky) * w + x + kx] as i32;
                        acc = acc.wrapping_add(pix.wrapping_mul(c[ky * 3 + kx] as i32) >> 4);
                    }
                }
                out.push(acc as u32);
            }
        }
        out
    }
}

/// 2x2 max pooling with stride 2 (branchless maxima).
#[derive(Debug, Clone)]
pub struct Pool2x2 {
    w: u32,
    h: u32,
}

impl Pool2x2 {
    /// Image width and height (even, at least 2).
    ///
    /// # Panics
    ///
    /// Panics for odd or degenerate sizes.
    #[must_use]
    pub fn new(w: u32, h: u32) -> Self {
        assert!(w >= 2 && h >= 2 && w.is_multiple_of(2) && h.is_multiple_of(2));
        assert!(w * h * 4 <= 4096, "pool SPM footprint");
        Pool2x2 { w, h }
    }
}

impl Kernel for Pool2x2 {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "pool",
            input_addr: SPM,
            input_words: self.w * self.h,
            output_addr: OUTPUT_BASE,
            output_words: (self.w / 2) * (self.h / 2),
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0x9001, (self.w * self.h) as usize, 0xFFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        // r10 = row0 ptr, r11 = row1 ptr, r13 = out, r14 = 4, r12 = 8.
        b.li(Reg::R10, i64::from(SPM as i32));
        b.addi(Reg::R11, Reg::R10, (self.w * 4) as i32);
        b.li(Reg::R13, i64::from(OUTPUT_BASE as i32));
        b.li(Reg::R14, 4);
        b.li(Reg::R12, 8);
        b.li(Reg::R15, 31);
        b.li(Reg::R16, i64::from(self.h / 2));
        let row_loop = b.bound_label();
        b.li(Reg::R17, i64::from(self.w / 2));
        let col_loop = b.bound_label();
        // Load the 2x2 quad.
        b.lw(Reg::R1, Reg::R10, 0);
        b.add(Reg::R5, Reg::R10, Reg::R14);
        b.lw(Reg::R2, Reg::R5, 0);
        b.lw(Reg::R3, Reg::R11, 0);
        b.add(Reg::R5, Reg::R11, Reg::R14);
        b.lw(Reg::R4, Reg::R5, 0);
        // Branchless max(a,b) = a + ((b-a) & ~((b-a)>>31)).
        for pair in [(Reg::R1, Reg::R2), (Reg::R3, Reg::R4)] {
            b.sub(Reg::R6, pair.1, pair.0);
            b.alu(AluOp::Sra, Reg::R7, Reg::R6, Reg::R15); // needs r15=31
            b.alu(AluOp::Nor, Reg::R7, Reg::R7, Reg::R7); // ~mask
            b.alu(AluOp::And, Reg::R6, Reg::R6, Reg::R7);
            b.add(pair.0, pair.0, Reg::R6);
        }
        b.sub(Reg::R6, Reg::R3, Reg::R1);
        b.alu(AluOp::Sra, Reg::R7, Reg::R6, Reg::R15);
        b.alu(AluOp::Nor, Reg::R7, Reg::R7, Reg::R7);
        b.alu(AluOp::And, Reg::R6, Reg::R6, Reg::R7);
        b.add(Reg::R1, Reg::R1, Reg::R6);
        b.sw(Reg::R1, Reg::R13, 0);
        b.add(Reg::R13, Reg::R13, Reg::R14);
        b.add(Reg::R10, Reg::R10, Reg::R12);
        b.add(Reg::R11, Reg::R11, Reg::R12);
        b.addi(Reg::R17, Reg::R17, -1);
        b.branch(Cond::Ne, Reg::R17, Reg::R0, col_loop);
        // Advance both row pointers by one extra row.
        b.li(Reg::R5, i64::from(self.w * 4));
        b.add(Reg::R10, Reg::R10, Reg::R5);
        b.add(Reg::R11, Reg::R11, Reg::R5);
        b.addi(Reg::R16, Reg::R16, -1);
        b.branch(Cond::Ne, Reg::R16, Reg::R0, row_loop);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let (w, h) = (self.w as usize, self.h as usize);
        let mut out = Vec::new();
        for y in (0..h).step_by(2) {
            for x in (0..w).step_by(2) {
                let quad = [
                    input[y * w + x] as i32,
                    input[y * w + x + 1] as i32,
                    input[(y + 1) * w + x] as i32,
                    input[(y + 1) * w + x + 1] as i32,
                ];
                out.push(quad.into_iter().fold(i32::MIN, i32::max) as u32);
            }
        }
        out
    }
}

/// Fully-connected layer with ReLU: `out[o] = max(0, (W[o] . x) >> 8)`.
#[derive(Debug, Clone)]
pub struct FullyConnected {
    inputs: u32,
    outputs: u32,
}

impl FullyConnected {
    /// Layer dimensions.
    ///
    /// # Panics
    ///
    /// Panics when inputs + weights exceed the scratchpad.
    #[must_use]
    pub fn new(inputs: u32, outputs: u32) -> Self {
        assert!((inputs + inputs * outputs) * 4 <= 4096, "fc SPM footprint");
        FullyConnected { inputs, outputs }
    }

    fn weights(&self) -> Vec<u32> {
        synth_input(
            0xFC + self.outputs,
            (self.inputs * self.outputs) as usize,
            0x7F,
        )
    }
}

impl Kernel for FullyConnected {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "fc",
            input_addr: SPM,
            input_words: self.inputs,
            output_addr: OUTPUT_BASE,
            output_words: self.outputs,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0xFCFC, self.inputs as usize, 0xFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        let w_base = SPM + self.inputs * 4;
        b.data_segment(w_base, self.weights());
        b.li(Reg::R10, 4);
        b.li(Reg::R11, 8);
        b.li(Reg::R15, 31);
        b.li(Reg::R12, i64::from(w_base as i32)); // weight ptr (runs on)
        b.li(Reg::R13, i64::from(OUTPUT_BASE as i32));
        b.li(Reg::R9, i64::from(self.outputs));
        let out_loop = b.bound_label();
        b.li(Reg::R1, i64::from(SPM as i32));
        b.li(Reg::R3, 0);
        b.li(Reg::R4, i64::from(self.inputs));
        let dot = b.bound_label();
        b.lw(Reg::R5, Reg::R1, 0);
        b.lw(Reg::R6, Reg::R12, 0);
        b.mul(Reg::R7, Reg::R5, Reg::R6);
        b.add(Reg::R3, Reg::R3, Reg::R7);
        b.add(Reg::R1, Reg::R1, Reg::R10);
        b.add(Reg::R12, Reg::R12, Reg::R10);
        b.addi(Reg::R4, Reg::R4, -1);
        b.branch(Cond::Ne, Reg::R4, Reg::R0, dot);
        b.alu(AluOp::Sra, Reg::R3, Reg::R3, Reg::R11);
        // ReLU: x & ~(x >> 31).
        b.alu(AluOp::Sra, Reg::R7, Reg::R3, Reg::R15);
        b.alu(AluOp::Nor, Reg::R7, Reg::R7, Reg::R7);
        b.alu(AluOp::And, Reg::R3, Reg::R3, Reg::R7);
        b.sw(Reg::R3, Reg::R13, 0);
        b.add(Reg::R13, Reg::R13, Reg::R10);
        b.addi(Reg::R9, Reg::R9, -1);
        b.branch(Cond::Ne, Reg::R9, Reg::R0, out_loop);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let w = self.weights();
        (0..self.outputs as usize)
            .map(|o| {
                let mut acc: i32 = 0;
                for i in 0..self.inputs as usize {
                    acc = acc.wrapping_add(
                        (input[i] as i32).wrapping_mul(w[o * self.inputs as usize + i] as i32),
                    );
                }
                let v = acc >> 8;
                v.max(0) as u32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shapes() {
        let k = Conv2d::new(8, 6);
        assert_eq!(k.reference(&k.input()).len(), 6 * 4);
    }

    #[test]
    fn pool_takes_maxima() {
        let k = Pool2x2::new(4, 2);
        let out = k.reference(&[1, 9, 3, 4, 5, 2, 8, 7]);
        assert_eq!(out, vec![9, 8]);
    }

    #[test]
    fn relu_clamps() {
        let k = FullyConnected::new(4, 2);
        let out = k.reference(&[0, 0, 0, 0]);
        assert_eq!(out, vec![0, 0]);
    }
}
