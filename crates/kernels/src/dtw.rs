//! Dynamic time warping (the transport context-detection workhorse of
//! APP4, paper §VI-A).

use crate::{synth_input, Kernel, KernelSpec, OUTPUT_BASE, SPM};
use stitch_isa::op::AluOp;
use stitch_isa::program::ProgramBuilder;
use stitch_isa::{Cond, Reg};

/// DTW distance between two length-`n` sequences with a rolling
/// two-row DP matrix, branchless `|.|` and `min` (shift/mask idioms that
/// favour the `{AT-AS}`/`{AT-SA}` patches — the paper observes dtw
/// benefits most from `{AT-AS}`).
///
/// Input frame: `[a[0..n], b[0..n]]`; output: the DTW distance.
#[derive(Debug, Clone)]
pub struct Dtw {
    n: u32,
}

impl Dtw {
    /// Sequence length (`>= 2`).
    ///
    /// # Panics
    ///
    /// Panics when `n < 2`.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(n >= 2);
        assert!((4 * n + 2) * 4 <= 4096, "dtw SPM footprint");
        Dtw { n }
    }
}

/// Large-but-safe "infinity" for the DP borders (avoids overflow when
/// summed with costs).
const INF: i64 = 0x0FFF_FFFF;

impl Kernel for Dtw {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "dtw",
            input_addr: SPM,
            input_words: 2 * self.n,
            output_addr: OUTPUT_BASE,
            output_words: 1,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0xD70, (2 * self.n) as usize, 0x3FF)
    }

    #[allow(clippy::too_many_lines)]
    fn emit_compute(&self, b: &mut ProgramBuilder) {
        let n = self.n;
        let a_base = SPM;
        let b_base = SPM + 4 * n;
        let prev_base = SPM + 8 * n; // n+1 entries
        let curr_base = prev_base + 4 * (n + 1);

        // Constants: r14 = 4, r15 = 31.
        b.li(Reg::R14, 4);
        b.li(Reg::R15, 31);

        // Initialize prev row: [0, INF, INF, ...].
        b.li(Reg::R1, i64::from(prev_base as i32));
        b.sw(Reg::R0, Reg::R1, 0);
        b.li(Reg::R2, INF);
        b.li(Reg::R3, i64::from(n));
        b.add(Reg::R1, Reg::R1, Reg::R14);
        let init = b.bound_label();
        b.sw(Reg::R2, Reg::R1, 0);
        b.add(Reg::R1, Reg::R1, Reg::R14);
        b.addi(Reg::R3, Reg::R3, -1);
        b.branch(Cond::Ne, Reg::R3, Reg::R0, init);

        // Outer loop over i (rows): r10 = a ptr, r9 = row count,
        // r11 = prev ptr, r12 = curr ptr (swapped each row).
        b.li(Reg::R10, i64::from(a_base as i32));
        b.li(Reg::R9, i64::from(n));
        b.li(Reg::R11, i64::from(prev_base as i32));
        b.li(Reg::R12, i64::from(curr_base as i32));
        let row_loop = b.bound_label();
        // curr[0] = INF.
        b.li(Reg::R2, INF);
        b.sw(Reg::R2, Reg::R12, 0);
        // a_i in r13.
        b.lw(Reg::R13, Reg::R10, 0);
        // Inner loop over j: r1 = b ptr, r2 = prev ptr cursor
        // (&prev[j-1]), r3 = curr cursor (&curr[j-1]), r4 = count.
        b.li(Reg::R1, i64::from(b_base as i32));
        b.mv(Reg::R2, Reg::R11);
        b.mv(Reg::R3, Reg::R12);
        b.li(Reg::R4, i64::from(n));
        let col_loop = b.bound_label();
        // cost = |a_i - b_j|
        b.lw(Reg::R5, Reg::R1, 0);
        b.sub(Reg::R5, Reg::R13, Reg::R5);
        b.alu(AluOp::Sra, Reg::R6, Reg::R5, Reg::R15);
        b.alu(AluOp::Xor, Reg::R5, Reg::R5, Reg::R6);
        b.sub(Reg::R5, Reg::R5, Reg::R6); // cost in r5
                                          // m = min(prev[j-1], prev[j], curr[j-1])
        b.lw(Reg::R6, Reg::R2, 0); // prev[j-1]
        b.add(Reg::R8, Reg::R2, Reg::R14);
        b.lw(Reg::R7, Reg::R8, 0); // prev[j]
                                   // min(r6, r7): d = r7-r6; r6 += d & (d>>31)
        b.sub(Reg::R8, Reg::R7, Reg::R6);
        b.alu(AluOp::Sra, Reg::R7, Reg::R8, Reg::R15);
        b.alu(AluOp::And, Reg::R8, Reg::R8, Reg::R7);
        b.add(Reg::R6, Reg::R6, Reg::R8);
        b.lw(Reg::R7, Reg::R3, 0); // curr[j-1]
        b.sub(Reg::R8, Reg::R7, Reg::R6);
        b.alu(AluOp::Sra, Reg::R7, Reg::R8, Reg::R15);
        b.alu(AluOp::And, Reg::R8, Reg::R8, Reg::R7);
        b.add(Reg::R6, Reg::R6, Reg::R8);
        // curr[j] = cost + m
        b.add(Reg::R5, Reg::R5, Reg::R6);
        b.add(Reg::R8, Reg::R3, Reg::R14);
        b.sw(Reg::R5, Reg::R8, 0);
        // Advance.
        b.add(Reg::R1, Reg::R1, Reg::R14);
        b.add(Reg::R2, Reg::R2, Reg::R14);
        b.add(Reg::R3, Reg::R3, Reg::R14);
        b.addi(Reg::R4, Reg::R4, -1);
        b.branch(Cond::Ne, Reg::R4, Reg::R0, col_loop);
        // Swap prev/curr, advance a.
        b.mv(Reg::R5, Reg::R11);
        b.mv(Reg::R11, Reg::R12);
        b.mv(Reg::R12, Reg::R5);
        b.add(Reg::R10, Reg::R10, Reg::R14);
        b.addi(Reg::R9, Reg::R9, -1);
        b.branch(Cond::Ne, Reg::R9, Reg::R0, row_loop);
        // Distance = prev[n] (prev holds the last written row after the
        // final swap).
        b.li(Reg::R1, i64::from((4 * n) as i32));
        b.add(Reg::R1, Reg::R11, Reg::R1);
        b.lw(Reg::R2, Reg::R1, 0);
        b.li(Reg::R3, i64::from(OUTPUT_BASE as i32));
        b.sw(Reg::R2, Reg::R3, 0);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let n = self.n as usize;
        let a: Vec<i64> = input[..n].iter().map(|&v| i64::from(v)).collect();
        let bb: Vec<i64> = input[n..2 * n].iter().map(|&v| i64::from(v)).collect();
        let mut prev = vec![INF; n + 1];
        prev[0] = 0;
        let mut curr = vec![0i64; n + 1];
        for &ai in a.iter().take(n) {
            curr[0] = INF;
            for j in 0..n {
                let cost = (ai - bb[j]).abs();
                let m = prev[j].min(prev[j + 1]).min(curr[j]);
                curr[j + 1] = cost + m;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        vec![prev[n] as u32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_have_zero_distance() {
        let k = Dtw::new(8);
        let a = synth_input(1, 8, 0xFF);
        let mut input = a.clone();
        input.extend(a);
        assert_eq!(k.reference(&input), vec![0]);
    }

    #[test]
    fn constant_offset_costs_n_times_delta() {
        let k = Dtw::new(4);
        let input = vec![10, 10, 10, 10, 13, 13, 13, 13];
        // Diagonal path: 4 matches, each cost 3.
        assert_eq!(k.reference(&input), vec![12]);
    }

    #[test]
    fn distance_is_symmetric() {
        let k = Dtw::new(6);
        let a = synth_input(2, 6, 0xFF);
        let b = synth_input(3, 6, 0xFF);
        let mut ab = a.clone();
        ab.extend(b.clone());
        let mut ba = b;
        ba.extend(a);
        assert_eq!(k.reference(&ab), k.reference(&ba));
    }
}
