//! Signal-processing kernels: FIR filter, feature update, classification.

use crate::{synth_input, Kernel, KernelSpec, OUTPUT_BASE, SPM};
use stitch_isa::op::AluOp;
use stitch_isa::program::ProgramBuilder;
use stitch_isa::{Cond, Reg};

/// Q8 fixed-point FIR filter (the gesture pipeline's `Filter` stage).
///
/// `out[i] = (sum_j coeff[j] * x[i+j]) >> 8` for
/// `i in 0..n-taps+1`. Samples live in the scratchpad; coefficients are a
/// constant table behind them.
#[derive(Debug, Clone)]
pub struct FirFilter {
    n: u32,
    taps: u32,
}

impl FirFilter {
    /// Creates a filter over `n` samples with `taps` coefficients.
    ///
    /// # Panics
    ///
    /// Panics when `taps` is zero or exceeds `n`.
    #[must_use]
    pub fn new(n: u32, taps: u32) -> Self {
        assert!(taps > 0 && taps <= n);
        assert!((n + taps) * 4 <= 4096, "fir SPM footprint");
        FirFilter { n, taps }
    }

    fn coeffs(&self) -> Vec<u32> {
        synth_input(0xF117 + self.taps, self.taps as usize, 0x7F)
    }
}

impl Kernel for FirFilter {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "fir",
            input_addr: SPM,
            input_words: self.n,
            output_addr: OUTPUT_BASE,
            output_words: self.n - self.taps + 1,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0xF117, self.n as usize, 0xFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        let coeff_base = SPM + self.n * 4;
        b.data_segment(coeff_base, self.coeffs());
        // r10=4, r11=8(Q), r13=coeff base, r12=window ptr, r8=out ptr,
        // r9=outer count.
        b.li(Reg::R10, 4);
        b.li(Reg::R11, 8);
        b.li(Reg::R13, i64::from(coeff_base as i32));
        b.li(Reg::R12, i64::from(SPM as i32));
        b.li(Reg::R8, i64::from(OUTPUT_BASE as i32));
        b.li(Reg::R9, i64::from(self.n - self.taps + 1));
        let outer = b.bound_label();
        b.mv(Reg::R1, Reg::R12); // x ptr
        b.mv(Reg::R2, Reg::R13); // coeff ptr
        b.li(Reg::R3, 0); // acc
        b.li(Reg::R4, i64::from(self.taps));
        let inner = b.bound_label();
        b.lw(Reg::R5, Reg::R1, 0);
        b.lw(Reg::R6, Reg::R2, 0);
        b.mul(Reg::R7, Reg::R5, Reg::R6);
        b.add(Reg::R3, Reg::R3, Reg::R7);
        b.add(Reg::R1, Reg::R1, Reg::R10);
        b.add(Reg::R2, Reg::R2, Reg::R10);
        b.addi(Reg::R4, Reg::R4, -1);
        b.branch(Cond::Ne, Reg::R4, Reg::R0, inner);
        b.alu(AluOp::Sra, Reg::R3, Reg::R3, Reg::R11);
        b.sw(Reg::R3, Reg::R8, 0);
        b.add(Reg::R8, Reg::R8, Reg::R10);
        b.add(Reg::R12, Reg::R12, Reg::R10);
        b.addi(Reg::R9, Reg::R9, -1);
        b.branch(Cond::Ne, Reg::R9, Reg::R0, outer);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let coeffs = self.coeffs();
        (0..=(self.n - self.taps) as usize)
            .map(|i| {
                let mut acc: i32 = 0;
                for (j, c) in coeffs.iter().enumerate() {
                    acc = acc.wrapping_add((input[i + j] as i32).wrapping_mul(*c as i32));
                }
                (acc >> 8) as u32
            })
            .collect()
    }
}

/// The gesture pipeline's `Update feature` stage: an exponential moving
/// average computed with shift-and-add arithmetic.
///
/// `f := f + ((x[i] - f) >> 3)`; `out[i] = f`.
#[derive(Debug, Clone)]
pub struct UpdateFeature {
    n: u32,
}

impl UpdateFeature {
    /// Creates the stage over `n` samples.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(n * 4 <= 4096, "update SPM footprint");
        UpdateFeature { n }
    }
}

impl Kernel for UpdateFeature {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "update",
            input_addr: SPM,
            input_words: self.n,
            output_addr: OUTPUT_BASE,
            output_words: self.n,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0x0DA7E, self.n as usize, 0xFFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        // r1=x ptr, r2=f, r3=count, r4=out ptr, r10=4, r11=3(shift).
        b.li(Reg::R1, i64::from(SPM as i32));
        b.li(Reg::R2, 0);
        b.li(Reg::R3, i64::from(self.n));
        b.li(Reg::R4, i64::from(OUTPUT_BASE as i32));
        b.li(Reg::R10, 4);
        b.li(Reg::R11, 3);
        let top = b.bound_label();
        b.lw(Reg::R5, Reg::R1, 0);
        b.sub(Reg::R6, Reg::R5, Reg::R2);
        b.alu(AluOp::Sra, Reg::R6, Reg::R6, Reg::R11);
        b.add(Reg::R2, Reg::R2, Reg::R6);
        b.sw(Reg::R2, Reg::R4, 0);
        b.add(Reg::R1, Reg::R1, Reg::R10);
        b.add(Reg::R4, Reg::R4, Reg::R10);
        b.addi(Reg::R3, Reg::R3, -1);
        b.branch(Cond::Ne, Reg::R3, Reg::R0, top);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let mut f: i32 = 0;
        input
            .iter()
            .map(|&x| {
                let d = (x as i32).wrapping_sub(f);
                f = f.wrapping_add(d >> 3);
                f as u32
            })
            .collect()
    }
}

/// Nearest-centroid classifier (the gesture pipeline's final stage):
/// L1 distances to `k` centroids, then the argmin.
///
/// Output: `k` distances followed by the winning class index.
#[derive(Debug, Clone)]
pub struct Classify {
    n: u32,
    k: u32,
}

impl Classify {
    /// `n`-dimensional features, `k` classes.
    ///
    /// # Panics
    ///
    /// Panics when features + centroids exceed the 4 KB scratchpad.
    #[must_use]
    pub fn new(n: u32, k: u32) -> Self {
        assert!((n + n * k) * 4 <= 4096, "classify SPM footprint");
        Classify { n, k }
    }

    fn centroids(&self) -> Vec<u32> {
        synth_input(0xC1A55 + self.k, (self.n * self.k) as usize, 0xFFF)
    }
}

impl Kernel for Classify {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "classify",
            input_addr: SPM,
            input_words: self.n,
            output_addr: OUTPUT_BASE,
            output_words: self.k + 1,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0xC1A55, self.n as usize, 0xFFF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        let cent_base = SPM + self.n * 4;
        b.data_segment(cent_base, self.centroids());
        // r10=4, r11=31 (sign shift), r12=centroid ptr, r9=class count,
        // r8=out ptr, r14=best dist, r15=best idx, r13=current idx.
        b.li(Reg::R10, 4);
        b.li(Reg::R11, 31);
        b.li(Reg::R12, i64::from(cent_base as i32));
        b.li(Reg::R9, i64::from(self.k));
        b.li(Reg::R8, i64::from(OUTPUT_BASE as i32));
        b.li(Reg::R14, i64::from(i32::MAX));
        b.li(Reg::R15, 0);
        b.li(Reg::R13, 0);
        let class_loop = b.bound_label();
        b.li(Reg::R1, i64::from(SPM as i32)); // feature ptr
        b.li(Reg::R3, 0); // distance acc
        b.li(Reg::R4, i64::from(self.n));
        let dim_loop = b.bound_label();
        b.lw(Reg::R5, Reg::R1, 0);
        b.lw(Reg::R6, Reg::R12, 0);
        b.sub(Reg::R7, Reg::R5, Reg::R6);
        // |d| = (d ^ (d >> 31)) - (d >> 31)
        b.alu(AluOp::Sra, Reg::R2, Reg::R7, Reg::R11);
        b.alu(AluOp::Xor, Reg::R7, Reg::R7, Reg::R2);
        b.sub(Reg::R7, Reg::R7, Reg::R2);
        b.add(Reg::R3, Reg::R3, Reg::R7);
        b.add(Reg::R1, Reg::R1, Reg::R10);
        b.add(Reg::R12, Reg::R12, Reg::R10);
        b.addi(Reg::R4, Reg::R4, -1);
        b.branch(Cond::Ne, Reg::R4, Reg::R0, dim_loop);
        // Store the distance.
        b.sw(Reg::R3, Reg::R8, 0);
        b.add(Reg::R8, Reg::R8, Reg::R10);
        // Track the minimum (branch: cold path, once per class).
        let not_better = b.label();
        b.branch(Cond::Ge, Reg::R3, Reg::R14, not_better);
        b.mv(Reg::R14, Reg::R3);
        b.mv(Reg::R15, Reg::R13);
        b.bind_once(not_better);
        b.addi(Reg::R13, Reg::R13, 1);
        b.addi(Reg::R9, Reg::R9, -1);
        b.branch(Cond::Ne, Reg::R9, Reg::R0, class_loop);
        b.sw(Reg::R15, Reg::R8, 0);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let cents = self.centroids();
        let mut out = Vec::new();
        let mut best = i32::MAX;
        let mut best_idx = 0u32;
        for c in 0..self.k {
            let mut acc: i32 = 0;
            for d in 0..self.n as usize {
                let diff = (input[d] as i32).wrapping_sub(cents[(c * self.n) as usize + d] as i32);
                acc = acc.wrapping_add(diff.abs());
            }
            out.push(acc as u32);
            if acc < best {
                best = acc;
                best_idx = c;
            }
        }
        out.push(best_idx);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_reference_shape() {
        let k = FirFilter::new(32, 4);
        let out = k.reference(&k.input());
        assert_eq!(out.len(), 29);
    }

    #[test]
    fn update_is_monotone_on_constant_input() {
        let k = UpdateFeature::new(8);
        let out = k.reference(&[800; 8]);
        // EMA converges toward 800 from 0, never exceeding it.
        for w in out.windows(2) {
            assert!((w[0] as i32) <= (w[1] as i32));
        }
        assert!((out[7] as i32) <= 800);
    }

    #[test]
    fn classify_picks_true_centroid() {
        let k = Classify::new(16, 3);
        // Feed centroid #1 exactly: distance 0 to itself.
        let cents = k.centroids();
        let input: Vec<u32> = cents[16..32].to_vec();
        let out = k.reference(&input);
        assert_eq!(out[1], 0);
        assert_eq!(out[3], 1, "class 1 wins");
    }
}
