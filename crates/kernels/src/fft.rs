//! Fixed-point radix-2 FFT and IFFT kernels (the gesture pipeline's
//! front end, paper Fig 7).

use crate::{synth_input, Kernel, KernelSpec, OUTPUT_BASE, SPM};
use stitch_isa::op::AluOp;
use stitch_isa::program::ProgramBuilder;
use stitch_isa::{Cond, Reg};

/// Q14 twiddle factors `exp(-2*pi*i*k/n)` for `k < n/2`.
fn twiddles(n: u32) -> (Vec<u32>, Vec<u32>) {
    let half = (n / 2) as usize;
    let mut re = Vec::with_capacity(half);
    let mut im = Vec::with_capacity(half);
    for k in 0..half {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / f64::from(n);
        re.push(((ang.cos() * 16384.0).round() as i32) as u32);
        im.push(((ang.sin() * 16384.0).round() as i32) as u32);
    }
    (re, im)
}

/// Bit-reversal permutation as byte offsets.
fn bitrev_table(n: u32) -> Vec<u32> {
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| i.reverse_bits() >> (32 - bits) << 2)
        .collect()
}

/// Shared reference implementation; `inverse` conjugates the twiddles.
fn fft_reference(n: u32, input: &[u32], inverse: bool) -> (Vec<i32>, Vec<i32>) {
    let n = n as usize;
    let (twr, twi) = twiddles(n as u32);
    let mut re: Vec<i32> = input[..n].iter().map(|&v| v as i32).collect();
    let mut im: Vec<i32> = input[n..2 * n].iter().map(|&v| v as i32).collect();
    // Bit reversal.
    let table = bitrev_table(n as u32);
    for (i, &off) in table.iter().enumerate() {
        let j = (off / 4) as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let step = n / len;
        for i in (0..n).step_by(len) {
            for j in 0..len / 2 {
                let k = j * step;
                let (wr, wi) = {
                    let wi0 = twi[k] as i32;
                    (
                        twr[k] as i32,
                        if inverse { wi0.wrapping_neg() } else { wi0 },
                    )
                };
                let (r1, i1) = (re[i + j + len / 2], im[i + j + len / 2]);
                let tr = (wr.wrapping_mul(r1).wrapping_sub(wi.wrapping_mul(i1))) >> 14;
                let ti = (wr.wrapping_mul(i1).wrapping_add(wi.wrapping_mul(r1))) >> 14;
                let (r0, i0) = (re[i + j], im[i + j]);
                re[i + j + len / 2] = r0.wrapping_sub(tr);
                im[i + j + len / 2] = i0.wrapping_sub(ti);
                re[i + j] = r0.wrapping_add(tr);
                im[i + j] = i0.wrapping_add(ti);
            }
        }
        len <<= 1;
    }
    (re, im)
}

/// Emits the in-place FFT over `re` at `SPM`, `im` at `SPM + 4n`, with
/// twiddle/bit-reversal tables behind them. Register budget: r1..r19.
#[allow(clippy::too_many_lines)]
fn emit_fft_body(b: &mut ProgramBuilder, n: u32, inverse: bool) {
    let re_base = SPM;
    let im_base = SPM + 4 * n;
    let twr_base = SPM + 8 * n;
    let twi_base = twr_base + 2 * n; // n/2 entries
    let rev_base = twi_base + 2 * n;
    let (twr, mut twi) = twiddles(n);
    if inverse {
        for v in &mut twi {
            *v = (*v as i32).wrapping_neg() as u32;
        }
    }
    b.data_segment(twr_base, twr);
    b.data_segment(twi_base, twi);
    b.data_segment(rev_base, bitrev_table(n));

    // Constant registers.
    b.li(Reg::R15, i64::from(re_base as i32));
    b.li(Reg::R16, i64::from(im_base as i32));
    b.li(Reg::R17, i64::from(twr_base as i32));
    b.li(Reg::R18, i64::from(twi_base as i32));
    b.li(Reg::R13, 4);
    b.li(Reg::R12, 14);
    b.li(Reg::R11, i64::from(4 * n));

    // ---- bit-reversal permutation ---------------------------------------
    b.li(Reg::R1, 0); // i offset
    b.li(Reg::R2, i64::from(rev_base as i32));
    let brev = b.bound_label();
    b.lw(Reg::R3, Reg::R2, 0); // j offset
    let skip = b.label();
    b.alu(AluOp::Sltu, Reg::R4, Reg::R1, Reg::R3);
    b.branch(Cond::Eq, Reg::R4, Reg::R0, skip);
    for base in [Reg::R15, Reg::R16] {
        b.add(Reg::R5, base, Reg::R1);
        b.add(Reg::R6, base, Reg::R3);
        b.lw(Reg::R7, Reg::R5, 0);
        b.lw(Reg::R8, Reg::R6, 0);
        b.sw(Reg::R8, Reg::R5, 0);
        b.sw(Reg::R7, Reg::R6, 0);
    }
    b.bind_once(skip);
    b.add(Reg::R2, Reg::R2, Reg::R13);
    b.add(Reg::R1, Reg::R1, Reg::R13);
    b.branch(Cond::Ne, Reg::R1, Reg::R11, brev);

    // ---- stages ----------------------------------------------------------
    // r10 = len_bytes (8..4n), r9 = log2(n/len), r8 = half_bytes.
    b.li(Reg::R10, 8);
    b.li(Reg::R9, i64::from(n.trailing_zeros()) - 1);
    let stage = b.bound_label();
    b.srli(Reg::R8, Reg::R10, 1); // half_bytes (cold, immediate fine)
    b.li(Reg::R1, 0); // i offset
    let group = b.bound_label();
    b.li(Reg::R2, 0); // j offset
    let butterfly = b.bound_label();
    // Twiddle loads: k_bytes = j << s.
    b.alu(AluOp::Sll, Reg::R3, Reg::R2, Reg::R9);
    b.add(Reg::R4, Reg::R17, Reg::R3);
    b.lw(Reg::R5, Reg::R4, 0); // wr
    b.add(Reg::R4, Reg::R18, Reg::R3);
    b.lw(Reg::R6, Reg::R4, 0); // wi
                               // o1 = i + j + half; load re1/im1.
    b.add(Reg::R4, Reg::R1, Reg::R2);
    b.add(Reg::R3, Reg::R4, Reg::R8);
    b.add(Reg::R7, Reg::R15, Reg::R3);
    b.lw(Reg::R14, Reg::R7, 0); // re1
    b.add(Reg::R7, Reg::R16, Reg::R3);
    b.lw(Reg::R19, Reg::R7, 0); // im1
                                // tr = (wr*re1 - wi*im1) >> 14
    b.mul(Reg::R7, Reg::R5, Reg::R14);
    b.mul(Reg::R3, Reg::R6, Reg::R19);
    b.sub(Reg::R7, Reg::R7, Reg::R3);
    b.alu(AluOp::Sra, Reg::R7, Reg::R7, Reg::R12);
    // ti = (wr*im1 + wi*re1) >> 14
    b.mul(Reg::R3, Reg::R5, Reg::R19);
    b.mul(Reg::R5, Reg::R6, Reg::R14);
    b.add(Reg::R3, Reg::R3, Reg::R5);
    b.alu(AluOp::Sra, Reg::R3, Reg::R3, Reg::R12);
    // Real part update.
    b.add(Reg::R4, Reg::R1, Reg::R2); // o0
    b.add(Reg::R5, Reg::R15, Reg::R4);
    b.lw(Reg::R6, Reg::R5, 0); // re0
    b.sub(Reg::R14, Reg::R6, Reg::R7);
    b.add(Reg::R6, Reg::R6, Reg::R7);
    b.sw(Reg::R6, Reg::R5, 0);
    b.add(Reg::R19, Reg::R5, Reg::R8);
    b.sw(Reg::R14, Reg::R19, 0);
    // Imaginary part update.
    b.add(Reg::R5, Reg::R16, Reg::R4);
    b.lw(Reg::R6, Reg::R5, 0); // im0
    b.sub(Reg::R14, Reg::R6, Reg::R3);
    b.add(Reg::R6, Reg::R6, Reg::R3);
    b.sw(Reg::R6, Reg::R5, 0);
    b.add(Reg::R19, Reg::R5, Reg::R8);
    b.sw(Reg::R14, Reg::R19, 0);
    // Next butterfly / group / stage.
    b.add(Reg::R2, Reg::R2, Reg::R13);
    b.branch(Cond::Ne, Reg::R2, Reg::R8, butterfly);
    b.add(Reg::R1, Reg::R1, Reg::R10);
    b.branch(Cond::Ne, Reg::R1, Reg::R11, group);
    b.slli(Reg::R10, Reg::R10, 1);
    b.addi(Reg::R9, Reg::R9, -1);
    // Continue while len_bytes <= 4n.
    b.alu(AluOp::Sltu, Reg::R5, Reg::R11, Reg::R10);
    b.branch(Cond::Eq, Reg::R5, Reg::R0, stage);
}

/// Copies `count` words from `src` to `dst` using r1..r4.
fn emit_copy(b: &mut ProgramBuilder, src: u32, dst: u32, count: u32) {
    b.li(Reg::R1, i64::from(src as i32));
    b.li(Reg::R2, i64::from(dst as i32));
    b.li(Reg::R3, i64::from(count));
    b.li(Reg::R5, 4);
    let top = b.bound_label();
    b.lw(Reg::R4, Reg::R1, 0);
    b.sw(Reg::R4, Reg::R2, 0);
    b.add(Reg::R1, Reg::R1, Reg::R5);
    b.add(Reg::R2, Reg::R2, Reg::R5);
    b.addi(Reg::R3, Reg::R3, -1);
    b.branch(Cond::Ne, Reg::R3, Reg::R0, top);
}

/// Forward FFT kernel: input `[re[0..n], im[0..n]]`, output the
/// transformed `[re, im]` pair.
#[derive(Debug, Clone)]
pub struct Fft {
    n: u32,
}

impl Fft {
    /// `n` must be a power of two (the paper's pipelines use 64-point
    /// transforms per axis).
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a power of two or below 4.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(n.is_power_of_two() && n >= 4);
        assert!(16 * n <= 4096, "fft SPM footprint");
        Fft { n }
    }
}

impl Kernel for Fft {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "fft",
            input_addr: SPM,
            input_words: 2 * self.n,
            output_addr: OUTPUT_BASE,
            output_words: 2 * self.n,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0xFF7, (2 * self.n) as usize, 0x3FF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        emit_fft_body(b, self.n, false);
        emit_copy(b, SPM, OUTPUT_BASE, 2 * self.n);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let (re, im) = fft_reference(self.n, input, false);
        re.into_iter().chain(im).map(|v| v as u32).collect()
    }
}

/// Inverse FFT kernel. Per the paper, the IFFT stage also carries extra
/// `Update feature` processing, so it additionally emits the per-bin
/// energy `(re^2 + im^2) >> 8` — making it longer-running than the FFT
/// stage (the imbalance the stitching algorithm exploits).
#[derive(Debug, Clone)]
pub struct Ifft {
    n: u32,
}

impl Ifft {
    /// See [`Fft::new`].
    ///
    /// # Panics
    ///
    /// Panics when `n` is not a power of two or below 4.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(n.is_power_of_two() && n >= 4);
        assert!(16 * n <= 4096, "ifft SPM footprint");
        Ifft { n }
    }
}

impl Kernel for Ifft {
    fn spec(&self) -> KernelSpec {
        KernelSpec {
            name: "ifft",
            input_addr: SPM,
            input_words: 2 * self.n,
            // [re, im, energy]
            output_words: 3 * self.n,
            output_addr: OUTPUT_BASE,
        }
    }

    fn input(&self) -> Vec<u32> {
        synth_input(0x1FF7, (2 * self.n) as usize, 0x3FF)
    }

    fn emit_compute(&self, b: &mut ProgramBuilder) {
        emit_fft_body(b, self.n, true);
        emit_copy(b, SPM, OUTPUT_BASE, 2 * self.n);
        // Energy pass: out[2n + i] = (re^2 + im^2) >> 8.
        b.li(Reg::R1, i64::from(SPM as i32));
        b.li(Reg::R2, i64::from((SPM + 4 * self.n) as i32));
        b.li(Reg::R3, i64::from((OUTPUT_BASE + 8 * self.n) as i32));
        b.li(Reg::R4, i64::from(self.n));
        b.li(Reg::R10, 4);
        b.li(Reg::R11, 8);
        let top = b.bound_label();
        b.lw(Reg::R5, Reg::R1, 0);
        b.lw(Reg::R6, Reg::R2, 0);
        b.mul(Reg::R7, Reg::R5, Reg::R5);
        b.mul(Reg::R8, Reg::R6, Reg::R6);
        b.add(Reg::R7, Reg::R7, Reg::R8);
        b.alu(AluOp::Srl, Reg::R7, Reg::R7, Reg::R11);
        b.sw(Reg::R7, Reg::R3, 0);
        b.add(Reg::R1, Reg::R1, Reg::R10);
        b.add(Reg::R2, Reg::R2, Reg::R10);
        b.add(Reg::R3, Reg::R3, Reg::R10);
        b.addi(Reg::R4, Reg::R4, -1);
        b.branch(Cond::Ne, Reg::R4, Reg::R0, top);
    }

    fn reference(&self, input: &[u32]) -> Vec<u32> {
        let (re, im) = fft_reference(self.n, input, true);
        let energy: Vec<u32> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| (r.wrapping_mul(r).wrapping_add(i.wrapping_mul(i)) as u32) >> 8)
            .collect();
        re.into_iter()
            .chain(im)
            .map(|v| v as u32)
            .chain(energy)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twiddle_table_properties() {
        let (re, im) = twiddles(64);
        assert_eq!(re.len(), 32);
        assert_eq!(re[0] as i32, 16384, "cos(0) = 1.0 in Q14");
        assert_eq!(im[0] as i32, 0);
        assert_eq!(im[16] as i32, -16384, "sin(-pi/2) = -1 in Q14");
    }

    #[test]
    fn bitrev_is_involution() {
        let t = bitrev_table(64);
        for (i, &off) in t.iter().enumerate() {
            let j = (off / 4) as usize;
            assert_eq!((t[j] / 4) as usize, i);
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        // x = [A, 0, 0, ...] -> FFT = A everywhere.
        let n = 16u32;
        let mut input = vec![0u32; 32];
        input[0] = 100;
        let (re, im) = fft_reference(n, &input, false);
        assert!(re.iter().all(|&r| r == 100));
        assert!(im.iter().all(|&i| i == 0));
    }

    #[test]
    fn forward_then_inverse_recovers_signal_scaled() {
        // IFFT(FFT(x)) = n * x for exact arithmetic; Q14 rounding admits
        // a small error.
        let n = 16u32;
        let input: Vec<u32> = (0..32).map(|i| if i < 16 { 50 + i } else { 0 }).collect();
        let (fre, fim) = fft_reference(n, &input, false);
        let spec: Vec<u32> = fre.iter().chain(&fim).map(|&v| v as u32).collect();
        let (ire, _) = fft_reference(n, &spec, true);
        for i in 0..16usize {
            let expect = (input[i] as i32) * 16;
            assert!(
                (ire[i] - expect).abs() <= 16,
                "bin {i}: {} vs {expect}",
                ire[i]
            );
        }
    }
}
