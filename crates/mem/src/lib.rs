//! # Memory substrate of the Stitch simulator
//!
//! Per-tile memory system matching the paper's Table II:
//!
//! - [`Dram`] — 512 MB backing store with a 30-cycle access latency,
//!   sparsely allocated;
//! - [`Cache`] — set-associative, write-back, write-allocate, LRU caches
//!   (2-way 8 KB I-cache, 2-way 4 KB D-cache, 64 B blocks). The cache is a
//!   *tag model*: functional data lives in the backing store, the cache
//!   tracks which blocks are resident for timing and statistics. This is
//!   exact for a single in-order core per private memory, which is the
//!   Stitch organization (message passing, no shared memory, §III);
//! - [`Spm`] — the 4 KB scratchpad memory accessible by both the core and
//!   the patch LMAU (§III-C);
//! - [`TileMemory`] — one tile's sequencer view that routes each address to
//!   SPM, crossbar-configuration registers or cached DRAM and reports the
//!   cost of every access in cycles.
//!
//! Each tile owns a private memory image: Stitch is a message-passing
//! architecture, so there is no inter-tile shared state and no coherence
//! (exactly the paper's argument for avoiding coherence overhead).

pub mod cache;
pub mod dram;
pub mod spm;
pub mod tile;

pub use cache::{Cache, CacheConfig, CacheSnapshot, CacheStats, LineSnapshot};
pub use dram::{Dram, DramSnapshot, PAGE_SIZE};
pub use spm::{Spm, SpmSnapshot};
pub use tile::{AccessKind, MemResult, TileMemory, TileMemoryConfig, TileMemorySnapshot};

/// DRAM access latency in cycles (paper Table II).
pub const DRAM_LATENCY: u32 = 30;
/// Cache/SPM hit latency in cycles (paper Table II).
pub const HIT_LATENCY: u32 = 1;
