//! Sparse DRAM backing store.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_BITS: u32 = 12;
/// Bytes per DRAM page (the granularity of dirty tracking and snapshots).
pub const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Fibonacci multiply-shift hasher for the `u32` page keys.
///
/// Every simulated load/store resolves a page, so the default SipHash is
/// a measurable per-instruction cost; page indices are small dense
/// integers for which multiplicative hashing distributes fine.
#[derive(Default)]
struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01B3);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = u64::from(n)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(32);
    }
}

type PageMap = HashMap<u32, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageHasher>>;

/// A sparsely allocated, byte-addressable main memory.
///
/// Reads of untouched memory return zero; pages are allocated on first
/// write. Word accesses are little-endian and need not be aligned (the
/// sequencer in `TileMemory` enforces alignment policy).
///
/// ```
/// use stitch_mem::Dram;
/// let mut d = Dram::new();
/// d.write_u32(0x1000, 0xDEAD_BEEF);
/// assert_eq!(d.read_u32(0x1000), 0xDEAD_BEEF);
/// assert_eq!(d.read_u8(0x1000), 0xEF); // little endian
/// assert_eq!(d.read_u32(0xFFFF_0000), 0); // untouched
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dram {
    pages: PageMap,
    /// Pages written since the last snapshot/refresh (dirty-page delta
    /// tracking for incremental checkpoints).
    dirty: std::collections::HashSet<u32, BuildHasherDefault<PageHasher>>,
    /// Last page marked dirty — consecutive stores hit the same page, so
    /// this one-entry cache keeps the hot store path to a single compare.
    last_dirty: u32,
}

/// Sparse copy of a [`Dram`]'s resident pages, sorted by page index.
///
/// Produced by [`Dram::snapshot`] and updated in place by
/// [`Dram::refresh_snapshot`], which copies only pages dirtied since the
/// previous capture (delta checkpointing, not a full re-copy).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DramSnapshot {
    /// `(page index, page contents)` pairs in ascending page order.
    pub pages: Vec<(u32, Box<[u8; PAGE_SIZE]>)>,
}

impl Dram {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Dram {
            pages: PageMap::default(),
            dirty: Default::default(),
            last_dirty: u32::MAX,
        }
    }

    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_BITS)).map(AsRef::as_ref)
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        let idx = addr >> PAGE_BITS;
        if idx != self.last_dirty {
            self.dirty.insert(idx);
            self.last_dirty = idx;
        }
        self.pages
            .entry(idx)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Captures a full (but sparse) copy of every resident page and
    /// clears the dirty-page set: the returned snapshot is the new delta
    /// baseline for [`Dram::refresh_snapshot`].
    #[must_use]
    pub fn snapshot(&mut self) -> DramSnapshot {
        let mut pages: Vec<_> = self.pages.iter().map(|(k, v)| (*k, v.clone())).collect();
        pages.sort_unstable_by_key(|(k, _)| *k);
        self.dirty.clear();
        self.last_dirty = u32::MAX;
        DramSnapshot { pages }
    }

    /// Brings `snap` (a snapshot previously captured from *this* memory)
    /// up to date by re-copying only the pages written since the last
    /// capture, then clears the dirty set. Cost is proportional to the
    /// write set, not the resident set.
    pub fn refresh_snapshot(&mut self, snap: &mut DramSnapshot) {
        if self.dirty.is_empty() {
            return;
        }
        let mut dirty: Vec<u32> = self.dirty.drain().collect();
        dirty.sort_unstable();
        self.last_dirty = u32::MAX;
        for idx in dirty {
            let Some(contents) = self.pages.get(&idx) else {
                continue;
            };
            match snap.pages.binary_search_by_key(&idx, |(k, _)| *k) {
                Ok(i) => snap.pages[i].1.copy_from_slice(contents.as_ref()),
                Err(i) => snap.pages.insert(i, (idx, contents.clone())),
            }
        }
    }

    /// Replaces the entire memory contents with a snapshot's pages.
    /// Pages allocated after the snapshot are dropped (absent pages read
    /// as zero, identical to their pre-allocation behaviour).
    pub fn restore(&mut self, snap: &DramSnapshot) {
        self.pages.clear();
        for (idx, contents) in &snap.pages {
            self.pages.insert(*idx, contents.clone());
        }
        self.dirty.clear();
        self.last_dirty = u32::MAX;
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr as usize) & (PAGE_SIZE - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let page = self.page_mut(addr);
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a 16-bit little-endian value.
    #[must_use]
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from(self.read_u8(addr)) | (u16::from(self.read_u8(addr.wrapping_add(1))) << 8)
    }

    /// Writes a 16-bit little-endian value.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        self.write_u8(addr, value as u8);
        self.write_u8(addr.wrapping_add(1), (value >> 8) as u8);
    }

    /// Reads a 32-bit little-endian value.
    #[must_use]
    pub fn read_u32(&self, addr: u32) -> u32 {
        // Fast path when the word sits inside one page.
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + 4 <= PAGE_SIZE {
            if let Some(p) = self.page(addr) {
                return u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]]);
            }
            return 0;
        }
        (0..4).fold(0u32, |acc, i| {
            acc | (u32::from(self.read_u8(addr.wrapping_add(i))) << (8 * i))
        })
    }

    /// Writes a 32-bit little-endian value.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off + 4 <= PAGE_SIZE {
            let p = self.page_mut(addr);
            p[off..off + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Copies a slice of words into memory starting at `base`.
    pub fn load_words(&mut self, base: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(base.wrapping_add((i * 4) as u32), *w);
        }
    }

    /// Reads `count` consecutive words starting at `base`.
    #[must_use]
    pub fn read_words(&self, base: u32, count: usize) -> Vec<u32> {
        (0..count)
            .map(|i| self.read_u32(base.wrapping_add((i * 4) as u32)))
            .collect()
    }

    /// Number of resident 4 KB pages (for footprint assertions in tests).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let d = Dram::new();
        assert_eq!(d.read_u32(0), 0);
        assert_eq!(d.read_u8(u32::MAX), 0);
        assert_eq!(d.resident_pages(), 0);
    }

    #[test]
    fn byte_and_word_consistency() {
        let mut d = Dram::new();
        d.write_u32(100, 0x0403_0201);
        assert_eq!(d.read_u8(100), 1);
        assert_eq!(d.read_u8(101), 2);
        assert_eq!(d.read_u8(102), 3);
        assert_eq!(d.read_u8(103), 4);
        assert_eq!(d.read_u16(100), 0x0201);
        assert_eq!(d.read_u16(102), 0x0403);
    }

    #[test]
    fn cross_page_word() {
        let mut d = Dram::new();
        let addr = (1 << PAGE_BITS) - 2; // spans two pages
        d.write_u32(addr, 0xAABB_CCDD);
        assert_eq!(d.read_u32(addr), 0xAABB_CCDD);
        assert_eq!(d.resident_pages(), 2);
    }

    #[test]
    fn bulk_words() {
        let mut d = Dram::new();
        d.load_words(0x400, &[1, 2, 3, 4]);
        assert_eq!(d.read_words(0x400, 4), vec![1, 2, 3, 4]);
    }

    /// Deterministic xorshift32 driving the randomized cases below (the
    /// offline sandbox has no `proptest`).
    fn xorshift(state: &mut u32) -> u32 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        *state = x;
        x
    }

    #[test]
    fn write_read_round_trip() {
        let mut s = 0xDEAD_BEEF;
        for _ in 0..256 {
            let addr = xorshift(&mut s) % 0x2000_0000;
            let value = xorshift(&mut s);
            let mut d = Dram::new();
            d.write_u32(addr, value);
            assert_eq!(d.read_u32(addr), value, "addr {addr:#x}");
        }
    }

    #[test]
    fn snapshot_refresh_copies_only_dirty_pages() {
        let mut d = Dram::new();
        d.write_u32(0x0000, 1);
        d.write_u32(0x5000, 2);
        let mut snap = d.snapshot();
        assert_eq!(snap.pages.len(), 2);
        d.write_u32(0x5000, 3); // dirty an existing page
        d.write_u32(0x9000, 4); // allocate a new page
        d.refresh_snapshot(&mut snap);
        assert_eq!(snap.pages.len(), 3);
        let mut fresh = Dram::new();
        fresh.restore(&snap);
        assert_eq!(fresh.read_u32(0x0000), 1);
        assert_eq!(fresh.read_u32(0x5000), 3);
        assert_eq!(fresh.read_u32(0x9000), 4);
        // Restoring drops pages allocated after the capture.
        d.write_u32(0xF000, 9);
        d.restore(&snap);
        assert_eq!(d.read_u32(0xF000), 0);
        assert_eq!(d.resident_pages(), 3);
    }

    #[test]
    fn refresh_after_restore_stays_consistent() {
        let mut d = Dram::new();
        d.write_u32(0x1000, 7);
        let mut snap = d.snapshot();
        d.write_u32(0x2000, 8);
        d.restore(&snap);
        // Nothing dirty after a restore: refresh must be a no-op.
        d.refresh_snapshot(&mut snap);
        assert_eq!(snap.pages.len(), 1);
        d.write_u32(0x3000, 9);
        d.refresh_snapshot(&mut snap);
        assert_eq!(snap.pages.len(), 2);
    }

    #[test]
    fn disjoint_writes_do_not_interfere() {
        let mut s = 0x1234_5678;
        let mut cases = 0;
        while cases < 256 {
            let a = xorshift(&mut s) % 1_000_000;
            let b = xorshift(&mut s) % 1_000_000;
            if a.abs_diff(b) < 4 {
                continue;
            }
            cases += 1;
            let (va, vb) = (xorshift(&mut s), xorshift(&mut s));
            let mut d = Dram::new();
            d.write_u32(a, va);
            d.write_u32(b, vb);
            assert_eq!(d.read_u32(a), va, "a={a:#x} b={b:#x}");
            assert_eq!(d.read_u32(b), vb, "a={a:#x} b={b:#x}");
        }
    }
}
