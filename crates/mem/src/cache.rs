//! Set-associative write-back cache (tag/timing model).

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Block (line) size in bytes; must be a power of two.
    pub block_bytes: u32,
}

impl CacheConfig {
    /// The paper's 8 KB 2-way instruction cache with 64 B blocks.
    #[must_use]
    pub fn icache_8k() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            ways: 2,
            block_bytes: 64,
        }
    }

    /// The paper's 4 KB 2-way data cache (Stitch tiles).
    #[must_use]
    pub fn dcache_4k() -> Self {
        CacheConfig {
            size_bytes: 4 * 1024,
            ways: 2,
            block_bytes: 64,
        }
    }

    /// The baseline's 8 KB 2-way data cache (no SPM).
    #[must_use]
    pub fn dcache_8k() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            ways: 2,
            block_bytes: 64,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two block size
    /// or capacity not divisible by `ways * block_bytes`).
    #[must_use]
    pub fn sets(&self) -> u32 {
        assert!(
            self.block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(self.ways > 0 && self.size_bytes > 0);
        let sets = self.size_bytes / (self.ways * self.block_bytes);
        assert!(
            sets.is_power_of_two() && sets * self.ways * self.block_bytes == self.size_bytes,
            "inconsistent cache geometry"
        );
        sets
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty blocks evicted (write-backs to DRAM).
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when no accesses happened.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// Monotonic timestamp of last touch, for LRU.
    lru: u64,
}

/// Snapshot of one cache way (public mirror of the internal line state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineSnapshot {
    /// Block resident.
    pub valid: bool,
    /// Block modified since fill.
    pub dirty: bool,
    /// Address tag.
    pub tag: u32,
    /// LRU timestamp of the last touch.
    pub lru: u64,
}

/// Full residency/timing snapshot of a [`Cache`]: every line (including
/// LRU timestamps — replacement order is part of the simulator's
/// bit-identical equivalence contract), counters, and the LRU clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// All lines, in `set * ways + way` order.
    pub lines: Vec<LineSnapshot>,
    /// Counters at capture time.
    pub stats: CacheStats,
    /// LRU clock at capture time.
    pub tick: u64,
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the block was resident.
    pub hit: bool,
    /// Block address written back to memory on eviction, if any.
    pub writeback: Option<u32>,
    /// Access latency in cycles (hit latency or hit+DRAM).
    pub latency: u32,
}

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement.
///
/// This models residency and timing; data contents live in the tile's
/// backing store (see crate docs for why that is exact here).
///
/// ```
/// use stitch_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::dcache_4k());
/// assert!(!c.access(0x100, false).hit);  // cold miss
/// assert!(c.access(0x104, false).hit);   // same 64B block
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Line>,
    stats: CacheStats,
    tick: u64,
    set_mask: u32,
    block_shift: u32,
}

impl Cache {
    /// Creates a cold cache with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets: vec![Line::default(); (sets * cfg.ways) as usize],
            stats: CacheStats::default(),
            tick: 0,
            set_mask: sets - 1,
            block_shift: cfg.block_bytes.trailing_zeros(),
        }
    }

    /// Geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Access counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (not residency).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_range(&self, addr: u32) -> (usize, usize, u32) {
        let block = addr >> self.block_shift;
        let set = block & self.set_mask;
        let tag = block >> self.set_mask.count_ones();
        let start = (set * self.cfg.ways) as usize;
        (start, start + self.cfg.ways as usize, tag)
    }

    /// Performs one access; `write` marks the block dirty.
    ///
    /// On a miss the block is allocated (write-allocate) and the LRU way
    /// evicted, reporting a write-back when the victim was dirty.
    pub fn access(&mut self, addr: u32, write: bool) -> Lookup {
        self.tick += 1;
        self.stats.accesses += 1;
        let (start, end, tag) = self.set_range(addr);

        // Hit path.
        for line in &mut self.sets[start..end] {
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                line.dirty |= write;
                self.stats.hits += 1;
                return Lookup {
                    hit: true,
                    writeback: None,
                    latency: crate::HIT_LATENCY,
                };
            }
        }

        // Miss: evict LRU way. A degenerate zero-way geometry has no
        // line to allocate into — every access is a straight DRAM miss.
        self.stats.misses += 1;
        let Some(victim_idx) = (start..end).min_by_key(|&i| (self.sets[i].valid, self.sets[i].lru))
        else {
            return Lookup {
                hit: false,
                writeback: None,
                latency: crate::HIT_LATENCY + crate::DRAM_LATENCY,
            };
        };
        let victim = self.sets[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            let set_index = (victim_idx / self.cfg.ways as usize) as u32;
            Some(((victim.tag << self.set_mask.count_ones()) | set_index) << self.block_shift)
        } else {
            None
        };
        self.sets[victim_idx] = Line {
            valid: true,
            dirty: write,
            tag,
            lru: self.tick,
        };
        Lookup {
            hit: false,
            writeback,
            latency: crate::HIT_LATENCY + crate::DRAM_LATENCY,
        }
    }

    /// Registers `times` repetitions of the access sequence `addrs` (all
    /// reads), which must every one be resident — exactly as if
    /// `access(addr, false)` had been called in that interleaving.
    ///
    /// Used by the simulator's event-driven fast path to batch a waiting
    /// core's identical instruction re-fetches without replaying them.
    /// The caller guarantees residency (the sequence was executed at
    /// least once immediately before); a non-resident address is
    /// defensively skipped — its LRU timestamp simply stays stale.
    pub fn record_repeat_hits(&mut self, addrs: &[u32], times: u64) {
        if times == 0 || addrs.is_empty() {
            return;
        }
        let total = addrs.len() as u64 * times;
        let base_tick = self.tick;
        self.tick += total;
        self.stats.accesses += total;
        self.stats.hits += total;
        // Only the final repetition's timestamps survive; assigning them
        // in sequence order reproduces duplicate-block updates too.
        let last_round = base_tick + addrs.len() as u64 * (times - 1);
        for (j, &addr) in addrs.iter().enumerate() {
            let (start, end, tag) = self.set_range(addr);
            let Some(line) = self.sets[start..end]
                .iter_mut()
                .find(|l| l.valid && l.tag == tag)
            else {
                continue;
            };
            line.lru = last_round + j as u64 + 1;
        }
    }

    /// Returns `true` if the block containing `addr` is resident (no state
    /// change, no stats).
    #[must_use]
    pub fn probe(&self, addr: u32) -> bool {
        let (start, end, tag) = self.set_range(addr);
        self.sets[start..end]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything, discarding dirty state (used when reloading
    /// a tile between experiment runs).
    pub fn flush(&mut self) {
        for line in &mut self.sets {
            *line = Line::default();
        }
    }

    /// Captures residency, LRU order and counters.
    #[must_use]
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            lines: self
                .sets
                .iter()
                .map(|l| LineSnapshot {
                    valid: l.valid,
                    dirty: l.dirty,
                    tag: l.tag,
                    lru: l.lru,
                })
                .collect(),
            stats: self.stats,
            tick: self.tick,
        }
    }

    /// Restores a snapshot captured from a cache with the same geometry
    /// (the chip validates geometry before restoring; mismatched line
    /// counts are a caller bug).
    pub fn restore(&mut self, snap: &CacheSnapshot) {
        debug_assert_eq!(snap.lines.len(), self.sets.len(), "cache geometry mismatch");
        for (line, s) in self.sets.iter_mut().zip(&snap.lines) {
            *line = Line {
                valid: s.valid,
                dirty: s.dirty,
                tag: s.tag,
                lru: s.lru,
            };
        }
        self.stats = snap.stats;
        self.tick = snap.tick;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::icache_8k().sets(), 64);
        assert_eq!(CacheConfig::dcache_4k().sets(), 32);
        assert_eq!(CacheConfig::dcache_8k().sets(), 64);
    }

    #[test]
    #[should_panic(expected = "inconsistent cache geometry")]
    fn bad_geometry_panics() {
        let _ = CacheConfig {
            size_bytes: 3000,
            ways: 2,
            block_bytes: 64,
        }
        .sets();
    }

    #[test]
    fn spatial_locality_hits() {
        let mut c = Cache::new(CacheConfig::dcache_4k());
        assert!(!c.access(0x000, false).hit);
        for off in (4..64).step_by(4) {
            assert!(c.access(off, false).hit, "same block at offset {off}");
        }
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 15);
    }

    #[test]
    fn lru_within_set() {
        let cfg = CacheConfig::dcache_4k(); // 32 sets, 2 ways, 64B blocks
        let mut c = Cache::new(cfg);
        let stride = cfg.block_bytes * cfg.sets(); // same set, different tags
        c.access(0, false); // tag A
        c.access(stride, false); // tag B
        c.access(0, false); // touch A -> B is LRU
        c.access(2 * stride, false); // evicts B
        assert!(c.probe(0), "A stays resident");
        assert!(!c.probe(stride), "B evicted");
        assert!(c.probe(2 * stride));
    }

    #[test]
    fn writeback_address_reconstruction() {
        let cfg = CacheConfig::dcache_4k();
        let mut c = Cache::new(cfg);
        let stride = cfg.block_bytes * cfg.sets();
        let dirty_addr = 5 * cfg.block_bytes + 8; // set 5, dirtied
        c.access(dirty_addr, true);
        c.access(dirty_addr + stride, false); // fill the other way
        let evict = c.access(dirty_addr + 2 * stride, false); // evict dirty
        assert_eq!(evict.writeback, Some(5 * cfg.block_bytes));
    }

    #[test]
    fn miss_latency_includes_dram() {
        let mut c = Cache::new(CacheConfig::dcache_4k());
        assert_eq!(
            c.access(0, false).latency,
            crate::HIT_LATENCY + crate::DRAM_LATENCY
        );
        assert_eq!(c.access(0, false).latency, crate::HIT_LATENCY);
    }

    #[test]
    fn flush_empties() {
        let mut c = Cache::new(CacheConfig::dcache_4k());
        c.access(0x40, true);
        assert!(c.probe(0x40));
        c.flush();
        assert!(!c.probe(0x40));
    }

    #[test]
    fn miss_rate() {
        let mut c = Cache::new(CacheConfig::dcache_4k());
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    /// Deterministic xorshift32 driving the randomized cases below (the
    /// offline sandbox has no `proptest`).
    fn xorshift(state: &mut u32) -> u32 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        *state = x;
        x
    }

    /// The working set fits in the cache => after a warm-up pass every
    /// subsequent access hits (no conflict surprises under LRU for a
    /// working set no larger than one way span per set).
    #[test]
    fn small_working_set_always_hits() {
        for seed in 1u32..=48 {
            let mut s = seed.wrapping_mul(0x9E37_79B9) | 1;
            let len = 1 + (xorshift(&mut s) as usize) % 15;
            let blocks: Vec<u32> = (0..len).map(|_| xorshift(&mut s) % 32).collect();
            let cfg = CacheConfig::dcache_4k();
            let mut c = Cache::new(cfg);
            // Use distinct sets (block index < #sets) so each block maps alone.
            let mut uniq = blocks;
            uniq.sort_unstable();
            uniq.dedup();
            for &b in &uniq {
                c.access(b * cfg.block_bytes, false);
            }
            for &b in &uniq {
                assert!(
                    c.access(b * cfg.block_bytes, true).hit,
                    "seed {seed} block {b}"
                );
            }
        }
    }

    /// Stats always balance: hits + misses == accesses.
    #[test]
    fn stats_balance() {
        for seed in 1u32..=48 {
            let mut s = seed.wrapping_mul(0x0051_7CC1) | 1;
            let len = 1 + (xorshift(&mut s) as usize) % 199;
            let addrs: Vec<u32> = (0..len).map(|_| xorshift(&mut s) % 0x10_0000).collect();
            let mut c = Cache::new(CacheConfig::dcache_4k());
            for (i, a) in addrs.iter().enumerate() {
                c.access(*a, i % 3 == 0);
            }
            let st = c.stats();
            assert_eq!(st.hits + st.misses, st.accesses, "seed {seed}");
            assert_eq!(st.accesses, addrs.len() as u64, "seed {seed}");
        }
    }
}
