//! Scratchpad memory (SPM).

use stitch_isa::memmap::SPM_SIZE;

/// The 4 KB per-tile scratchpad of the paper (§III-C).
///
/// The SPM extends the main-memory address space (window at
/// [`stitch_isa::memmap::SPM_BASE`]), is never cached, and is accessible
/// both by the core's load/store unit and by the patch's LMAU, which is how
/// load/store operations become part of custom instructions. Accesses take
/// one cycle.
///
/// Addresses passed to this type are *offsets* within the window; the
/// sequencer ([`crate::TileMemory`]) performs the window translation.
#[derive(Debug, Clone)]
pub struct Spm {
    data: Box<[u8]>,
    reads: u64,
    writes: u64,
}

impl Default for Spm {
    fn default() -> Self {
        Self::new()
    }
}

impl Spm {
    /// Creates a zeroed scratchpad.
    #[must_use]
    pub fn new() -> Self {
        Spm {
            data: vec![0u8; SPM_SIZE as usize].into_boxed_slice(),
            reads: 0,
            writes: 0,
        }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    fn wrap(&self, offset: u32) -> usize {
        (offset as usize) & (self.data.len() - 1)
    }

    /// Reads one byte at `offset` (wrapping within the window).
    pub fn read_u8(&mut self, offset: u32) -> u8 {
        self.reads += 1;
        self.data[self.wrap(offset)]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, offset: u32, value: u8) {
        self.writes += 1;
        let i = self.wrap(offset);
        self.data[i] = value;
    }

    /// Reads a little-endian word.
    pub fn read_u32(&mut self, offset: u32) -> u32 {
        self.reads += 1;
        let i = self.wrap(offset);
        if let Some(bytes) = self
            .data
            .get(i..i + 4)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
        {
            u32::from_le_bytes(bytes)
        } else {
            (0..4).fold(0, |acc, k| {
                acc | (u32::from(self.data[self.wrap(offset + k)]) << (8 * k))
            })
        }
    }

    /// Writes a little-endian word.
    pub fn write_u32(&mut self, offset: u32, value: u32) {
        self.writes += 1;
        let i = self.wrap(offset);
        if i + 4 <= self.data.len() {
            self.data[i..i + 4].copy_from_slice(&value.to_le_bytes());
        } else {
            for (k, b) in value.to_le_bytes().iter().enumerate() {
                let j = self.wrap(offset + k as u32);
                self.data[j] = *b;
            }
        }
    }

    /// Reads a 16-bit little-endian value.
    pub fn read_u16(&mut self, offset: u32) -> u16 {
        self.reads += 1;
        u16::from(self.data[self.wrap(offset)]) | (u16::from(self.data[self.wrap(offset + 1)]) << 8)
    }

    /// Writes a 16-bit little-endian value.
    pub fn write_u16(&mut self, offset: u32, value: u16) {
        self.writes += 1;
        let (i, j) = (self.wrap(offset), self.wrap(offset + 1));
        self.data[i] = value as u8;
        self.data[j] = (value >> 8) as u8;
    }

    /// Bulk-initializes words starting at `offset`.
    pub fn load_words(&mut self, offset: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(offset + (i * 4) as u32, *w);
        }
        // Initialization is not a simulated access.
        self.writes -= words.len() as u64;
    }

    /// `(reads, writes)` counters for the energy model.
    #[must_use]
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.data.fill(0);
        self.reads = 0;
        self.writes = 0;
    }

    /// Captures contents and counters.
    #[must_use]
    pub fn snapshot(&self) -> SpmSnapshot {
        SpmSnapshot {
            data: self.data.clone(),
            reads: self.reads,
            writes: self.writes,
        }
    }

    /// Restores a snapshot (same window size by construction — every SPM
    /// is [`SPM_SIZE`] bytes).
    pub fn restore(&mut self, snap: &SpmSnapshot) {
        debug_assert_eq!(snap.data.len(), self.data.len(), "SPM size mismatch");
        self.data.copy_from_slice(&snap.data);
        self.reads = snap.reads;
        self.writes = snap.writes;
    }
}

/// Snapshot of a scratchpad: contents plus energy-model counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmSnapshot {
    /// Raw window contents.
    pub data: Box<[u8]>,
    /// Read accesses at capture time.
    pub reads: u64,
    /// Write accesses at capture time.
    pub writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        let mut s = Spm::new();
        s.write_u32(16, 0x1234_5678);
        assert_eq!(s.read_u32(16), 0x1234_5678);
        assert_eq!(s.read_u8(16), 0x78);
    }

    #[test]
    fn wraps_within_window() {
        let mut s = Spm::new();
        s.write_u8(SPM_SIZE + 3, 7); // wraps to offset 3
        assert_eq!(s.read_u8(3), 7);
    }

    #[test]
    fn counts_accesses() {
        let mut s = Spm::new();
        s.write_u32(0, 1);
        let _ = s.read_u32(0);
        let _ = s.read_u8(4);
        assert_eq!(s.access_counts(), (2, 1));
        s.reset();
        assert_eq!(s.access_counts(), (0, 0));
        assert_eq!(s.read_u32(0), 0);
    }

    #[test]
    fn load_words_does_not_count() {
        let mut s = Spm::new();
        s.load_words(0, &[1, 2, 3]);
        assert_eq!(s.access_counts(), (0, 0));
        assert_eq!(s.read_u32(4), 2);
    }
}
