//! Per-tile memory sequencer: routes core/patch accesses to SPM,
//! crossbar-configuration registers or cached DRAM.

use crate::cache::{Cache, CacheConfig};
use crate::dram::Dram;
use crate::spm::Spm;
use stitch_isa::instr::Width;
use stitch_isa::memmap;

/// Whether an access came from instruction fetch or the data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (I-cache).
    Fetch,
    /// Data load/store (D-cache / SPM / MMIO).
    Data,
}

/// Result of a data access: the value (for loads) and the cycle cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResult {
    /// Loaded value (zero for stores).
    pub value: u32,
    /// Latency in cycles, including any DRAM penalty.
    pub latency: u32,
    /// Set when the access wrote a crossbar configuration register; the
    /// chip routes it to the inter-patch NoC switch. `(switch_index, value)`.
    pub xbar_write: Option<(u32, u32)>,
}

impl MemResult {
    /// Whether the access paid a miss penalty. SPM and crossbar accesses
    /// are always single-cycle, so any latency above [`crate::HIT_LATENCY`]
    /// is a cache miss — the same predicate the cache's own miss counter
    /// uses, which keeps observers reconcilable with [`crate::CacheStats`].
    #[must_use]
    pub fn is_miss(&self) -> bool {
        self.latency > crate::HIT_LATENCY
    }
}

/// Cache geometry selection for one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileMemoryConfig {
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
    /// Data-cache geometry.
    pub dcache: CacheConfig,
    /// Whether the tile has an SPM (Stitch tiles: yes; the baseline
    /// trades the SPM for a larger D-cache, paper §VI-B).
    pub has_spm: bool,
}

impl TileMemoryConfig {
    /// Stitch tile: 8 KB I$, 4 KB D$, 4 KB SPM.
    #[must_use]
    pub fn stitch() -> Self {
        TileMemoryConfig {
            icache: CacheConfig::icache_8k(),
            dcache: CacheConfig::dcache_4k(),
            has_spm: true,
        }
    }

    /// Baseline tile: 8 KB I$, 8 KB D$, no SPM.
    #[must_use]
    pub fn baseline() -> Self {
        TileMemoryConfig {
            icache: CacheConfig::icache_8k(),
            dcache: CacheConfig::dcache_8k(),
            has_spm: false,
        }
    }
}

/// One tile's private memory system.
///
/// ```
/// use stitch_mem::{TileMemory, TileMemoryConfig};
/// use stitch_isa::instr::Width;
/// use stitch_isa::memmap::SPM_BASE;
///
/// let mut m = TileMemory::new(TileMemoryConfig::stitch());
/// m.store(0x1000, 42, Width::Word);
/// assert_eq!(m.load(0x1000, Width::Word).value, 42);
/// // SPM accesses always cost one cycle.
/// m.store(SPM_BASE + 8, 7, Width::Word);
/// assert_eq!(m.load(SPM_BASE + 8, Width::Word).latency, 1);
/// ```
#[derive(Debug, Clone)]
pub struct TileMemory {
    cfg: TileMemoryConfig,
    dram: Dram,
    icache: Cache,
    dcache: Cache,
    spm: Spm,
}

impl TileMemory {
    /// Creates a cold tile memory.
    #[must_use]
    pub fn new(cfg: TileMemoryConfig) -> Self {
        TileMemory {
            cfg,
            dram: Dram::new(),
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            spm: Spm::new(),
        }
    }

    /// Configuration used to build this memory.
    #[must_use]
    pub fn config(&self) -> TileMemoryConfig {
        self.cfg
    }

    /// Latency of fetching the instruction word at byte address `addr`.
    pub fn fetch(&mut self, addr: u32) -> u32 {
        self.icache.access(addr, false).latency
    }

    /// Registers `times` repeated re-fetches of the `words`-word
    /// instruction at byte address `addr` (all icache hits), as if
    /// [`TileMemory::fetch`] had been called for each word each time.
    /// Backs the simulator's batched recv-poll fast path.
    pub fn record_repeat_fetches(&mut self, addr: u32, words: u32, times: u64) {
        let mut addrs = [0u32; 4];
        let words = (words as usize).min(addrs.len());
        for (w, slot) in addrs[..words].iter_mut().enumerate() {
            *slot = addr + (w as u32) * 4;
        }
        self.icache.record_repeat_hits(&addrs[..words], times);
    }

    /// Performs a data load.
    pub fn load(&mut self, addr: u32, w: Width) -> MemResult {
        if self.cfg.has_spm && memmap::is_spm(addr) {
            let off = addr - memmap::SPM_BASE;
            let value = match w {
                Width::Byte => u32::from(self.spm.read_u8(off)),
                Width::Half => u32::from(self.spm.read_u16(off)),
                Width::Word => self.spm.read_u32(off),
            };
            return MemResult {
                value,
                latency: crate::HIT_LATENCY,
                xbar_write: None,
            };
        }
        let lookup = self.dcache.access(addr, false);
        let value = match w {
            Width::Byte => u32::from(self.dram.read_u8(addr)),
            Width::Half => u32::from(self.dram.read_u16(addr)),
            Width::Word => self.dram.read_u32(addr),
        };
        MemResult {
            value,
            latency: lookup.latency,
            xbar_write: None,
        }
    }

    /// Performs a data store.
    pub fn store(&mut self, addr: u32, value: u32, w: Width) -> MemResult {
        if memmap::is_xbar_cfg(addr) {
            let index = (addr - memmap::XBAR_CFG_BASE) / 4;
            return MemResult {
                value: 0,
                latency: crate::HIT_LATENCY,
                xbar_write: Some((index, value)),
            };
        }
        if self.cfg.has_spm && memmap::is_spm(addr) {
            let off = addr - memmap::SPM_BASE;
            match w {
                Width::Byte => self.spm.write_u8(off, value as u8),
                Width::Half => self.spm.write_u16(off, value as u16),
                Width::Word => self.spm.write_u32(off, value),
            }
            return MemResult {
                value: 0,
                latency: crate::HIT_LATENCY,
                xbar_write: None,
            };
        }
        let lookup = self.dcache.access(addr, true);
        match w {
            Width::Byte => self.dram.write_u8(addr, value as u8),
            Width::Half => self.dram.write_u16(addr, value as u16),
            Width::Word => self.dram.write_u32(addr, value),
        }
        MemResult {
            value: 0,
            latency: lookup.latency,
            xbar_write: None,
        }
    }

    /// Direct SPM access for the patch LMAU (one cycle, part of the custom
    /// instruction's single-cycle execution — no stall accounting here).
    pub fn spm_lmau_load(&mut self, offset: u32) -> u32 {
        self.spm.read_u32(offset)
    }

    /// Direct SPM store for the patch LMAU.
    pub fn spm_lmau_store(&mut self, offset: u32, value: u32) {
        self.spm.write_u32(offset, value);
    }

    /// Host-side (zero-cost) memory write used to load programs and inputs.
    pub fn poke_words(&mut self, base: u32, words: &[u32]) {
        if self.cfg.has_spm && memmap::is_spm(base) {
            self.spm.load_words(base - memmap::SPM_BASE, words);
        } else {
            self.dram.load_words(base, words);
        }
    }

    /// Host-side memory read used to extract results.
    #[must_use]
    pub fn peek_words(&mut self, base: u32, count: usize) -> Vec<u32> {
        if self.cfg.has_spm && memmap::is_spm(base) {
            (0..count)
                .map(|i| self.spm.read_u32(base - memmap::SPM_BASE + (i * 4) as u32))
                .collect()
        } else {
            self.dram.read_words(base, count)
        }
    }

    /// Host-side single-word read.
    #[must_use]
    pub fn peek_u32(&mut self, addr: u32) -> u32 {
        self.peek_words(addr, 1)[0]
    }

    /// Instruction-cache statistics.
    #[must_use]
    pub fn icache_stats(&self) -> crate::CacheStats {
        self.icache.stats()
    }

    /// Data-cache statistics.
    #[must_use]
    pub fn dcache_stats(&self) -> crate::CacheStats {
        self.dcache.stats()
    }

    /// SPM `(reads, writes)` counters.
    #[must_use]
    pub fn spm_counts(&self) -> (u64, u64) {
        self.spm.access_counts()
    }

    /// Number of DRAM pages this tile has materialized (the SPM is a
    /// fixed-size array and never grows). This is the per-tile input to
    /// the chip-level memory-page budget.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.dram.resident_pages()
    }

    /// Captures a full snapshot of the tile's memory system. DRAM pages
    /// are captured sparsely and the dirty set is reset, so a later
    /// [`TileMemory::refresh_snapshot`] only re-copies written pages.
    #[must_use]
    pub fn snapshot(&mut self) -> TileMemorySnapshot {
        TileMemorySnapshot {
            dram: self.dram.snapshot(),
            icache: self.icache.snapshot(),
            dcache: self.dcache.snapshot(),
            spm: self.spm.snapshot(),
        }
    }

    /// Updates a snapshot previously captured from *this* tile memory:
    /// DRAM incrementally via its dirty-page delta, caches and SPM by
    /// re-capture (they are kilobytes, the DRAM is the bulk).
    pub fn refresh_snapshot(&mut self, snap: &mut TileMemorySnapshot) {
        self.dram.refresh_snapshot(&mut snap.dram);
        snap.icache = self.icache.snapshot();
        snap.dcache = self.dcache.snapshot();
        snap.spm = self.spm.snapshot();
    }

    /// Restores a snapshot captured from a tile memory with the same
    /// configuration (validated by the chip before restoring).
    pub fn restore(&mut self, snap: &TileMemorySnapshot) {
        self.dram.restore(&snap.dram);
        self.icache.restore(&snap.icache);
        self.dcache.restore(&snap.dcache);
        self.spm.restore(&snap.spm);
    }
}

/// Snapshot of one tile's memory system: sparse DRAM pages, both cache
/// tag/LRU arrays (with counters), and SPM contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileMemorySnapshot {
    /// Backing DRAM pages (sparse, sorted).
    pub dram: crate::DramSnapshot,
    /// Instruction-cache residency and counters.
    pub icache: crate::CacheSnapshot,
    /// Data-cache residency and counters.
    pub dcache: crate::CacheSnapshot,
    /// Scratchpad contents and counters.
    pub spm: crate::SpmSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_spm_window() {
        let mut m = TileMemory::new(TileMemoryConfig::stitch());
        m.store(memmap::SPM_BASE + 4, 99, Width::Word);
        assert_eq!(m.load(memmap::SPM_BASE + 4, Width::Word).value, 99);
        // SPM traffic must not touch the D-cache.
        assert_eq!(m.dcache_stats().accesses, 0);
        assert_eq!(m.spm_counts(), (1, 1));
    }

    #[test]
    fn baseline_has_no_spm_window() {
        let mut m = TileMemory::new(TileMemoryConfig::baseline());
        // Without an SPM the window is ordinary (cached) memory.
        m.store(memmap::SPM_BASE + 4, 5, Width::Word);
        assert_eq!(m.load(memmap::SPM_BASE + 4, Width::Word).value, 5);
        assert!(m.dcache_stats().accesses >= 2);
    }

    #[test]
    fn xbar_writes_are_intercepted() {
        let mut m = TileMemory::new(TileMemoryConfig::stitch());
        let r = m.store(memmap::XBAR_CFG_BASE + 8, 0xABCD, Width::Word);
        assert_eq!(r.xbar_write, Some((2, 0xABCD)));
        // And do not land in DRAM.
        assert_eq!(m.peek_u32(memmap::XBAR_CFG_BASE + 8), 0);
    }

    #[test]
    fn dram_miss_then_hit_latency() {
        let mut m = TileMemory::new(TileMemoryConfig::stitch());
        let miss = m.load(0x2000, Width::Word);
        let hit = m.load(0x2004, Width::Word);
        assert_eq!(miss.latency, crate::HIT_LATENCY + crate::DRAM_LATENCY);
        assert_eq!(hit.latency, crate::HIT_LATENCY);
    }

    #[test]
    fn lmau_path_reads_spm() {
        let mut m = TileMemory::new(TileMemoryConfig::stitch());
        m.poke_words(memmap::SPM_BASE, &[11, 22]);
        assert_eq!(m.spm_lmau_load(4), 22);
        m.spm_lmau_store(8, 33);
        assert_eq!(m.peek_u32(memmap::SPM_BASE + 8), 33);
    }

    #[test]
    fn fetch_uses_icache() {
        let mut m = TileMemory::new(TileMemoryConfig::stitch());
        assert_eq!(m.fetch(0x100), crate::HIT_LATENCY + crate::DRAM_LATENCY);
        assert_eq!(m.fetch(0x104), crate::HIT_LATENCY);
        assert_eq!(m.icache_stats().accesses, 2);
    }

    #[test]
    fn byte_and_half_widths() {
        let mut m = TileMemory::new(TileMemoryConfig::stitch());
        m.store(0x3000, 0xAABBCCDD, Width::Word);
        assert_eq!(m.load(0x3000, Width::Byte).value, 0xDD);
        assert_eq!(m.load(0x3002, Width::Half).value, 0xAABB);
        m.store(0x3001, 0x11, Width::Byte);
        assert_eq!(m.load(0x3000, Width::Word).value, 0xAABB11DD);
    }
}
