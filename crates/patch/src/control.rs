//! 19-bit control words of the polymorphic patches.
//!
//! Layout (bit 0 = LSB). Stage 1 is common to all three classes:
//!
//! ```text
//! [2:0]  a1_op    ALU operation (8 A-class ops)
//! [4:3]  a1_src1  in0..in3
//! [6:5]  a1_src2  in0..in3
//! [8:7]  t1_mode  0=bypass, 1=load, 2=store (store data is in2)
//! ```
//!
//! Stage 2 occupies bits `[18:9]` and differs per class — see
//! [`AtMaControl`], [`AtAsControl`], [`AtSaControl`]. Outputs are fixed
//! wiring: `out0` = stage-2 result, `out1` = LMAU (`T1`) result; a pure
//! `{AT}` pattern therefore reads its result from `out1` and configures
//! stage 2 as a pass-through.
//!
//! The LOCUS special functional unit uses a wider control word
//! ([`LocusControl`], three chained micro-operations) reflecting its much
//! larger area budget in the paper (Table III).

use crate::{PatchClass, PatchError};
use stitch_isa::op::AluOp;

/// The eight A-class operations encodable in the 3-bit `a*_op` fields.
pub const A_OPS: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Nor,
    AluOp::Slt,
    AluOp::Sltu,
];

/// The three shifter operations plus pass-through.
pub const S_OPS: [Option<AluOp>; 4] = [Some(AluOp::Sll), Some(AluOp::Srl), Some(AluOp::Sra), None];

fn a_op_code(op: AluOp) -> Option<u32> {
    A_OPS.iter().position(|&o| o == op).map(|i| i as u32)
}

fn a_op_from(code: u32) -> AluOp {
    A_OPS[(code & 7) as usize]
}

fn s_op_code(op: Option<AluOp>) -> Option<u32> {
    S_OPS.iter().position(|&o| o == op).map(|i| i as u32)
}

/// LMAU mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum T1Mode {
    /// Pass the ALU result through.
    #[default]
    Bypass,
    /// Replace the ALU result with `spm[a1_out]`.
    Load,
    /// Write `in2` to `spm[a1_out]`; `T1` output is the ALU result.
    Store,
}

impl T1Mode {
    fn code(self) -> u32 {
        match self {
            T1Mode::Bypass => 0,
            T1Mode::Load => 1,
            T1Mode::Store => 2,
        }
    }

    fn from_code(c: u32) -> Result<Self, &'static str> {
        match c {
            0 => Ok(T1Mode::Bypass),
            1 => Ok(T1Mode::Load),
            2 => Ok(T1Mode::Store),
            _ => Err("t1_mode 3 is reserved"),
        }
    }
}

/// Selector over the four patch inputs.
pub type InSel = u8; // 0..=3

/// Selector over `{A1, T1, in2, in3}` used by stage-2 operand muxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sel4 {
    /// Stage-1 ALU output.
    A1,
    /// LMAU output.
    T1,
    /// Third patch input.
    In2,
    /// Fourth patch input.
    In3,
}

impl Sel4 {
    fn code(self) -> u32 {
        match self {
            Sel4::A1 => 0,
            Sel4::T1 => 1,
            Sel4::In2 => 2,
            Sel4::In3 => 3,
        }
    }

    fn from_code(c: u32) -> Self {
        match c & 3 {
            0 => Sel4::A1,
            1 => Sel4::T1,
            2 => Sel4::In2,
            _ => Sel4::In3,
        }
    }
}

/// Common stage-1 configuration (`A1` + `T1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stage1 {
    /// A-class operation of `A1`.
    pub a1_op: AluOp,
    /// First `A1` operand (`in0..in3`).
    pub a1_src1: InSel,
    /// Second `A1` operand.
    pub a1_src2: InSel,
    /// LMAU mode.
    pub t1: T1Mode,
}

impl Default for Stage1 {
    fn default() -> Self {
        // Pass in0 through: or(in0, in0) = in0, LMAU bypass.
        Stage1 {
            a1_op: AluOp::Or,
            a1_src1: 0,
            a1_src2: 0,
            t1: T1Mode::Bypass,
        }
    }
}

impl Stage1 {
    fn pack(self) -> Result<u32, &'static str> {
        let op = a_op_code(self.a1_op).ok_or("a1_op must be an A-class op")?;
        if self.a1_src1 > 3 || self.a1_src2 > 3 {
            return Err("input selector out of range");
        }
        Ok(op
            | (u32::from(self.a1_src1) << 3)
            | (u32::from(self.a1_src2) << 5)
            | (self.t1.code() << 7))
    }

    fn unpack(bits: u32) -> Result<Self, &'static str> {
        Ok(Stage1 {
            a1_op: a_op_from(bits & 7),
            a1_src1: ((bits >> 3) & 3) as u8,
            a1_src2: ((bits >> 5) & 3) as u8,
            t1: T1Mode::from_code((bits >> 7) & 3)?,
        })
    }
}

/// `{AT-MA}` stage 2: multiplier feeding an ALU.
///
/// ```text
/// [10:9]  m_src1   Sel4
/// [12:11] m_src2   Sel4
/// [13]    a2_src1  0 = multiplier output, 1 = A1 output
///                  (the paper's "intermediate connection" enabling {AA})
/// [16:14] a2_op
/// [18:17] a2_src2  Sel4
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtMaControl {
    /// Stage-1 configuration.
    pub s1: Stage1,
    /// Multiplier first operand.
    pub m_src1: Sel4,
    /// Multiplier second operand.
    pub m_src2: Sel4,
    /// `false`: A2 first operand is the product; `true`: it is `A1`.
    pub a2_takes_a1: bool,
    /// A-class operation of `A2`.
    pub a2_op: AluOp,
    /// A2 second operand.
    pub a2_src2: Sel4,
}

impl Default for AtMaControl {
    fn default() -> Self {
        // out0 = A1 (pass-through): a2 = or(A1, A1).
        AtMaControl {
            s1: Stage1::default(),
            m_src1: Sel4::A1,
            m_src2: Sel4::A1,
            a2_takes_a1: true,
            a2_op: AluOp::Or,
            a2_src2: Sel4::A1,
        }
    }
}

/// `{AT-AS}` stage 2: ALU feeding a shifter.
///
/// ```text
/// [11:9]  a2_op
/// [13:12] a2_src1  Sel4
/// [15:14] a2_src2  Sel4
/// [17:16] s_op     0=sll 1=srl 2=sra 3=bypass
/// [18]    s_amt    0 = in2, 1 = in3 (shift amount source)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtAsControl {
    /// Stage-1 configuration.
    pub s1: Stage1,
    /// A-class operation of `A2`.
    pub a2_op: AluOp,
    /// A2 first operand.
    pub a2_src1: Sel4,
    /// A2 second operand.
    pub a2_src2: Sel4,
    /// Shift operation; `None` passes the A2 result through.
    pub s_op: Option<AluOp>,
    /// `false`: amount from `in2`; `true`: from `in3`.
    pub s_amt_in3: bool,
}

impl Default for AtAsControl {
    fn default() -> Self {
        AtAsControl {
            s1: Stage1::default(),
            a2_op: AluOp::Or,
            a2_src1: Sel4::A1,
            a2_src2: Sel4::A1,
            s_op: None,
            s_amt_in3: false,
        }
    }
}

/// `{AT-SA}` stage 2: shifter feeding an ALU.
///
/// ```text
/// [10:9]  s_in     Sel4 (shifter data input)
/// [12:11] s_op     0=sll 1=srl 2=sra 3=bypass
/// [13]    s_amt    0 = in2, 1 = in3
/// [16:14] a2_op
/// [18:17] a2_src2  Sel4 (a2_src1 is the shifter output, fixed)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtSaControl {
    /// Stage-1 configuration.
    pub s1: Stage1,
    /// Shifter data input.
    pub s_in: Sel4,
    /// Shift operation; `None` is pass-through.
    pub s_op: Option<AluOp>,
    /// `false`: amount from `in2`; `true`: from `in3`.
    pub s_amt_in3: bool,
    /// A-class operation of `A2` (first operand = shifter output).
    pub a2_op: AluOp,
    /// A2 second operand.
    pub a2_src2: Sel4,
}

impl Default for AtSaControl {
    fn default() -> Self {
        AtSaControl {
            s1: Stage1::default(),
            s_in: Sel4::A1,
            s_op: None,
            s_amt_in3: false,
            a2_op: AluOp::Or,
            a2_src2: Sel4::A1,
        }
    }
}

/// One micro-operation of the LOCUS SFU chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocusOp {
    /// Operation (any A/S-class op; like CCA's adder/logic/shift
    /// triangle, the SFU has neither a multiplier nor memory access).
    pub op: AluOp,
    /// First operand: `0..=3` patch inputs, `4..` = earlier micro-op result.
    pub src1: u8,
    /// Second operand, same encoding.
    pub src2: u8,
}

/// Control state of the LOCUS special functional unit: up to two chained
/// micro-operations over the four inputs (a CCA-style depth-2 operation
/// chain; crucially, no local-memory access — the decisive difference
/// from the polymorphic patches, paper §VI-C).
///
/// The SFU result `out0` is the last micro-op's output; `out1` is the
/// first micro-op's output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocusControl {
    /// The micro-op chain (1..=3 entries).
    pub ops: Vec<LocusOp>,
}

/// A decoded patch control word, tied to its class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlWord {
    /// `{AT-MA}` configuration.
    AtMa(AtMaControl),
    /// `{AT-AS}` configuration.
    AtAs(AtAsControl),
    /// `{AT-SA}` configuration.
    AtSa(AtSaControl),
    /// LOCUS SFU configuration.
    Locus(LocusControl),
}

impl ControlWord {
    /// The patch class this control word drives.
    #[must_use]
    pub fn class(&self) -> PatchClass {
        match self {
            ControlWord::AtMa(_) => PatchClass::AtMa,
            ControlWord::AtAs(_) => PatchClass::AtAs,
            ControlWord::AtSa(_) => PatchClass::AtSa,
            ControlWord::Locus(_) => PatchClass::LocusSfu,
        }
    }

    /// `true` if the LMAU performs a load or store.
    #[must_use]
    pub fn uses_memory(&self) -> bool {
        match self {
            ControlWord::AtMa(c) => c.s1.t1 != T1Mode::Bypass,
            ControlWord::AtAs(c) => c.s1.t1 != T1Mode::Bypass,
            ControlWord::AtSa(c) => c.s1.t1 != T1Mode::Bypass,
            ControlWord::Locus(_) => false,
        }
    }

    /// Packs into the 19-bit control field (Stitch classes) or the wider
    /// LOCUS encoding.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError::BadControl`] if a field is not encodable
    /// (e.g. an M-class op in an ALU slot).
    pub fn pack(&self) -> Result<u32, PatchError> {
        let bad = |reason| PatchError::BadControl {
            class: self.class(),
            bits: 0,
            reason,
        };
        match self {
            ControlWord::AtMa(c) => {
                let s1 = c.s1.pack().map_err(bad)?;
                let a2 = a_op_code(c.a2_op).ok_or_else(|| bad("a2_op must be A-class"))?;
                Ok(s1
                    | (c.m_src1.code() << 9)
                    | (c.m_src2.code() << 11)
                    | (u32::from(c.a2_takes_a1) << 13)
                    | (a2 << 14)
                    | (c.a2_src2.code() << 17))
            }
            ControlWord::AtAs(c) => {
                let s1 = c.s1.pack().map_err(bad)?;
                let a2 = a_op_code(c.a2_op).ok_or_else(|| bad("a2_op must be A-class"))?;
                let s = s_op_code(c.s_op).ok_or_else(|| bad("s_op must be a shift"))?;
                Ok(s1
                    | (a2 << 9)
                    | (c.a2_src1.code() << 12)
                    | (c.a2_src2.code() << 14)
                    | (s << 16)
                    | (u32::from(c.s_amt_in3) << 18))
            }
            ControlWord::AtSa(c) => {
                let s1 = c.s1.pack().map_err(bad)?;
                let a2 = a_op_code(c.a2_op).ok_or_else(|| bad("a2_op must be A-class"))?;
                let s = s_op_code(c.s_op).ok_or_else(|| bad("s_op must be a shift"))?;
                Ok(s1
                    | (c.s_in.code() << 9)
                    | (s << 11)
                    | (u32::from(c.s_amt_in3) << 13)
                    | (a2 << 14)
                    | (c.a2_src2.code() << 17))
            }
            ControlWord::Locus(c) => {
                // 3 micro-ops x (op:4, src1:3, src2:3) = 30 bits; a count
                // in the top 2 bits. The LOCUS SFU is not bit-budgeted to
                // 19 bits — it is the paper's big conventional ISE unit.
                if c.ops.is_empty() || c.ops.len() > 2 {
                    return Err(bad("locus chain must have 1..=2 ops"));
                }
                let mut bits = (c.ops.len() as u32) << 30;
                for (i, op) in c.ops.iter().enumerate() {
                    if op.op.class() == stitch_isa::OpClass::M {
                        return Err(bad("the SFU has no multiplier (CCA-style A/S chains)"));
                    }
                    if op.src1 as usize >= 4 + i || op.src2 as usize >= 4 + i {
                        return Err(bad("micro-op source references later op"));
                    }
                    let enc = u32::from(op.op.code())
                        | (u32::from(op.src1) << 4)
                        | (u32::from(op.src2) << 7);
                    bits |= enc << (i * 10);
                }
                Ok(bits)
            }
        }
    }

    /// Decodes a packed control word for `class`.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError::BadControl`] on reserved encodings.
    pub fn unpack(class: PatchClass, bits: u32) -> Result<Self, PatchError> {
        let bad = |reason| PatchError::BadControl {
            class,
            bits,
            reason,
        };
        match class {
            PatchClass::AtMa => Ok(ControlWord::AtMa(AtMaControl {
                s1: Stage1::unpack(bits).map_err(bad)?,
                m_src1: Sel4::from_code(bits >> 9),
                m_src2: Sel4::from_code(bits >> 11),
                a2_takes_a1: (bits >> 13) & 1 == 1,
                a2_op: a_op_from(bits >> 14),
                a2_src2: Sel4::from_code(bits >> 17),
            })),
            PatchClass::AtAs => Ok(ControlWord::AtAs(AtAsControl {
                s1: Stage1::unpack(bits).map_err(bad)?,
                a2_op: a_op_from(bits >> 9),
                a2_src1: Sel4::from_code(bits >> 12),
                a2_src2: Sel4::from_code(bits >> 14),
                s_op: S_OPS[((bits >> 16) & 3) as usize],
                s_amt_in3: (bits >> 18) & 1 == 1,
            })),
            PatchClass::AtSa => Ok(ControlWord::AtSa(AtSaControl {
                s1: Stage1::unpack(bits).map_err(bad)?,
                s_in: Sel4::from_code(bits >> 9),
                s_op: S_OPS[((bits >> 11) & 3) as usize],
                s_amt_in3: (bits >> 13) & 1 == 1,
                a2_op: a_op_from(bits >> 14),
                a2_src2: Sel4::from_code(bits >> 17),
            })),
            PatchClass::LocusSfu => {
                let count = (bits >> 30) as usize;
                if count == 0 || count > 2 {
                    return Err(bad("bad locus op count"));
                }
                let mut ops = Vec::with_capacity(count);
                for i in 0..count {
                    let enc = (bits >> (i * 10)) & 0x3FF;
                    let op =
                        AluOp::from_code((enc & 0xF) as u8).ok_or_else(|| bad("bad locus op"))?;
                    ops.push(LocusOp {
                        op,
                        src1: ((enc >> 4) & 7) as u8,
                        src2: ((enc >> 7) & 7) as u8,
                    });
                }
                Ok(ControlWord::Locus(LocusControl { ops }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage1_round_trip() {
        for op in A_OPS {
            for t1 in [T1Mode::Bypass, T1Mode::Load, T1Mode::Store] {
                let s = Stage1 {
                    a1_op: op,
                    a1_src1: 2,
                    a1_src2: 3,
                    t1,
                };
                let bits = s.pack().unwrap();
                assert!(bits < (1 << 9));
                assert_eq!(Stage1::unpack(bits).unwrap(), s);
            }
        }
    }

    #[test]
    fn stage1_rejects_non_a_ops() {
        let s = Stage1 {
            a1_op: AluOp::Mul,
            ..Stage1::default()
        };
        assert!(s.pack().is_err());
        let s = Stage1 {
            a1_op: AluOp::Sll,
            ..Stage1::default()
        };
        assert!(s.pack().is_err());
    }

    #[test]
    fn all_class_words_fit_19_bits() {
        let words = [
            ControlWord::AtMa(AtMaControl::default()),
            ControlWord::AtAs(AtAsControl::default()),
            ControlWord::AtSa(AtSaControl::default()),
        ];
        for w in words {
            let bits = w.pack().unwrap();
            assert!(bits < (1 << 19), "{w:?} packed to {bits:#x}");
            assert_eq!(ControlWord::unpack(w.class(), bits).unwrap(), w);
        }
    }

    #[test]
    fn locus_round_trip() {
        let c = ControlWord::Locus(LocusControl {
            ops: vec![
                LocusOp {
                    op: AluOp::Add,
                    src1: 0,
                    src2: 1,
                },
                LocusOp {
                    op: AluOp::Sll,
                    src1: 4,
                    src2: 2,
                },
            ],
        });
        let bits = c.pack().unwrap();
        assert_eq!(ControlWord::unpack(PatchClass::LocusSfu, bits).unwrap(), c);
    }

    #[test]
    fn locus_rejects_forward_references() {
        let c = ControlWord::Locus(LocusControl {
            ops: vec![LocusOp {
                op: AluOp::Add,
                src1: 5,
                src2: 0,
            }],
        });
        assert!(c.pack().is_err());
    }

    #[test]
    fn uses_memory_flag() {
        let mut c = AtMaControl::default();
        assert!(!ControlWord::AtMa(c).uses_memory());
        c.s1.t1 = T1Mode::Load;
        assert!(ControlWord::AtMa(c).uses_memory());
    }

    /// Any 19-bit pattern with a non-reserved t1 field decodes, and
    /// re-packing is the identity (totality of the decoder). Exhaustive
    /// over all 2^19 control words — no sampling needed.
    #[test]
    fn decode_encode_identity() {
        for bits in 0u32..(1 << 19) {
            for class in PatchClass::STITCH {
                match ControlWord::unpack(class, bits) {
                    Ok(w) => {
                        let repacked = w.pack().unwrap();
                        assert_eq!(ControlWord::unpack(class, repacked).unwrap(), w);
                    }
                    Err(_) => {
                        // Only the reserved t1_mode=3 encoding may fail.
                        assert_eq!((bits >> 7) & 3, 3, "bits {bits:#x}");
                    }
                }
            }
        }
    }
}
