//! Combinational-delay model of patches and fused paths (paper Table IV
//! and §VI-D "NoC timing analysis").

use crate::PatchClass;

/// Clock period at the paper's 200 MHz operating point, in nanoseconds.
pub const CLOCK_PERIOD_NS: f64 = 5.0;

/// Delay of one inter-patch NoC crossbar switch (Table IV).
pub const SWITCH_DELAY_NS: f64 = 0.17;

/// Wire delay of one hop (Table IV gives 0.3 ns for 3 hops of clockless
/// repeated links).
pub const HOP_WIRE_DELAY_NS: f64 = 0.1;

/// Maximum total hops (forward + return) between two stitched patches
/// (paper §VI-D restricts traversal to at most six hops).
pub const MAX_FUSED_HOPS: u32 = 6;

/// Combinational delay of one patch datapath in nanoseconds (Table IV).
#[must_use]
pub fn patch_delay_ns(class: PatchClass) -> f64 {
    match class {
        PatchClass::AtMa => 1.38,
        PatchClass::AtAs => 1.12,
        PatchClass::AtSa => 1.02,
        // The LOCUS SFU runs a 3-op chain; the paper reports LOCUS at up
        // to 400 MHz, i.e. a <=2.5 ns unit. We model it at 2.30 ns.
        PatchClass::LocusSfu => 2.30,
    }
}

/// Area of one patch in square micrometres (Table IV; LOCUS per-core SFU
/// from Table III: 1,288,044 um^2 / 16 cores).
#[must_use]
pub fn patch_area_um2(class: PatchClass) -> f64 {
    match class {
        PatchClass::AtMa => 4152.0,
        PatchClass::AtAs => 2096.0,
        PatchClass::AtSa => 2157.0,
        PatchClass::LocusSfu => 1_288_044.0 / 16.0,
    }
}

/// End-to-end delay of a *single-patch* custom instruction: local switch
/// in, patch, local switch out (paper: "1.36 ns single {AT-SA} including
/// the NoC overhead: 2 x 0.17").
#[must_use]
pub fn single_delay_ns(class: PatchClass) -> f64 {
    2.0 * SWITCH_DELAY_NS + patch_delay_ns(class)
}

/// End-to-end delay of a fused custom instruction whose two patches are
/// `hops` switch-hops apart (each direction), following the paper's
/// critical-path accounting:
///
/// ```text
/// switch_in + patch1 + switch_out
///   + hops x (wire + switch) + patch2 + hops x (wire + switch)
///   + final switch
/// ```
///
/// For `{AT-MA}` + `{AT-AS}` at 3 hops each way this reproduces the
/// paper's 4.63 ns critical path.
#[must_use]
pub fn fused_delay_ns(first: PatchClass, second: PatchClass, hops: u32) -> f64 {
    let leg = f64::from(hops) * (HOP_WIRE_DELAY_NS + SWITCH_DELAY_NS);
    SWITCH_DELAY_NS
        + patch_delay_ns(first)
        + SWITCH_DELAY_NS
        + leg
        + patch_delay_ns(second)
        + leg
        + SWITCH_DELAY_NS
}

/// Whether a fused pair at `hops` (per direction) meets the cycle time and
/// the hop restriction, i.e. executes in a single cycle.
#[must_use]
pub fn fused_path_legal(first: PatchClass, second: PatchClass, hops: u32) -> bool {
    2 * hops <= MAX_FUSED_HOPS && fused_delay_ns(first, second, hops) <= CLOCK_PERIOD_NS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_delays() {
        assert_eq!(patch_delay_ns(PatchClass::AtMa), 1.38);
        assert_eq!(patch_delay_ns(PatchClass::AtAs), 1.12);
        assert_eq!(patch_delay_ns(PatchClass::AtSa), 1.02);
    }

    #[test]
    fn paper_critical_path_reproduced() {
        // §VI-D: 0.17 + 1.38 + 0.17 + (0.3 + 3*0.17) + 1.12 +
        //        (0.3 + 3*0.17) + 0.17 = 4.63 ns
        let d = fused_delay_ns(PatchClass::AtMa, PatchClass::AtAs, 3);
        assert!((d - 4.63).abs() < 1e-9, "got {d}");
        assert!(d <= CLOCK_PERIOD_NS);
    }

    #[test]
    fn paper_single_atsa_path() {
        let d = single_delay_ns(PatchClass::AtSa);
        assert!((d - 1.36).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn hop_limit_enforced() {
        assert!(fused_path_legal(PatchClass::AtSa, PatchClass::AtSa, 3));
        assert!(
            !fused_path_legal(PatchClass::AtSa, PatchClass::AtSa, 4),
            "8 total hops > 6"
        );
    }

    #[test]
    fn worst_pair_fits_cycle_at_three_hops() {
        // Two {AT-MA} at 3 hops each way: 4.89 ns <= 5 ns.
        let d = fused_delay_ns(PatchClass::AtMa, PatchClass::AtMa, 3);
        assert!((d - 4.89).abs() < 1e-9, "got {d}");
        assert!(fused_path_legal(PatchClass::AtMa, PatchClass::AtMa, 3));
    }

    #[test]
    fn areas_match_table4() {
        assert_eq!(patch_area_um2(PatchClass::AtMa), 4152.0);
        assert_eq!(patch_area_um2(PatchClass::AtAs), 2096.0);
        assert_eq!(patch_area_um2(PatchClass::AtSa), 2157.0);
        assert!(patch_area_um2(PatchClass::LocusSfu) > 10.0 * patch_area_um2(PatchClass::AtMa));
    }
}
