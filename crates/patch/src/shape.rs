//! Structural descriptions of patch datapaths for the compiler's mapper.
//!
//! A [`UnitSpec`] lists, for every functional unit in a patch, which
//! operation class it executes and which [`Port`]s each of its operands
//! can be driven from. The mapper assigns dataflow-graph nodes to units
//! and checks every DFG edge against these choices, then synthesizes the
//! corresponding control word.

use crate::PatchClass;
use stitch_isa::op::OpClass;

/// A data source inside a patch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// External input operand `0..=3`.
    In(u8),
    /// Output of another unit of the same patch.
    Unit(UnitId),
}

/// Functional-unit identifiers (meaning depends on the patch class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitId {
    /// Stage-1 ALU.
    A1,
    /// LMAU (scratchpad port mux).
    T1,
    /// Multiplier (`{AT-MA}` only).
    M,
    /// Stage-2 ALU.
    A2,
    /// Shifter (`{AT-AS}`/`{AT-SA}`).
    S,
    /// Generic LOCUS chain slot `0..=1`.
    L(u8),
}

/// Capability of one functional unit.
#[derive(Debug, Clone)]
pub struct UnitSpec {
    /// Identifier within the patch.
    pub id: UnitId,
    /// Operation class executed by this unit.
    pub class: OpClass,
    /// Allowed sources for each operand. `T` units take one operand (the
    /// address, always from `A1`) — their `srcs` has length 1. Shifters
    /// take `(data, amount)`.
    pub srcs: Vec<Vec<Port>>,
}

const IN0: Port = Port::In(0);
const IN1: Port = Port::In(1);
const IN2: Port = Port::In(2);
const IN3: Port = Port::In(3);

fn any_in() -> Vec<Port> {
    vec![IN0, IN1, IN2, IN3]
}

fn sel4(extra: &[Port]) -> Vec<Port> {
    let mut v = vec![Port::Unit(UnitId::A1), Port::Unit(UnitId::T1), IN2, IN3];
    v.extend_from_slice(extra);
    v
}

/// Returns the unit list of a patch class.
///
/// The order is topological: a unit may only consume outputs of units
/// appearing earlier in the list (matching the physical pipeline).
#[must_use]
pub fn patch_shape(class: PatchClass) -> Vec<UnitSpec> {
    let stage1 = [
        UnitSpec {
            id: UnitId::A1,
            class: OpClass::A,
            srcs: vec![any_in(), any_in()],
        },
        UnitSpec {
            id: UnitId::T1,
            class: OpClass::T,
            // Address always comes from A1; store data is in2 (fixed).
            srcs: vec![vec![Port::Unit(UnitId::A1)]],
        },
    ];
    match class {
        PatchClass::AtMa => {
            let mut v = stage1.to_vec();
            v.push(UnitSpec {
                id: UnitId::M,
                class: OpClass::M,
                srcs: vec![sel4(&[]), sel4(&[])],
            });
            v.push(UnitSpec {
                id: UnitId::A2,
                class: OpClass::A,
                srcs: vec![
                    vec![Port::Unit(UnitId::M), Port::Unit(UnitId::A1)],
                    sel4(&[]),
                ],
            });
            v
        }
        PatchClass::AtAs => {
            let mut v = stage1.to_vec();
            v.push(UnitSpec {
                id: UnitId::A2,
                class: OpClass::A,
                srcs: vec![sel4(&[]), sel4(&[])],
            });
            v.push(UnitSpec {
                id: UnitId::S,
                class: OpClass::S,
                srcs: vec![vec![Port::Unit(UnitId::A2)], vec![IN2, IN3]],
            });
            v
        }
        PatchClass::AtSa => {
            let mut v = stage1.to_vec();
            v.push(UnitSpec {
                id: UnitId::S,
                class: OpClass::S,
                srcs: vec![sel4(&[]), vec![IN2, IN3]],
            });
            v.push(UnitSpec {
                id: UnitId::A2,
                class: OpClass::A,
                srcs: vec![vec![Port::Unit(UnitId::S)], sel4(&[])],
            });
            v
        }
        PatchClass::LocusSfu => {
            // Two generic slots (depth-2 chain); slot i can consume the
            // inputs and any earlier slot. Each does A, S or M.
            (0..2u8)
                .map(|i| {
                    let mut choices = any_in();
                    for j in 0..i {
                        choices.push(Port::Unit(UnitId::L(j)));
                    }
                    UnitSpec {
                        id: UnitId::L(i),
                        // Class is a wildcard for LOCUS; the mapper treats
                        // `A` here as "any non-T class".
                        class: OpClass::A,
                        srcs: vec![choices.clone(), choices],
                    }
                })
                .collect()
        }
    }
}

/// The unit whose result is wired to `out0` (stage-2 result).
#[must_use]
pub fn out0_unit(class: PatchClass) -> UnitId {
    match class {
        PatchClass::AtMa | PatchClass::AtSa => UnitId::A2,
        PatchClass::AtAs => UnitId::S,
        PatchClass::LocusSfu => UnitId::L(1),
    }
}

/// The unit whose result is wired to `out1`.
#[must_use]
pub fn out1_unit(class: PatchClass) -> UnitId {
    match class {
        PatchClass::LocusSfu => UnitId::L(0),
        _ => UnitId::T1,
    }
}

/// Whether this class supports local-memory (`T`) operations in custom
/// instructions — the decisive LOCUS limitation in the paper (§VI-C).
#[must_use]
pub fn supports_memory(class: PatchClass) -> bool {
    class != PatchClass::LocusSfu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_topological() {
        for class in [
            PatchClass::AtMa,
            PatchClass::AtAs,
            PatchClass::AtSa,
            PatchClass::LocusSfu,
        ] {
            let units = patch_shape(class);
            for (i, u) in units.iter().enumerate() {
                for srcs in &u.srcs {
                    for p in srcs {
                        if let Port::Unit(dep) = p {
                            let pos = units.iter().position(|v| v.id == *dep).unwrap();
                            assert!(pos < i, "{class}: {dep:?} must precede {:?}", u.id);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stitch_classes_have_lmau() {
        for class in PatchClass::STITCH {
            assert!(supports_memory(class));
            assert!(patch_shape(class).iter().any(|u| u.id == UnitId::T1));
        }
        assert!(!supports_memory(PatchClass::LocusSfu));
    }

    #[test]
    fn output_wiring() {
        assert_eq!(out0_unit(PatchClass::AtMa), UnitId::A2);
        assert_eq!(out0_unit(PatchClass::AtAs), UnitId::S);
        assert_eq!(out0_unit(PatchClass::AtSa), UnitId::A2);
        assert_eq!(out1_unit(PatchClass::AtMa), UnitId::T1);
    }

    #[test]
    fn class_chains_match_names() {
        // {AT-MA}: A,T then M,A
        let u: Vec<_> = patch_shape(PatchClass::AtMa)
            .iter()
            .map(|u| u.class)
            .collect();
        assert_eq!(u, vec![OpClass::A, OpClass::T, OpClass::M, OpClass::A]);
        let u: Vec<_> = patch_shape(PatchClass::AtAs)
            .iter()
            .map(|u| u.class)
            .collect();
        assert_eq!(u, vec![OpClass::A, OpClass::T, OpClass::A, OpClass::S]);
        let u: Vec<_> = patch_shape(PatchClass::AtSa)
            .iter()
            .map(|u| u.class)
            .collect();
        assert_eq!(u, vec![OpClass::A, OpClass::T, OpClass::S, OpClass::A]);
    }
}
