//! # Polymorphic patches — the tiny fusible ISE accelerators of Stitch
//!
//! A *polymorphic patch* (paper §III-A, Fig 3) is a two-stage configurable
//! datapath tightly coupled to a core's pipeline:
//!
//! - **stage 1** is common to all three classes: an ALU (`A1`) followed by
//!   the local-memory access unit (`T1`, the LMAU) — physically a 2×1
//!   multiplexer on the scratchpad port, so `T1` either passes the ALU
//!   result through or replaces it with the loaded word;
//! - **stage 2** differs per class: `{AT-MA}` has a multiplier feeding an
//!   ALU, `{AT-AS}` an ALU feeding a shifter, and `{AT-SA}` a shifter
//!   feeding an ALU.
//!
//! Each patch takes up to four input operands and produces two outputs
//! (`out0` = stage-2 result, `out1` = LMAU result), configured by a 19-bit
//! control word carried by the two-word custom instruction
//! ([`control::ControlWord`]).
//!
//! Two patches can be **fused** over the compiler-scheduled inter-patch NoC
//! into a virtual accelerator executing a larger pattern in a single cycle;
//! [`exec::eval_fused`] implements the data flow (the first patch's outputs
//! arrive as the second patch's `in0`/`in1`, original `in2`/`in3` ride
//! along on the 4-word link) and [`timing`] validates the combinational
//! path against the 5 ns clock using the paper's Table IV delays.
//!
//! The [`shape`] module exposes each class's structural description
//! (units, operand-source choices, output wiring) so the compiler's mapper
//! can place dataflow-graph nodes onto patch units and synthesize control
//! words. The LOCUS baseline's conventional special functional unit (an
//! op-chain accelerator *without* LMAU, so no load/store inside custom
//! instructions, and without fusion) is modelled alongside as
//! [`PatchClass::LocusSfu`].

pub mod control;
pub mod exec;
pub mod shape;
pub mod timing;

pub use control::{
    AtAsControl, AtMaControl, AtSaControl, ControlWord, LocusControl, LocusOp, Sel4, Stage1, T1Mode,
};
pub use exec::{eval_fused, eval_single, software_cycles, MapSpm, PatchOutput, SpmPort};
pub use shape::{patch_shape, Port, UnitId, UnitSpec};
pub use stitch_isa::custom::PatchClass;
pub use timing::{
    fused_delay_ns, fused_path_legal, patch_area_um2, patch_delay_ns, single_delay_ns,
    CLOCK_PERIOD_NS, HOP_WIRE_DELAY_NS, MAX_FUSED_HOPS, SWITCH_DELAY_NS,
};

use std::fmt;

/// Errors arising from control-word construction or evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// A packed control word does not decode for the given class.
    BadControl {
        /// The class attempted.
        class: PatchClass,
        /// Raw control bits.
        bits: u32,
        /// Reason.
        reason: &'static str,
    },
    /// The class/control combination is inconsistent (e.g. a `{AT-AS}`
    /// control word handed to an `{AT-MA}` patch).
    ClassMismatch {
        /// Class the control word was built for.
        expected: PatchClass,
        /// Class it was used with.
        got: PatchClass,
    },
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::BadControl {
                class,
                bits,
                reason,
            } => {
                write!(f, "invalid control word {bits:#07x} for {class}: {reason}")
            }
            PatchError::ClassMismatch { expected, got } => {
                write!(f, "control word for {expected} used with {got} patch")
            }
        }
    }
}

impl std::error::Error for PatchError {}
