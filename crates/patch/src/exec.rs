//! Functional evaluation of (possibly fused) patches.

use crate::control::{AtAsControl, AtMaControl, AtSaControl, ControlWord, Sel4, T1Mode};
use std::collections::HashMap;
use stitch_isa::op::AluOp;

/// Scratchpad port used by the LMAU during custom-instruction execution.
///
/// Addresses are byte offsets within the executing tile's SPM window.
pub trait SpmPort {
    /// Loads the word at `offset`.
    fn load(&mut self, offset: u32) -> u32;
    /// Stores `value` at `offset`.
    fn store(&mut self, offset: u32, value: u32);
}

/// A simple in-memory [`SpmPort`] for tests and the compiler's speedup
/// estimation.
#[derive(Debug, Clone, Default)]
pub struct MapSpm {
    words: HashMap<u32, u32>,
}

impl MapSpm {
    /// Creates an empty scratchpad.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-populates a word (word-aligned byte offset).
    pub fn set(&mut self, offset: u32, value: u32) {
        self.words.insert(offset & !3, value);
    }

    /// Reads back a word without counting as an access.
    #[must_use]
    pub fn get(&self, offset: u32) -> u32 {
        self.words.get(&(offset & !3)).copied().unwrap_or(0)
    }
}

impl SpmPort for MapSpm {
    fn load(&mut self, offset: u32) -> u32 {
        self.get(offset)
    }

    fn store(&mut self, offset: u32, value: u32) {
        self.set(offset, value);
    }
}

/// The two 32-bit results of a patch evaluation.
///
/// `out0` is the stage-2 result; `out1` is the LMAU (`T1`) output — the
/// loaded value for `T1Mode::Load`, otherwise the stage-1 ALU result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PatchOutput {
    /// Stage-2 result.
    pub out0: u32,
    /// LMAU result.
    pub out1: u32,
}

struct Stage1Out {
    a1: u32,
    t1: u32,
}

fn run_stage1(c: &crate::control::Stage1, ins: [u32; 4], spm: &mut dyn SpmPort) -> Stage1Out {
    let a1 = c
        .a1_op
        .eval(ins[c.a1_src1 as usize], ins[c.a1_src2 as usize]);
    let t1 = match c.t1 {
        T1Mode::Bypass => a1,
        T1Mode::Load => spm.load(a1),
        T1Mode::Store => {
            spm.store(a1, ins[2]);
            a1
        }
    };
    Stage1Out { a1, t1 }
}

fn sel4(sel: Sel4, s1: &Stage1Out, ins: [u32; 4]) -> u32 {
    match sel {
        Sel4::A1 => s1.a1,
        Sel4::T1 => s1.t1,
        Sel4::In2 => ins[2],
        Sel4::In3 => ins[3],
    }
}

fn eval_atma(c: &AtMaControl, ins: [u32; 4], spm: &mut dyn SpmPort) -> PatchOutput {
    let s1 = run_stage1(&c.s1, ins, spm);
    let product = AluOp::Mul.eval(sel4(c.m_src1, &s1, ins), sel4(c.m_src2, &s1, ins));
    let a2_src1 = if c.a2_takes_a1 { s1.a1 } else { product };
    let out0 = c.a2_op.eval(a2_src1, sel4(c.a2_src2, &s1, ins));
    PatchOutput { out0, out1: s1.t1 }
}

fn eval_atas(c: &AtAsControl, ins: [u32; 4], spm: &mut dyn SpmPort) -> PatchOutput {
    let s1 = run_stage1(&c.s1, ins, spm);
    let a2 = c
        .a2_op
        .eval(sel4(c.a2_src1, &s1, ins), sel4(c.a2_src2, &s1, ins));
    let out0 = match c.s_op {
        Some(op) => op.eval(a2, if c.s_amt_in3 { ins[3] } else { ins[2] }),
        None => a2,
    };
    PatchOutput { out0, out1: s1.t1 }
}

fn eval_atsa(c: &AtSaControl, ins: [u32; 4], spm: &mut dyn SpmPort) -> PatchOutput {
    let s1 = run_stage1(&c.s1, ins, spm);
    let s_in = sel4(c.s_in, &s1, ins);
    let shifted = match c.s_op {
        Some(op) => op.eval(s_in, if c.s_amt_in3 { ins[3] } else { ins[2] }),
        None => s_in,
    };
    let out0 = c.a2_op.eval(shifted, sel4(c.a2_src2, &s1, ins));
    PatchOutput { out0, out1: s1.t1 }
}

fn eval_locus(c: &crate::control::LocusControl, ins: [u32; 4]) -> PatchOutput {
    let mut vals: Vec<u32> = ins.to_vec();
    for op in &c.ops {
        let a = vals[op.src1 as usize];
        let b = vals[op.src2 as usize];
        vals.push(op.op.eval(a, b));
    }
    PatchOutput {
        // `vals` starts with the four inputs, so a last element always
        // exists; `unwrap_or_default` keeps the path panic-free anyway.
        out0: vals.last().copied().unwrap_or_default(),
        out1: vals.get(4).copied().unwrap_or(0),
    }
}

/// Evaluates one patch with the given control word.
///
/// The four `ins` words are the register-file operands of the custom
/// instruction (unused slots are zero). The LOCUS SFU ignores `spm`.
pub fn eval_single(control: &ControlWord, ins: [u32; 4], spm: &mut dyn SpmPort) -> PatchOutput {
    match control {
        ControlWord::AtMa(c) => eval_atma(c, ins, spm),
        ControlWord::AtAs(c) => eval_atas(c, ins, spm),
        ControlWord::AtSa(c) => eval_atsa(c, ins, spm),
        ControlWord::Locus(c) => eval_locus(c, ins),
    }
}

/// Evaluates a fused pair of patches (paper Fig 4(e), Fig 5).
///
/// The 166-bit inter-patch link carries four data words. The first patch
/// consumes the original operands and replaces the first two words with
/// its outputs; the second patch therefore sees
/// `[p1.out0, p1.out1, in2, in3]`. The final results travel back to the
/// issuing core. Memory (`T`) operations of either stage address the SPM
/// given in `spm` — the compiler's mapper restricts `T` ops of fused
/// instructions to the first (local) patch so a single SPM is involved
/// (see DESIGN.md, substitution notes).
pub fn eval_fused(
    first: &ControlWord,
    second: &ControlWord,
    ins: [u32; 4],
    spm: &mut dyn SpmPort,
) -> PatchOutput {
    let stage1 = eval_single(first, ins, spm);
    let forwarded = [stage1.out0, stage1.out1, ins[2], ins[3]];
    eval_single(second, forwarded, spm)
}

/// Cycle count of the equivalent W32 *software* sequence for one control
/// word — the cost model of a demoted custom instruction.
///
/// When a patch fails, the runtime falls back to the scalar form the
/// compiler substituted from: one single-cycle ALU op per active ALU or
/// shifter, one single-cycle SPM access for an LMAU load/store, and
/// `mul_latency` cycles for an engaged `{AT-MA}` multiplier. Unused units
/// cost nothing. Values are computed by the same [`eval_single`] /
/// [`eval_fused`] dataflow, so degradation changes cycles, never results.
#[must_use]
pub fn software_cycles(control: &ControlWord, mul_latency: u32) -> u32 {
    let stage1 = |s: &crate::control::Stage1| 1 + u32::from(s.t1 != T1Mode::Bypass);
    match control {
        ControlWord::AtMa(c) => {
            let mul = if c.a2_takes_a1 { 0 } else { mul_latency };
            stage1(&c.s1) + mul + 1
        }
        ControlWord::AtAs(c) => stage1(&c.s1) + 1 + u32::from(c.s_op.is_some()),
        ControlWord::AtSa(c) => stage1(&c.s1) + u32::from(c.s_op.is_some()) + 1,
        ControlWord::Locus(c) => (c.ops.len() as u32).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{LocusControl, LocusOp, Stage1};

    fn ins(a: u32, b: u32, c: u32, d: u32) -> [u32; 4] {
        [a, b, c, d]
    }

    #[test]
    fn atma_mul_add() {
        // out0 = (in0 + in1) ... no: mul(in2, in3) + a1 where a1 = in0+in1.
        let c = AtMaControl {
            s1: Stage1 {
                a1_op: AluOp::Add,
                a1_src1: 0,
                a1_src2: 1,
                t1: T1Mode::Bypass,
            },
            m_src1: Sel4::In2,
            m_src2: Sel4::In3,
            a2_takes_a1: false,
            a2_op: AluOp::Add,
            a2_src2: Sel4::A1,
        };
        let mut spm = MapSpm::new();
        let out = eval_single(&ControlWord::AtMa(c), ins(10, 20, 3, 4), &mut spm);
        assert_eq!(out.out0, 3 * 4 + 30);
        assert_eq!(out.out1, 30);
    }

    #[test]
    fn atma_aa_chain_via_intermediate_connection() {
        // {AA}: a2 = (in0 - in1) ^ in2, multiplier bypassed.
        let c = AtMaControl {
            s1: Stage1 {
                a1_op: AluOp::Sub,
                a1_src1: 0,
                a1_src2: 1,
                t1: T1Mode::Bypass,
            },
            m_src1: Sel4::A1,
            m_src2: Sel4::A1,
            a2_takes_a1: true,
            a2_op: AluOp::Xor,
            a2_src2: Sel4::In2,
        };
        let mut spm = MapSpm::new();
        let out = eval_single(&ControlWord::AtMa(c), ins(9, 4, 0xF0, 0), &mut spm);
        assert_eq!(out.out0, 5 ^ 0xF0);
    }

    #[test]
    fn lmau_load_feeds_stage2() {
        // a1 = in0 + in1 (address); t1 = spm[a1]; out0 = t1 * in2 + 0.
        let mut spm = MapSpm::new();
        spm.set(24, 7);
        let c = AtMaControl {
            s1: Stage1 {
                a1_op: AluOp::Add,
                a1_src1: 0,
                a1_src2: 1,
                t1: T1Mode::Load,
            },
            m_src1: Sel4::T1,
            m_src2: Sel4::In2,
            a2_takes_a1: false,
            a2_op: AluOp::Or,
            a2_src2: Sel4::T1,
        };
        let out = eval_single(&ControlWord::AtMa(c), ins(16, 8, 6, 0), &mut spm);
        assert_eq!(out.out1, 7, "loaded word on out1");
        assert_eq!(out.out0, (7 * 6) | 7);
    }

    #[test]
    fn lmau_store_writes_in2() {
        let mut spm = MapSpm::new();
        let c = AtAsControl {
            s1: Stage1 {
                a1_op: AluOp::Add,
                a1_src1: 0,
                a1_src2: 1,
                t1: T1Mode::Store,
            },
            ..AtAsControl::default()
        };
        let out = eval_single(&ControlWord::AtAs(c), ins(32, 4, 123, 0), &mut spm);
        assert_eq!(spm.get(36), 123);
        assert_eq!(out.out1, 36, "address passes through on store");
    }

    #[test]
    fn atas_add_then_shift() {
        // out0 = (in0 + in1) << in2  (the paper's Fig 4(c) pattern half).
        let c = AtAsControl {
            s1: Stage1::default(),
            a2_op: AluOp::Add,
            a2_src1: Sel4::In2,
            a2_src2: Sel4::In3,
            s_op: Some(AluOp::Sll),
            s_amt_in3: false,
        };
        // Note: a2 uses in2/in3; shift amount from in2 as well.
        let mut spm = MapSpm::new();
        let out = eval_single(&ControlWord::AtAs(c), ins(0, 0, 3, 5), &mut spm);
        assert_eq!(out.out0, (3 + 5) << 3);
    }

    #[test]
    fn atsa_shift_then_add() {
        // out0 = (in2 >> in3... amount in3) + a1 where a1 = in0 & in1.
        let c = AtSaControl {
            s1: Stage1 {
                a1_op: AluOp::And,
                a1_src1: 0,
                a1_src2: 1,
                t1: T1Mode::Bypass,
            },
            s_in: Sel4::In2,
            s_op: Some(AluOp::Srl),
            s_amt_in3: true,
            a2_op: AluOp::Add,
            a2_src2: Sel4::A1,
        };
        let mut spm = MapSpm::new();
        let out = eval_single(&ControlWord::AtSa(c), ins(0xFF, 0x0F, 64, 2), &mut spm);
        assert_eq!(out.out0, (64 >> 2) + 0x0F);
    }

    #[test]
    fn locus_chain() {
        // (in0 + in1) << in2
        let c = ControlWord::Locus(LocusControl {
            ops: vec![
                LocusOp {
                    op: AluOp::Add,
                    src1: 0,
                    src2: 1,
                },
                LocusOp {
                    op: AluOp::Sll,
                    src1: 4,
                    src2: 2,
                },
            ],
        });
        let mut spm = MapSpm::new();
        let out = eval_single(&c, ins(2, 3, 4, 5), &mut spm);
        assert_eq!(out.out0, (2 + 3) << 4);
        assert_eq!(out.out1, 5, "first micro-op result on out1");
    }

    #[test]
    fn fused_forwarding() {
        // First patch computes (in0 + in1) on out0 (pass-through stage 2);
        // second patch multiplies that by the ride-along in2.
        let first = ControlWord::AtMa(AtMaControl {
            s1: Stage1 {
                a1_op: AluOp::Add,
                a1_src1: 0,
                a1_src2: 1,
                t1: T1Mode::Bypass,
            },
            ..AtMaControl::default()
        });
        let second = ControlWord::AtMa(AtMaControl {
            s1: Stage1::default(), // a1 = or(in0, in0) = p1.out0
            m_src1: Sel4::A1,
            m_src2: Sel4::In2,
            a2_takes_a1: false,
            a2_op: AluOp::Or,
            a2_src2: Sel4::A1,
        });
        let mut spm = MapSpm::new();
        let out = eval_fused(&first, &second, ins(6, 7, 10, 0), &mut spm);
        assert_eq!(out.out0, (13 * 10) | 13);
    }

    #[test]
    fn fig4e_pattern_single_cycle() {
        // Paper Fig 4: ((a + b) << 2) + ((c - d) >> 1) style pattern split
        // over two {AT-AS} patches: p1 computes (a+b)<<2 via A2+S; p2
        // computes... p2.a1 consumes p1 outputs; p2.A2 adds shifted ride-
        // along. Here: p1.out0 = (in0+in1)<<1 (amount from in2=1);
        // p2: a1 = or(p1out0, p1out0); a2 = a1 + in3; out = a2 (s bypass).
        let p1 = ControlWord::AtAs(AtAsControl {
            s1: Stage1::default(),
            a2_op: AluOp::Add,
            a2_src1: Sel4::In2,
            a2_src2: Sel4::In3,
            s_op: Some(AluOp::Sll),
            s_amt_in3: false,
        });
        // wait: shift amount = in2 which is also operand; use values where
        // that is intended: in2=2 -> (2+5)<<2.
        let p2 = ControlWord::AtAs(AtAsControl {
            s1: Stage1::default(), // passes p1.out0
            a2_op: AluOp::Add,
            a2_src1: Sel4::A1,
            a2_src2: Sel4::In2, // ride-along in2
            s_op: None,
            s_amt_in3: false,
        });
        let mut spm = MapSpm::new();
        let out = eval_fused(&p1, &p2, ins(0, 0, 2, 5), &mut spm);
        assert_eq!(out.out0, ((2 + 5) << 2) + 2);
    }

    #[test]
    fn software_cycles_counts_active_units() {
        const MUL: u32 = 8;
        // Full {AT-MA}: stage-1 ALU + load + multiply + stage-2 ALU.
        let full = ControlWord::AtMa(AtMaControl {
            s1: Stage1 {
                a1_op: AluOp::Add,
                a1_src1: 0,
                a1_src2: 1,
                t1: T1Mode::Load,
            },
            a2_takes_a1: false,
            ..AtMaControl::default()
        });
        assert_eq!(software_cycles(&full, MUL), 2 + MUL + 1);
        // Multiplier bypassed ({AA} pattern): no mul charge.
        let aa = ControlWord::AtMa(AtMaControl {
            a2_takes_a1: true,
            ..AtMaControl::default()
        });
        assert_eq!(software_cycles(&aa, MUL), 1 + 1);
        // {AT-AS} without shifter engaged.
        let atas = ControlWord::AtAs(AtAsControl::default());
        assert_eq!(software_cycles(&atas, MUL), 2);
        // LOCUS chain: one cycle per micro-op.
        let locus = ControlWord::Locus(LocusControl {
            ops: vec![
                LocusOp {
                    op: AluOp::Add,
                    src1: 0,
                    src2: 1,
                },
                LocusOp {
                    op: AluOp::Sll,
                    src1: 4,
                    src2: 2,
                },
            ],
        });
        assert_eq!(software_cycles(&locus, MUL), 2);
        // A demoted CI is never cheaper than the 1-cycle patch it replaces.
        for cw in [&full, &aa, &atas, &locus] {
            assert!(software_cycles(cw, MUL) >= 1);
        }
    }
}
