//! `stitch-fuzz` — seeded fuzzing driver.
//!
//! ```text
//! stitch-fuzz [<target>|all] [--seeds N] [--base B] [--write-corpus]
//! ```
//!
//! Runs each requested target over seeds `B..B+N` (defaults honour the
//! `STITCH_FUZZ_SEED_BASE` / `STITCH_FUZZ_SEEDS` env knobs), printing
//! an outcome histogram and, for the coverage-fed differential target,
//! the translator-block coverage curve. With `--write-corpus` the run
//! also regenerates the checked-in minimized corpus under
//! `crates/fuzz/corpus/<target>/`.
//!
//! Exit code 0 means "no findings": every input either simulated under
//! its budget or came back as a typed error, and the differential
//! oracles held. Findings abort with a panic that names the seed.

use std::collections::BTreeMap;
use std::process::ExitCode;

use stitch_fuzz::{corpus, gen, seed_base, seed_count, targets, CoverageMap, Target, TARGETS};

struct Options {
    targets: Vec<Target>,
    seeds: u64,
    base: u64,
    write_corpus: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        targets: TARGETS.to_vec(),
        seeds: seed_count(),
        base: seed_base(),
        write_corpus: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "all" => opts.targets = TARGETS.to_vec(),
            "--seeds" => {
                let v = args.next().ok_or("--seeds needs a value")?;
                opts.seeds = v.parse().map_err(|_| format!("bad --seeds {v}"))?;
            }
            "--base" => {
                let v = args.next().ok_or("--base needs a value")?;
                opts.base = v.parse().map_err(|_| format!("bad --base {v}"))?;
            }
            "--write-corpus" => opts.write_corpus = true,
            name => match Target::from_name(name) {
                Some(t) => opts.targets = vec![t],
                None => return Err(format!("unknown target or flag '{name}'")),
            },
        }
    }
    Ok(opts)
}

/// Greedily shrinks a word image while `keeps` still accepts it.
fn minimize_words(words: Vec<u32>, keeps: impl Fn(&[u32]) -> bool) -> Vec<u32> {
    let mut best = words;
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 {
        let mut i = 0;
        while i < best.len() && best.len() > 1 {
            let mut trial = best.clone();
            let end = (i + chunk).min(trial.len());
            trial.drain(i..end);
            if !trial.is_empty() && keeps(&trial) {
                best = trial;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    best
}

fn histogram_line(hist: &BTreeMap<&'static str, u64>) -> String {
    hist.iter()
        .map(|(k, v)| format!("{k}:{v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn run_target(target: Target, opts: &Options) -> std::io::Result<()> {
    let mut hist: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut harvest: Vec<(String, Vec<u8>)> = Vec::new();
    let mut seen_classes: BTreeMap<&'static str, Vec<u8>> = BTreeMap::new();
    let mut coverage = CoverageMap::new();

    for i in 0..opts.seeds {
        let seed = opts.base + i;
        match target {
            Target::Decode => {
                // Re-derive the input exactly as run_decode does so the
                // smallest representative of each class can be kept.
                let class = targets::run_decode(seed);
                *hist.entry(class).or_default() += 1;
                if opts.write_corpus {
                    let bytes = decode_input(seed);
                    let replace = seen_classes
                        .get(class)
                        .is_none_or(|old| bytes.len() < old.len());
                    if replace {
                        seen_classes.insert(class, bytes);
                    }
                }
            }
            Target::Differential => {
                let (class, fresh) = targets::run_differential(seed, &mut coverage);
                *hist.entry(class).or_default() += 1;
                if let Some(words) = fresh {
                    if opts.write_corpus {
                        let minimized = minimize_words(words, |w| {
                            let bytes = gen::words_to_bytes(w);
                            targets::replay_differential(&bytes) == class
                        });
                        harvest.push((format!("cov-{class}"), gen::words_to_bytes(&minimized)));
                    }
                }
            }
            Target::Faults => {
                let class = targets::run_faults(seed);
                *hist.entry(class).or_default() += 1;
                if opts.write_corpus && !seen_classes.contains_key(class) {
                    // Fault corpus entries are the seeds themselves:
                    // the plan and pipeline both re-derive from it.
                    seen_classes.insert(class, seed.to_le_bytes().to_vec());
                }
            }
            Target::Snapshot => {
                let (class, pristine) = targets::run_snapshot(seed);
                *hist.entry(class).or_default() += 1;
                if opts.write_corpus {
                    let mut rng = stitch_sim::SimRng::new(seed);
                    for _ in 0..8 {
                        let mut blob = pristine.clone();
                        gen::mutate_bytes(&mut blob, &mut rng);
                        let class = targets::replay_snapshot(&blob);
                        let replace = seen_classes
                            .get(class)
                            .is_none_or(|old| blob.len() < old.len());
                        if replace {
                            seen_classes.insert(class, blob);
                        }
                    }
                    // The pristine blob replays on a fresh chip, which
                    // rejects workload core state — classify it by what
                    // the replay actually reports rather than assuming.
                    let class = targets::replay_snapshot(&pristine);
                    let replace = seen_classes
                        .get(class)
                        .is_none_or(|old| pristine.len() < old.len());
                    if replace {
                        seen_classes.insert(class, pristine);
                    }
                }
            }
            Target::Json => {
                let class = targets::run_json(seed);
                *hist.entry(class).or_default() += 1;
                if opts.write_corpus {
                    let mut rng = stitch_sim::SimRng::new(seed);
                    let doc = gen::random_json(&mut rng);
                    let mut bytes = doc.into_bytes();
                    for _ in 0..4 {
                        gen::mutate_bytes(&mut bytes, &mut rng);
                        let class = targets::replay_json(&bytes);
                        let replace = seen_classes
                            .get(class)
                            .is_none_or(|old| bytes.len() < old.len());
                        if replace {
                            seen_classes.insert(class, bytes.clone());
                        }
                    }
                }
            }
        }
    }

    let extra = match target {
        Target::Differential => format!(" coverage:{}", coverage.len()),
        _ => String::new(),
    };
    println!(
        "{:>12}: {} cases ok — {}{}",
        target.name(),
        opts.seeds,
        histogram_line(&hist),
        extra
    );

    if opts.write_corpus {
        if target == Target::Snapshot {
            // A fresh-chip checkpoint is the one blob the bytes-only
            // replay can restore end-to-end; pin that path too.
            let blob = stitch_sim::Chip::new(stitch_sim::ChipConfig::stitch_16())
                .checkpoint()
                .encode();
            let class = targets::replay_snapshot(&blob);
            let replace = seen_classes
                .get(class)
                .is_none_or(|old| blob.len() < old.len());
            if replace {
                seen_classes.insert(class, blob);
            }
        }
        for (class, bytes) in seen_classes {
            harvest.push((class.to_owned(), bytes));
        }
        harvest.sort();
        harvest.dedup();
        corpus::store(target, &harvest)?;
        println!(
            "{:>12}: wrote {} corpus inputs to {}",
            target.name(),
            harvest.len(),
            corpus::corpus_dir(target).display()
        );
    }
    Ok(())
}

/// Rebuilds the exact input `targets::run_decode` derives from `seed`.
fn decode_input(seed: u64) -> Vec<u8> {
    let mut rng = stitch_sim::SimRng::new(seed);
    let words = if rng.chance(1, 2) {
        let len = 1 + rng.index(64);
        rng.words(len)
    } else {
        let program = gen::random_program(&mut rng);
        let mut words = stitch_isa::encode_program(&program.instrs).expect("generator encodes");
        gen::mutate_words(&mut words, &mut rng);
        words
    };
    let bytes = gen::words_to_bytes(&words);
    let class = targets::replay_decode(&bytes);
    let minimized = minimize_words(gen::bytes_to_words(&bytes), |w| {
        targets::replay_decode(&gen::words_to_bytes(w)) == class
    });
    gen::words_to_bytes(&minimized)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("stitch-fuzz: {e}");
            eprintln!("usage: stitch-fuzz [decode|differential|faults|snapshot|json|all] [--seeds N] [--base B] [--write-corpus]");
            return ExitCode::FAILURE;
        }
    };
    for target in &opts.targets {
        if let Err(e) = run_target(*target, &opts) {
            eprintln!("stitch-fuzz: {}: {e}", target.name());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
