//! The five fuzz targets.
//!
//! Each target is a pure function of a seed (plus, for the coverage-fed
//! differential target, the accumulated [`CoverageMap`]): it builds an
//! input, drives it through the hardened surface, and *returns a
//! classification string* instead of panicking. Any panic that escapes
//! a target is, by construction, a finding.
//!
//! | target | surface | oracle |
//! |---|---|---|
//! | `decode` | raw words → decode → verify → sim | typed errors, budgeted run |
//! | `differential` | mutated-but-verified programs | `run` == `run_reference` |
//! | `faults` | random pipelines × random `FaultPlan`s | `run` == `run_reference` |
//! | `snapshot` | truncated / bit-flipped snapshot blobs | typed `SnapshotError` |
//! | `json` | mutated JSON trace documents | typed parse error, depth cap |

use std::collections::HashMap;

use stitch_isa::{decode_program, encode_program, CiTable, Program};
use stitch_sim::{
    Chip, ChipConfig, ChipSnapshot, FaultPlan, FaultSpace, RunBudget, RunSummary, SimError, SimRng,
    TileId,
};
use stitch_trace::{JsonValue, JSON_MAX_DEPTH};
use stitch_verify::check_program;

use crate::coverage::CoverageMap;
use crate::gen;

/// The named fuzz targets, in the order the driver runs them.
pub const TARGETS: [Target; 5] = [
    Target::Decode,
    Target::Differential,
    Target::Faults,
    Target::Snapshot,
    Target::Json,
];

/// One fuzz target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Raw word images through decode → verify → budgeted sim.
    Decode,
    /// Mutated-but-verified programs, differential across both engines.
    Differential,
    /// Random fault plans over pipelines, differential across engines.
    Faults,
    /// Truncated / corrupted snapshot blobs through the codec.
    Snapshot,
    /// Hostile JSON through the trace-viewer parser.
    Json,
}

impl Target {
    /// Stable lowercase name (CLI argument and corpus directory).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Target::Decode => "decode",
            Target::Differential => "differential",
            Target::Faults => "faults",
            Target::Snapshot => "snapshot",
            Target::Json => "json",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn from_name(s: &str) -> Option<Target> {
        TARGETS.into_iter().find(|t| t.name() == s)
    }
}

/// The sandbox every fuzzed guest runs under: generous enough for any
/// generated workload, tight enough that a hostile mutant can neither
/// spin forever nor exhaust host memory. Identical caps on both
/// engines keep the differential oracle exact.
#[must_use]
pub fn sandbox_budget() -> RunBudget {
    RunBudget {
        cycles: Some(200_000),
        memory_pages: Some(4096),
        messages: Some(10_000),
        in_flight_messages: Some(1024),
        trace_events: None,
        snapshot_bytes: None,
    }
}

/// Wraps a bare instruction vector the way a host loader would: no
/// data segments, no CI descriptors, no symbols — exactly what decoding
/// an untrusted word image yields.
pub fn program_from_words(words: &[u32]) -> Result<Program, stitch_isa::IsaError> {
    Ok(Program {
        instrs: decode_program(words)?,
        data: Vec::new(),
        ci_table: CiTable::default(),
        symbols: HashMap::new(),
    })
}

fn classify(outcome: &Result<RunSummary, SimError>) -> &'static str {
    match outcome {
        Ok(_) => "sim-ok",
        Err(SimError::Timeout { .. }) => "sim-timeout",
        Err(SimError::Deadlock { .. }) => "sim-deadlock",
        Err(SimError::Faulted { .. }) => "sim-faulted",
        Err(SimError::BudgetExhausted { .. }) => "sim-budget",
        Err(SimError::Cpu { .. }) => "sim-cpu",
        Err(_) => "sim-err",
    }
}

/// The differential targets' budget: like [`sandbox_budget`] but with
/// no page cap, because a `memory_pages` cap switches the translated
/// engine off (windows execute stores inline, which would blur the
/// crossing cycle) and the coverage signal lives in the translator's
/// block cache. Allocation stays bounded regardless: a store resolves
/// at most one new page per cycle, so the cycle cap is also a page cap.
#[must_use]
pub fn differential_budget() -> RunBudget {
    RunBudget {
        memory_pages: None,
        ..sandbox_budget()
    }
}

/// Runs `programs` on a fresh chip under `budget` with the translated
/// engine.
fn budgeted_run(
    programs: &[(TileId, Program)],
    budget: RunBudget,
) -> (Chip, Result<RunSummary, SimError>) {
    let mut chip = Chip::new(ChipConfig::stitch_16());
    chip.set_budget(budget);
    for (tile, p) in programs {
        chip.load_program(*tile, p)
            .expect("generator tiles in range");
    }
    let r = chip.run(u64::MAX);
    (chip, r)
}

/// Same workload through the naive reference loop.
fn budgeted_reference(
    programs: &[(TileId, Program)],
    budget: RunBudget,
) -> Result<RunSummary, SimError> {
    let mut chip = Chip::new(ChipConfig::stitch_16());
    chip.set_budget(budget);
    for (tile, p) in programs {
        chip.load_program(*tile, p)
            .expect("generator tiles in range");
    }
    chip.run_reference(u64::MAX)
}

/// Replays a decode-target input: an arbitrary little-endian word
/// image through decode → verify → budgeted sim. Returns the
/// classification; never panics.
pub fn replay_decode(bytes: &[u8]) -> &'static str {
    let words = gen::bytes_to_words(bytes);
    let Ok(program) = program_from_words(&words) else {
        return "decode-err";
    };
    // The static verifier runs on everything that decodes; its verdict
    // is recorded but deliberately NOT a gate — the simulator itself
    // must survive unverified programs, since a hostile host can skip
    // the verifier entirely.
    let clean = check_program(&program).is_clean();
    let (_, outcome) = budgeted_run(&[(TileId(0), program)], sandbox_budget());
    if clean {
        classify(&outcome)
    } else if outcome.is_ok() {
        "unverified-sim-ok"
    } else {
        "unverified-sim-err"
    }
}

/// Decode target: random word soup half the time, a mutated valid
/// encoding the other half (mutants reach much deeper than noise).
pub fn run_decode(seed: u64) -> &'static str {
    let mut rng = SimRng::new(seed);
    let words = if rng.chance(1, 2) {
        let len = 1 + rng.index(64);
        rng.words(len)
    } else {
        let program = gen::random_program(&mut rng);
        let mut words = encode_program(&program.instrs).expect("generator encodes");
        gen::mutate_words(&mut words, &mut rng);
        words
    };
    replay_decode(&gen::words_to_bytes(&words))
}

/// Replays a differential-target input: a word image that must decode
/// and verify cleanly, then produce bit-identical outcomes on both
/// engines. Panics on divergence (that is the oracle).
pub fn replay_differential(bytes: &[u8]) -> &'static str {
    let words = gen::bytes_to_words(bytes);
    let Ok(program) = program_from_words(&words) else {
        return "decode-err";
    };
    if !check_program(&program).is_clean() {
        return "verify-reject";
    }
    let programs = [(TileId(0), program)];
    let (_, fast) = budgeted_run(&programs, differential_budget());
    let reference = budgeted_reference(&programs, differential_budget());
    assert_eq!(fast, reference, "engine divergence on verified mutant");
    classify(&fast)
}

/// Differential target with coverage feedback: mutate a valid program,
/// keep the mutant when it survives verification, and report whether
/// the run lit translator blocks no earlier input reached. Returns
/// `(classification, words-if-new-coverage)`.
pub fn run_differential(seed: u64, coverage: &mut CoverageMap) -> (&'static str, Option<Vec<u32>>) {
    let mut rng = SimRng::new(seed);
    let program = gen::random_program(&mut rng);
    let mut words = encode_program(&program.instrs).expect("generator encodes");
    gen::mutate_words(&mut words, &mut rng);

    // Fall back to the unmutated program when the mutant fails the
    // decode → verify gate, so every seed exercises the differential.
    let candidate = program_from_words(&words)
        .ok()
        .filter(|p| check_program(p).is_clean())
        .unwrap_or(program);
    let words = encode_program(&candidate.instrs).expect("candidate encodes");

    let programs = [(TileId(0), candidate)];
    let (chip, fast) = budgeted_run(&programs, differential_budget());
    let reference = budgeted_reference(&programs, differential_budget());
    assert_eq!(
        fast, reference,
        "seed {seed}: engine divergence on verified program"
    );
    let fresh = coverage.absorb(&chip);
    (classify(&fast), (fresh > 0).then_some(words))
}

/// Fault-plan differential: a random pipeline under a random plan must
/// behave bit-identically on both engines — including every typed
/// error path the plan can force.
pub fn run_faults(seed: u64) -> &'static str {
    let mut rng = SimRng::new(seed);
    let programs = gen::random_pipeline(&mut rng);
    // Short horizon: the generated pipelines drain within a couple of
    // thousand cycles, so a longer horizon would schedule most events
    // after the workload already halted.
    let space = FaultSpace {
        tiles: 16,
        horizon: 2_000,
        max_events: 4,
        allow_transient: true,
        ..FaultSpace::default()
    };
    let plan = FaultPlan::random(seed, &space);

    let mut fast = Chip::new(ChipConfig::stitch_16());
    let mut reference = Chip::new(ChipConfig::stitch_16());
    fast.set_budget(sandbox_budget());
    reference.set_budget(sandbox_budget());
    for (tile, p) in &programs {
        fast.load_program(*tile, p)
            .expect("pipeline tiles in range");
        reference
            .load_program(*tile, p)
            .expect("pipeline tiles in range");
    }
    fast.set_fault_plan(plan.clone());
    reference.set_fault_plan(plan);
    let a = fast.run(u64::MAX);
    let b = reference.run_reference(u64::MAX);
    assert_eq!(a, b, "seed {seed}: engine divergence under fault plan");
    classify(&a)
}

/// Replays a snapshot-target input: an arbitrary blob through the
/// codec, and — when it decodes — through `Chip::restore` into a
/// fresh chip, since a structurally valid blob can still disagree
/// with the chip it lands on. Returns `snap-ok` / `snap-restore-err`
/// / `snap-err`; never panics.
pub fn replay_snapshot(bytes: &[u8]) -> &'static str {
    match ChipSnapshot::decode(bytes) {
        Ok(snap) => {
            let mut chip = Chip::new(ChipConfig::stitch_16());
            match chip.restore(&snap) {
                Ok(()) => "snap-ok",
                Err(_) => "snap-restore-err",
            }
        }
        Err(_) => "snap-err",
    }
}

/// Snapshot codec target: checkpoint a mid-flight chip, then drive
/// progressively nastier corruptions of the blob through decode *and*
/// `Chip::restore` on a twin chip carrying the same workload — the
/// real restore path. The pristine blob must round-trip and restore;
/// every corruption must come back as a typed `SnapshotError` or a
/// coherent restored state, never a panic. Returns the blob for
/// corpus harvesting.
pub fn run_snapshot(seed: u64) -> (&'static str, Vec<u8>) {
    let mut rng = SimRng::new(seed);
    let programs = gen::random_pipeline(&mut rng);
    let mut chip = Chip::new(ChipConfig::stitch_16());
    // A small cycle cap parks the run mid-flight, with traffic and
    // dirty pages in the snapshot.
    chip.set_budget(RunBudget {
        cycles: Some(50 + rng.below(2000)),
        ..RunBudget::unlimited()
    });
    for (tile, p) in &programs {
        chip.load_program(*tile, p)
            .expect("pipeline tiles in range");
    }
    let _ = chip.run(u64::MAX);
    let pristine = chip.checkpoint().encode();
    let snap = match ChipSnapshot::decode(&pristine) {
        Ok(s) => s,
        Err(e) => panic!("seed {seed}: pristine snapshot failed to round-trip: {e:?}"),
    };

    // A twin with the same workload loaded is the legitimate restore
    // target; the pristine blob must land cleanly on it.
    let mut twin = Chip::new(ChipConfig::stitch_16());
    for (tile, p) in &programs {
        twin.load_program(*tile, p)
            .expect("pipeline tiles in range");
    }
    twin.restore(&snap)
        .unwrap_or_else(|e| panic!("seed {seed}: pristine snapshot failed to restore: {e:?}"));

    let mut last = "snap-ok";
    for _ in 0..8 {
        let mut blob = pristine.clone();
        gen::mutate_bytes(&mut blob, &mut rng);
        last = match ChipSnapshot::decode(&blob) {
            Ok(s) => match twin.restore(&s) {
                Ok(()) => "snap-ok",
                Err(_) => "snap-restore-err",
            },
            Err(_) => "snap-err",
        };
    }
    // Whatever the last restore left behind, the chip must still
    // simulate without panicking under the sandbox budget.
    twin.set_budget(sandbox_budget());
    let _ = twin.run(u64::MAX);
    // Raw noise, too — the decoder sees fully attacker-controlled
    // bytes, and the bytes-only replay path (fresh chip) must hold.
    let noise: Vec<u8> = (0..rng.index(256)).map(|_| rng.next_u32() as u8).collect();
    let _ = replay_snapshot(&noise);
    let _ = replay_snapshot(&pristine);
    (last, pristine)
}

/// Replays a JSON-target input. Returns `json-ok` / `json-err`; never
/// panics regardless of input bytes.
#[must_use]
pub fn replay_json(bytes: &[u8]) -> &'static str {
    let text = String::from_utf8_lossy(bytes);
    match JsonValue::parse(&text) {
        Ok(_) => "json-ok",
        Err(_) => "json-err",
    }
}

/// JSON parser target: valid documents must parse, mutants must come
/// back typed, and nesting past the documented cap must be rejected
/// rather than overflow the stack.
pub fn run_json(seed: u64) -> &'static str {
    let mut rng = SimRng::new(seed);
    let doc = gen::random_json(&mut rng);
    assert!(
        JsonValue::parse(&doc).is_ok(),
        "seed {seed}: generator emitted invalid JSON: {doc}"
    );

    let mut bytes = doc.into_bytes();
    for _ in 0..4 {
        gen::mutate_bytes(&mut bytes, &mut rng);
        let _ = replay_json(&bytes);
    }

    // Hostile nesting: one level past the cap must fail cleanly.
    let depth = JSON_MAX_DEPTH + 1 + rng.index(64);
    let mut deep = String::new();
    for _ in 0..depth {
        deep.push('[');
    }
    assert!(
        JsonValue::parse(&deep).is_err(),
        "seed {seed}: unterminated deep nesting must be rejected"
    );
    let balanced: String = "[".repeat(depth) + &"]".repeat(depth);
    assert!(
        JsonValue::parse(&balanced).is_err(),
        "seed {seed}: nesting past MAX_DEPTH must be rejected"
    );
    replay_json(&bytes)
}
