//! Coverage-guided fuzzing harness for untrusted guest inputs (ISSUE 7).
//!
//! The simulator's contract for hostile inputs is: every byte stream a
//! host could hand it — W32 word images, snapshot blobs, JSON trace
//! documents — either round-trips through the typed error enums
//! (`IsaError`, `SimError`, `SnapshotError`, JSON parse errors) or
//! simulates to completion under a [`stitch_sim::RunBudget`]. Nothing
//! panics, hangs, or allocates without bound.
//!
//! This crate packages that contract as five deterministic fuzz
//! targets (see [`targets`]), a block-coverage feedback signal fed by
//! the micro-op translator's block cache ([`coverage`]), seeded input
//! generators and mutators that need nothing outside the workspace
//! ([`gen`] drives [`stitch_sim::SimRng`]), and a checked-in minimized
//! corpus replayed by unit tests ([`corpus`]).
//!
//! Every case reproduces from a `u64` seed alone:
//!
//! ```text
//! STITCH_FUZZ_SEED_BASE=<seed> STITCH_FUZZ_SEEDS=1 \
//!     cargo test -q -p stitch-fuzz --test targets
//! ```
//!
//! or, interactively, `cargo run -p stitch-fuzz -- <target> --base
//! <seed> --seeds 1`.

pub mod corpus;
pub mod coverage;
pub mod gen;
pub mod targets;

pub use coverage::CoverageMap;
pub use targets::{Target, TARGETS};

/// First seed of a fuzzing sweep. Override with
/// `STITCH_FUZZ_SEED_BASE`.
#[must_use]
pub fn seed_base() -> u64 {
    std::env::var("STITCH_FUZZ_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xF0_22_07)
}

/// Number of seeds per target in one sweep (the CI floor is 256).
/// Override with `STITCH_FUZZ_SEEDS`.
#[must_use]
pub fn seed_count() -> u64 {
    std::env::var("STITCH_FUZZ_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(256)
}
