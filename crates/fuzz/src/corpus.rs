//! Checked-in minimized corpus.
//!
//! Layout: `crates/fuzz/corpus/<target>/<class>-<n>.bin` — the file
//! name's leading `<class>` (up to the last `-`) is the classification
//! the input must still produce when replayed, which turns the corpus
//! into a set of pinned regression cases. The driver binary
//! (`stitch-fuzz <target> --write-corpus`) regenerates each directory:
//! it keeps one minimal representative per classification (plus, for
//! the differential target, per new-coverage input) and greedily
//! shrinks word images while the classification is preserved.

use std::fs;
use std::path::PathBuf;

use crate::targets::Target;

/// Root of the checked-in corpus (inside the crate, so replay tests
/// find it from `CARGO_MANIFEST_DIR` without configuration).
#[must_use]
pub fn corpus_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Directory holding one target's corpus.
#[must_use]
pub fn corpus_dir(target: Target) -> PathBuf {
    corpus_root().join(target.name())
}

/// Loads a target's corpus as `(expected classification, bytes)`
/// pairs, sorted by file name for determinism. Missing directories
/// yield an empty corpus (the harness still runs seeded sweeps).
#[must_use]
pub fn load(target: Target) -> Vec<(String, Vec<u8>)> {
    let dir = corpus_dir(target);
    let Ok(entries) = fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
        .into_iter()
        .filter_map(|path| {
            let stem = path.file_stem()?.to_str()?.to_owned();
            let class = match stem.rsplit_once('-') {
                Some((class, _)) => class.to_owned(),
                None => stem,
            };
            let bytes = fs::read(&path).ok()?;
            Some((class, bytes))
        })
        .collect()
}

/// Writes a freshly minimized corpus for one target, replacing the
/// directory's previous contents.
pub fn store(target: Target, inputs: &[(String, Vec<u8>)]) -> std::io::Result<()> {
    let dir = corpus_dir(target);
    if dir.exists() {
        fs::remove_dir_all(&dir)?;
    }
    fs::create_dir_all(&dir)?;
    for (n, (class, bytes)) in inputs.iter().enumerate() {
        fs::write(dir.join(format!("{class}-{n}.bin")), bytes)?;
    }
    Ok(())
}
