//! Seeded input generators and mutators.
//!
//! Everything here is a pure function of a [`SimRng`] stream, so any
//! generated input — and any mutant derived from it — reproduces from
//! the seed alone. No external fuzzing engine, no `rand`: the workspace
//! xorshift generator is the only entropy source.

use stitch_isa::op::AluOp;
use stitch_isa::{memmap, Cond, Program, ProgramBuilder, Reg};
use stitch_sim::{SimRng, TileId};

/// Registers the program generator shuffles data through. `R10` is the
/// loop counter and `R12`/`R13` the DRAM/SPM base pointers, so they
/// never appear as a random destination.
const DATA: [Reg; 8] = [
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
];

const CONDS: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

fn reg(rng: &mut SimRng) -> Reg {
    DATA[rng.index(DATA.len())]
}

fn src(rng: &mut SimRng) -> Reg {
    if rng.chance(1, 8) {
        Reg::R0
    } else {
        reg(rng)
    }
}

/// Emits one random loop-body instruction. Memory offsets stay inside
/// the first 1 KiB of the DRAM scratch region / SPM window so accesses
/// always land in mapped memory.
fn random_instr(b: &mut ProgramBuilder, rng: &mut SimRng) {
    match rng.index(8) {
        0 => {
            let op = AluOp::ALL[rng.index(AluOp::ALL.len())];
            b.alu(op, reg(rng), src(rng), src(rng));
        }
        1 => {
            let op = AluOp::ALL[rng.index(AluOp::ALL.len())];
            let imm = rng.below(4096) as i32 - 2048;
            b.alui(op, reg(rng), src(rng), imm);
        }
        2 => {
            b.lui(reg(rng), rng.below(1 << 20) as u32);
        }
        3 => {
            let base = if rng.chance(1, 2) { Reg::R12 } else { Reg::R13 };
            b.lw(reg(rng), base, (rng.index(256) * 4) as i32);
        }
        4 => {
            let base = if rng.chance(1, 2) { Reg::R12 } else { Reg::R13 };
            b.sw(src(rng), base, (rng.index(256) * 4) as i32);
        }
        5 => {
            b.lb(reg(rng), Reg::R12, rng.index(1024) as i32);
        }
        6 => {
            b.sb(src(rng), Reg::R12, rng.index(1024) as i32);
        }
        _ => {
            // Forward branch over one instruction: every condition gets
            // exercised and block shapes stay varied.
            let skip = b.label();
            b.branch(CONDS[rng.index(6)], src(rng), src(rng), skip);
            b.addi(reg(rng), src(rng), rng.below(64) as i32);
            b.bind_once(skip);
        }
    }
}

/// A random, always-terminating single-tile compute program: seeded
/// data registers, a bounded loop over a random instruction mix, and a
/// final `halt`.
#[must_use]
pub fn random_program(rng: &mut SimRng) -> Program {
    let mut b = ProgramBuilder::new();
    for r in DATA {
        b.li(r, rng.below(1 << 16) as i64);
    }
    b.li(Reg::R12, 0x1000);
    b.li(Reg::R13, i64::from(memmap::SPM_BASE));
    b.li(Reg::R10, 1 + rng.below(12) as i64);
    let top = b.bound_label();
    let body = 2 + rng.index(14);
    for _ in 0..body {
        random_instr(&mut b, rng);
    }
    b.addi(Reg::R10, Reg::R10, -1);
    b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
    b.halt();
    b.build().expect("generated program is well formed")
}

/// A random 2–4 tile send/recv chain. The source emits a few short
/// frames, middles bump-and-forward, the sink accumulates. Always
/// terminates fault-free, so hangs under mutation or fault injection
/// are findings, not noise.
#[must_use]
pub fn random_pipeline(rng: &mut SimRng) -> Vec<(TileId, Program)> {
    let k = 2 + rng.index(3);
    let mut tiles: Vec<u8> = (0..16).collect();
    for i in 0..k {
        let j = i + rng.index(16 - i);
        tiles.swap(i, j);
    }
    let chain = &tiles[..k];
    let frames = 1 + rng.below(3) as i64;
    let len = 1 + rng.below(6) as i64;
    let mut programs = Vec::new();

    let mut b = ProgramBuilder::new();
    b.li(Reg::R10, frames);
    b.li(Reg::R1, 0x1000);
    b.li(Reg::R2, 1 + rng.below(1000) as i64);
    b.li(Reg::R3, i64::from(chain[1]));
    b.li(Reg::R4, len);
    let top = b.bound_label();
    for w in 0..len {
        b.sw(Reg::R2, Reg::R1, (w * 4) as i32);
    }
    b.send(Reg::R3, Reg::R1, Reg::R4);
    b.addi(Reg::R2, Reg::R2, 7);
    b.addi(Reg::R10, Reg::R10, -1);
    b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
    b.halt();
    programs.push((TileId(chain[0]), b.build().expect("source")));

    for m in 1..k - 1 {
        let mut b = ProgramBuilder::new();
        b.li(Reg::R10, frames);
        b.li(Reg::R1, 0x1000);
        b.li(Reg::R5, i64::from(chain[m - 1]));
        b.li(Reg::R6, i64::from(chain[m + 1]));
        b.li(Reg::R4, len);
        let top = b.bound_label();
        b.recv(Reg::R5, Reg::R1, Reg::R4);
        b.lw(Reg::R2, Reg::R1, 0);
        b.addi(Reg::R2, Reg::R2, 1);
        b.sw(Reg::R2, Reg::R1, 0);
        b.send(Reg::R6, Reg::R1, Reg::R4);
        b.addi(Reg::R10, Reg::R10, -1);
        b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
        b.halt();
        programs.push((TileId(chain[m]), b.build().expect("middle")));
    }

    let mut b = ProgramBuilder::new();
    b.li(Reg::R10, frames);
    b.li(Reg::R1, 0x1000);
    b.li(Reg::R5, i64::from(chain[k - 2]));
    b.li(Reg::R4, len);
    b.li(Reg::R7, 0);
    let top = b.bound_label();
    b.recv(Reg::R5, Reg::R1, Reg::R4);
    b.lw(Reg::R2, Reg::R1, 0);
    b.add(Reg::R7, Reg::R7, Reg::R2);
    b.addi(Reg::R10, Reg::R10, -1);
    b.branch(Cond::Ne, Reg::R10, Reg::R0, top);
    b.li(Reg::R8, 0x4000);
    b.sw(Reg::R7, Reg::R8, 0);
    b.halt();
    programs.push((TileId(chain[k - 1]), b.build().expect("sink")));

    programs
}

/// One round of word-level mutation: bit flips, word replacement,
/// duplication, deletion, swap, or truncation.
pub fn mutate_words(words: &mut Vec<u32>, rng: &mut SimRng) {
    if words.is_empty() {
        words.push(rng.next_u32());
        return;
    }
    let rounds = 1 + rng.index(3);
    for _ in 0..rounds {
        let i = rng.index(words.len());
        match rng.index(6) {
            0 => words[i] ^= 1 << rng.index(32),
            1 => words[i] = rng.next_u32(),
            2 => {
                let w = words[i];
                words.insert(i, w);
            }
            3 => {
                if words.len() > 1 {
                    words.remove(i);
                }
            }
            4 => {
                let j = rng.index(words.len());
                words.swap(i, j);
            }
            _ => words.truncate(i.max(1)),
        }
        if words.is_empty() {
            words.push(rng.next_u32());
        }
    }
}

/// One round of byte-level mutation (snapshot blobs): truncation, bit
/// flips, byte replacement, or splicing a random run.
pub fn mutate_bytes(bytes: &mut Vec<u8>, rng: &mut SimRng) {
    if bytes.is_empty() {
        bytes.push(rng.next_u32() as u8);
        return;
    }
    let rounds = 1 + rng.index(3);
    for _ in 0..rounds {
        let i = rng.index(bytes.len());
        match rng.index(4) {
            0 => bytes.truncate(i.max(1)),
            1 => bytes[i] ^= 1 << rng.index(8),
            2 => bytes[i] = rng.next_u32() as u8,
            _ => {
                let n = 1 + rng.index(8);
                for _ in 0..n {
                    bytes.insert(i, rng.next_u32() as u8);
                }
            }
        }
        if bytes.is_empty() {
            bytes.push(rng.next_u32() as u8);
        }
    }
}

/// Little-endian flattening of a word image (the on-disk corpus form).
#[must_use]
pub fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

/// Inverse of [`words_to_bytes`]; trailing partial words are dropped,
/// mirroring how a loader would treat a truncated image.
#[must_use]
pub fn bytes_to_words(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// A syntactically valid random JSON document of bounded depth.
#[must_use]
pub fn random_json(rng: &mut SimRng) -> String {
    fn value(rng: &mut SimRng, depth: usize, out: &mut String) {
        let leafy = depth == 0 || rng.chance(1, 2);
        if leafy {
            match rng.index(4) {
                0 => out.push_str("null"),
                1 => out.push_str(if rng.chance(1, 2) { "true" } else { "false" }),
                2 => out.push_str(&format!("{}", rng.below(100_000) as i64 - 50_000)),
                _ => out.push_str(&format!("\"s{}\"", rng.below(1000))),
            }
            return;
        }
        if rng.chance(1, 2) {
            out.push('[');
            let n = rng.index(4);
            for i in 0..n {
                if i > 0 {
                    out.push(',');
                }
                value(rng, depth - 1, out);
            }
            out.push(']');
        } else {
            out.push('{');
            let n = rng.index(4);
            for i in 0..n {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"k{i}\":"));
                value(rng, depth - 1, out);
            }
            out.push('}');
        }
    }
    let mut out = String::new();
    let depth = 1 + rng.index(6);
    value(rng, depth, &mut out);
    out
}
