//! Block-coverage feedback from the micro-op translator.
//!
//! The translated engine lowers each reachable basic block exactly once
//! into its per-tile block cache; the set of `(tile, entry pc)` pairs
//! with lowered blocks is therefore a cheap, deterministic proxy for
//! "control-flow paths this input reached". The fuzzer keeps inputs
//! that light up entries no earlier input reached and mutates them
//! preferentially — classic coverage-guided feedback without any
//! instrumentation beyond what the simulator already maintains.

use std::collections::BTreeSet;
use stitch_sim::Chip;

/// Accumulated `(tile index, block entry pc)` coverage across a run.
#[derive(Debug, Clone, Default)]
pub struct CoverageMap {
    seen: BTreeSet<(usize, u32)>,
}

impl CoverageMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a finished chip's translation coverage into the map,
    /// returning how many entries were new.
    pub fn absorb(&mut self, chip: &Chip) -> usize {
        let mut fresh = 0;
        for entry in chip.translation_coverage() {
            if self.seen.insert(entry) {
                fresh += 1;
            }
        }
        fresh
    }

    /// Entries covered so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True when nothing has been covered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// True if `chip` covered at least one entry absent from this map,
    /// without mutating the map (used by the corpus minimizer).
    #[must_use]
    pub fn would_grow(&self, chip: &Chip) -> bool {
        chip.translation_coverage()
            .iter()
            .any(|e| !self.seen.contains(e))
    }
}
