//! Fixed-seed fuzz sweeps and minimized-corpus replay.
//!
//! Each sweep runs `seed_count()` cases (default 256, the CI floor)
//! from `seed_base()`; both knobs are env-overridable so a failing
//! case reproduces from its printed seed:
//!
//! ```text
//! STITCH_FUZZ_SEED_BASE=<seed> STITCH_FUZZ_SEEDS=1 \
//!     cargo test -q -p stitch-fuzz --test targets
//! ```
//!
//! The corpus replay tests pin every checked-in input to the
//! classification encoded in its file name, so codec or decoder
//! changes that silently reclassify a hardened case fail loudly.

use std::collections::BTreeMap;

use stitch_fuzz::{corpus, seed_base, seed_count, targets, CoverageMap, Target};

#[test]
fn decode_sweep_never_panics() {
    let base = seed_base();
    let mut hist: BTreeMap<&'static str, u64> = BTreeMap::new();
    for i in 0..seed_count() {
        *hist.entry(targets::run_decode(base + i)).or_default() += 1;
    }
    // The sweep must exercise both the reject and the survive paths,
    // or the generator has rotted into noise.
    assert!(
        hist.get("decode-err").copied().unwrap_or(0) > 0,
        "no input was rejected by the decoder: {hist:?}"
    );
    assert!(
        hist.iter().any(|(k, _)| *k != "decode-err"),
        "every input died in decode — mutants never reach the sim: {hist:?}"
    );
}

#[test]
fn differential_sweep_holds_and_covers() {
    let base = seed_base();
    let mut coverage = CoverageMap::new();
    let mut ok = 0u64;
    for i in 0..seed_count() {
        let (class, _) = targets::run_differential(base + i, &mut coverage);
        if class == "sim-ok" {
            ok += 1;
        }
    }
    assert!(ok > 0, "no differential case completed");
    assert!(
        !coverage.is_empty(),
        "translator coverage stayed empty — feedback signal is dead"
    );
}

#[test]
fn fault_plan_sweep_holds() {
    let base = seed_base();
    let mut hist: BTreeMap<&'static str, u64> = BTreeMap::new();
    for i in 0..seed_count() {
        *hist.entry(targets::run_faults(base + i)).or_default() += 1;
    }
    assert!(
        hist.get("sim-ok").copied().unwrap_or(0) > 0,
        "no fault plan let the pipeline finish — space too hostile: {hist:?}"
    );
}

#[test]
fn snapshot_sweep_never_panics() {
    let base = seed_base();
    for i in 0..seed_count() {
        let (_, pristine) = targets::run_snapshot(base + i);
        assert!(!pristine.is_empty());
    }
}

#[test]
fn json_sweep_never_panics() {
    let base = seed_base();
    for i in 0..seed_count() {
        targets::run_json(base + i);
    }
}

fn replay(target: Target, f: impl Fn(&[u8]) -> &'static str) {
    let inputs = corpus::load(target);
    assert!(
        !inputs.is_empty(),
        "checked-in corpus for '{}' is missing — regenerate with \
         `cargo run -p stitch-fuzz -- {} --write-corpus`",
        target.name(),
        target.name()
    );
    for (expected, bytes) in inputs {
        let got = f(&bytes);
        assert_eq!(
            got,
            expected,
            "corpus input for '{}' reclassified ({} bytes)",
            target.name(),
            bytes.len()
        );
    }
}

#[test]
fn corpus_decode_replays() {
    replay(Target::Decode, targets::replay_decode);
}

#[test]
fn corpus_differential_replays() {
    let inputs = corpus::load(Target::Differential);
    assert!(!inputs.is_empty(), "differential corpus missing");
    for (expected, bytes) in inputs {
        let got = targets::replay_differential(&bytes);
        // Coverage inputs are prefixed `cov-<class>`.
        let want = expected.strip_prefix("cov-").unwrap_or(&expected);
        assert_eq!(got, want, "differential corpus input reclassified");
    }
}

#[test]
fn corpus_faults_replays() {
    let inputs = corpus::load(Target::Faults);
    assert!(!inputs.is_empty(), "faults corpus missing");
    for (expected, bytes) in inputs {
        let mut seed = [0u8; 8];
        seed.copy_from_slice(&bytes[..8]);
        let got = targets::run_faults(u64::from_le_bytes(seed));
        assert_eq!(got, expected, "fault corpus seed reclassified");
    }
}

#[test]
fn corpus_snapshot_replays() {
    replay(Target::Snapshot, targets::replay_snapshot);
}

#[test]
fn corpus_json_replays() {
    replay(Target::Json, targets::replay_json);
}
