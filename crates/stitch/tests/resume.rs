//! Crash-safe sweep resume: `Workbench::sweep_resumable` must skip
//! points whose manifest records are valid, recompute points whose
//! records are missing or corrupt, and reassemble identical results
//! either way.

use std::sync::atomic::{AtomicUsize, Ordering};

use stitch::{AppRun, Arch, Rec, RecView, SweepManifest, SweepPoint, Workbench};
use stitch_apps::App;

/// Small per-point record: enough to prove bit-identical reassembly.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Pt {
    fps_bits: u64,
    cycles: u64,
}

impl Pt {
    fn of(run: &AppRun) -> Pt {
        Pt {
            fps_bits: run.throughput_fps.to_bits(),
            cycles: run.summary.cycles,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut r = Rec::new();
        r.u64(self.fps_bits);
        r.u64(self.cycles);
        r.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Option<Pt> {
        let mut v = RecView::new(bytes);
        let fps_bits = v.u64()?;
        let cycles = v.u64()?;
        v.at_end().then_some(Pt { fps_bits, cycles })
    }
}

fn key_of(p: SweepPoint) -> String {
    format!("resume-test-{}-{:?}", p.app, p.arch)
}

/// Runs the sweep and returns (results, points freshly computed).
fn sweep_once(
    ws: &mut Workbench,
    apps: &[App],
    points: &[SweepPoint],
    manifest: &SweepManifest,
) -> (Vec<Pt>, usize) {
    let computed = AtomicUsize::new(0);
    let out = ws.sweep_resumable(
        apps,
        points,
        2,
        2,
        manifest,
        key_of,
        |run| {
            computed.fetch_add(1, Ordering::Relaxed);
            Pt::of(run).encode()
        },
        Pt::decode,
        Pt::of,
    );
    let recs = out
        .into_iter()
        .map(|r| r.expect("sweep point succeeds"))
        .collect();
    (recs, computed.into_inner())
}

#[test]
fn resumable_sweep_skips_completed_points_and_recovers_from_corruption() {
    let dir = std::env::temp_dir().join(format!("stitch-resume-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = SweepManifest::open(&dir).expect("open manifest");
    let apps = App::all();
    let points = [
        SweepPoint {
            app: 0,
            arch: Arch::Baseline,
        },
        SweepPoint {
            app: 0,
            arch: Arch::Stitch,
        },
    ];
    let mut ws = Workbench::new();

    // Fresh manifest: everything computes, everything is persisted.
    let (first, computed) = sweep_once(&mut ws, &apps, &points, &manifest);
    assert_eq!(
        computed,
        points.len(),
        "fresh sweep must compute all points"
    );
    assert_eq!(manifest.completed(), points.len());

    // Complete manifest: nothing recomputes, results are bit-identical.
    let (second, computed) = sweep_once(&mut ws, &apps, &points, &manifest);
    assert_eq!(computed, 0, "complete manifest must skip every point");
    assert_eq!(second, first, "resumed results must be bit-identical");

    // One record lost (as after a kill): exactly that point recomputes,
    // and the result still matches.
    let lost = key_of(points[1]);
    for e in std::fs::read_dir(&dir)
        .expect("read manifest dir")
        .flatten()
    {
        if e.file_name().to_string_lossy().contains("Stitch") {
            std::fs::remove_file(e.path()).expect("drop one point");
        }
    }
    assert!(manifest.load(&lost).is_none(), "point file was not removed");
    let (third, computed) = sweep_once(&mut ws, &apps, &points, &manifest);
    assert_eq!(computed, 1, "only the lost point recomputes");
    assert_eq!(third, first);

    // One record corrupted: reads as absent, recomputes, heals.
    for e in std::fs::read_dir(&dir)
        .expect("read manifest dir")
        .flatten()
    {
        if e.file_name().to_string_lossy().contains("Baseline") {
            std::fs::write(e.path(), b"garbage").expect("corrupt point");
        }
    }
    let (fourth, computed) = sweep_once(&mut ws, &apps, &points, &manifest);
    assert_eq!(computed, 1, "only the corrupt point recomputes");
    assert_eq!(fourth, first);
    let (_, computed) = sweep_once(&mut ws, &apps, &points, &manifest);
    assert_eq!(computed, 0, "healed manifest skips everything again");

    let _ = std::fs::remove_dir_all(&dir);
}
